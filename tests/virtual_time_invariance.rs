//! Virtual-time invariance goldens.
//!
//! The simulator's virtual-time outputs — per-pass response times, the
//! run's response time, per-rank wire traffic, and the mined lattice —
//! are a pure function of (dataset seed, params, algorithm, P). Host-side
//! optimizations (page sharing, buffer reuse, scheduling changes) must
//! not perturb them by even one bit: wire cost is charged from the
//! logical `wire_size` of a payload, never from how the payload is
//! represented in host memory.
//!
//! These fingerprints were captured before transaction pages became
//! shared (`Arc<[Transaction]>`) payloads, and pin every algorithm's
//! virtual-time behavior across that refactor and any future one. The
//! `f64` times are compared through their exact bit patterns.

use armine_datagen::QuestParams;
use armine_metrics::{names, LABEL_KEYS};
use armine_mpsim::{CrashPoint, FaultPlan};
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams, ParallelRun};

const PROCS: usize = 8;

fn dataset() -> armine_core::Dataset {
    QuestParams::paper_t15_i6()
        .num_transactions(480)
        .num_items(80)
        .num_patterns(30)
        .seed(11)
        .generate()
}

fn params() -> ParallelParams {
    ParallelParams::with_min_support_count(9)
        .page_size(25)
        .max_k(4)
}

/// A compact, exact digest of everything virtual-time-visible in a run:
/// response time and per-pass times as f64 bit patterns, per-rank bytes
/// on the wire, and an FNV-1a hash over the full frequent lattice.
fn fingerprint(run: &ParallelRun) -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lattice = FNV_OFFSET;
    let mut fnv = |v: u64| {
        for byte in v.to_le_bytes() {
            lattice ^= u64::from(byte);
            lattice = lattice.wrapping_mul(FNV_PRIME);
        }
    };
    for (set, count) in run.frequent.iter() {
        for item in set.items() {
            fnv(u64::from(item.0));
        }
        fnv(count);
    }
    let passes: Vec<String> = run
        .passes
        .iter()
        .map(|p| format!("{:016x}", p.time.to_bits()))
        .collect();
    let bytes: Vec<String> = run.ranks.iter().map(|r| r.bytes_sent.to_string()).collect();
    format!(
        "rt={:016x} passes=[{}] bytes=[{}] lattice={lattice:016x} nfreq={}",
        run.response_time.to_bits(),
        passes.join(","),
        bytes.join(","),
        run.frequent.iter().count(),
    )
}

fn check(algorithm: Algorithm, golden: &str) {
    let run = ParallelMiner::new(PROCS).mine(algorithm, &dataset(), &params());
    let got = fingerprint(&run);
    assert_eq!(
        got,
        golden,
        "{} virtual-time fingerprint drifted",
        algorithm.name()
    );
}

/// Regenerates the golden strings after an *intentional* change to the
/// virtual-time model (cost constants, collectives, scheduling):
/// `cargo test --test virtual_time_invariance -- --ignored --nocapture`.
#[test]
#[ignore = "prints fresh goldens; run manually when the cost model changes"]
fn capture_goldens() {
    for (name, algorithm) in [
        ("CD", Algorithm::Cd),
        ("DD", Algorithm::Dd),
        ("DDCOMM", Algorithm::DdComm),
        ("IDD", Algorithm::Idd),
        ("IDD1", Algorithm::IddSingleSource),
        (
            "HD",
            Algorithm::Hd {
                group_threshold: 200,
            },
        ),
        ("HPA", Algorithm::Hpa { eld_permille: 0 }),
    ] {
        let run = ParallelMiner::new(PROCS).mine(algorithm, &dataset(), &params());
        println!("GOLDEN_{name} {}", fingerprint(&run));
    }
}

/// The CD golden, shared with the registry-neutrality test below.
const CD_GOLDEN: &str = "rt=3fc458030e91afc0 passes=[3f336b811ef1c2de,3f8503999ac663b6,3faa60c49fef95d9,3fb8cbc518b3d65a] bytes=[515744,515744,515744,515744,515744,515736,515752,515760] lattice=1d64cdddd93871a9 nfreq=25507";

#[test]
fn cd_virtual_time_is_invariant() {
    check(Algorithm::Cd, CD_GOLDEN);
}

/// The metrics registry records host-side only — it never charges the
/// virtual clock. With the registry fully enabled (it always is), the CD
/// golden stays bit-identical, and the snapshot's series are the *same
/// bits* the fingerprint pins: the response gauge, every pass-time
/// gauge, and every rank's wire-byte counter.
#[test]
fn metrics_registry_is_virtual_time_neutral() {
    let run = ParallelMiner::new(PROCS).mine(Algorithm::Cd, &dataset(), &params());
    assert_eq!(
        fingerprint(&run),
        CD_GOLDEN,
        "recording into the registry perturbed the virtual clock"
    );
    let snap = &run.metrics;
    assert!(!snap.is_empty(), "registry recorded nothing");
    assert_eq!(
        snap.gauge(names::RUN_RESPONSE_SECONDS, &[])
            .unwrap()
            .to_bits(),
        run.response_time.to_bits()
    );
    for p in &run.passes {
        let k = p.k.to_string();
        assert_eq!(
            snap.gauge(names::PASS_TIME_SECONDS, &[("pass", &k)])
                .unwrap()
                .to_bits(),
            p.time.to_bits(),
            "pass {k} time gauge drifted from the fingerprinted ledger"
        );
    }
    for (rank, rs) in run.ranks.iter().enumerate() {
        let r = rank.to_string();
        assert_eq!(
            snap.counter_sum(&names::rank_counter("bytes_sent"), &[("rank", &r)]),
            rs.bytes_sent,
            "rank {r} wire bytes drifted"
        );
    }
    for series in snap.series() {
        for (key, _) in series.labels.iter() {
            assert!(LABEL_KEYS.contains(&key), "non-canonical label {key:?}");
        }
    }
}

#[test]
fn dd_virtual_time_is_invariant() {
    check(Algorithm::Dd, "rt=3fc43ede38e0dbff passes=[3f336b811ef1c2de,3f8a5ee1d14436c0,3fabb938a85c73fc,3fb741d8624c0565] bytes=[579852,581952,586152,588392,590660,595028,595728,590548] lattice=1d64cdddd93871a9 nfreq=25507");
}

#[test]
fn dd_comm_virtual_time_is_invariant() {
    check(Algorithm::DdComm, "rt=3fc4360ffc0819a8 passes=[3f336b811ef1c2de,3f8a2fb1560431f8,3fabad6c898c72d4,3fb73c08076a81e4] bytes=[580620,584556,587448,589184,589724,590804,595536,590440] lattice=1d64cdddd93871a9 nfreq=25507");
}

#[test]
fn idd_virtual_time_is_invariant() {
    check(Algorithm::Idd, "rt=3fba7434f0d9035f passes=[3f336b811ef1c2de,3f7bb785e17d1034,3fa088665cf99061,3fb0611de3257868] bytes=[544388,567448,621664,580588,570460,574704,604664,644396] lattice=1d64cdddd93871a9 nfreq=25507");
}

#[test]
fn idd_single_source_virtual_time_is_invariant() {
    check(Algorithm::IddSingleSource, "rt=3fbac87cfe89d876 passes=[3f473c91cf71f5c2,3f7c0ccb3628ffb2,3fa0cda3c7ea6411,3fb0726543933287] bytes=[555584,578800,633040,592132,582532,586200,616160,562688] lattice=1d64cdddd93871a9 nfreq=25507");
}

#[test]
fn hd_virtual_time_is_invariant() {
    check(
        Algorithm::Hd {
            group_threshold: 200,
        },
        "rt=3fba7434f0d9035f passes=[3f336b811ef1c2de,3f7bb785e17d1034,3fa088665cf99061,3fb0611de3257868] bytes=[544388,567448,621664,580588,570460,574704,604664,644396] lattice=1d64cdddd93871a9 nfreq=25507",
    );
}

/// The fixed plan behind the faulted goldens: message drops, a 1.5×
/// straggler, and a pass-boundary crash — all deterministic from the
/// seed, so a faulted run is just as reproducible as a clean one.
fn golden_plan() -> FaultPlan {
    FaultPlan::new()
        .seed(13)
        .drop_rate(0.05)
        .slowdown(2, 1.5)
        .crash(5, CrashPoint::AtPass(3))
}

/// The clean fingerprint plus per-rank fault counters
/// (`retransmits/timeouts/recoveries`): a faulted run under a fixed seed
/// and plan must reproduce its virtual clocks *and* its fault history.
fn fingerprint_faulted(run: &ParallelRun) -> String {
    let faults: Vec<String> = run
        .ranks
        .iter()
        .map(|r| format!("{}/{}/{}", r.retransmits, r.timeouts, r.recoveries))
        .collect();
    format!("{} faults=[{}]", fingerprint(run), faults.join(","))
}

fn check_faulted(algorithm: Algorithm, golden: &str) {
    let run = ParallelMiner::new(PROCS)
        .mine_with_faults(algorithm, &dataset(), &params(), Some(&golden_plan()))
        .expect("the golden plan is recoverable");
    let got = fingerprint_faulted(&run);
    assert_eq!(
        got,
        golden,
        "{} faulted fingerprint drifted",
        algorithm.name()
    );
}

/// Regenerates the faulted golden strings:
/// `cargo test --test virtual_time_invariance -- --ignored --nocapture`.
#[test]
#[ignore = "prints fresh faulted goldens; run manually when the fault model changes"]
fn capture_faulted_goldens() {
    for (name, algorithm) in [
        ("CD_FAULTED", Algorithm::Cd),
        (
            "HD_FAULTED",
            Algorithm::Hd {
                group_threshold: 200,
            },
        ),
    ] {
        let run = ParallelMiner::new(PROCS)
            .mine_with_faults(algorithm, &dataset(), &params(), Some(&golden_plan()))
            .expect("the golden plan is recoverable");
        println!("GOLDEN_{name} {}", fingerprint_faulted(&run));
    }
}

#[test]
fn hpa_virtual_time_is_invariant() {
    check(Algorithm::Hpa { eld_permille: 0 }, "rt=3fb59300fd409a2f passes=[3f336b811ef1c2de,3f70599518ba3073,3f9695edcdd5469a,3fada9016e41677d] bytes=[1862872,1664972,1763608,1806236,2120608,2487572,1938036,2041300] lattice=1d64cdddd93871a9 nfreq=25507");
}

#[test]
fn cd_faulted_virtual_time_is_invariant() {
    check_faulted(Algorithm::Cd, "rt=3fd3362d155ad0a7 passes=[3f53dc2a88f6639e,3f8dcf6ad925acca,3fc2bcbba2755ba1,3fc1aaef859bfe19] bytes=[540528,551744,562968,574200,585408,25520,518128,529312] lattice=1d64cdddd93871a9 nfreq=25507 faults=[3/2/1,5/2/1,2/2/1,8/2/1,3/2/1,3/0/0,4/3/1,13/2/1]");
}

#[test]
fn hd_faulted_virtual_time_is_invariant() {
    check_faulted(
        Algorithm::Hd {
            group_threshold: 200,
        },
        "rt=3fc6ca01520586d9 passes=[3f53dc2a88f6639e,3f8528a564d0f028,3fb2e6e4972535d0,3fb7b898b627e04f] bytes=[531476,561992,606984,558024,570336,45408,608776,609260] lattice=1d64cdddd93871a9 nfreq=25507 faults=[4/2/1,10/2/1,7/2/1,10/2/1,7/2/1,7/0/0,7/3/1,16/2/1]",
    );
}
