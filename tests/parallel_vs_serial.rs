//! The repository's headline invariant, tested across crates: every
//! parallel formulation, on any processor count, any machine profile and
//! any topology, discovers **exactly** the frequent-itemset lattice of
//! serial Apriori — and therefore exactly the same association rules.

use armine::core::apriori::{Apriori, AprioriParams};
use armine::core::rules::generate_rules;
use armine::core::{Dataset, ItemSet};
use armine::datagen::QuestParams;
use armine::mpsim::{MachineProfile, Topology};
use armine::parallel::{Algorithm, ParallelMiner, ParallelParams};

const ALGOS: [Algorithm; 7] = [
    Algorithm::Cd,
    Algorithm::Dd,
    Algorithm::DdComm,
    Algorithm::Idd,
    Algorithm::Hd {
        group_threshold: 60,
    },
    Algorithm::Hpa { eld_permille: 0 },
    Algorithm::Hpa { eld_permille: 250 },
];

fn quest(n: usize, items: u32, seed: u64) -> Dataset {
    QuestParams::paper_t15_i6()
        .num_transactions(n)
        .num_items(items)
        .num_patterns(40)
        .seed(seed)
        .generate()
}

fn serial_lattice(dataset: &Dataset, min_count: u64, max_k: usize) -> Vec<(ItemSet, u64)> {
    let run = Apriori::new(AprioriParams::with_min_support_count(min_count).max_k(max_k))
        .mine(dataset.transactions());
    run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect()
}

fn parallel_lattice(run: &armine::parallel::ParallelRun) -> Vec<(ItemSet, u64)> {
    run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect()
}

#[test]
fn every_algorithm_every_proc_count_matches_serial() {
    let dataset = quest(400, 90, 101);
    let min_count = 10;
    let want = serial_lattice(&dataset, min_count, 4);
    assert!(
        want.len() > 20,
        "workload must be non-trivial: {}",
        want.len()
    );
    let params = ParallelParams::with_min_support_count(min_count)
        .page_size(60)
        .max_k(4);
    for procs in [2, 3, 5, 8] {
        for algo in ALGOS {
            let run = ParallelMiner::new(procs).mine(algo, &dataset, &params);
            assert_eq!(parallel_lattice(&run), want, "{} at P={procs}", algo.name());
        }
    }
}

#[test]
fn machine_profile_changes_time_not_answers() {
    let dataset = quest(300, 70, 103);
    let params = ParallelParams::with_min_support_count(9).max_k(4);
    let t3e = ParallelMiner::new(4).machine(MachineProfile::cray_t3e());
    let sp2 = ParallelMiner::new(4).machine(MachineProfile::ibm_sp2());
    let a = t3e.mine(
        Algorithm::Hd {
            group_threshold: 50,
        },
        &dataset,
        &params,
    );
    let b = sp2.mine(
        Algorithm::Hd {
            group_threshold: 50,
        },
        &dataset,
        &params,
    );
    assert_eq!(parallel_lattice(&a), parallel_lattice(&b));
    assert!(
        b.response_time > 3.0 * a.response_time,
        "the SP2 must be much slower: {} vs {}",
        b.response_time,
        a.response_time
    );
}

#[test]
fn topology_changes_time_not_answers() {
    let dataset = quest(300, 70, 107);
    let params = ParallelParams::with_min_support_count(9).max_k(3);
    let lattices: Vec<Vec<(ItemSet, u64)>> = [
        Topology::Ring,
        Topology::FullyConnected,
        Topology::Hypercube,
        Topology::Mesh2D { rows: 2, cols: 4 },
    ]
    .into_iter()
    .map(|topo| {
        let run = ParallelMiner::new(8)
            .topology(topo)
            .mine(Algorithm::Idd, &dataset, &params);
        parallel_lattice(&run)
    })
    .collect();
    assert!(lattices.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn rules_from_parallel_lattice_match_serial_rules() {
    let dataset = quest(350, 80, 109);
    let min_count = 10;
    let serial = Apriori::new(AprioriParams::with_min_support_count(min_count).max_k(4))
        .mine(dataset.transactions());
    let parallel = ParallelMiner::new(4).mine(
        Algorithm::Idd,
        &dataset,
        &ParallelParams::with_min_support_count(min_count)
            .page_size(60)
            .max_k(4),
    );
    let serial_rules = generate_rules(&serial.frequent, 0.7);
    let parallel_rules = generate_rules(&parallel.frequent, 0.7);
    assert!(!serial_rules.is_empty());
    assert_eq!(serial_rules.len(), parallel_rules.len());
    for (a, b) in serial_rules.iter().zip(&parallel_rules) {
        assert_eq!(a.antecedent, b.antecedent);
        assert_eq!(a.consequent, b.consequent);
        assert_eq!(a.support_count, b.support_count);
        assert!((a.confidence - b.confidence).abs() < 1e-12);
    }
}

#[test]
fn pass_candidate_counts_agree_across_algorithms() {
    // All algorithms generate the same C_k sequence (apriori_gen over the
    // same F_{k-1}); only the counting differs.
    let dataset = quest(300, 70, 113);
    let params = ParallelParams::with_min_support_count(9).max_k(4);
    let runs: Vec<_> = ALGOS
        .iter()
        .map(|&a| ParallelMiner::new(4).mine(a, &dataset, &params))
        .collect();
    for pair in runs.windows(2) {
        let a: Vec<(usize, usize)> = pair[0].passes.iter().map(|p| (p.k, p.candidates)).collect();
        let b: Vec<(usize, usize)> = pair[1].passes.iter().map(|p| (p.k, p.candidates)).collect();
        assert_eq!(a, b);
    }
}

#[test]
fn uneven_partition_sizes_still_exact() {
    // 7 processors over a transaction count that doesn't divide evenly.
    let dataset = quest(311, 60, 127);
    let min_count = 9;
    let want = serial_lattice(&dataset, min_count, 4);
    let params = ParallelParams::with_min_support_count(min_count)
        .page_size(13) // odd page size → ragged pages too
        .max_k(4);
    for algo in ALGOS {
        let run = ParallelMiner::new(7).mine(algo, &dataset, &params);
        assert_eq!(parallel_lattice(&run), want, "{}", algo.name());
    }
}

#[test]
fn more_processors_than_transactions() {
    let dataset = quest(10, 30, 131);
    let params = ParallelParams::with_min_support_count(2).max_k(3);
    let want = serial_lattice(&dataset, 2, 3);
    for algo in ALGOS {
        let run = ParallelMiner::new(16).mine(algo, &dataset, &params);
        assert_eq!(parallel_lattice(&run), want, "{}", algo.name());
    }
}
