//! End-to-end flows across crates: generate → write → read → mine →
//! rules, and the generator's statistical contracts.

use armine::core::apriori::{Apriori, AprioriParams};
use armine::core::io::{read_transactions, write_transactions};
use armine::core::rules::generate_rules;
use armine::datagen::QuestParams;
use armine::parallel::{Algorithm, ParallelMiner, ParallelParams};

#[test]
fn generate_write_read_mine_roundtrip() {
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(500)
        .num_items(120)
        .num_patterns(40)
        .seed(5)
        .generate();

    // Serialize and re-read the database.
    let mut bytes = Vec::new();
    write_transactions(&mut bytes, &dataset).unwrap();
    let reread = read_transactions(&bytes[..]).unwrap();
    assert_eq!(reread.len(), dataset.len());
    assert_eq!(reread.transactions(), dataset.transactions());

    // Mining the re-read dataset gives the same lattice as the original.
    let miner = Apriori::new(AprioriParams::with_min_support(0.03).max_k(4));
    let a = miner.mine(dataset.transactions());
    let b = miner.mine(reread.transactions());
    assert_eq!(a.frequent.len(), b.frequent.len());
    for (set, count) in a.frequent.iter() {
        assert_eq!(b.frequent.support(set), Some(count));
    }
}

#[test]
fn full_pipeline_generates_rules() {
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(800)
        .num_items(150)
        .num_patterns(50)
        .seed(6)
        .generate();
    let run = ParallelMiner::new(4).mine(
        Algorithm::Hd {
            group_threshold: 200,
        },
        &dataset,
        &ParallelParams::with_min_support(0.02).max_k(4),
    );
    assert!(!run.frequent.is_empty());
    let rules = generate_rules(&run.frequent, 0.5);
    assert!(
        !rules.is_empty(),
        "a planted-pattern workload at 2% support must yield rules"
    );
    for r in &rules {
        assert!(r.confidence >= 0.5 && r.confidence <= 1.0 + 1e-12);
        assert!(r.support > 0.0 && r.support <= 1.0);
    }
}

#[test]
fn generator_statistics_match_parameters() {
    let params = QuestParams::paper_t15_i6()
        .num_transactions(3000)
        .num_items(400)
        .seed(7);
    let dataset = params.generate();
    assert_eq!(dataset.len(), 3000);
    // |T| ≈ 15 (Poisson mean with pattern-packing slack).
    let avg = dataset.avg_transaction_len();
    assert!((11.0..19.0).contains(&avg), "avg transaction length {avg}");
    // Every item id within the declared universe.
    assert!(dataset
        .transactions()
        .iter()
        .all(|t| t.items().iter().all(|i| i.id() < 400)));
    // Reproducible.
    let again = params.generate();
    assert_eq!(again.transactions(), dataset.transactions());
}

#[test]
fn virtual_time_is_reproducible_end_to_end() {
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(300)
        .num_items(80)
        .seed(8)
        .generate();
    let params = ParallelParams::with_min_support_count(9).max_k(4);
    let run = |_: u32| {
        ParallelMiner::new(6)
            .mine(Algorithm::Idd, &dataset, &params)
            .response_time
    };
    let times: Vec<f64> = (0..3).map(run).collect();
    assert!(
        times.windows(2).all(|w| w[0] == w[1]),
        "virtual response times must be bit-identical: {times:?}"
    );
}

#[test]
fn response_time_scales_down_with_processors_for_cd() {
    // CD's compute is N/P per processor: quadrupling P on a compute-bound
    // workload must cut the virtual response time substantially.
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(1600)
        .num_items(150)
        .num_patterns(60)
        .seed(9)
        .generate();
    let params = ParallelParams::with_min_support(0.02).max_k(3);
    let t4 = ParallelMiner::new(4)
        .mine(Algorithm::Cd, &dataset, &params)
        .response_time;
    let t16 = ParallelMiner::new(16)
        .mine(Algorithm::Cd, &dataset, &params)
        .response_time;
    assert!(
        t16 < 0.5 * t4,
        "16 processors should be much faster than 4: {t16} vs {t4}"
    );
}
