//! Property-based tests (proptest) over the core invariants.

use armine::core::apriori::{apriori_gen, Apriori, AprioriParams};
use armine::core::binpack::{
    pack_lpt, pack_lpt_weighted, partition_by_first_item, partition_round_robin,
};
use armine::core::hashtree::{HashTree, HashTreeParams, OwnershipFilter};
use armine::core::model::expected_distinct_leaves;
use armine::core::tidlist::TidListIndex;
use armine::core::{Item, ItemSet, Transaction};
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: a transaction as a set of item ids below `universe`.
fn arb_transaction(universe: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..universe, 0..=max_len).prop_map(|s| s.into_iter().collect())
}

/// Strategy: a sorted candidate itemset of exactly `k` distinct items.
fn arb_candidate(universe: u32, k: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..universe, k).prop_map(|s| s.into_iter().collect())
}

fn to_transactions(raw: &[Vec<u32>]) -> Vec<Transaction> {
    raw.iter()
        .enumerate()
        .map(|(i, ids)| Transaction::new(i as u64, ids.iter().map(|&x| Item(x)).collect()))
        .collect()
}

fn to_itemsets(raw: &[Vec<u32>]) -> Vec<ItemSet> {
    let mut sets: Vec<ItemSet> = raw
        .iter()
        .map(|ids| ItemSet::new(ids.iter().map(|&x| Item(x)).collect()))
        .collect();
    sets.sort();
    sets.dedup();
    sets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hash tree counts exactly like brute-force subset containment,
    /// for arbitrary candidates, transactions, and tree shapes.
    #[test]
    fn hashtree_equals_brute_force(
        raw_cands in prop::collection::vec(arb_candidate(24, 3), 1..40),
        raw_txs in prop::collection::vec(arb_transaction(24, 10), 0..40),
        branching in 2usize..9,
        max_leaf in 1usize..6,
    ) {
        let cands = to_itemsets(&raw_cands);
        let txs = to_transactions(&raw_txs);
        let mut tree = HashTree::build(3, HashTreeParams { branching, max_leaf }, cands.clone());
        tree.count_all(&txs, &OwnershipFilter::all());
        for c in &cands {
            let want = txs.iter().filter(|t| t.contains_set(c)).count() as u64;
            prop_assert_eq!(tree.count_of(c), Some(want), "candidate {}", c);
        }
    }

    /// Support is anti-monotone over the discovered lattice:
    /// X ⊆ Y ⇒ σ(X) ≥ σ(Y).
    #[test]
    fn support_anti_monotonicity(
        raw_txs in prop::collection::vec(arb_transaction(12, 8), 1..30),
        min_count in 1u64..4,
    ) {
        let txs = to_transactions(&raw_txs);
        let run = Apriori::new(AprioriParams::with_min_support_count(min_count)).mine(&txs);
        let all: Vec<(&ItemSet, u64)> = run.frequent.iter().collect();
        for (x, cx) in &all {
            for (y, cy) in &all {
                if x.is_subset_of(y) {
                    prop_assert!(cx >= cy, "{} ⊆ {} but {} < {}", x, y, cx, cy);
                }
            }
        }
        // And every frequent count is the true count.
        for (s, c) in &all {
            let want = txs.iter().filter(|t| t.contains_set(s)).count() as u64;
            prop_assert_eq!(*c, want);
        }
    }

    /// apriori_gen output is sorted, deduplicated, of size k, and exactly
    /// the sets whose (k-1)-subsets are all present.
    #[test]
    fn apriori_gen_is_sound_and_complete(
        raw_prev in prop::collection::vec(arb_candidate(10, 2), 1..30),
    ) {
        let prev = to_itemsets(&raw_prev);
        let got = apriori_gen(&prev);
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        let prev_set: std::collections::HashSet<&ItemSet> = prev.iter().collect();
        // Sound: every output's subsets are frequent.
        for c in &got {
            prop_assert_eq!(c.len(), 3);
            prop_assert!(c.subsets_dropping_one().all(|s| prev_set.contains(&s)));
        }
        // Complete: every valid 3-set is produced.
        let got_set: std::collections::HashSet<&ItemSet> = got.iter().collect();
        for a in 0u32..10 {
            for b in a + 1..10 {
                for c in b + 1..10 {
                    let cand = ItemSet::from([a, b, c]);
                    let valid = cand.subsets_dropping_one().all(|s| prev_set.contains(&s));
                    prop_assert_eq!(got_set.contains(&cand), valid, "{}", cand);
                }
            }
        }
    }

    /// Candidate partitions cover every candidate exactly once, whatever
    /// the strategy.
    #[test]
    fn partitions_are_exact_covers(
        raw_cands in prop::collection::vec(arb_candidate(20, 2), 1..60),
        procs in 1usize..9,
    ) {
        let cands = to_itemsets(&raw_cands);
        for part in [
            partition_round_robin(&cands, procs),
            partition_by_first_item(&cands, 20, &vec![1.0; procs]),
        ] {
            let mut all: Vec<ItemSet> = part.parts.iter().flatten().cloned().collect();
            all.sort();
            prop_assert_eq!(&all, &cands);
        }
    }

    /// LPT packing never loses weight and respects the 4/3 OPT bound
    /// against the trivial lower bounds max(w_max, total/bins).
    #[test]
    fn lpt_bounds(
        weights in prop::collection::vec(0u64..1000, 1..50),
        bins in 1usize..10,
    ) {
        let p = pack_lpt(&weights, bins);
        let total: u64 = weights.iter().sum();
        prop_assert_eq!(p.loads.iter().sum::<u64>(), total);
        let lower = (*weights.iter().max().unwrap()).max(total.div_ceil(bins as u64));
        let max_load = *p.loads.iter().max().unwrap();
        // LPT ≤ 4/3·OPT + ... ; use the safe bound 4/3·lower + max weight.
        prop_assert!(
            max_load * 3 <= lower * 4 + 3 * *weights.iter().max().unwrap(),
            "max load {} vs lower bound {}",
            max_load,
            lower
        );
    }

    /// V(i,j) stays within [1, min(i,j)] and is monotone in i.
    #[test]
    fn v_model_bounds(i in 1u32..500, j in 1u32..500) {
        let v = expected_distinct_leaves(i as f64, j as f64);
        prop_assert!(v >= 1.0 - 1e-9);
        prop_assert!(v <= (i.min(j)) as f64 + 1e-9);
        let v_next = expected_distinct_leaves((i + 1) as f64, j as f64);
        prop_assert!(v_next >= v);
    }

    /// Mining with a memory cap returns the identical lattice with at
    /// least as many scans.
    #[test]
    fn memory_cap_invariance(
        raw_txs in prop::collection::vec(arb_transaction(14, 8), 1..30),
        cap in 1usize..8,
    ) {
        let txs = to_transactions(&raw_txs);
        let free = Apriori::new(AprioriParams::with_min_support_count(2)).mine(&txs);
        let capped = Apriori::new(
            AprioriParams::with_min_support_count(2).memory_capacity(cap),
        )
        .mine(&txs);
        let a: HashMap<ItemSet, u64> = free.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
        let b: HashMap<ItemSet, u64> =
            capped.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
        prop_assert_eq!(a, b);
        prop_assert!(capped.total_db_scans() >= free.total_db_scans());
    }

    /// Horizontal (Apriori/hash-tree) and vertical (tid-list) counting
    /// agree on every frequent itemset — two independent implementations
    /// cross-validating each other.
    #[test]
    fn apriori_agrees_with_tidlist_index(
        raw_txs in prop::collection::vec(arb_transaction(14, 9), 1..40),
        min_count in 1u64..4,
    ) {
        let txs = to_transactions(&raw_txs);
        let run = Apriori::new(AprioriParams::with_min_support_count(min_count)).mine(&txs);
        let index = TidListIndex::build(&txs);
        for (set, count) in run.frequent.iter() {
            prop_assert_eq!(index.support(set), count, "{}", set);
        }
    }

    /// Capacity-weighted packing is an exact cover for any positive
    /// capacities, and uniform capacities reproduce plain LPT bit for bit
    /// (the homogeneous-goldens guarantee).
    #[test]
    fn weighted_packing_covers_and_degenerates_to_lpt(
        weights in prop::collection::vec(0u64..1000, 1..50),
        caps in prop::collection::vec(1u32..16, 1..10),
        uniform_cap in 1u32..16,
    ) {
        let caps: Vec<f64> = caps.iter().map(|&c| f64::from(c)).collect();
        let p = pack_lpt_weighted(&weights, &caps);
        prop_assert_eq!(p.loads.iter().sum::<u64>(), weights.iter().sum::<u64>());
        prop_assert_eq!(p.assignment.len(), weights.len());
        let bins = caps.len();
        let u = pack_lpt_weighted(&weights, &vec![f64::from(uniform_cap); bins]);
        let plain = pack_lpt(&weights, bins);
        prop_assert_eq!(u.assignment, plain.assignment);
        prop_assert_eq!(u.loads, plain.loads);
    }

    /// A heterogeneous cluster never changes the mined lattice — under
    /// either placement policy, every formulation returns bit-identical
    /// itemsets to the homogeneous run. Speeds and placement move work
    /// and time, never answers.
    #[test]
    fn heterogeneity_and_placement_preserve_the_lattice(
        raw_txs in prop::collection::vec(arb_transaction(14, 8), 4..30),
        alg_idx in 0usize..9,
        adaptive in 0u32..2,
        slow_rank in 0usize..4,
        speed_num in 1u32..9,
    ) {
        use armine::mpsim::{ClusterProfile, MachineProfile};
        use armine::parallel::{Algorithm, ParallelMiner, ParallelParams, PlacementPolicy};
        let algorithm = [
            Algorithm::Cd,
            Algorithm::Npa,
            Algorithm::Dd,
            Algorithm::DdComm,
            Algorithm::Idd,
            Algorithm::IddSingleSource,
            Algorithm::Hd { group_threshold: 8 },
            Algorithm::Hpa { eld_permille: 250 },
            Algorithm::Pdm { buckets: 64, filter_passes: 1 },
        ][alg_idx];
        let placement = if adaptive == 1 {
            PlacementPolicy::Adaptive
        } else {
            PlacementPolicy::Static
        };
        let txs = to_transactions(&raw_txs);
        let dataset = armine::core::Dataset::with_num_items(txs, 14);
        let params = ParallelParams::with_min_support_count(2)
            .page_size(4)
            .max_k(3)
            .placement(placement);
        let procs = 4;
        let cluster = ClusterProfile::uniform(MachineProfile::cray_t3e())
            .speed(slow_rank, f64::from(speed_num) / 4.0);
        let hetero = ParallelMiner::new(procs)
            .cluster(cluster)
            .mine(algorithm, &dataset, &params);
        let homo = ParallelMiner::new(procs).mine(algorithm, &dataset, &params);
        let a: Vec<(ItemSet, u64)> =
            hetero.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
        let b: Vec<(ItemSet, u64)> =
            homo.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
        prop_assert_eq!(a, b, "{} diverged under {}", algorithm.name(), placement);
    }

    /// The IDD root filter never changes counted results — only work.
    #[test]
    fn bitmap_filter_preserves_owned_counts(
        raw_cands in prop::collection::vec(arb_candidate(16, 2), 1..30),
        raw_txs in prop::collection::vec(arb_transaction(16, 8), 0..30),
        procs in 2usize..5,
    ) {
        let cands = to_itemsets(&raw_cands);
        let txs = to_transactions(&raw_txs);
        let part = partition_by_first_item(&cands, 16, &vec![1.0; procs]);
        for (mine, filter) in part.parts.iter().zip(&part.filters) {
            let mut tree = HashTree::build(2, HashTreeParams::default(), mine.clone());
            tree.count_all(&txs, filter);
            for c in mine {
                let want = txs.iter().filter(|t| t.contains_set(c)).count() as u64;
                prop_assert_eq!(tree.count_of(c), Some(want));
            }
        }
    }
}
