//! Cross-crate checks for the DHP/PDM extension: on realistic Quest
//! workloads, the filtered algorithms produce the identical lattice to
//! plain Apriori/CD while counting strictly fewer candidates.

use armine::core::apriori::{Apriori, AprioriParams};
use armine::core::dhp::{Dhp, DhpParams};
use armine::core::ItemSet;
use armine::datagen::QuestParams;
use armine::parallel::{Algorithm, ParallelMiner, ParallelParams};
use std::collections::HashMap;

fn quest(n: usize, items: u32, seed: u64) -> armine::core::Dataset {
    QuestParams::paper_t15_i6()
        .num_transactions(n)
        .num_items(items)
        .num_patterns(60)
        .seed(seed)
        .generate()
}

fn lattice(f: &armine::core::apriori::FrequentItemsets) -> HashMap<ItemSet, u64> {
    f.iter().map(|(s, c)| (s.clone(), c)).collect()
}

#[test]
fn dhp_equals_apriori_on_quest_data() {
    let dataset = quest(800, 200, 201);
    for support in [0.02, 0.01] {
        let apriori = Apriori::new(AprioriParams::with_min_support(support).max_k(4))
            .mine(dataset.transactions());
        let dhp =
            Dhp::new(DhpParams::with_min_support(support).max_k(4)).mine(dataset.transactions());
        assert_eq!(lattice(&apriori.frequent), lattice(dhp.frequent()));
        // On a pattern-rich workload the filter must actually bite.
        let a2 = apriori.passes[1].candidates;
        let d2 = dhp.run.passes[1].candidates;
        assert!(d2 < a2, "support {support}: {d2} !< {a2}");
    }
}

#[test]
fn pdm_equals_cd_equals_serial_under_simulation() {
    let dataset = quest(600, 150, 203);
    let params = ParallelParams::with_min_support(0.015)
        .max_k(4)
        .page_size(80);
    let serial =
        Apriori::new(AprioriParams::with_min_support(0.015).max_k(4)).mine(dataset.transactions());
    for procs in [2, 5, 8] {
        let miner = ParallelMiner::new(procs);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let pdm = miner.mine(
            Algorithm::Pdm {
                buckets: 1 << 14,
                filter_passes: 2,
            },
            &dataset,
            &params,
        );
        assert_eq!(
            lattice(&serial.frequent),
            lattice(&cd.frequent),
            "CD P={procs}"
        );
        assert_eq!(
            lattice(&serial.frequent),
            lattice(&pdm.frequent),
            "PDM P={procs}"
        );
        // PDM counts fewer pass-2 candidates, with a decent filter.
        assert!(pdm.passes[1].counted_candidates < cd.passes[1].counted_candidates);
    }
}

#[test]
fn pdm_prunes_more_with_more_buckets() {
    let dataset = quest(500, 150, 207);
    let params = ParallelParams::with_min_support(0.015).max_k(2);
    let miner = ParallelMiner::new(4);
    let counted = |buckets: usize| {
        miner
            .mine(
                Algorithm::Pdm {
                    buckets,
                    filter_passes: 1,
                },
                &dataset,
                &params,
            )
            .passes[1]
            .counted_candidates
    };
    let coarse = counted(64);
    let fine = counted(1 << 16);
    assert!(
        fine <= coarse,
        "finer buckets cannot prune less: {fine} vs {coarse}"
    );
}
