//! Cross-backend equivalence of the [`CandidateCounter`] seam: the hash
//! tree, the candidate trie, the vertical (tidlist) counter, and
//! brute-force subset containment must agree exactly — on full counts,
//! under ownership filters, and end-to-end through every parallel
//! formulation on both the simulated and the native execution backend.

use armine::core::binpack::partition_by_first_item;
use armine::core::counter::CounterBackend;
use armine::core::hashtree::{HashTreeParams, OwnershipFilter};
use armine::core::rules::generate_rules;
use armine::core::{Item, ItemSet, Transaction};
use armine::datagen::QuestParams;
use armine::mpsim::ExecBackend;
use armine::parallel::{Algorithm, ParallelMiner, ParallelParams};
use proptest::prelude::*;

/// Strategy: a transaction as a set of item ids below `universe`.
fn arb_transaction(universe: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..universe, 0..=max_len).prop_map(|s| s.into_iter().collect())
}

/// Strategy: a sorted candidate itemset of exactly `k` distinct items.
fn arb_candidate(universe: u32, k: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..universe, k).prop_map(|s| s.into_iter().collect())
}

fn to_transactions(raw: &[Vec<u32>]) -> Vec<Transaction> {
    raw.iter()
        .enumerate()
        .map(|(i, ids)| Transaction::new(i as u64, ids.iter().map(|&x| Item(x)).collect()))
        .collect()
}

fn to_itemsets(raw: &[Vec<u32>]) -> Vec<ItemSet> {
    let mut sets: Vec<ItemSet> = raw
        .iter()
        .map(|ids| ItemSet::new(ids.iter().map(|&x| Item(x)).collect()))
        .collect();
    sets.sort();
    sets.dedup();
    sets
}

/// The reference semantics both backends must implement: candidate `c` is
/// counted in `t` iff `c ⊆ t` and the filter admits the walk that reaches
/// `c` — its first item at the root, its second at depth one.
fn brute_force(
    candidates: &[ItemSet],
    transactions: &[Transaction],
    filter: &OwnershipFilter,
) -> Vec<u64> {
    candidates
        .iter()
        .map(|c| {
            let first = c.first().unwrap();
            if !filter.allows_root(first) {
                return 0;
            }
            if c.len() >= 2 && !filter.allows_second(first, c.items()[1]) {
                return 0;
            }
            transactions.iter().filter(|t| t.contains_set(c)).count() as u64
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every backend produces the identical count vector and frequent
    /// level as brute-force subset containment, unfiltered.
    #[test]
    fn backends_equal_brute_force_unfiltered(
        raw_cands in prop::collection::vec(arb_candidate(20, 3), 1..40),
        raw_txs in prop::collection::vec(arb_transaction(20, 10), 0..40),
        min_count in 1u64..4,
    ) {
        let cands = to_itemsets(&raw_cands);
        let txs = to_transactions(&raw_txs);
        let filter = OwnershipFilter::all();
        let want = brute_force(&cands, &txs, &filter);
        let mut levels = Vec::new();
        for backend in CounterBackend::ALL {
            let mut counter = backend.build(3, HashTreeParams::default(), cands.clone());
            counter.count_all(&txs, &filter);
            prop_assert_eq!(
                counter.count_vector(), want.clone(), "backend {}", backend.name()
            );
            for (c, w) in cands.iter().zip(&want) {
                prop_assert_eq!(counter.count_of(c), Some(*w), "{}", c);
            }
            levels.push(counter.frequent(min_count));
        }
        for (backend, level) in CounterBackend::ALL.iter().zip(&levels).skip(1) {
            prop_assert_eq!(
                &levels[0], level, "frequent levels diverge on {}", backend.name()
            );
        }
    }

    /// Under a first-item partition, each part's filtered count is exact
    /// on both backends, and the union of frequent levels across parts
    /// equals the serial (unpartitioned) frequent level.
    #[test]
    fn backends_equal_brute_force_partitioned(
        raw_cands in prop::collection::vec(arb_candidate(16, 2), 1..30),
        raw_txs in prop::collection::vec(arb_transaction(16, 8), 0..30),
        procs in 2usize..5,
        min_count in 1u64..3,
    ) {
        let cands = to_itemsets(&raw_cands);
        let txs = to_transactions(&raw_txs);
        let part = partition_by_first_item(&cands, 16, &vec![1.0; procs]);
        let mut serial = CounterBackend::HashTree.build(2, HashTreeParams::default(), cands.clone());
        serial.count_all(&txs, &OwnershipFilter::all());
        let mut want_union = serial.frequent(min_count);
        want_union.sort();
        let mut unions = Vec::new();
        for backend in CounterBackend::ALL {
            let mut union = Vec::new();
            for (mine, filter) in part.parts.iter().zip(&part.filters) {
                let mut counter = backend.build(2, HashTreeParams::default(), mine.clone());
                counter.count_all(&txs, filter);
                let want = brute_force(mine, &txs, filter);
                prop_assert_eq!(
                    counter.count_vector(), want, "backend {}", backend.name()
                );
                union.extend(counter.frequent(min_count));
            }
            union.sort();
            prop_assert_eq!(&union, &want_union, "backend {}", backend.name());
            unions.push(union);
        }
        for (backend, union) in CounterBackend::ALL.iter().zip(&unions).skip(1) {
            prop_assert_eq!(&unions[0], union, "union diverges on {}", backend.name());
        }
    }
}

/// Every parallel formulation mines the identical frequent itemsets — and
/// therefore identical association rules — whichever counting backend the
/// [`ParallelParams::counter`] knob selects, on both the simulated and the
/// native (wall-clock) execution backend.
#[test]
fn all_formulations_agree_across_backends() {
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(300)
        .num_items(80)
        .num_patterns(30)
        .seed(515)
        .generate();
    let algorithms = [
        Algorithm::Cd,
        Algorithm::Npa,
        Algorithm::Dd,
        Algorithm::DdComm,
        Algorithm::Idd,
        Algorithm::IddSingleSource,
        Algorithm::Hd { group_threshold: 8 },
        Algorithm::Hpa { eld_permille: 100 },
        Algorithm::Pdm {
            buckets: 1 << 10,
            filter_passes: 1,
        },
    ];
    for exec in [ExecBackend::Sim, ExecBackend::Native] {
        let miner = ParallelMiner::new(4).backend(exec);
        for algorithm in algorithms {
            let run = |backend| {
                let params = ParallelParams::with_min_support_count(9)
                    .page_size(40)
                    .max_k(4)
                    .counter(backend);
                miner.mine(algorithm, &dataset, &params)
            };
            let levels = |r: &armine::parallel::ParallelRun| -> Vec<(ItemSet, u64)> {
                r.frequent.iter().map(|(s, c)| (s.clone(), c)).collect()
            };
            let tree = run(CounterBackend::HashTree);
            for counter in [CounterBackend::Trie, CounterBackend::Vertical] {
                let other = run(counter);
                assert_eq!(
                    levels(&tree),
                    levels(&other),
                    "{algorithm:?} lattice ({exec:?}, {})",
                    counter.name()
                );
                assert_eq!(
                    generate_rules(&tree.frequent, 0.7),
                    generate_rules(&other.frequent, 0.7),
                    "{algorithm:?} rules ({exec:?}, {})",
                    counter.name()
                );
            }
        }
    }
}
