//! Fault injection end-to-end: every recoverable fault plan — message
//! drops, stragglers, and up to one rank crash — must leave the mined
//! frequent itemsets and association rules **bit-identical** to a
//! fault-free run, for every formulation, on **both** execution backends
//! (virtual-time injection under sim, real thread deaths and wall-clock
//! timers under native); and on sim the same plan must reproduce the
//! same virtual clocks and fault counters.

use armine::mpsim::{CrashPoint, ExecBackend, FaultPlan};
use armine::parallel::{Algorithm, FaultRunError, ParallelMiner, ParallelParams};
use armine_core::ItemSet;
use armine_datagen::QuestParams;
use proptest::prelude::*;

const PROCS: usize = 4;

const ALGOS: [Algorithm; 9] = [
    Algorithm::Cd,
    Algorithm::Dd,
    Algorithm::DdComm,
    Algorithm::Idd,
    Algorithm::Hd {
        group_threshold: 30,
    },
    Algorithm::Pdm {
        buckets: 256,
        filter_passes: 1,
    },
    Algorithm::Npa,
    Algorithm::Hpa { eld_permille: 200 },
    Algorithm::IddSingleSource,
];

fn dataset() -> armine_core::Dataset {
    QuestParams::paper_t15_i6()
        .num_transactions(160)
        .num_items(50)
        .num_patterns(20)
        .seed(23)
        .generate()
}

fn params() -> ParallelParams {
    ParallelParams::with_min_support_count(6)
        .page_size(30)
        .max_k(3)
}

fn itemsets(run: &armine::parallel::ParallelRun) -> Vec<(ItemSet, u64)> {
    run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect()
}

/// Builds a recoverable fault plan from generated primitives: drops, up
/// to two stragglers, and at most one crash (`crash_choice` encodes
/// none / crash-at-pass / crash-at-time and the victim rank).
fn build_plan(
    seed: u64,
    drop_permille: u32,
    straggler_ranks: &std::collections::BTreeSet<usize>,
    straggler_tenths: u32,
    crash_choice: usize,
    crash_pass: usize,
    crash_time_micros: u64,
) -> FaultPlan {
    let mut plan = FaultPlan::new()
        .seed(seed)
        .drop_rate(f64::from(drop_permille) / 1000.0);
    for &rank in straggler_ranks {
        plan = plan.slowdown(rank, f64::from(straggler_tenths) / 10.0);
    }
    if (1..=PROCS).contains(&crash_choice) {
        plan = plan.crash(crash_choice - 1, CrashPoint::AtPass(crash_pass));
    } else if crash_choice > PROCS {
        plan = plan.crash(
            crash_choice - 1 - PROCS,
            CrashPoint::AtTime(crash_time_micros as f64 * 1e-6),
        );
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The golden-fingerprint guarantee: any recoverable plan yields the
    /// fault-free lattice, for every formulation.
    #[test]
    fn recoverable_plans_preserve_the_lattice(
        seed in 0u64..1_000_000,
        drop_permille in 0u32..250,
        straggler_ranks in prop::collection::btree_set(0usize..PROCS, 0..=2),
        straggler_tenths in 12u32..30,
        crash_choice in 0usize..=2 * PROCS,
        crash_pass in 2usize..=3,
        crash_time_micros in 200u64..20_000,
    ) {
        let plan = build_plan(
            seed,
            drop_permille,
            &straggler_ranks,
            straggler_tenths,
            crash_choice,
            crash_pass,
            crash_time_micros,
        );
        let dataset = dataset();
        let params = params();
        let miner = ParallelMiner::new(PROCS);
        for algo in ALGOS {
            let clean = miner.mine(algo, &dataset, &params);
            let faulted = miner
                .mine_with_faults(algo, &dataset, &params, Some(&plan))
                .unwrap_or_else(|e| panic!("{} under {plan}: {e}", algo.name()));
            prop_assert_eq!(
                itemsets(&faulted),
                itemsets(&clean),
                "{} diverged under plan:\n{}",
                algo.name(),
                plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The same guarantee on the native backend, where the plan's faults
    /// are real: crashes kill worker threads, stragglers sleep, drops
    /// retransmit on wall-clock RTO timers, and dead peers are detected
    /// by `detect_timeout` deadlines — so this proptest completing at all
    /// is the no-hang property, and the lattice check is the recovery
    /// property. Fewer cases than the sim sweep because detector waits
    /// burn real milliseconds here.
    #[test]
    fn recoverable_plans_preserve_the_lattice_natively(
        seed in 0u64..1_000_000,
        drop_permille in 0u32..120,
        straggler_ranks in prop::collection::btree_set(0usize..PROCS, 0..=1),
        straggler_tenths in 12u32..25,
        crash_choice in 0usize..=2 * PROCS,
        crash_pass in 2usize..=3,
        crash_time_micros in 200u64..5_000,
    ) {
        // Tight wall-clock timers keep real retransmit backoffs and
        // failure-detector waits in the microsecond-to-millisecond range.
        let plan = build_plan(
            seed,
            drop_permille,
            &straggler_ranks,
            straggler_tenths,
            crash_choice,
            crash_pass,
            crash_time_micros,
        )
        .rto(5e-5)
        .detect_timeout(2e-3);
        let dataset = dataset();
        let params = params();
        let sim = ParallelMiner::new(PROCS);
        let native = ParallelMiner::new(PROCS).backend(ExecBackend::Native);
        for algo in ALGOS {
            let clean = sim.mine(algo, &dataset, &params);
            let faulted = native
                .mine_with_faults(algo, &dataset, &params, Some(&plan))
                .unwrap_or_else(|e| panic!("native {} under {plan}: {e}", algo.name()));
            prop_assert_eq!(
                itemsets(&faulted),
                itemsets(&clean),
                "native {} diverged under plan:\n{}",
                algo.name(),
                plan
            );
        }
    }
}

/// The acceptance scenario spelled out in the issue: message drops, a 2×
/// straggler, and one mid-pass rank crash — completed run, itemsets and
/// rules identical to fault-free, for every recoverable algorithm.
#[test]
fn drops_straggler_and_midpass_crash_reproduce_fault_free_results() {
    let dataset = dataset();
    let params = params();
    let miner = ParallelMiner::new(PROCS);
    let plan = FaultPlan::new()
        .seed(42)
        .drop_rate(0.05)
        .slowdown(0, 2.0)
        .slowdown(3, 2.0)
        .crash(1, CrashPoint::AtTime(0.0015));
    for algo in ALGOS {
        let clean = miner.mine(algo, &dataset, &params);
        let faulted = miner
            .mine_with_faults(algo, &dataset, &params, Some(&plan))
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        assert_eq!(itemsets(&faulted), itemsets(&clean), "{}", algo.name());
        assert!(
            faulted.total_recoveries() > 0,
            "{} never committed the recovery",
            algo.name()
        );
        assert!(faulted.total_retransmits() > 0, "{}", algo.name());
        // Rule generation runs on the recovered lattice: identical rules.
        let clean_rules = miner.generate_rules(&clean.frequent, 0.5);
        let faulted_rules = miner.generate_rules(&faulted.frequent, 0.5);
        assert_eq!(
            faulted_rules.rules.len(),
            clean_rules.rules.len(),
            "{}",
            algo.name()
        );
        assert_eq!(faulted_rules.rules, clean_rules.rules, "{}", algo.name());
    }
}

/// Same seed + same plan ⇒ bit-identical virtual clocks and fault
/// counters, rank by rank.
#[test]
fn faulted_runs_are_bit_deterministic() {
    let dataset = dataset();
    let params = params();
    let miner = ParallelMiner::new(PROCS);
    let plan = FaultPlan::new()
        .seed(7)
        .drop_rate(0.1)
        .slowdown(2, 1.7)
        .crash(3, CrashPoint::AtPass(2));
    let a = miner
        .mine_with_faults(Algorithm::Idd, &dataset, &params, Some(&plan))
        .unwrap();
    let b = miner
        .mine_with_faults(Algorithm::Idd, &dataset, &params, Some(&plan))
        .unwrap();
    assert_eq!(
        a.response_time.to_bits(),
        b.response_time.to_bits(),
        "response time must be bit-identical"
    );
    assert_eq!(a.ranks, b.ranks, "per-rank stats must be bit-identical");
    assert!(a.total_retransmits() > 0 && a.total_timeouts() > 0);
}

/// An unrecoverable plan (every rank crashes) errors cleanly instead of
/// hanging or panicking.
#[test]
fn unrecoverable_plan_errors_cleanly() {
    let mut plan = FaultPlan::new();
    for rank in 0..PROCS {
        plan = plan.crash(rank, CrashPoint::AtTime(0.0005 * (rank + 1) as f64));
    }
    let err = ParallelMiner::new(PROCS)
        .mine_with_faults(
            Algorithm::Hd {
                group_threshold: 30,
            },
            &dataset(),
            &params(),
            Some(&plan),
        )
        .unwrap_err();
    assert_eq!(err, FaultRunError::AllRanksCrashed);
}
