//! Metrics-registry conformance: every parallel run's labeled snapshot
//! must reconcile **exactly** — bit-for-bit on floats, count-for-count
//! on integers — with the legacy ledgers it is a view over
//! (`RankStats`, per-pass `CounterStats`, `WallTimings`, the run
//! scalars), across all nine formulations and both execution backends.
//!
//! The suite also pins the label discipline: every series carries the
//! run's base labels (`algorithm`, `backend`, `counter`, `fault_plan`,
//! `procs`), uses only canonical label keys, and the whole snapshot
//! survives a JSON round-trip through the schema-versioned exporter.

use armine::core::counter::CounterBackend;
use armine::core::Dataset;
use armine::datagen::QuestParams;
use armine::metrics::json::BenchDocument;
use armine::metrics::{names, LABEL_KEYS};
use armine::mpsim::{imbalance, CrashPoint, ExecBackend, FaultPlan};
use armine::parallel::{Algorithm, ParallelMiner, ParallelParams, ParallelRun};
use proptest::prelude::*;

const ALL_ALGORITHMS: [Algorithm; 9] = [
    Algorithm::Cd,
    Algorithm::Npa,
    Algorithm::Dd,
    Algorithm::DdComm,
    Algorithm::Idd,
    Algorithm::IddSingleSource,
    Algorithm::Hd { group_threshold: 8 },
    Algorithm::Hpa { eld_permille: 100 },
    Algorithm::Pdm {
        buckets: 1 << 10,
        filter_passes: 1,
    },
];

fn quest(n: usize, items: u32, patterns: usize, seed: u64) -> Dataset {
    QuestParams::paper_t15_i6()
        .num_transactions(n)
        .num_items(items)
        .num_patterns(patterns)
        .seed(seed)
        .generate()
}

/// Reconciles one run's snapshot against its legacy ledgers. Exact
/// equality throughout: counters are `u64`s, gauges are compared by
/// `f64::to_bits`.
fn assert_conforms(
    run: &ParallelRun,
    procs: usize,
    backend: ExecBackend,
    counter: CounterBackend,
    fault_plan: &str,
) {
    let snap = &run.metrics;
    assert!(!snap.is_empty(), "run produced an empty snapshot");

    // Label discipline: base labels on every series, canonical keys only.
    for series in snap.series() {
        assert_eq!(series.labels.get("algorithm"), Some(run.algorithm));
        assert_eq!(series.labels.get("procs"), Some(procs.to_string().as_str()));
        assert_eq!(series.labels.get("backend"), Some(backend.name()));
        assert_eq!(series.labels.get("counter"), Some(counter.name()));
        assert_eq!(series.labels.get("fault_plan"), Some(fault_plan));
        for (key, _) in series.labels.iter() {
            assert!(LABEL_KEYS.contains(&key), "non-canonical label {key:?}");
        }
    }

    // Per-rank RankStats — every rank, crashed ones included.
    assert_eq!(run.ranks.len(), procs);
    for (rank, rs) in run.ranks.iter().enumerate() {
        let r = rank.to_string();
        let gauge = |name: &str| {
            snap.gauge(name, &[("rank", &r)])
                .unwrap_or_else(|| panic!("missing {name} for rank {r}"))
        };
        for (field, seconds) in rs.named_times() {
            assert_eq!(
                gauge(&names::rank_time(field)).to_bits(),
                seconds.to_bits(),
                "rank {r} time {field}"
            );
        }
        for (field, count) in rs.named_counters() {
            assert_eq!(
                snap.counter_sum(&names::rank_counter(field), &[("rank", &r)]),
                count,
                "rank {r} counter {field}"
            );
        }
    }

    // The rank-clock histogram covers every rank and brackets the ledger.
    let clocks = snap
        .histogram(names::RUN_RANK_CLOCK_SECONDS, &[])
        .expect("rank-clock histogram missing");
    assert_eq!(clocks.count, procs as u64);
    let max_clock = run.ranks.iter().map(|r| r.clock).fold(f64::MIN, f64::max);
    assert_eq!(clocks.max.to_bits(), max_clock.to_bits());

    // Per-pass aggregates and the counting ledger.
    assert!(!run.passes.is_empty());
    for p in &run.passes {
        let k = p.k.to_string();
        let at = [("pass", k.as_str())];
        assert_eq!(
            snap.counter_sum(names::PASS_CANDIDATES, &at),
            p.candidates as u64
        );
        assert_eq!(
            snap.counter_sum(names::PASS_COUNTED_CANDIDATES, &at),
            p.counted_candidates as u64
        );
        assert_eq!(
            snap.counter_sum(names::PASS_FREQUENT, &at),
            p.frequent as u64
        );
        assert_eq!(
            snap.counter_sum(names::PASS_DB_SCANS, &at),
            p.db_scans as u64
        );
        assert_eq!(
            snap.gauge(names::PASS_TIME_SECONDS, &at).unwrap().to_bits(),
            p.time.to_bits()
        );
        assert_eq!(
            snap.gauge(names::PASS_CANDIDATE_IMBALANCE, &at)
                .unwrap()
                .to_bits(),
            p.candidate_imbalance.to_bits()
        );
        // The per-(rank, pass) counting counters sum to the pass's merged
        // tree stats, field for field.
        for (field, value) in p.tree_stats.named_fields() {
            assert_eq!(
                snap.counter_sum(&names::counting(field), &at),
                value,
                "pass {k} counting field {field}"
            );
        }
    }

    // Whole-run scalars and the derived accessors.
    assert_eq!(
        snap.gauge(names::RUN_RESPONSE_SECONDS, &[])
            .unwrap()
            .to_bits(),
        run.response_time.to_bits()
    );
    assert_eq!(
        snap.counter_sum(names::RUN_FREQUENT, &[]),
        run.frequent.len() as u64
    );
    let legacy_bytes: u64 = run.ranks.iter().map(|r| r.bytes_sent).sum();
    assert_eq!(run.total_bytes(), legacy_bytes);
    let legacy_imbalance = imbalance(run.ranks.iter().map(|r| r.busy));
    assert_eq!(
        run.compute_imbalance().to_bits(),
        legacy_imbalance.to_bits()
    );

    // Wall-clock gauges exist exactly when the native backend ran.
    if matches!(backend, ExecBackend::Native) {
        assert_eq!(run.wall.len(), procs);
        for (rank, wt) in run.wall.iter().enumerate() {
            let r = rank.to_string();
            for (field, seconds) in wt.named_times() {
                assert_eq!(
                    snap.gauge(&names::wall_time(field), &[("rank", &r)])
                        .unwrap()
                        .to_bits(),
                    seconds.to_bits(),
                    "rank {r} wall {field}"
                );
            }
        }
    } else {
        assert!(snap
            .gauge(&names::wall_time("total"), &[("rank", "0")])
            .is_none());
    }

    // The snapshot survives the schema-versioned JSON exporter exactly.
    let doc = BenchDocument::new("conformance", snap.clone());
    let parsed = BenchDocument::parse(&doc.to_json()).expect("exporter emitted invalid JSON");
    assert_eq!(parsed, doc);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random Quest datasets, all nine formulations, both backends: the
    /// snapshot is an exact view over the legacy ledgers.
    #[test]
    fn snapshots_reconcile_with_legacy_views(
        seed in 0u64..10_000,
        n in 120usize..300,
        procs in 2usize..5,
    ) {
        let dataset = quest(n, 60, 20, seed);
        let params = ParallelParams::with_min_support_count((n / 25) as u64)
            .page_size(40)
            .max_k(4);
        for algorithm in ALL_ALGORITHMS {
            for backend in ExecBackend::ALL {
                let run = ParallelMiner::new(procs)
                    .backend(backend)
                    .mine(algorithm, &dataset, &params);
                assert_conforms(&run, procs, backend, CounterBackend::HashTree, "none");
            }
        }
    }
}

/// All three counting backends record the same series set; the `counter`
/// base label distinguishes the runs, and only the vertical backend's
/// intersection-word ledger is non-zero.
#[test]
fn counting_backends_conform_and_are_distinguished_by_label() {
    let dataset = quest(250, 60, 20, 99);
    for counter in CounterBackend::ALL {
        let params = ParallelParams::with_min_support_count(10)
            .page_size(40)
            .max_k(3)
            .counter(counter);
        let run = ParallelMiner::new(4).mine(Algorithm::Cd, &dataset, &params);
        assert_conforms(&run, 4, ExecBackend::Sim, counter, "none");
        let words = run
            .metrics
            .counter_sum(&names::counting("intersection_words"), &[]);
        if matches!(counter, CounterBackend::Vertical) {
            assert!(words > 0, "vertical backend recorded no intersections");
        } else {
            assert_eq!(
                words,
                0,
                "{} backend recorded intersections",
                counter.name()
            );
        }
    }
}

/// A faulted run (drops + a mid-run crash) still reconciles exactly on
/// both backends, carries the plan's canonical label on every series,
/// and its fault counters agree with the legacy accessors.
#[test]
fn faulted_runs_conform_and_carry_the_plan_label() {
    let dataset = quest(300, 60, 20, 77);
    let params = ParallelParams::with_min_support_count(12)
        .page_size(40)
        .max_k(3);
    let plan = FaultPlan::new()
        .seed(5)
        .drop_rate(0.02)
        .crash(1, CrashPoint::AtPass(2));
    for backend in ExecBackend::ALL {
        let run = ParallelMiner::new(4)
            .backend(backend)
            .mine_with_faults(Algorithm::Cd, &dataset, &params, Some(&plan))
            .expect("the crash plan is recoverable");
        assert_conforms(&run, 4, backend, CounterBackend::HashTree, &plan.label());
        assert!(
            run.total_recoveries() > 0,
            "{backend:?} run never recovered"
        );
        assert_eq!(
            run.metrics
                .counter_sum(&names::rank_counter("recoveries"), &[]),
            run.total_recoveries()
        );
        assert_eq!(
            run.metrics
                .counter_sum(&names::rank_counter("retransmits"), &[]),
            run.total_retransmits()
        );
        assert_eq!(
            run.metrics
                .counter_sum(&names::rank_counter("timeouts"), &[]),
            run.total_timeouts()
        );
    }
}
