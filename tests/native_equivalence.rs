//! Native-vs-sim backend equivalence: the execution backend changes how
//! time is accounted, never what is mined. Message matching is by
//! `(scope, src, tag)` — not arrival time — so the same pass drivers must
//! produce identical frequent itemsets and rules on both backends, and
//! two native runs must agree with each other despite real scheduling
//! nondeterminism.

use armine::core::rules::generate_rules;
use armine::core::{Dataset, ItemSet};
use armine::datagen::QuestParams;
use armine::mpsim::ExecBackend;
use armine::parallel::{Algorithm, FaultRunError, ParallelMiner, ParallelParams, ParallelRun};
use proptest::prelude::*;

const ALL_ALGORITHMS: [Algorithm; 9] = [
    Algorithm::Cd,
    Algorithm::Npa,
    Algorithm::Dd,
    Algorithm::DdComm,
    Algorithm::Idd,
    Algorithm::IddSingleSource,
    Algorithm::Hd { group_threshold: 8 },
    Algorithm::Hpa { eld_permille: 100 },
    Algorithm::Pdm {
        buckets: 1 << 10,
        filter_passes: 1,
    },
];

fn quest(n: usize, items: u32, patterns: usize, seed: u64) -> Dataset {
    QuestParams::paper_t15_i6()
        .num_transactions(n)
        .num_items(items)
        .num_patterns(patterns)
        .seed(seed)
        .generate()
}

fn lattice(run: &ParallelRun) -> Vec<(ItemSet, u64)> {
    run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every formulation mines the identical lattice and rules on both
    /// backends, across random Quest datasets and processor counts.
    #[test]
    fn backends_mine_identical_itemsets_and_rules(
        seed in 0u64..10_000,
        n in 150usize..400,
        procs in 2usize..5,
    ) {
        let dataset = quest(n, 70, 25, seed);
        let params = ParallelParams::with_min_support_count((n / 30) as u64)
            .page_size(40)
            .max_k(4);
        for algorithm in ALL_ALGORITHMS {
            let run_on = |backend| {
                ParallelMiner::new(procs)
                    .backend(backend)
                    .mine(algorithm, &dataset, &params)
            };
            let sim = run_on(ExecBackend::Sim);
            let native = run_on(ExecBackend::Native);
            prop_assert_eq!(
                lattice(&sim),
                lattice(&native),
                "{} lattice diverged across backends",
                algorithm.name()
            );
            prop_assert_eq!(
                generate_rules(&sim.frequent, 0.7),
                generate_rules(&native.frequent, 0.7),
                "{} rules diverged across backends",
                algorithm.name()
            );
        }
    }
}

/// Two native runs of the same configuration agree exactly — real thread
/// scheduling must not leak into the mined output.
#[test]
fn native_runs_are_deterministic() {
    let dataset = quest(400, 90, 30, 515);
    let params = ParallelParams::with_min_support_count(10)
        .page_size(50)
        .max_k(4);
    for algorithm in ALL_ALGORITHMS {
        let run_once = || {
            ParallelMiner::new(4)
                .backend(ExecBackend::Native)
                .mine(algorithm, &dataset, &params)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(lattice(&a), lattice(&b), "{} itemsets", algorithm.name());
        assert_eq!(
            generate_rules(&a.frequent, 0.6),
            generate_rules(&b.frequent, 0.6),
            "{} rules",
            algorithm.name()
        );
    }
}

/// Native runs populate per-rank wall timings; sim runs don't.
#[test]
fn wall_timings_populated_only_on_native() {
    let dataset = quest(300, 70, 25, 99);
    let params = ParallelParams::with_min_support_count(9).max_k(3);
    let procs = 4;
    let native = ParallelMiner::new(procs).backend(ExecBackend::Native).mine(
        Algorithm::Cd,
        &dataset,
        &params,
    );
    assert_eq!(native.wall.len(), procs);
    for (rank, w) in native.wall.iter().enumerate() {
        assert!(w.total > 0.0, "rank {rank} total");
        assert!(
            w.counting + w.exchange + w.io <= w.total + 1e-9,
            "rank {rank}: categories exceed the total"
        );
        assert!(!w.pass_starts.is_empty(), "rank {rank} saw no passes");
        let durations = w.pass_durations();
        let sum: f64 = durations.iter().map(|(_, d)| d).sum();
        let first_start = w.pass_starts[0].1;
        assert!(
            (sum - (w.total - first_start)).abs() < 1e-9,
            "rank {rank}: pass durations must partition the run"
        );
    }
    // Measured response time covers the slowest rank.
    let slowest = native.wall.iter().map(|w| w.total).fold(0.0, f64::max);
    assert!(native.response_time >= slowest - 1e-9);
    let sim = ParallelMiner::new(procs).mine(Algorithm::Cd, &dataset, &params);
    assert!(sim.wall.is_empty(), "sim runs must not report wall timings");
}

/// Fault plans run for real on the native backend: transient faults
/// (drops, delays, stragglers) cost wall time — retransmits really back
/// off, delayed messages really wait — but never change what is mined.
#[test]
fn native_backend_runs_transient_fault_plans_for_real() {
    use armine::mpsim::FaultPlan;
    let dataset = quest(200, 50, 15, 3);
    let params = ParallelParams::with_min_support_count(6).max_k(3);
    let plan = FaultPlan::new()
        .seed(1)
        .drop_rate(0.15)
        .rto(5e-5)
        .slowdown(1, 2.0);
    let clean = ParallelMiner::new(3).mine(Algorithm::Cd, &dataset, &params);
    let faulted = ParallelMiner::new(3)
        .backend(ExecBackend::Native)
        .mine_with_faults(Algorithm::Cd, &dataset, &params, Some(&plan))
        .expect("transient faults never kill a run");
    assert_eq!(lattice(&faulted), lattice(&clean));
    assert!(faulted.total_retransmits() > 0, "drops must really resend");
    assert_eq!(faulted.wall.len(), 3, "wall timings survive faulted runs");
}

/// A plan out of range for the rank count is rejected up front on either
/// backend, naming the offending rank.
#[test]
fn out_of_range_plans_are_rejected_on_both_backends() {
    use armine::mpsim::{CrashPoint, FaultPlan};
    let dataset = quest(120, 40, 10, 3);
    let params = ParallelParams::with_min_support_count(5).max_k(3);
    let plan = FaultPlan::new().crash(7, CrashPoint::AtPass(2));
    for backend in ExecBackend::ALL {
        let err = ParallelMiner::new(2)
            .backend(backend)
            .mine_with_faults(Algorithm::Cd, &dataset, &params, Some(&plan))
            .unwrap_err();
        assert!(
            matches!(
                err,
                FaultRunError::InvalidPlan(ref why)
                    if why.contains("rank 7") && why.contains("2 ranks")
            ),
            "{backend}: {err}"
        );
    }
}
