//! Machine profiles: the per-operation constants of the cost model.
//!
//! Communication constants come from the paper's Section V measurements
//! (T3E: 303 MB/s effective bandwidth for 16 KB messages, 16 µs effective
//! startup; SP2: 110 MB/s peak HPS). Computation constants are calibrated
//! to plausible per-operation costs on the respective CPUs (600 MHz Alpha
//! EV5 vs 66.7 MHz Power2); only their *ratios* to the communication
//! constants matter for the shape of the curves.

/// Per-operation time constants (seconds) of a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Message startup latency `t_s`.
    pub t_s: f64,
    /// Per-byte link time `t_w` (1 / bandwidth).
    pub t_w: f64,
    /// Additional per-hop latency on multi-hop routes.
    pub t_hop: f64,
    /// Per-hop bandwidth serialization factor in [0, 1]: 0 models
    /// cut-through (wormhole) routing where distance costs only latency;
    /// 1 models store-and-forward where every hop re-pays the full
    /// transfer time. Realistic contention on loaded networks sits in
    /// between.
    pub store_forward: f64,
    /// Hash-tree descent cost per traversal step (`t_travers`).
    pub t_travers: f64,
    /// Per-candidate comparison cost at a leaf.
    pub t_check: f64,
    /// Fixed overhead per distinct leaf visit.
    pub t_leaf: f64,
    /// Per-candidate hash-tree insertion cost (tree construction).
    pub t_insert: f64,
    /// Per-candidate `apriori_gen` cost (join + prune, paid on every
    /// processor regardless of algorithm — candidates are regenerated
    /// locally).
    pub t_gen: f64,
    /// Per-transaction bookkeeping cost in a database scan.
    pub t_trans: f64,
    /// Per-`u64`-word cost of a bitmap AND/popcount step — the vertical
    /// counting backend's dominant term. Roughly one ALU op plus the
    /// streaming memory access; the horizontal backends never accrue it.
    pub t_word: f64,
    /// Per-byte cost of (re-)reading the database from disk; 0 when the
    /// database is memory-resident (the paper's T3E setup simulates I/O).
    pub io_per_byte: f64,
}

impl MachineProfile {
    /// The paper's Cray T3E: 600 MHz Alpha EV5 nodes, 3-D torus,
    /// 303 MB/s effective bandwidth, 16 µs startup, memory-resident data.
    pub fn cray_t3e() -> Self {
        MachineProfile {
            name: "Cray T3E",
            t_s: 16e-6,
            t_w: 1.0 / 303e6,
            t_hop: 0.1e-6,
            store_forward: 0.05,
            t_travers: 60e-9,
            t_check: 80e-9,
            t_leaf: 120e-9,
            t_insert: 1.2e-6,
            t_gen: 1.2e-6,
            t_trans: 200e-9,
            t_word: 8e-9,
            io_per_byte: 0.0,
        }
    }

    /// The paper's IBM SP2: 66.7 MHz Power2 nodes (≈9× slower per
    /// operation), HPS switch at ~35 MB/s effective, disk-resident data.
    pub fn ibm_sp2() -> Self {
        MachineProfile {
            name: "IBM SP2",
            t_s: 40e-6,
            t_w: 1.0 / 35e6,
            t_hop: 0.5e-6,
            store_forward: 0.0,
            t_travers: 540e-9,
            t_check: 720e-9,
            t_leaf: 1.1e-6,
            t_insert: 10.8e-6,
            t_gen: 10.8e-6,
            t_trans: 1.8e-6,
            t_word: 72e-9,
            io_per_byte: 1.0 / 20e6,
        }
    }

    /// A zero-latency, infinite-bandwidth machine: useful in tests to
    /// isolate computation costs (communication becomes free).
    pub fn ideal() -> Self {
        MachineProfile {
            name: "ideal",
            t_s: 0.0,
            t_w: 0.0,
            t_hop: 0.0,
            store_forward: 0.0,
            t_travers: 60e-9,
            t_check: 80e-9,
            t_leaf: 120e-9,
            t_insert: 1.2e-6,
            t_gen: 1.2e-6,
            t_trans: 200e-9,
            t_word: 8e-9,
            io_per_byte: 0.0,
        }
    }

    /// Effective bandwidth in MB/s (for reports).
    pub fn bandwidth_mb_s(&self) -> f64 {
        if self.t_w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.t_w / 1e6
        }
    }

    /// Virtual seconds one batch of candidate-counting work costs on this
    /// machine.
    ///
    /// The term order is load-bearing: it reproduces, addition for
    /// addition, the expression the hash-tree charging path has always
    /// used, so `f64` rounding — and therefore every virtual-time golden
    /// fingerprint — is bit-identical to the pre-seam code. The
    /// `intersection_words` term is appended **last** for the same
    /// reason: the horizontal backends report zero words, and adding a
    /// trailing `+ 0.0` to a non-negative sum leaves its bit pattern
    /// untouched, so the default-backend goldens survive the vertical
    /// backend's arrival unchanged.
    pub fn counting_time(&self, work: &CountingWork) -> f64 {
        work.inserts as f64 * self.t_insert
            + work.transactions as f64 * self.t_trans
            + work.traversal_steps as f64 * self.t_travers
            + work.node_visits as f64 * self.t_leaf
            + work.candidate_checks as f64 * self.t_check
            + work.intersection_words as f64 * self.t_word
    }
}

/// One batch of candidate-counting work to charge to the virtual clock.
///
/// The simulator does not know (or care) which counting structure
/// produced these numbers — a hash tree's hash descents and a trie's
/// child-list matches both arrive as `traversal_steps`. The mining layer
/// converts its structure-specific stats into this ledger and calls
/// [`Comm::charge_counting`](crate::Comm::charge_counting).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingWork {
    /// Candidate insertions (construction work, `t_insert` units).
    pub inserts: u64,
    /// Transactions processed (`t_trans` units).
    pub transactions: u64,
    /// Descents into the structure (`t_travers` units).
    pub traversal_steps: u64,
    /// Distinct terminal-node visits (`t_leaf` units).
    pub node_visits: u64,
    /// Candidate-vs-transaction comparisons (`t_check` units).
    pub candidate_checks: u64,
    /// Bitmap words touched by AND/popcount intersections (`t_word`
    /// units) — only the vertical backend emits these.
    pub intersection_words: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3e_matches_paper_figures() {
        let m = MachineProfile::cray_t3e();
        assert!((m.bandwidth_mb_s() - 303.0).abs() < 1.0);
        assert!((m.t_s - 16e-6).abs() < 1e-12);
        assert_eq!(m.io_per_byte, 0.0, "T3E runs from memory buffers");
    }

    #[test]
    fn sp2_is_slower_everywhere() {
        let t3e = MachineProfile::cray_t3e();
        let sp2 = MachineProfile::ibm_sp2();
        assert!(sp2.t_w > t3e.t_w);
        assert!(sp2.t_travers > t3e.t_travers);
        assert!(sp2.io_per_byte > 0.0, "SP2 database is disk-resident");
    }

    #[test]
    fn ideal_communication_is_free() {
        let m = MachineProfile::ideal();
        assert_eq!(m.t_s + m.t_w + m.t_hop, 0.0);
        assert!(m.bandwidth_mb_s().is_infinite());
        assert!(m.t_travers > 0.0, "compute still costs");
    }

    #[test]
    fn counting_time_matches_handwritten_expression() {
        let m = MachineProfile::cray_t3e();
        let w = CountingWork {
            inserts: 3,
            transactions: 41,
            traversal_steps: 1009,
            node_visits: 127,
            candidate_checks: 511,
            intersection_words: 8191,
        };
        // Exactly the term order the charging path has always used —
        // compared through bits because that order is the contract.
        let by_hand = w.inserts as f64 * m.t_insert
            + w.transactions as f64 * m.t_trans
            + w.traversal_steps as f64 * m.t_travers
            + w.node_visits as f64 * m.t_leaf
            + w.candidate_checks as f64 * m.t_check
            + w.intersection_words as f64 * m.t_word;
        assert_eq!(m.counting_time(&w).to_bits(), by_hand.to_bits());
    }

    /// Horizontal backends report zero intersection words; the appended
    /// `+ 0.0` must leave the historical expression's bits untouched, or
    /// every golden fingerprint would shift.
    #[test]
    fn zero_intersection_words_preserve_historical_bits() {
        for m in [
            MachineProfile::cray_t3e(),
            MachineProfile::ibm_sp2(),
            MachineProfile::ideal(),
        ] {
            let w = CountingWork {
                inserts: 3,
                transactions: 41,
                traversal_steps: 1009,
                node_visits: 127,
                candidate_checks: 511,
                intersection_words: 0,
            };
            let historical = w.inserts as f64 * m.t_insert
                + w.transactions as f64 * m.t_trans
                + w.traversal_steps as f64 * m.t_travers
                + w.node_visits as f64 * m.t_leaf
                + w.candidate_checks as f64 * m.t_check;
            assert_eq!(
                m.counting_time(&w).to_bits(),
                historical.to_bits(),
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn counting_time_of_nothing_is_zero() {
        let m = MachineProfile::ibm_sp2();
        assert_eq!(m.counting_time(&CountingWork::default()), 0.0);
    }
}
