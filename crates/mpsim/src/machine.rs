//! Machine profiles: the per-operation constants of the cost model.
//!
//! Communication constants come from the paper's Section V measurements
//! (T3E: 303 MB/s effective bandwidth for 16 KB messages, 16 µs effective
//! startup; SP2: 110 MB/s peak HPS). Computation constants are calibrated
//! to plausible per-operation costs on the respective CPUs (600 MHz Alpha
//! EV5 vs 66.7 MHz Power2); only their *ratios* to the communication
//! constants matter for the shape of the curves.
//!
//! A [`ClusterProfile`] lifts the single profile to a whole (possibly
//! heterogeneous) machine: a base [`MachineProfile`] plus per-rank
//! relative `speed` factors, loadable from a small line-based text file
//! in the same spirit as [`crate::FaultPlan`]'s format:
//!
//! ```text
//! # 2 slow ranks on a T3E
//! machine = t3e
//! speed 3 = 0.5    # rank 3 runs at half speed
//! speed 7 = 0.25
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// Per-operation time constants (seconds) of a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Human-readable name for reports.
    pub name: String,
    /// Message startup latency `t_s`.
    pub t_s: f64,
    /// Per-byte link time `t_w` (1 / bandwidth).
    pub t_w: f64,
    /// Additional per-hop latency on multi-hop routes.
    pub t_hop: f64,
    /// Per-hop bandwidth serialization factor in [0, 1]: 0 models
    /// cut-through (wormhole) routing where distance costs only latency;
    /// 1 models store-and-forward where every hop re-pays the full
    /// transfer time. Realistic contention on loaded networks sits in
    /// between.
    pub store_forward: f64,
    /// Hash-tree descent cost per traversal step (`t_travers`).
    pub t_travers: f64,
    /// Per-candidate comparison cost at a leaf.
    pub t_check: f64,
    /// Fixed overhead per distinct leaf visit.
    pub t_leaf: f64,
    /// Per-candidate hash-tree insertion cost (tree construction).
    pub t_insert: f64,
    /// Per-candidate `apriori_gen` cost (join + prune, paid on every
    /// processor regardless of algorithm — candidates are regenerated
    /// locally).
    pub t_gen: f64,
    /// Per-transaction bookkeeping cost in a database scan.
    pub t_trans: f64,
    /// Per-`u64`-word cost of a bitmap AND/popcount step — the vertical
    /// counting backend's dominant term. Roughly one ALU op plus the
    /// streaming memory access; the horizontal backends never accrue it.
    pub t_word: f64,
    /// Per-byte cost of (re-)reading the database from disk; 0 when the
    /// database is memory-resident (the paper's T3E setup simulates I/O).
    pub io_per_byte: f64,
}

impl MachineProfile {
    /// The paper's Cray T3E: 600 MHz Alpha EV5 nodes, 3-D torus,
    /// 303 MB/s effective bandwidth, 16 µs startup, memory-resident data.
    pub fn cray_t3e() -> Self {
        MachineProfile {
            name: "Cray T3E".to_owned(),
            t_s: 16e-6,
            t_w: 1.0 / 303e6,
            t_hop: 0.1e-6,
            store_forward: 0.05,
            t_travers: 60e-9,
            t_check: 80e-9,
            t_leaf: 120e-9,
            t_insert: 1.2e-6,
            t_gen: 1.2e-6,
            t_trans: 200e-9,
            t_word: 8e-9,
            io_per_byte: 0.0,
        }
    }

    /// The paper's IBM SP2: 66.7 MHz Power2 nodes (≈9× slower per
    /// operation), HPS switch at ~35 MB/s effective, disk-resident data.
    pub fn ibm_sp2() -> Self {
        MachineProfile {
            name: "IBM SP2".to_owned(),
            t_s: 40e-6,
            t_w: 1.0 / 35e6,
            t_hop: 0.5e-6,
            store_forward: 0.0,
            t_travers: 540e-9,
            t_check: 720e-9,
            t_leaf: 1.1e-6,
            t_insert: 10.8e-6,
            t_gen: 10.8e-6,
            t_trans: 1.8e-6,
            t_word: 72e-9,
            io_per_byte: 1.0 / 20e6,
        }
    }

    /// A zero-latency, infinite-bandwidth machine: useful in tests to
    /// isolate computation costs (communication becomes free).
    pub fn ideal() -> Self {
        MachineProfile {
            name: "ideal".to_owned(),
            t_s: 0.0,
            t_w: 0.0,
            t_hop: 0.0,
            store_forward: 0.0,
            t_travers: 60e-9,
            t_check: 80e-9,
            t_leaf: 120e-9,
            t_insert: 1.2e-6,
            t_gen: 1.2e-6,
            t_trans: 200e-9,
            t_word: 8e-9,
            io_per_byte: 0.0,
        }
    }

    /// Looks up a preset profile by its short key (`t3e`, `sp2`,
    /// `ideal`), case-insensitively — the spelling the CLI's `--machine`
    /// flag and the [`ClusterProfile`] text format use.
    pub fn by_key(key: &str) -> Option<Self> {
        PRESET_KEYS
            .iter()
            .find(|&&(k, _)| k.eq_ignore_ascii_case(key))
            .map(|&(_, make)| make())
    }

    /// The short key of this profile if it is one of the presets
    /// (matched by name), `None` for user-defined profiles.
    pub fn key(&self) -> Option<&'static str> {
        PRESET_KEYS
            .iter()
            .find(|&&(_, make)| make().name == self.name)
            .map(|&(k, _)| k)
    }

    /// Effective bandwidth in MB/s (for reports).
    pub fn bandwidth_mb_s(&self) -> f64 {
        if self.t_w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.t_w / 1e6
        }
    }

    /// Virtual seconds one batch of candidate-counting work costs on this
    /// machine.
    ///
    /// The term order is load-bearing: it reproduces, addition for
    /// addition, the expression the hash-tree charging path has always
    /// used, so `f64` rounding — and therefore every virtual-time golden
    /// fingerprint — is bit-identical to the pre-seam code. The
    /// `intersection_words` term is appended **last** for the same
    /// reason: the horizontal backends report zero words, and adding a
    /// trailing `+ 0.0` to a non-negative sum leaves its bit pattern
    /// untouched, so the default-backend goldens survive the vertical
    /// backend's arrival unchanged.
    pub fn counting_time(&self, work: &CountingWork) -> f64 {
        work.inserts as f64 * self.t_insert
            + work.transactions as f64 * self.t_trans
            + work.traversal_steps as f64 * self.t_travers
            + work.node_visits as f64 * self.t_leaf
            + work.candidate_checks as f64 * self.t_check
            + work.intersection_words as f64 * self.t_word
    }
}

/// A preset entry: short key plus its profile constructor.
type PresetEntry = (&'static str, fn() -> MachineProfile);

/// The preset profiles by short key, in CLI listing order.
const PRESET_KEYS: [PresetEntry; 3] = [
    ("t3e", MachineProfile::cray_t3e),
    ("sp2", MachineProfile::ibm_sp2),
    ("ideal", MachineProfile::ideal),
];

/// A whole (possibly heterogeneous) machine: a base [`MachineProfile`]
/// shared by every rank plus per-rank relative **speed** factors.
///
/// A rank with speed `s` performs compute charges `1/s` times as fast as
/// the base profile: `speed 3 = 0.5` makes rank 3 take twice as long per
/// counting operation (communication and I/O constants are unaffected —
/// speed models a slower CPU, not a slower network or disk). The default
/// speed is 1.0, so a profile with no overrides is exactly the old
/// homogeneous machine — including bit-identical virtual clocks, because
/// the effective multiplier stays the literal `1.0` the charge path has
/// always applied.
///
/// Straggler `slowdown`s from a [`crate::FaultPlan`] ride the same
/// per-rank multiplier: the runtime combines `plan slowdown ÷ cluster
/// speed` into one factor per rank, so a fault-injected straggler is just
/// a degenerate heterogeneous cluster.
///
/// Like [`crate::FaultPlan`], a cluster is pure data with a line-based
/// text format (see the module docs) whose [`fmt::Display`] output and
/// [`FromStr`] parser are exact inverses for preset-based profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterProfile {
    base: MachineProfile,
    speeds: BTreeMap<usize, f64>,
}

impl Default for ClusterProfile {
    fn default() -> Self {
        ClusterProfile::uniform(MachineProfile::cray_t3e())
    }
}

impl ClusterProfile {
    /// A homogeneous cluster: every rank runs `base` at speed 1.0.
    pub fn uniform(base: MachineProfile) -> Self {
        ClusterProfile {
            base,
            speeds: BTreeMap::new(),
        }
    }

    /// Overrides the relative speed of `rank` (builder style). `factor`
    /// must be finite and positive; values below 1.0 are slower than the
    /// base machine, above 1.0 faster.
    pub fn speed(mut self, rank: usize, factor: f64) -> Self {
        self.speeds.insert(rank, factor);
        self
    }

    /// The base profile shared by every rank.
    pub fn base(&self) -> &MachineProfile {
        &self.base
    }

    /// The relative speed of `rank` (1.0 unless overridden).
    pub fn speed_of(&self, rank: usize) -> f64 {
        self.speeds.get(&rank).copied().unwrap_or(1.0)
    }

    /// The compute-charge multiplier of `rank`: `1 / speed`. Exactly 1.0
    /// for non-overridden ranks, so homogeneous clusters charge through
    /// the same literal constant as before the cluster seam existed.
    pub fn slowdown_of(&self, rank: usize) -> f64 {
        match self.speeds.get(&rank) {
            Some(&s) => 1.0 / s,
            None => 1.0,
        }
    }

    /// The concrete profile `rank` runs (currently the shared base; the
    /// per-rank speed is applied as a charge multiplier, not baked into
    /// the constants, so reports can still name one machine).
    pub fn profile_for(&self, _rank: usize) -> MachineProfile {
        self.base.clone()
    }

    /// Whether every rank runs at the base speed.
    pub fn is_uniform(&self) -> bool {
        self.speeds.is_empty()
    }

    /// A compact deterministic descriptor, e.g. `"t3e"` or
    /// `"t3e,speed3x0.5"` — the spelling experiment scenario labels use.
    pub fn label(&self) -> String {
        let mut parts = vec![self.base.key().unwrap_or("custom").to_owned()];
        for (rank, factor) in &self.speeds {
            parts.push(format!("speed{rank}x{factor}"));
        }
        parts.join(",")
    }

    /// Checks the profile's parameters; returns a human-readable
    /// complaint for out-of-range values.
    pub fn validate(&self) -> Result<(), String> {
        for (&rank, &factor) in &self.speeds {
            if !(factor.is_finite() && factor > 0.0) {
                return Err(format!(
                    "speed factor for rank {rank} must be finite and > 0, got {factor}"
                ));
            }
        }
        Ok(())
    }

    /// Checks the profile against a concrete rank count: every overridden
    /// rank must exist in a `procs`-rank run. [`ClusterProfile::validate`]
    /// is P-agnostic (a cluster file is reusable across run sizes); this
    /// is the check a runner applies once P is known.
    pub fn validate_for_procs(&self, procs: usize) -> Result<(), String> {
        self.validate()?;
        if let Some(&rank) = self.speeds.keys().find(|&&r| r >= procs) {
            return Err(format!(
                "speed rank {rank} is out of range for {procs} ranks (valid: 0..={})",
                procs.saturating_sub(1)
            ));
        }
        Ok(())
    }

    /// Loads a cluster profile from the text format (see module docs).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            format!(
                "cannot read cluster profile {}: {e}",
                path.as_ref().display()
            )
        })?;
        text.parse()
    }
}

impl fmt::Display for ClusterProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine = {}", self.base.key().unwrap_or("t3e"))?;
        for (rank, factor) in &self.speeds {
            writeln!(f, "speed {rank} = {factor}")?;
        }
        Ok(())
    }
}

impl FromStr for ClusterProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cluster = ClusterProfile::default();
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (lhs, rhs) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            let mut lhs_words = lhs.split_whitespace();
            let key = lhs_words.next().unwrap_or("");
            let arg = lhs_words.next();
            match (key, arg) {
                ("machine", None) => {
                    cluster.base = MachineProfile::by_key(rhs).ok_or_else(|| {
                        format!(
                            "line {}: unknown machine `{rhs}` (valid: {})",
                            lineno + 1,
                            PRESET_KEYS
                                .iter()
                                .map(|&(k, _)| k)
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })?;
                }
                ("speed", Some(rank)) => {
                    let rank: usize = rank
                        .parse()
                        .map_err(|_| format!("line {}: invalid rank `{rank}`", lineno + 1))?;
                    let factor: f64 = rhs
                        .parse()
                        .map_err(|_| format!("line {}: invalid factor `{rhs}`", lineno + 1))?;
                    cluster.speeds.insert(rank, factor);
                }
                _ => {
                    return Err(format!("line {}: unknown key `{lhs}`", lineno + 1));
                }
            }
        }
        cluster.validate()?;
        Ok(cluster)
    }
}

/// One batch of candidate-counting work to charge to the virtual clock.
///
/// The simulator does not know (or care) which counting structure
/// produced these numbers — a hash tree's hash descents and a trie's
/// child-list matches both arrive as `traversal_steps`. The mining layer
/// converts its structure-specific stats into this ledger and calls
/// [`Comm::charge_counting`](crate::Comm::charge_counting).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingWork {
    /// Candidate insertions (construction work, `t_insert` units).
    pub inserts: u64,
    /// Transactions processed (`t_trans` units).
    pub transactions: u64,
    /// Descents into the structure (`t_travers` units).
    pub traversal_steps: u64,
    /// Distinct terminal-node visits (`t_leaf` units).
    pub node_visits: u64,
    /// Candidate-vs-transaction comparisons (`t_check` units).
    pub candidate_checks: u64,
    /// Bitmap words touched by AND/popcount intersections (`t_word`
    /// units) — only the vertical backend emits these.
    pub intersection_words: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3e_matches_paper_figures() {
        let m = MachineProfile::cray_t3e();
        assert!((m.bandwidth_mb_s() - 303.0).abs() < 1.0);
        assert!((m.t_s - 16e-6).abs() < 1e-12);
        assert_eq!(m.io_per_byte, 0.0, "T3E runs from memory buffers");
    }

    #[test]
    fn sp2_is_slower_everywhere() {
        let t3e = MachineProfile::cray_t3e();
        let sp2 = MachineProfile::ibm_sp2();
        assert!(sp2.t_w > t3e.t_w);
        assert!(sp2.t_travers > t3e.t_travers);
        assert!(sp2.io_per_byte > 0.0, "SP2 database is disk-resident");
    }

    #[test]
    fn ideal_communication_is_free() {
        let m = MachineProfile::ideal();
        assert_eq!(m.t_s + m.t_w + m.t_hop, 0.0);
        assert!(m.bandwidth_mb_s().is_infinite());
        assert!(m.t_travers > 0.0, "compute still costs");
    }

    #[test]
    fn counting_time_matches_handwritten_expression() {
        let m = MachineProfile::cray_t3e();
        let w = CountingWork {
            inserts: 3,
            transactions: 41,
            traversal_steps: 1009,
            node_visits: 127,
            candidate_checks: 511,
            intersection_words: 8191,
        };
        // Exactly the term order the charging path has always used —
        // compared through bits because that order is the contract.
        let by_hand = w.inserts as f64 * m.t_insert
            + w.transactions as f64 * m.t_trans
            + w.traversal_steps as f64 * m.t_travers
            + w.node_visits as f64 * m.t_leaf
            + w.candidate_checks as f64 * m.t_check
            + w.intersection_words as f64 * m.t_word;
        assert_eq!(m.counting_time(&w).to_bits(), by_hand.to_bits());
    }

    /// Horizontal backends report zero intersection words; the appended
    /// `+ 0.0` must leave the historical expression's bits untouched, or
    /// every golden fingerprint would shift.
    #[test]
    fn zero_intersection_words_preserve_historical_bits() {
        for m in [
            MachineProfile::cray_t3e(),
            MachineProfile::ibm_sp2(),
            MachineProfile::ideal(),
        ] {
            let w = CountingWork {
                inserts: 3,
                transactions: 41,
                traversal_steps: 1009,
                node_visits: 127,
                candidate_checks: 511,
                intersection_words: 0,
            };
            let historical = w.inserts as f64 * m.t_insert
                + w.transactions as f64 * m.t_trans
                + w.traversal_steps as f64 * m.t_travers
                + w.node_visits as f64 * m.t_leaf
                + w.candidate_checks as f64 * m.t_check;
            assert_eq!(
                m.counting_time(&w).to_bits(),
                historical.to_bits(),
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn counting_time_of_nothing_is_zero() {
        let m = MachineProfile::ibm_sp2();
        assert_eq!(m.counting_time(&CountingWork::default()), 0.0);
    }

    // --- cluster profiles ------------------------------------------------

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Satellite: every generated cluster's Display output reparses to
        // an equal cluster (Display ↔ FromStr are exact inverses on valid
        // preset-based profiles), mirroring the fault-plan round-trip.
        // Speed overrides arrive as packed integers (the vendored
        // proptest has no tuple strategies): rank in the low bits, factor
        // above.
        #[test]
        fn cluster_display_fromstr_round_trips(
            base_idx in 0usize..3,
            speed_packed in prop::collection::vec(0u64..32 * 40, 0..5),
        ) {
            let base = PRESET_KEYS[base_idx].1();
            let mut cluster = ClusterProfile::uniform(base);
            for &x in &speed_packed {
                // rank in 0..32, factor in {0.1, 0.2, …, 4.0} by tenths.
                cluster = cluster.speed((x % 32) as usize, (x / 32 + 1) as f64 / 10.0);
            }
            prop_assert!(cluster.validate().is_ok(), "generator made invalid cluster");
            let reparsed: ClusterProfile = cluster.to_string().parse().expect("reparse");
            prop_assert_eq!(reparsed, cluster);
        }
    }

    #[test]
    fn cluster_text_format_round_trips() {
        let cluster = ClusterProfile::uniform(MachineProfile::ibm_sp2())
            .speed(3, 0.5)
            .speed(7, 0.25);
        let text = cluster.to_string();
        let parsed: ClusterProfile = text.parse().expect("round trip");
        assert_eq!(parsed, cluster);
        assert_eq!(cluster.label(), "sp2,speed3x0.5,speed7x0.25");
    }

    #[test]
    fn cluster_defaults_are_homogeneous() {
        let cluster = ClusterProfile::default();
        assert!(cluster.is_uniform());
        assert_eq!(cluster.base().name, "Cray T3E");
        assert_eq!(cluster.speed_of(5), 1.0);
        // The multiplier of a non-overridden rank is the literal 1.0 —
        // the bit pattern the homogeneous charge path has always used.
        assert_eq!(cluster.slowdown_of(5).to_bits(), 1.0f64.to_bits());
        assert_eq!(cluster.label(), "t3e");
        assert!(cluster.validate_for_procs(1).is_ok());
    }

    #[test]
    fn cluster_speed_inverts_to_slowdown() {
        let cluster = ClusterProfile::default().speed(2, 0.5).speed(3, 4.0);
        assert_eq!(cluster.slowdown_of(2), 2.0);
        assert_eq!(cluster.slowdown_of(3), 0.25);
        assert_eq!(cluster.profile_for(2).name, "Cray T3E");
        assert!(!cluster.is_uniform());
    }

    #[test]
    fn cluster_comments_and_blank_lines_are_ignored() {
        let cluster: ClusterProfile =
            "# hetero\n\nmachine = SP2 # case-insensitive\nspeed 1 = 0.5\n"
                .parse()
                .expect("parses");
        assert_eq!(cluster.base().name, "IBM SP2");
        assert_eq!(cluster.speed_of(1), 0.5);
        let empty: ClusterProfile = "\n  \n# nothing\n".parse().expect("parses");
        assert_eq!(empty, ClusterProfile::default());
    }

    #[test]
    fn invalid_clusters_are_rejected() {
        assert!("machine = cm5".parse::<ClusterProfile>().is_err());
        assert!("speed 1 = 0".parse::<ClusterProfile>().is_err());
        assert!("speed 1 = -2".parse::<ClusterProfile>().is_err());
        assert!("speed 1 = inf".parse::<ClusterProfile>().is_err());
        assert!("speed x = 1.0".parse::<ClusterProfile>().is_err());
        assert!("frobnicate = 1".parse::<ClusterProfile>().is_err());
        assert!("machine".parse::<ClusterProfile>().is_err());
        let err = "machine = cm5".parse::<ClusterProfile>().unwrap_err();
        assert!(err.contains("t3e, sp2, ideal"), "{err}");
    }

    #[test]
    fn cluster_validate_for_procs_flags_out_of_range_ranks() {
        let cluster = ClusterProfile::default().speed(8, 0.5);
        assert!(cluster.validate().is_ok(), "P-agnostic validate must pass");
        let err = cluster.validate_for_procs(8).unwrap_err();
        assert!(
            err.contains("speed rank 8") && err.contains("0..=7"),
            "{err}"
        );
        assert!(cluster.validate_for_procs(9).is_ok());
    }

    #[test]
    fn preset_keys_round_trip() {
        for (key, make) in PRESET_KEYS {
            let m = make();
            assert_eq!(m.key(), Some(key), "{}", m.name);
            assert_eq!(MachineProfile::by_key(key), Some(make()));
            assert_eq!(MachineProfile::by_key(&key.to_uppercase()), Some(make()));
        }
        assert_eq!(MachineProfile::by_key("cm5"), None);
        let custom = MachineProfile {
            name: "my box".to_owned(),
            ..MachineProfile::ideal()
        };
        assert_eq!(custom.key(), None);
    }
}
