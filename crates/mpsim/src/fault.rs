//! Deterministic fault plans: seed-reproducible message loss and delay,
//! per-rank slowdown (stragglers), and rank crashes.
//!
//! A [`FaultPlan`] is pure data. Every fault decision the simulator makes
//! is a deterministic function of `(plan seed, sender, receiver, per-link
//! message sequence number, attempt)` — never of host scheduling — so the
//! same plan on the same workload reproduces bit-identical virtual clocks
//! and fault counters on every run.
//!
//! Plans can be built programmatically or loaded from a small line-based
//! text file (no external parser dependencies):
//!
//! ```text
//! # straggler + crash scenario
//! seed = 42
//! drop_rate = 0.05
//! rto = 0.0001
//! detect_timeout = 0.001
//! slowdown 3 = 2.0
//! crash 5 = time:0.004
//! crash 2 = pass:3
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// When a rank crashes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashPoint {
    /// Crash the first time the rank's virtual clock reaches this time.
    AtTime(f64),
    /// Crash when the rank enters this mining pass (1-based, as reported
    /// to [`crate::Comm::enter_pass`]).
    AtPass(usize),
}

/// A deterministic, seed-reproducible fault scenario.
///
/// The plan is shared read-only by every rank of a simulation; see the
/// module docs for the determinism contract and the text format.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every per-message fault decision.
    pub seed: u64,
    /// Probability that any single transmission attempt of a data message
    /// is lost (triggering ack-timeout + retransmit at the sender).
    pub drop_rate: f64,
    /// Probability that a delivered message suffers an extra in-flight
    /// delay of [`FaultPlan::delay`] seconds.
    pub delay_rate: f64,
    /// Extra in-flight latency (seconds) applied to delayed messages.
    pub delay: f64,
    /// Base retransmission timeout (seconds). Attempt `a` of a message
    /// waits `rto · 2^a` before retransmitting (exponential backoff).
    pub rto: f64,
    /// Virtual time a rank spends concluding that a peer is dead after
    /// its tombstone arrives (the simulated failure-detector timeout).
    pub detect_timeout: f64,
    slowdowns: BTreeMap<usize, f64>,
    crashes: BTreeMap<usize, CrashPoint>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay: 0.0,
            rto: 1e-4,
            detect_timeout: 1e-3,
            slowdowns: BTreeMap::new(),
            crashes: BTreeMap::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder seed).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the decision seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-attempt message loss probability.
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the probability and size of extra in-flight delays.
    pub fn delays(mut self, rate: f64, seconds: f64) -> Self {
        self.delay_rate = rate;
        self.delay = seconds;
        self
    }

    /// Sets the base retransmission timeout.
    pub fn rto(mut self, seconds: f64) -> Self {
        self.rto = seconds;
        self
    }

    /// Sets the failure-detector timeout.
    pub fn detect_timeout(mut self, seconds: f64) -> Self {
        self.detect_timeout = seconds;
        self
    }

    /// Makes `rank` a straggler: all its compute charges are multiplied
    /// by `factor` (≥ 1).
    ///
    /// The map recorded here is pure scenario data (format, label,
    /// validation); *applying* it is the per-rank speed path's job — the
    /// runtime folds plan slowdowns and [`crate::ClusterProfile`] speeds
    /// into one combined multiplier per rank, so a straggler is just a
    /// degenerate heterogeneous cluster.
    pub fn slowdown(mut self, rank: usize, factor: f64) -> Self {
        self.slowdowns.insert(rank, factor);
        self
    }

    /// Schedules `rank` to crash at the given point.
    pub fn crash(mut self, rank: usize, point: CrashPoint) -> Self {
        self.crashes.insert(rank, point);
        self
    }

    /// The compute slowdown factor of `rank` (1.0 when not a straggler).
    pub fn slowdown_of(&self, rank: usize) -> f64 {
        self.slowdowns.get(&rank).copied().unwrap_or(1.0)
    }

    /// The scheduled crash of `rank`, if any.
    pub fn crash_of(&self, rank: usize) -> Option<CrashPoint> {
        self.crashes.get(&rank).copied()
    }

    /// Whether the plan crashes any rank at all. Crash-free plans (drops,
    /// delays, stragglers) are transparent to algorithms: no recovery
    /// protocol runs.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// The ranks scheduled to crash, ascending.
    pub fn crashed_ranks(&self) -> Vec<usize> {
        self.crashes.keys().copied().collect()
    }

    /// A compact deterministic descriptor of the plan, used as the
    /// `fault_plan` metric label — e.g.
    /// `"seed13,drop0.05,slow2x1.5,crash5@pass3"`. The empty plan labels
    /// as `"seed<seed>"`; runs without any plan use the literal `"none"`
    /// (chosen by the caller, not here).
    pub fn label(&self) -> String {
        let mut parts = vec![format!("seed{}", self.seed)];
        if self.drop_rate > 0.0 {
            parts.push(format!("drop{}", self.drop_rate));
        }
        if self.delay_rate > 0.0 {
            parts.push(format!("delay{}x{}", self.delay_rate, self.delay));
        }
        for (rank, factor) in &self.slowdowns {
            parts.push(format!("slow{rank}x{factor}"));
        }
        for (rank, point) in &self.crashes {
            match point {
                CrashPoint::AtPass(pass) => parts.push(format!("crash{rank}@pass{pass}")),
                CrashPoint::AtTime(t) => parts.push(format!("crash{rank}@t{t}")),
            }
        }
        parts.join(",")
    }

    /// Whether the plan injects nothing at all.
    pub fn is_fault_free(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.slowdowns.is_empty()
            && self.crashes.is_empty()
    }

    /// Checks the plan's parameters; returns a human-readable complaint
    /// for out-of-range values.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=0.95).contains(&self.drop_rate) {
            return Err(format!(
                "drop_rate must be in [0, 0.95], got {}",
                self.drop_rate
            ));
        }
        if !(0.0..=1.0).contains(&self.delay_rate) {
            return Err(format!(
                "delay_rate must be in [0, 1], got {}",
                self.delay_rate
            ));
        }
        if self.delay < 0.0 {
            return Err(format!("delay must be non-negative, got {}", self.delay));
        }
        if self.drop_rate > 0.0 && self.rto <= 0.0 {
            return Err(format!(
                "rto must be positive when drop_rate > 0, got {}",
                self.rto
            ));
        }
        if self.detect_timeout < 0.0 {
            return Err(format!(
                "detect_timeout must be non-negative, got {}",
                self.detect_timeout
            ));
        }
        for (&rank, &factor) in &self.slowdowns {
            if factor < 1.0 || !factor.is_finite() {
                return Err(format!(
                    "slowdown factor for rank {rank} must be finite and >= 1, got {factor}"
                ));
            }
        }
        for (&rank, &point) in &self.crashes {
            match point {
                CrashPoint::AtTime(t) if t.is_nan() || t < 0.0 => {
                    return Err(format!(
                        "crash time for rank {rank} must be non-negative, got {t}"
                    ));
                }
                CrashPoint::AtPass(0) => {
                    return Err(format!("crash pass for rank {rank} must be >= 1"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Checks the plan against a concrete rank count: every crashed or
    /// slowed rank must exist in a `procs`-rank run. [`FaultPlan::validate`]
    /// is P-agnostic (a plan file is reusable across run sizes); this is
    /// the check a runner applies once P is known, so `crash 99 = pass:2`
    /// on a P=8 run errors instead of being silently inert.
    pub fn validate_for_procs(&self, procs: usize) -> Result<(), String> {
        self.validate()?;
        if let Some(&rank) = self.crashes.keys().find(|&&r| r >= procs) {
            return Err(format!(
                "crash rank {rank} is out of range for {procs} ranks (valid: 0..={})",
                procs.saturating_sub(1)
            ));
        }
        if let Some(&rank) = self.slowdowns.keys().find(|&&r| r >= procs) {
            return Err(format!(
                "slowdown rank {rank} is out of range for {procs} ranks (valid: 0..={})",
                procs.saturating_sub(1)
            ));
        }
        Ok(())
    }

    /// A deterministic uniform variate in `[0, 1)` for fault decision
    /// `decision` of attempt `attempt` of the `seq`-th message on the
    /// `src → dst` link.
    pub(crate) fn u01(&self, decision: u64, src: usize, dst: usize, seq: u64, attempt: u32) -> f64 {
        let mut x = self.seed;
        for word in [decision, src as u64, dst as u64, seq, u64::from(attempt)] {
            x = splitmix64(x ^ word.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        // 53 high bits → f64 in [0, 1).
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Loads a plan from the text format (see module docs).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("cannot read fault plan {}: {e}", path.as_ref().display()))?;
        text.parse()
    }
}

/// Decision-kind discriminators mixed into [`FaultPlan::u01`].
pub(crate) const DECISION_DROP: u64 = 1;
pub(crate) const DECISION_DELAY: u64 = 2;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed = {}", self.seed)?;
        writeln!(f, "drop_rate = {}", self.drop_rate)?;
        writeln!(f, "delay_rate = {}", self.delay_rate)?;
        writeln!(f, "delay = {}", self.delay)?;
        writeln!(f, "rto = {}", self.rto)?;
        writeln!(f, "detect_timeout = {}", self.detect_timeout)?;
        for (rank, factor) in &self.slowdowns {
            writeln!(f, "slowdown {rank} = {factor}")?;
        }
        for (rank, point) in &self.crashes {
            match point {
                CrashPoint::AtTime(t) => writeln!(f, "crash {rank} = time:{t}")?,
                CrashPoint::AtPass(k) => writeln!(f, "crash {rank} = pass:{k}")?,
            }
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (lhs, rhs) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            let mut lhs_words = lhs.split_whitespace();
            let key = lhs_words.next().unwrap_or("");
            let arg = lhs_words.next();
            let bad = |what: &str| format!("line {}: invalid {what} `{rhs}`", lineno + 1);
            match (key, arg) {
                ("seed", None) => plan.seed = rhs.parse().map_err(|_| bad("seed"))?,
                ("drop_rate", None) => plan.drop_rate = rhs.parse().map_err(|_| bad("rate"))?,
                ("delay_rate", None) => plan.delay_rate = rhs.parse().map_err(|_| bad("rate"))?,
                ("delay", None) => plan.delay = rhs.parse().map_err(|_| bad("delay"))?,
                ("rto", None) => plan.rto = rhs.parse().map_err(|_| bad("rto"))?,
                ("detect_timeout", None) => {
                    plan.detect_timeout = rhs.parse().map_err(|_| bad("timeout"))?
                }
                ("slowdown", Some(rank)) => {
                    let rank: usize = rank
                        .parse()
                        .map_err(|_| format!("line {}: invalid rank `{rank}`", lineno + 1))?;
                    plan.slowdowns
                        .insert(rank, rhs.parse().map_err(|_| bad("factor"))?);
                }
                ("crash", Some(rank)) => {
                    let rank: usize = rank
                        .parse()
                        .map_err(|_| format!("line {}: invalid rank `{rank}`", lineno + 1))?;
                    let point = if let Some(t) = rhs.strip_prefix("time:") {
                        CrashPoint::AtTime(t.trim().parse().map_err(|_| bad("crash time"))?)
                    } else if let Some(k) = rhs.strip_prefix("pass:") {
                        CrashPoint::AtPass(k.trim().parse().map_err(|_| bad("crash pass"))?)
                    } else {
                        return Err(format!(
                            "line {}: crash point must be `time:<seconds>` or `pass:<k>`",
                            lineno + 1
                        ));
                    };
                    plan.crashes.insert(rank, point);
                }
                _ => {
                    return Err(format!("line {}: unknown key `{lhs}`", lineno + 1));
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Satellite: every generated plan's Display output reparses to an
        // equal plan (Display ↔ FromStr are exact inverses on valid
        // plans). Stragglers and crashes arrive as packed integers (the
        // vendored proptest has no tuple strategies): rank in the low
        // bits, factor/point above.
        #[test]
        fn display_fromstr_round_trips(
            seed in 0u64..u64::MAX,
            drop_pct in 0u64..96,   // drop_rate within [0, 0.95]
            delay_pct in 0u64..101,
            delay_us in 0u64..1_000,
            rto_us in 1u64..1_000,  // positive: drop_rate may be > 0
            detect_us in 0u64..10_000,
            slow_packed in prop::collection::vec(0u64..16 * 40, 0..4),
            crash_packed in prop::collection::vec(0u64..16 * 2 * 8, 0..4),
        ) {
            let mut plan = FaultPlan::new()
                .seed(seed)
                .drop_rate(drop_pct as f64 / 100.0)
                .delays(delay_pct as f64 / 100.0, delay_us as f64 * 1e-6)
                .rto(rto_us as f64 * 1e-6)
                .detect_timeout(detect_us as f64 * 1e-6);
            for &x in &slow_packed {
                // factor in [1.0, 4.9] by tenths, rank in 0..16.
                plan = plan.slowdown((x % 16) as usize, 1.0 + (x / 16) as f64 / 10.0);
            }
            for &x in &crash_packed {
                let (rank, rest) = ((x % 16) as usize, x / 16);
                let (kind, val) = (rest % 2, rest / 2 + 1);
                let point = if kind == 0 {
                    CrashPoint::AtPass(val as usize)
                } else {
                    CrashPoint::AtTime(val as f64 * 1e-4)
                };
                plan = plan.crash(rank, point);
            }
            prop_assert!(plan.validate().is_ok(), "generator made invalid plan: {plan}");
            let reparsed: FaultPlan = plan.to_string().parse().expect("reparse");
            prop_assert_eq!(reparsed, plan);
        }
    }

    #[test]
    fn text_format_round_trips() {
        let plan = FaultPlan::new()
            .seed(42)
            .drop_rate(0.05)
            .delays(0.1, 0.002)
            .rto(1e-4)
            .detect_timeout(1e-3)
            .slowdown(3, 2.0)
            .crash(5, CrashPoint::AtTime(0.004))
            .crash(2, CrashPoint::AtPass(3));
        let text = plan.to_string();
        let parsed: FaultPlan = text.parse().expect("round trip");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let plan: FaultPlan = "# a comment\n\nseed = 7 # trailing\ndrop_rate = 0.1\n"
            .parse()
            .expect("parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_rate, 0.1);
    }

    #[test]
    fn duplicate_keys_last_one_wins() {
        let plan: FaultPlan = "seed = 1\nseed = 2\nslowdown 3 = 2.0\nslowdown 3 = 4.0\n\
                               crash 1 = pass:2\ncrash 1 = time:0.5\n"
            .parse()
            .expect("parses");
        assert_eq!(plan.seed, 2);
        assert_eq!(plan.slowdown_of(3), 4.0);
        assert_eq!(plan.crash_of(1), Some(CrashPoint::AtTime(0.5)));
        assert_eq!(plan.crashed_ranks(), vec![1]);
    }

    #[test]
    fn whitespace_only_and_comment_only_input_is_a_default_plan() {
        let plan: FaultPlan = "\n   \n# nothing here\n\t\n".parse().expect("parses");
        assert_eq!(plan, FaultPlan::default());
        assert!("".parse::<FaultPlan>().expect("empty").is_fault_free());
    }

    #[test]
    fn validate_for_procs_flags_out_of_range_ranks() {
        let plan = FaultPlan::new().crash(99, CrashPoint::AtPass(2));
        assert!(plan.validate().is_ok(), "P-agnostic validate must pass");
        let err = plan.validate_for_procs(8).unwrap_err();
        assert!(err.contains("99") && err.contains("8 ranks"), "{err}");

        let plan = FaultPlan::new().slowdown(8, 2.0);
        let err = plan.validate_for_procs(8).unwrap_err();
        assert!(
            err.contains("slowdown rank 8") && err.contains("0..=7"),
            "{err}"
        );
        assert!(plan.validate_for_procs(9).is_ok());

        // In-range plans pass, and parameter errors still surface.
        assert!(FaultPlan::new()
            .crash(7, CrashPoint::AtPass(2))
            .slowdown(0, 3.0)
            .validate_for_procs(8)
            .is_ok());
        assert!(FaultPlan::new()
            .drop_rate(2.0)
            .validate_for_procs(8)
            .is_err());
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!("drop_rate = 1.5".parse::<FaultPlan>().is_err());
        assert!("slowdown 1 = 0.5".parse::<FaultPlan>().is_err());
        assert!("crash 1 = noon".parse::<FaultPlan>().is_err());
        assert!("frobnicate = 1".parse::<FaultPlan>().is_err());
        assert!("drop_rate = 0.1\nrto = 0".parse::<FaultPlan>().is_err());
        assert!("crash 1 = pass:0".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn u01_is_deterministic_and_uniform_ish() {
        let plan = FaultPlan::new().seed(9);
        let a = plan.u01(DECISION_DROP, 0, 1, 7, 0);
        let b = plan.u01(DECISION_DROP, 0, 1, 7, 0);
        assert_eq!(a.to_bits(), b.to_bits());
        // Different coordinates decorrelate.
        let c = plan.u01(DECISION_DROP, 0, 1, 7, 1);
        assert_ne!(a.to_bits(), c.to_bits());
        // Crude uniformity: mean of many draws near 0.5.
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| plan.u01(DECISION_DROP, 1, 2, i, 0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn defaults_are_fault_free() {
        let plan = FaultPlan::default();
        assert!(plan.is_fault_free());
        assert!(!plan.has_crashes());
        assert_eq!(plan.slowdown_of(3), 1.0);
        assert!(plan.validate().is_ok());
    }
}
