//! The per-rank communicator: clocks, point-to-point messaging, and
//! collectives.

use crate::machine::MachineProfile;
use crate::message::{Envelope, MatchKey};
use crate::stats::RankStats;
use crate::topology::Topology;
use crate::trace::TraceEvent;
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::collections::VecDeque;

/// Handle of a non-blocking send; [`Scope::wait_send`] synchronizes the
/// sender's clock with the link-occupancy completion time.
#[derive(Debug, Clone, Copy)]
#[must_use = "a pending isend must be waited on"]
pub struct SendHandle {
    completion: f64,
}

/// Handle of a posted receive; [`Scope::wait_recv`] blocks until the
/// matching message exists and advances the clock to its arrival.
#[derive(Debug, Clone, Copy)]
#[must_use = "a posted irecv must be waited on"]
pub struct RecvHandle {
    key: MatchKey,
}

/// One rank's endpoint: virtual clock, mailboxes to every peer, and
/// accounting. Obtain [`Scope`]s from it to actually communicate.
pub struct Comm {
    rank: usize,
    size: usize,
    machine: MachineProfile,
    topology: Topology,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
    clock: f64,
    stats: RankStats,
    trace: Option<Vec<TraceEvent>>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine: MachineProfile,
        topology: Topology,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
        tracing: bool,
    ) -> Self {
        Comm {
            rank,
            size,
            machine,
            topology,
            senders,
            inbox,
            pending: VecDeque::new(),
            clock: 0.0,
            stats: RankStats::default(),
            trace: tracing.then(Vec::new),
        }
    }

    /// Extracts the recorded trace (empty when tracing is off).
    pub(crate) fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the simulation.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine profile pricing this run.
    pub fn machine(&self) -> &MachineProfile {
        &self.machine
    }

    /// Current virtual time of this rank.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Charges `seconds` of local computation.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance time backwards");
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Compute {
                start: self.clock,
                duration: seconds,
            });
        }
        self.clock += seconds;
        self.stats.busy += seconds;
    }

    /// Charges I/O time for (re-)reading `bytes` from the database.
    pub fn charge_io(&mut self, bytes: usize) {
        let t = bytes as f64 * self.machine.io_per_byte;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Io {
                start: self.clock,
                duration: t,
            });
        }
        self.clock += t;
        self.stats.io += t;
    }

    /// The accumulated accounting (clock, busy, idle, traffic).
    pub fn stats(&self) -> RankStats {
        let mut s = self.stats;
        s.clock = self.clock;
        s
    }

    /// A scope spanning every rank (MPI_COMM_WORLD).
    pub fn world(&mut self) -> Scope<'_> {
        let members = (0..self.size).collect();
        self.scope(0, members)
    }

    /// A scope over an explicit member list (a sub-communicator). Every
    /// member must call `scope` with the same `id` and list; `id`
    /// namespaces the message matching so concurrent scopes (e.g. HD's
    /// rows and columns) cannot cross-deliver.
    ///
    /// # Panics
    /// If this rank is not in `members`.
    pub fn scope(&mut self, id: u64, members: Vec<usize>) -> Scope<'_> {
        let my_index = members
            .iter()
            .position(|&r| r == self.rank)
            .expect("rank must be a member of the scope it opens");
        Scope {
            id,
            members,
            my_index,
            comm: self,
        }
    }

    fn send_raw(
        &mut self,
        scope: u64,
        dst: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: usize,
    ) -> SendHandle {
        // Sender CPU overhead: message setup costs host cycles even for
        // non-blocking sends (LogP's `o`); it can never be overlapped.
        self.clock += self.machine.t_s;
        let issue = self.clock;
        // Sender-side link occupancy: bytes on the wire.
        let completion = issue + bytes as f64 * self.machine.t_w;
        // In-flight: per-hop routing latency, plus per-hop bandwidth
        // re-serialization on (partially) store-and-forward networks.
        let hops = self.topology.hops(self.rank, dst, self.size);
        let arrival = completion
            + hops as f64 * self.machine.t_hop
            + hops.saturating_sub(1) as f64
                * bytes as f64
                * self.machine.t_w
                * self.machine.store_forward;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Send {
                start: issue - self.machine.t_s,
                completion,
                dst,
                bytes,
            });
        }
        let env = Envelope {
            key: MatchKey {
                scope,
                src: self.rank,
                tag,
            },
            arrival,
            bytes,
            payload,
        };
        self.senders[dst]
            .send(env)
            .expect("peer mailbox closed (peer panicked?)");
        SendHandle { completion }
    }

    /// Blocks (the real thread) until a message matching `key` exists,
    /// buffering non-matching arrivals.
    fn match_raw(&mut self, key: MatchKey) -> Envelope {
        if let Some(pos) = self.pending.iter().position(|e| e.key == key) {
            return self.pending.remove(pos).unwrap();
        }
        loop {
            let env = self
                .inbox
                .recv()
                .expect("all peers disconnected while a receive was pending");
            if env.key == key {
                return env;
            }
            self.pending.push_back(env);
        }
    }

    fn complete_recv(&mut self, env: &Envelope) {
        // Causality: cannot complete before the message arrived.
        let mut idle = 0.0;
        if env.arrival > self.clock {
            idle = env.arrival - self.clock;
            self.stats.idle += idle;
            self.clock = env.arrival;
        }
        // Single-ported receiver: unloading the message occupies the
        // network interface for its wire time. Draining many messages
        // therefore serializes — the DD all-to-all penalty.
        self.clock += env.bytes as f64 * self.machine.t_w;
        self.stats.messages_received += 1;
        self.stats.bytes_received += env.bytes as u64;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Recv {
                at: self.clock,
                idle,
                src: env.key.src,
                bytes: env.bytes,
            });
        }
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("clock", &self.clock)
            .finish()
    }
}

/// A communication scope (MPI communicator): a set of member ranks with
/// local numbering. All addressing below is in **local ranks** (indices
/// into the member list).
pub struct Scope<'a> {
    id: u64,
    members: Vec<usize>,
    my_index: usize,
    comm: &'a mut Comm,
}

/// Tag bit reserved for collective-internal messages so they can never
/// collide with user point-to-point tags.
const COLLECTIVE_TAG: u64 = 1 << 62;

impl<'a> Scope<'a> {
    /// Local rank within this scope.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global rank of local member `local`.
    pub fn global_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// The underlying communicator (clock, compute charges).
    pub fn comm(&mut self) -> &mut Comm {
        self.comm
    }

    /// Right neighbour on the scope's logical ring.
    pub fn right(&self) -> usize {
        (self.my_index + 1) % self.members.len()
    }

    /// Left neighbour on the scope's logical ring.
    pub fn left(&self) -> usize {
        (self.my_index + self.members.len() - 1) % self.members.len()
    }

    /// Non-blocking send of `value` (`bytes` on the wire) to local rank
    /// `to`. The message is immediately in flight; the handle carries the
    /// sender-side completion time.
    ///
    /// The payload moves by **ownership transfer**, never by copy: the
    /// boxed value crosses threads as-is, so shared-ownership payloads
    /// (e.g. `Arc<[T]>` transaction pages) cost one refcount bump per
    /// hop regardless of size. Virtual wire cost is charged entirely
    /// from the caller-supplied logical `bytes`, so sharing the payload
    /// leaves every simulated output (clocks, traffic) bit-identical.
    pub fn isend<T: Send + 'static>(
        &mut self,
        to: usize,
        tag: u64,
        value: T,
        bytes: usize,
    ) -> SendHandle {
        let dst = self.members[to];
        self.comm
            .send_raw(self.id, dst, tag, Box::new(value), bytes)
    }

    /// Blocking send: the clock advances over the full link occupancy.
    pub fn send<T: Send + 'static>(&mut self, to: usize, tag: u64, value: T, bytes: usize) {
        let h = self.isend(to, tag, value, bytes);
        self.wait_send(h);
    }

    /// Synchronizes the clock with a pending send's completion.
    pub fn wait_send(&mut self, handle: SendHandle) {
        if handle.completion > self.comm.clock {
            self.comm.clock = handle.completion;
        }
    }

    /// Posts a receive from local rank `from` with `tag`.
    pub fn irecv(&mut self, from: usize, tag: u64) -> RecvHandle {
        RecvHandle {
            key: MatchKey {
                scope: self.id,
                src: self.members[from],
                tag,
            },
        }
    }

    /// Completes a posted receive: blocks until the message exists,
    /// advances the clock to its arrival (idle time), charges unload.
    ///
    /// # Panics
    /// If the payload type does not match `T` (a protocol bug).
    pub fn wait_recv<T: Send + 'static>(&mut self, handle: RecvHandle) -> T {
        let env = self.comm.match_raw(handle.key);
        self.comm.complete_recv(&env);
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch receiving {:?}: expected {}",
                handle.key,
                std::any::type_name::<T>()
            )
        })
    }

    /// Blocking receive.
    pub fn recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> T {
        let h = self.irecv(from, tag);
        self.wait_recv(h)
    }

    /// Global sum of a `u64` vector across the scope, in place, on every
    /// member — CD's "global reduction operation". Implemented as a ring
    /// reduce-scatter followed by a ring all-gather: `2(P−1)` messages of
    /// `M/P` entries each, i.e. `O(M)` total bytes per rank, matching the
    /// `O(M)` reduction term of Equation 4.
    pub fn allreduce_sum_u64(&mut self, v: &mut [u64]) {
        let p = self.members.len();
        if p == 1 || v.is_empty() {
            return;
        }
        let n = v.len();
        let chunk_bounds = move |i: usize| -> (usize, usize) { (i * n / p, (i + 1) * n / p) };
        let me = self.my_index;
        let (right, left) = (self.right(), self.left());
        // Phase 1 — reduce-scatter: after P−1 steps, rank r holds the
        // fully reduced chunk (r+1) mod P.
        for s in 0..p - 1 {
            let send_idx = (me + p - s) % p;
            let recv_idx = (me + p - s - 1) % p;
            let (slo, shi) = chunk_bounds(send_idx);
            let chunk: Vec<u64> = v[slo..shi].to_vec();
            let sh = self.isend(right, COLLECTIVE_TAG | s as u64, chunk, (shi - slo) * 8);
            let incoming: Vec<u64> = self.recv(left, COLLECTIVE_TAG | s as u64);
            self.wait_send(sh);
            let (rlo, rhi) = chunk_bounds(recv_idx);
            debug_assert_eq!(incoming.len(), rhi - rlo);
            for (dst, src) in v[rlo..rhi].iter_mut().zip(&incoming) {
                *dst += src;
            }
        }
        // Phase 2 — all-gather the reduced chunks.
        for s in 0..p - 1 {
            let send_idx = (me + 1 + p - s) % p;
            let recv_idx = (me + p - s) % p;
            let (slo, shi) = chunk_bounds(send_idx);
            let chunk: Vec<u64> = v[slo..shi].to_vec();
            let tag = COLLECTIVE_TAG | (1 << 32) | s as u64;
            let sh = self.isend(right, tag, chunk, (shi - slo) * 8);
            let incoming: Vec<u64> = self.recv(left, tag);
            self.wait_send(sh);
            let (rlo, rhi) = chunk_bounds(recv_idx);
            debug_assert_eq!(incoming.len(), rhi - rlo);
            v[rlo..rhi].copy_from_slice(&incoming);
        }
    }

    /// All-to-all broadcast: every member contributes `value` and receives
    /// everyone's, ordered by local rank — the primitive DD and IDD use to
    /// exchange per-partition frequent itemsets. Ring algorithm: `P−1`
    /// store-and-forward steps.
    pub fn allgather<T: Clone + Send + 'static>(&mut self, value: T, bytes: usize) -> Vec<T> {
        let p = self.members.len();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        out[self.my_index] = Some(value.clone());
        let (right, left) = (self.right(), self.left());
        let mut current = value;
        for s in 0..p - 1 {
            let tag = COLLECTIVE_TAG | (2 << 32) | s as u64;
            let sh = self.isend(right, tag, current, bytes);
            current = self.recv(left, tag);
            self.wait_send(sh);
            let origin = (self.my_index + p - 1 - s) % p;
            out[origin] = Some(current.clone());
        }
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Synchronizes all members: no rank proceeds (in virtual time) much
    /// before the others. Implemented as a 1-word allreduce.
    pub fn barrier(&mut self) {
        let mut token = [0u64; 1];
        self.allreduce_sum_u64(&mut token);
    }

    /// One-to-all broadcast from local rank `root`, binomial-tree
    /// algorithm: `⌈log₂ P⌉` rounds, so a large value reaches everyone in
    /// `O(log P · (t_s + m·t_w))`. Returns the value on every member.
    pub fn broadcast<T: Clone + Send + 'static>(
        &mut self,
        root: usize,
        value: Option<T>,
        bytes: usize,
    ) -> T {
        let p = self.members.len();
        assert!(root < p, "broadcast root out of range");
        // Work in root-relative rank space so the binomial tree always
        // roots at 0.
        let me = (self.my_index + p - root) % p;
        let mut have: Option<T> = if me == 0 {
            Some(value.expect("root must supply the broadcast value"))
        } else {
            None
        };
        let rounds = p.next_power_of_two().trailing_zeros() as usize;
        for round in 0..rounds {
            let bit = 1usize << round;
            let tag = COLLECTIVE_TAG | (3 << 32) | round as u64;
            if me < bit {
                // I already hold the value: send to my partner if it exists.
                let partner = me + bit;
                if partner < p {
                    let to = (partner + root) % p;
                    let v = have.clone().expect("sender must hold the value");
                    self.send(to, tag, v, bytes);
                }
            } else if me < 2 * bit {
                let partner = me - bit;
                let from = (partner + root) % p;
                have = Some(self.recv(from, tag));
            }
        }
        have.expect("broadcast must deliver to every member")
    }

    /// All-to-one gather to local rank `root`: returns `Some(values)` in
    /// member order at the root, `None` elsewhere. Linear algorithm (the
    /// root's single port serializes the receives anyway).
    #[allow(clippy::needless_range_loop)] // the loop variable is a rank
    pub fn gather<T: Send + 'static>(
        &mut self,
        root: usize,
        value: T,
        bytes: usize,
    ) -> Option<Vec<T>> {
        let p = self.members.len();
        assert!(root < p, "gather root out of range");
        let tag = COLLECTIVE_TAG | 4 << 32;
        if self.my_index == root {
            #[allow(clippy::needless_range_loop)] // `from` is a rank, not just an index
            let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
            out[root] = Some(value);
            for from in 0..p {
                if from != root {
                    out[from] = Some(self.recv(from, tag));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send(root, tag, value, bytes);
            None
        }
    }

    /// Recursive-doubling all-reduce: `⌈log₂ P⌉` rounds exchanging the
    /// **whole** vector — latency-optimal (`log P` startups) but moves
    /// `O(M log P)` bytes per rank, versus the ring algorithm's `O(M)`
    /// with `O(P)` startups. The classic trade-off: use this for short
    /// vectors, [`Scope::allreduce_sum_u64`] for long ones. Requires a
    /// power-of-two membership.
    ///
    /// # Panics
    /// If the scope size is not a power of two.
    pub fn allreduce_sum_u64_doubling(&mut self, v: &mut [u64]) {
        let p = self.members.len();
        assert!(p.is_power_of_two(), "recursive doubling needs 2^k members");
        if p == 1 {
            return;
        }
        let rounds = p.trailing_zeros() as usize;
        for round in 0..rounds {
            let partner = self.my_index ^ (1 << round);
            let tag = COLLECTIVE_TAG | (5 << 32) | round as u64;
            let bytes = v.len() * 8;
            let sh = self.isend(partner, tag, v.to_vec(), bytes);
            let incoming: Vec<u64> = self.recv(partner, tag);
            self.wait_send(sh);
            for (dst, src) in v.iter_mut().zip(&incoming) {
                *dst += src;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Comm cannot be constructed without the runtime; the behavioural
    // tests live in runtime.rs where simulations can be spawned.
    use super::COLLECTIVE_TAG;

    #[test]
    fn collective_tags_do_not_collide_with_user_space() {
        // User tags in the parallel crate stay far below 2^62.
        assert!(COLLECTIVE_TAG > u32::MAX as u64);
    }
}
