//! The per-rank communicator: clocks, point-to-point messaging, and
//! collectives.

use crate::fault::{FaultPlan, DECISION_DELAY, DECISION_DROP};
use crate::machine::{CountingWork, MachineProfile};
use crate::message::{Envelope, MatchKey, Packet};
use crate::stats::RankStats;
use crate::topology::Topology;
use crate::trace::TraceEvent;
use crate::wall::{ExecBackend, NativeState, WallCategory, WallTimings};
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Handle of a non-blocking send; [`Scope::wait_send`] synchronizes the
/// sender's clock with the link-occupancy completion time.
#[derive(Debug, Clone, Copy)]
#[must_use = "a pending isend must be waited on"]
pub struct SendHandle {
    completion: f64,
}

/// Handle of a posted receive; [`Scope::wait_recv`] blocks until the
/// matching message exists and advances the clock to its arrival.
#[derive(Debug, Clone, Copy)]
#[must_use = "a posted irecv must be waited on"]
pub struct RecvHandle {
    key: MatchKey,
}

/// Why a fault-aware receive completed exceptionally instead of
/// delivering a message. Failure detection is deterministic: a receive
/// fails if and only if the awaited sender crashed or aborted *before
/// sending* the matched message in its own virtual program order (the
/// per-sender FIFO channel makes "before" well defined).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecvFault {
    /// The awaited sender crashed before sending.
    Dead {
        /// Global rank of the crashed sender.
        rank: usize,
        /// Virtual time of the crash.
        at: f64,
    },
    /// The awaited sender abandoned the current attempt epoch before
    /// sending (it observed a fault and is headed for recovery).
    Aborted {
        /// Global rank of the aborting sender.
        rank: usize,
        /// Virtual time of the abort.
        at: f64,
    },
}

impl RecvFault {
    /// The peer rank this fault is about.
    pub fn rank(&self) -> usize {
        match *self {
            RecvFault::Dead { rank, .. } | RecvFault::Aborted { rank, .. } => rank,
        }
    }
}

impl std::fmt::Display for RecvFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RecvFault::Dead { rank, at } => write!(f, "rank {rank} crashed at t={at}"),
            RecvFault::Aborted { rank, at } => {
                write!(f, "rank {rank} aborted the attempt at t={at}")
            }
        }
    }
}

/// Panic payload used by injected crashes to unwind a rank's thread; the
/// runtime catches it and records the rank as crashed instead of
/// propagating the panic.
pub(crate) struct CrashUnwind {
    #[allow(dead_code)] // diagnostic field, read by Debug in panic output
    pub rank: usize,
    #[allow(dead_code)]
    pub at: f64,
}

/// Panic payload for receives that fail because the awaited peer itself
/// panicked: the runtime suppresses these in favour of the root-cause
/// panic when both unwound.
pub(crate) struct SecondaryPanic(pub String);

/// One rank's endpoint: virtual clock, mailboxes to every peer, and
/// accounting. Obtain [`Scope`]s from it to actually communicate.
pub struct Comm {
    rank: usize,
    size: usize,
    machine: MachineProfile,
    topology: Topology,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
    clock: f64,
    stats: RankStats,
    trace: Option<Vec<TraceEvent>>,
    // --- fault layer -----------------------------------------------------
    plan: Option<Arc<FaultPlan>>,
    /// Combined compute multiplier of this rank: fault-plan straggler
    /// slowdown × cluster slowdown (1/speed), computed by the runtime.
    /// 1.0 on a homogeneous fault-free machine.
    slowdown: f64,
    /// Pending injected crash, fired when the clock reaches this time.
    crash_time: Option<f64>,
    /// Pending injected crash, fired on entering this pass.
    crash_pass: Option<usize>,
    /// Per-destination data-message sequence numbers (fault decisions).
    link_seq: Vec<u64>,
    /// Current recovery-protocol attempt epoch (abort matching).
    epoch: u64,
    /// Peers known to have crashed, with their crash times.
    dead: HashMap<usize, f64>,
    /// Peers known to have aborted, with (epoch, abort time).
    aborted: HashMap<usize, (u64, f64)>,
    /// Peers whose threads finished (true = by panic).
    exited: HashMap<usize, bool>,
    /// Wall-clock measurement state; `Some` iff this run executes on the
    /// native backend. When set, the virtual `clock` field stays at 0.0
    /// and every charge point measures instead of pricing.
    native: Option<NativeState>,
}

impl Comm {
    #[allow(clippy::too_many_arguments)] // internal: called from one place
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine: MachineProfile,
        slowdown: f64,
        topology: Topology,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
        tracing: bool,
        plan: Option<Arc<FaultPlan>>,
        backend: ExecBackend,
        wall_origin: Option<std::time::Instant>,
    ) -> Self {
        let (crash_time, crash_pass) = match plan.as_ref().and_then(|p| p.crash_of(rank)) {
            Some(crate::fault::CrashPoint::AtTime(t)) => (Some(t), None),
            Some(crate::fault::CrashPoint::AtPass(k)) => (None, Some(k)),
            None => (None, None),
        };
        Comm {
            rank,
            size,
            machine,
            topology,
            senders,
            inbox,
            pending: VecDeque::new(),
            clock: 0.0,
            stats: RankStats::default(),
            trace: tracing.then(Vec::new),
            plan,
            slowdown,
            crash_time,
            crash_pass,
            link_seq: vec![0; size],
            epoch: 0,
            dead: HashMap::new(),
            aborted: HashMap::new(),
            exited: HashMap::new(),
            native: (backend == ExecBackend::Native)
                .then(|| wall_origin.map_or_else(NativeState::new, NativeState::with_origin)),
        }
    }

    /// Extracts the recorded trace (empty when tracing is off).
    pub(crate) fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Finalizes and extracts the wall-clock timings of a native run
    /// (`None` on the sim backend).
    pub(crate) fn take_wall(&mut self) -> Option<WallTimings> {
        self.native.take().map(NativeState::finish)
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the simulation.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine profile pricing this run.
    pub fn machine(&self) -> &MachineProfile {
        &self.machine
    }

    /// Current time of this rank: virtual seconds on the sim backend,
    /// wall seconds since the rank's thread started on the native one.
    pub fn clock(&self) -> f64 {
        match &self.native {
            Some(n) => n.elapsed(),
            None => self.clock,
        }
    }

    /// The execution backend this rank runs on.
    pub fn backend(&self) -> ExecBackend {
        if self.native.is_some() {
            ExecBackend::Native
        } else {
            ExecBackend::Sim
        }
    }

    /// The fault plan this simulation runs under, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_deref()
    }

    /// Fires a scheduled [`crate::CrashPoint::AtTime`] crash the moment
    /// the clock has reached it. On the sim backend the clock is clamped
    /// back to the exact crash time so the tombstone timestamp is
    /// independent of which charge crossed it; on the native backend the
    /// tombstone likewise carries the *scheduled* time (elapsed wall time
    /// at the crossing charge point is scheduler-dependent).
    fn maybe_crash(&mut self) {
        let Some(t) = self.crash_time else { return };
        match &self.native {
            Some(n) => {
                if n.elapsed() >= t {
                    self.crash_now_at(t);
                }
            }
            None => {
                if self.clock >= t {
                    self.clock = t;
                    self.crash_now_at(t);
                }
            }
        }
    }

    /// Crashes this rank now: notify every peer with a tombstone carrying
    /// the crash time `at`, then unwind the thread with a payload the
    /// runtime recognizes. On the native backend the unwind is a *real*
    /// worker-thread death — everything the rank was mid-way through is
    /// torn down for real and `catch_unwind` in the runtime is what keeps
    /// the run alive.
    fn crash_now_at(&mut self, at: f64) -> ! {
        self.crash_time = None;
        self.crash_pass = None;
        for peer in 0..self.size {
            if peer != self.rank {
                self.send_control(peer, Packet::Tombstone { at });
            }
        }
        std::panic::panic_any(CrashUnwind {
            rank: self.rank,
            at,
        });
    }

    /// Declares that this rank is entering mining pass `pass` (1-based):
    /// fires a scheduled [`crate::CrashPoint::AtPass`] crash on either
    /// backend, and records the pass boundary's wall time on the native
    /// one.
    pub fn enter_pass(&mut self, pass: usize) {
        if self.native.is_some() {
            let at = {
                let n = self.native.as_mut().expect("native state present");
                n.enter_pass(pass);
                n.elapsed()
            };
            if self.crash_pass == Some(pass) {
                self.crash_now_at(at);
            }
            return;
        }
        if self.crash_pass == Some(pass) {
            let at = self.clock;
            self.crash_now_at(at);
        }
    }

    /// Native charge point: attribute the bracket since the previous
    /// charge point, stretch it for stragglers (a slowdown-`s` rank really
    /// sleeps `(s−1)×` the measured bracket, so its passes take `s×` as
    /// long just like the sim's scaled charges), and fire any due
    /// injected crash.
    fn native_charge(&mut self, category: WallCategory, scale_slowdown: bool) {
        let bracket = {
            let n = self.native.as_mut().expect("native charge on sim backend");
            n.attribute(category)
        };
        if scale_slowdown && self.slowdown > 1.0 {
            let pad = bracket * (self.slowdown - 1.0);
            if pad > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(pad));
                let n = self.native.as_mut().expect("native state present");
                n.attribute(category);
            }
        }
        self.maybe_crash();
    }

    /// Sets the recovery-protocol attempt epoch: abort notifications only
    /// fail receives whose epoch matches the aborter's.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Records one committed recovery event in this rank's counters.
    pub fn note_recovery(&mut self) {
        self.stats.recoveries += 1;
    }

    /// Notifies `peers` (global ranks) that this rank abandons attempt
    /// `epoch`; peers blocked on it in the same epoch fail their receives
    /// and join recovery instead of waiting forever. Out-of-band control
    /// traffic: free on the virtual clock.
    pub fn send_abort(&mut self, peers: &[usize], epoch: u64) {
        let at = self.clock();
        for &peer in peers {
            if peer != self.rank {
                self.send_control(peer, Packet::Abort { epoch, at });
            }
        }
    }

    /// Sends a clean/panicked exit notification to every peer (called by
    /// the runtime when a rank's closure returns or panics).
    pub(crate) fn send_goodbyes(&mut self, panicked: bool) {
        for peer in 0..self.size {
            if peer != self.rank {
                self.send_control(peer, Packet::Goodbye { panicked });
            }
        }
    }

    fn send_control(&mut self, dst: usize, packet: Packet) {
        let env = Envelope {
            key: MatchKey {
                scope: u64::MAX,
                src: self.rank,
                tag: u64::MAX,
            },
            arrival: self.clock,
            bytes: 0,
            packet,
        };
        self.senders[dst]
            .send(env)
            .expect("peer mailbox closed (peer panicked?)");
    }

    /// Charges `seconds` of local computation, scaled by this rank's
    /// combined slowdown factor (cluster speed × fault-plan straggler
    /// slowdown). On the native backend nothing is
    /// charged; the wall time since the previous charge point is
    /// attributed to counting instead (charge points bracket the real
    /// work they price).
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance time backwards");
        if self.native.is_some() {
            self.native_charge(WallCategory::Counting, true);
            return;
        }
        let seconds = seconds * self.slowdown;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Compute {
                start: self.clock,
                duration: seconds,
            });
        }
        self.clock += seconds;
        self.stats.busy += seconds;
        self.maybe_crash();
    }

    /// Charges one batch of candidate-counting work, priced by the
    /// machine profile's per-operation constants. Structure-agnostic:
    /// whatever built the [`CountingWork`] ledger — hash tree, trie, or
    /// any future backend — is charged through the same expression.
    pub fn charge_counting(&mut self, work: &CountingWork) {
        if self.native.is_some() {
            self.native_charge(WallCategory::Counting, true);
            return;
        }
        let t = self.machine.counting_time(work);
        self.advance(t);
    }

    /// Charges I/O time for (re-)reading `bytes` from the database.
    pub fn charge_io(&mut self, bytes: usize) {
        if self.native.is_some() {
            // I/O is not straggler-scaled: the sim charges it unscaled too
            // (slowdown models a slow CPU, not a slow disk).
            self.native_charge(WallCategory::Io, false);
            return;
        }
        let t = bytes as f64 * self.machine.io_per_byte;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Io {
                start: self.clock,
                duration: t,
            });
        }
        self.clock += t;
        self.stats.io += t;
        self.maybe_crash();
    }

    /// The accumulated accounting (clock, busy, idle, traffic). On the
    /// native backend the time fields are wall measurements: `clock` is
    /// elapsed wall time, `busy` the counting bracket, `idle` the
    /// exchange bracket, `io` the I/O bracket.
    pub fn stats(&self) -> RankStats {
        let mut s = self.stats;
        if let Some(n) = &self.native {
            let t = n.timings();
            s.clock = n.elapsed();
            s.busy = t.counting;
            s.idle = t.exchange;
            s.io = t.io;
        } else {
            s.clock = self.clock;
        }
        s
    }

    /// A scope spanning every rank (MPI_COMM_WORLD).
    pub fn world(&mut self) -> Scope<'_> {
        let members = (0..self.size).collect();
        self.scope(0, members)
    }

    /// A scope over an explicit member list (a sub-communicator). Every
    /// member must call `scope` with the same `id` and list; `id`
    /// namespaces the message matching so concurrent scopes (e.g. HD's
    /// rows and columns) cannot cross-deliver.
    ///
    /// # Panics
    /// If this rank is not in `members`.
    pub fn scope(&mut self, id: u64, members: Vec<usize>) -> Scope<'_> {
        let my_index = members
            .iter()
            .position(|&r| r == self.rank)
            .expect("rank must be a member of the scope it opens");
        Scope {
            id,
            members,
            my_index,
            comm: self,
        }
    }

    fn send_raw(
        &mut self,
        scope: u64,
        dst: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: usize,
    ) -> SendHandle {
        // Native backend: the message goes into the peer's channel at
        // full speed; no postal charges, arrival 0.0 (matching is by key,
        // never by time). The handle's completion of 0.0 makes wait_send
        // a no-op against the pinned-at-0.0 virtual clock.
        //
        // Fault injection runs for real here: each lost transmission
        // attempt makes the sender *sleep out* the exponential ack-timeout
        // backoff on the wall clock before retransmitting, and a delayed
        // message carries a wall-clock arrival deadline the receiver
        // honours in `complete_recv`. Which attempts are lost/delayed is
        // still the same pure function of (seed, link, sequence, attempt)
        // as in sim, so fault *placement* is reproducible even though
        // wall-clock durations are not.
        if self.native.is_some() {
            let mut arrival = 0.0;
            if let Some(plan) = self.plan.clone() {
                if plan.drop_rate > 0.0 || plan.delay_rate > 0.0 {
                    let seq = self.link_seq[dst];
                    self.link_seq[dst] += 1;
                    let mut attempt: u32 = 0;
                    while plan.drop_rate > 0.0
                        && plan.u01(DECISION_DROP, self.rank, dst, seq, attempt) < plan.drop_rate
                    {
                        let backoff = plan.rto * (1u64 << attempt.min(16)) as f64;
                        std::thread::sleep(std::time::Duration::from_secs_f64(backoff));
                        self.stats.retransmits += 1;
                        attempt += 1;
                        assert!(attempt < 10_000, "retransmit runaway: drop_rate too high");
                    }
                    if plan.delay_rate > 0.0
                        && plan.u01(DECISION_DELAY, self.rank, dst, seq, attempt) < plan.delay_rate
                    {
                        let now = self.native.as_ref().expect("native state").elapsed();
                        arrival = now + plan.delay;
                    }
                }
            }
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            let env = Envelope {
                key: MatchKey {
                    scope,
                    src: self.rank,
                    tag,
                },
                arrival,
                bytes,
                packet: Packet::Data(payload),
            };
            self.senders[dst]
                .send(env)
                .expect("peer mailbox closed (peer panicked?)");
            // Attributes the send (including any backoff sleeps) to
            // exchange and fires a due injected crash.
            self.native_charge(WallCategory::Exchange, false);
            return SendHandle { completion: 0.0 };
        }
        // Fault injection: lost transmission attempts cost the sender a
        // full setup + wire charge plus an exponential ack-timeout
        // backoff, all on the virtual clock, before the copy that gets
        // through. Decisions are a pure function of (seed, link, per-link
        // sequence number, attempt) — host scheduling never enters.
        let mut extra_delay = 0.0;
        if let Some(plan) = self.plan.clone() {
            if plan.drop_rate > 0.0 || plan.delay_rate > 0.0 {
                let seq = self.link_seq[dst];
                self.link_seq[dst] += 1;
                let mut attempt: u32 = 0;
                while plan.drop_rate > 0.0
                    && plan.u01(DECISION_DROP, self.rank, dst, seq, attempt) < plan.drop_rate
                {
                    let backoff = plan.rto * (1u64 << attempt.min(16)) as f64;
                    self.clock += self.machine.t_s + bytes as f64 * self.machine.t_w + backoff;
                    self.stats.retransmits += 1;
                    self.maybe_crash();
                    attempt += 1;
                    assert!(attempt < 10_000, "retransmit runaway: drop_rate too high");
                }
                if plan.delay_rate > 0.0
                    && plan.u01(DECISION_DELAY, self.rank, dst, seq, attempt) < plan.delay_rate
                {
                    extra_delay = plan.delay;
                }
            }
        }
        // Sender CPU overhead: message setup costs host cycles even for
        // non-blocking sends (LogP's `o`); it can never be overlapped.
        self.clock += self.machine.t_s;
        let issue = self.clock;
        // Sender-side link occupancy: bytes on the wire.
        let completion = issue + bytes as f64 * self.machine.t_w;
        // In-flight: per-hop routing latency, plus per-hop bandwidth
        // re-serialization on (partially) store-and-forward networks.
        let hops = self.topology.hops(self.rank, dst, self.size);
        let mut arrival = completion
            + hops as f64 * self.machine.t_hop
            + hops.saturating_sub(1) as f64
                * bytes as f64
                * self.machine.t_w
                * self.machine.store_forward;
        if extra_delay > 0.0 {
            arrival += extra_delay;
        }
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Send {
                start: issue - self.machine.t_s,
                completion,
                dst,
                bytes,
            });
        }
        let env = Envelope {
            key: MatchKey {
                scope,
                src: self.rank,
                tag,
            },
            arrival,
            bytes,
            packet: Packet::Data(payload),
        };
        self.senders[dst]
            .send(env)
            .expect("peer mailbox closed (peer panicked?)");
        self.maybe_crash();
        SendHandle { completion }
    }

    /// Records a drained control packet in the peer-status maps. Control
    /// packets ride the same FIFO channels as data, so by the time one is
    /// absorbed every message its sender sent beforehand already sits in
    /// `pending` — which makes "crashed/aborted before sending" exact.
    fn absorb_control(&mut self, env: Envelope) {
        let src = env.key.src;
        match env.packet {
            Packet::Goodbye { panicked } => {
                self.exited.insert(src, panicked);
            }
            Packet::Tombstone { at } => {
                self.dead.insert(src, at);
            }
            Packet::Abort { epoch, at } => {
                self.aborted.insert(src, (epoch, at));
            }
            Packet::Data(_) => unreachable!("data envelopes are not control packets"),
        }
    }

    /// Charges the failure-detector wait for concluding that `src` (which
    /// crashed at `at`) is dead, and counts the timeout. On the native
    /// backend the detector really waits out its confirmation window on
    /// the wall clock before declaring the peer dead.
    fn charge_detect(&mut self, src: usize, at: f64) -> RecvFault {
        let timeout = self.plan.as_ref().map_or(0.0, |p| p.detect_timeout);
        if self.native.is_some() {
            if timeout > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(timeout));
            }
            self.stats.timeouts += 1;
            self.native_charge(WallCategory::Exchange, false);
            return RecvFault::Dead { rank: src, at };
        }
        let target = self.clock.max(at) + timeout;
        self.stats.idle += target - self.clock;
        self.clock = target;
        self.stats.timeouts += 1;
        self.maybe_crash();
        RecvFault::Dead { rank: src, at }
    }

    /// Blocks (the real thread) until a message matching `key` exists, a
    /// control packet proves it never will, or the peer's exit makes the
    /// wait a protocol bug.
    fn match_raw_ft(&mut self, key: MatchKey, honor_aborts: bool) -> Result<Envelope, RecvFault> {
        if let Some(pos) = self.pending.iter().position(|e| e.key == key) {
            return Ok(self.pending.remove(pos).unwrap());
        }
        loop {
            // The awaited sender's fate, checked only after any message it
            // sent beforehand has been drained into `pending` (FIFO).
            if let Some(&at) = self.dead.get(&key.src) {
                return Err(self.charge_detect(key.src, at));
            }
            if honor_aborts {
                if let Some(&(epoch, at)) = self.aborted.get(&key.src) {
                    if epoch == self.epoch {
                        if self.native.is_none() && at > self.clock {
                            self.stats.idle += at - self.clock;
                            self.clock = at;
                            self.maybe_crash();
                        }
                        return Err(RecvFault::Aborted { rank: key.src, at });
                    }
                }
            }
            if let Some(&panicked) = self.exited.get(&key.src) {
                if panicked {
                    std::panic::panic_any(SecondaryPanic(format!(
                        "rank {} cannot complete a receive from rank {} (scope {}, tag {:#x}): \
                         that rank panicked",
                        self.rank, key.src, key.scope, key.tag
                    )));
                }
                panic!(
                    "receive will never complete: sender rank {} exited without sending \
                     to receiver rank {} (scope {}, tag {:#x})",
                    key.src, self.rank, key.scope, key.tag
                );
            }
            // Native runs with a fault plan never block indefinitely:
            // the wait is sliced by the failure detector's deadline so the
            // rank periodically re-checks its own scheduled crash (a rank
            // due to die must not sit forever in a receive its own death
            // would unblock). Peer-fate maps only change when control
            // packets are drained, so the slice loop re-entering `recv` is
            // enough — the dead/aborted checks above re-run once a
            // tombstone or abort actually arrives.
            let env = if self.native.is_some() && self.plan.is_some() {
                let slice = self
                    .plan
                    .as_ref()
                    .map_or(1e-3, |p| p.detect_timeout)
                    .max(1e-4);
                let slice = std::time::Duration::from_secs_f64(slice);
                loop {
                    use crossbeam::channel::RecvTimeoutError;
                    match self.inbox.recv_timeout(slice) {
                        Ok(env) => break env,
                        Err(RecvTimeoutError::Timeout) => self.maybe_crash(),
                        Err(RecvTimeoutError::Disconnected) => {
                            panic!("all peers disconnected while a receive was pending")
                        }
                    }
                }
            } else {
                self.inbox
                    .recv()
                    .expect("all peers disconnected while a receive was pending")
            };
            if env.is_data() {
                if env.key == key {
                    return Ok(env);
                }
                self.pending.push_back(env);
            } else {
                self.absorb_control(env);
            }
        }
    }

    fn match_raw(&mut self, key: MatchKey) -> Envelope {
        self.match_raw_ft(key, false).unwrap_or_else(|fault| {
            panic!(
                "receive on rank {} (scope {}, tag {:#x}) failed: {fault} — \
                 fault-tolerant callers must use the try_* receive variants",
                self.rank, key.scope, key.tag
            )
        })
    }

    fn complete_recv(&mut self, env: &Envelope) {
        // Native backend: the blocking wait in `match_raw_ft` already
        // happened for real; attribute the bracket to exchange. A message
        // an injected fault marked as delayed carries a wall-clock arrival
        // deadline (all ranks share one wall origin) that the receiver
        // waits out — causality for real: it cannot complete the receive
        // before the delayed copy "arrives".
        if self.native.is_some() {
            if env.arrival > 0.0 {
                let now = self.native.as_ref().expect("native state").elapsed();
                if env.arrival > now {
                    std::thread::sleep(std::time::Duration::from_secs_f64(env.arrival - now));
                }
            }
            self.stats.messages_received += 1;
            self.stats.bytes_received += env.bytes as u64;
            self.native_charge(WallCategory::Exchange, false);
            return;
        }
        // Causality: cannot complete before the message arrived.
        let mut idle = 0.0;
        if env.arrival > self.clock {
            idle = env.arrival - self.clock;
            self.stats.idle += idle;
            self.clock = env.arrival;
        }
        // Single-ported receiver: unloading the message occupies the
        // network interface for its wire time. Draining many messages
        // therefore serializes — the DD all-to-all penalty.
        self.clock += env.bytes as f64 * self.machine.t_w;
        self.stats.messages_received += 1;
        self.stats.bytes_received += env.bytes as u64;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Recv {
                at: self.clock,
                idle,
                src: env.key.src,
                bytes: env.bytes,
            });
        }
        self.maybe_crash();
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("clock", &self.clock)
            .finish()
    }
}

/// A communication scope (MPI communicator): a set of member ranks with
/// local numbering. All addressing below is in **local ranks** (indices
/// into the member list).
pub struct Scope<'a> {
    id: u64,
    members: Vec<usize>,
    my_index: usize,
    comm: &'a mut Comm,
}

/// Tag bit reserved for collective-internal messages so they can never
/// collide with user point-to-point tags.
const COLLECTIVE_TAG: u64 = 1 << 62;

impl<'a> Scope<'a> {
    /// Local rank within this scope.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global rank of local member `local`.
    pub fn global_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// The underlying communicator (clock, compute charges).
    pub fn comm(&mut self) -> &mut Comm {
        self.comm
    }

    /// Right neighbour on the scope's logical ring.
    pub fn right(&self) -> usize {
        (self.my_index + 1) % self.members.len()
    }

    /// Left neighbour on the scope's logical ring.
    pub fn left(&self) -> usize {
        (self.my_index + self.members.len() - 1) % self.members.len()
    }

    /// Non-blocking send of `value` (`bytes` on the wire) to local rank
    /// `to`. The message is immediately in flight; the handle carries the
    /// sender-side completion time.
    ///
    /// The payload moves by **ownership transfer**, never by copy: the
    /// boxed value crosses threads as-is, so shared-ownership payloads
    /// (e.g. `Arc<[T]>` transaction pages) cost one refcount bump per
    /// hop regardless of size. Virtual wire cost is charged entirely
    /// from the caller-supplied logical `bytes`, so sharing the payload
    /// leaves every simulated output (clocks, traffic) bit-identical.
    pub fn isend<T: Send + 'static>(
        &mut self,
        to: usize,
        tag: u64,
        value: T,
        bytes: usize,
    ) -> SendHandle {
        let dst = self.members[to];
        self.comm
            .send_raw(self.id, dst, tag, Box::new(value), bytes)
    }

    /// Blocking send: the clock advances over the full link occupancy.
    pub fn send<T: Send + 'static>(&mut self, to: usize, tag: u64, value: T, bytes: usize) {
        let h = self.isend(to, tag, value, bytes);
        self.wait_send(h);
    }

    /// Synchronizes the clock with a pending send's completion.
    pub fn wait_send(&mut self, handle: SendHandle) {
        if handle.completion > self.comm.clock {
            self.comm.clock = handle.completion;
            self.comm.maybe_crash();
        }
    }

    /// Posts a receive from local rank `from` with `tag`.
    pub fn irecv(&mut self, from: usize, tag: u64) -> RecvHandle {
        RecvHandle {
            key: MatchKey {
                scope: self.id,
                src: self.members[from],
                tag,
            },
        }
    }

    fn unpack<T: Send + 'static>(key: MatchKey, env: Envelope) -> T {
        let Packet::Data(payload) = env.packet else {
            unreachable!("matched envelopes carry data")
        };
        *payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch receiving {:?}: expected {}",
                key,
                std::any::type_name::<T>()
            )
        })
    }

    /// Completes a posted receive: blocks until the message exists,
    /// advances the clock to its arrival (idle time), charges unload.
    ///
    /// # Panics
    /// If the payload type does not match `T` (a protocol bug), or if the
    /// awaited peer crashed, exited, or aborted (fault-tolerant callers
    /// use [`Scope::try_wait_recv`]).
    pub fn wait_recv<T: Send + 'static>(&mut self, handle: RecvHandle) -> T {
        let env = self.comm.match_raw(handle.key);
        self.comm.complete_recv(&env);
        Self::unpack(handle.key, env)
    }

    /// Blocking receive.
    pub fn recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> T {
        let h = self.irecv(from, tag);
        self.wait_recv(h)
    }

    /// Fault-aware completion of a posted receive: fails (after charging
    /// the failure-detector wait) if the awaited sender crashed, or
    /// aborted the current attempt epoch, before sending.
    ///
    /// # Panics
    /// On payload type mismatch, or if the peer exited without either
    /// sending or crashing (a protocol bug, not an injected fault).
    pub fn try_wait_recv<T: Send + 'static>(&mut self, handle: RecvHandle) -> Result<T, RecvFault> {
        let env = self.comm.match_raw_ft(handle.key, true)?;
        self.comm.complete_recv(&env);
        Ok(Self::unpack(handle.key, env))
    }

    /// Fault-aware blocking receive (see [`Scope::try_wait_recv`]).
    pub fn try_recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Result<T, RecvFault> {
        let h = self.irecv(from, tag);
        self.try_wait_recv(h)
    }

    /// Like [`Scope::try_recv`] but ignores abort notifications: only a
    /// peer *crash* fails the receive. Recovery protocols use this for
    /// their membership-sync rounds, which aborting peers still
    /// participate in.
    pub fn try_recv_sync<T: Send + 'static>(
        &mut self,
        from: usize,
        tag: u64,
    ) -> Result<T, RecvFault> {
        let h = self.irecv(from, tag);
        let env = self.comm.match_raw_ft(h.key, false)?;
        self.comm.complete_recv(&env);
        Ok(Self::unpack(h.key, env))
    }

    /// Global sum of a `u64` vector across the scope, in place, on every
    /// member — CD's "global reduction operation". Implemented as a ring
    /// reduce-scatter followed by a ring all-gather: `2(P−1)` messages of
    /// `M/P` entries each, i.e. `O(M)` total bytes per rank, matching the
    /// `O(M)` reduction term of Equation 4.
    ///
    /// # Panics
    /// If a member crashes or aborts mid-collective (fault-tolerant
    /// callers use [`Scope::try_allreduce_sum_u64`]).
    pub fn allreduce_sum_u64(&mut self, v: &mut [u64]) {
        if let Err(fault) = self.try_allreduce_sum_u64(v) {
            panic!("allreduce failed: {fault}");
        }
    }

    /// Fault-aware [`Scope::allreduce_sum_u64`]: fails when a ring
    /// neighbour crashes or aborts mid-collective. The vector is left in
    /// an unspecified (but deterministic) partial state on failure.
    pub fn try_allreduce_sum_u64(&mut self, v: &mut [u64]) -> Result<(), RecvFault> {
        let p = self.members.len();
        if p == 1 || v.is_empty() {
            return Ok(());
        }
        let n = v.len();
        let chunk_bounds = move |i: usize| -> (usize, usize) { (i * n / p, (i + 1) * n / p) };
        let me = self.my_index;
        let (right, left) = (self.right(), self.left());
        // Phase 1 — reduce-scatter: after P−1 steps, rank r holds the
        // fully reduced chunk (r+1) mod P.
        for s in 0..p - 1 {
            let send_idx = (me + p - s) % p;
            let recv_idx = (me + p - s - 1) % p;
            let (slo, shi) = chunk_bounds(send_idx);
            let chunk: Vec<u64> = v[slo..shi].to_vec();
            let sh = self.isend(right, COLLECTIVE_TAG | s as u64, chunk, (shi - slo) * 8);
            let incoming: Vec<u64> = self.try_recv(left, COLLECTIVE_TAG | s as u64)?;
            self.wait_send(sh);
            let (rlo, rhi) = chunk_bounds(recv_idx);
            debug_assert_eq!(incoming.len(), rhi - rlo);
            for (dst, src) in v[rlo..rhi].iter_mut().zip(&incoming) {
                *dst += src;
            }
        }
        // Phase 2 — all-gather the reduced chunks.
        for s in 0..p - 1 {
            let send_idx = (me + 1 + p - s) % p;
            let recv_idx = (me + p - s) % p;
            let (slo, shi) = chunk_bounds(send_idx);
            let chunk: Vec<u64> = v[slo..shi].to_vec();
            let tag = COLLECTIVE_TAG | (1 << 32) | s as u64;
            let sh = self.isend(right, tag, chunk, (shi - slo) * 8);
            let incoming: Vec<u64> = self.try_recv(left, tag)?;
            self.wait_send(sh);
            let (rlo, rhi) = chunk_bounds(recv_idx);
            debug_assert_eq!(incoming.len(), rhi - rlo);
            v[rlo..rhi].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// All-to-all broadcast: every member contributes `value` and receives
    /// everyone's, ordered by local rank — the primitive DD and IDD use to
    /// exchange per-partition frequent itemsets. Ring algorithm: `P−1`
    /// store-and-forward steps.
    ///
    /// # Panics
    /// If a member crashes or aborts mid-collective (fault-tolerant
    /// callers use [`Scope::try_allgather`]).
    pub fn allgather<T: Clone + Send + 'static>(&mut self, value: T, bytes: usize) -> Vec<T> {
        match self.try_allgather(value, bytes) {
            Ok(all) => all,
            Err(fault) => panic!("allgather failed: {fault}"),
        }
    }

    /// Fault-aware [`Scope::allgather`]: fails when a ring neighbour
    /// crashes or aborts mid-collective.
    pub fn try_allgather<T: Clone + Send + 'static>(
        &mut self,
        value: T,
        bytes: usize,
    ) -> Result<Vec<T>, RecvFault> {
        let p = self.members.len();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        out[self.my_index] = Some(value.clone());
        let (right, left) = (self.right(), self.left());
        let mut current = value;
        for s in 0..p - 1 {
            let tag = COLLECTIVE_TAG | (2 << 32) | s as u64;
            let sh = self.isend(right, tag, current, bytes);
            current = self.try_recv(left, tag)?;
            self.wait_send(sh);
            let origin = (self.my_index + p - 1 - s) % p;
            out[origin] = Some(current.clone());
        }
        Ok(out.into_iter().map(Option::unwrap).collect())
    }

    /// Synchronizes all members: no rank proceeds (in virtual time) much
    /// before the others. Implemented as a 1-word allreduce.
    pub fn barrier(&mut self) {
        let mut token = [0u64; 1];
        self.allreduce_sum_u64(&mut token);
    }

    /// One-to-all broadcast from local rank `root`, binomial-tree
    /// algorithm: `⌈log₂ P⌉` rounds, so a large value reaches everyone in
    /// `O(log P · (t_s + m·t_w))`. Returns the value on every member.
    pub fn broadcast<T: Clone + Send + 'static>(
        &mut self,
        root: usize,
        value: Option<T>,
        bytes: usize,
    ) -> T {
        let p = self.members.len();
        assert!(root < p, "broadcast root out of range");
        // Work in root-relative rank space so the binomial tree always
        // roots at 0.
        let me = (self.my_index + p - root) % p;
        let mut have: Option<T> = if me == 0 {
            Some(value.expect("root must supply the broadcast value"))
        } else {
            None
        };
        let rounds = p.next_power_of_two().trailing_zeros() as usize;
        for round in 0..rounds {
            let bit = 1usize << round;
            let tag = COLLECTIVE_TAG | (3 << 32) | round as u64;
            if me < bit {
                // I already hold the value: send to my partner if it exists.
                let partner = me + bit;
                if partner < p {
                    let to = (partner + root) % p;
                    let v = have.clone().expect("sender must hold the value");
                    self.send(to, tag, v, bytes);
                }
            } else if me < 2 * bit {
                let partner = me - bit;
                let from = (partner + root) % p;
                have = Some(self.recv(from, tag));
            }
        }
        have.expect("broadcast must deliver to every member")
    }

    /// Fault-aware [`Scope::broadcast`]: fails when the member this rank
    /// would receive its copy from crashed or aborted mid-collective.
    /// Same binomial tree and tags as the infallible variant, so the two
    /// are wire-compatible.
    pub fn try_broadcast<T: Clone + Send + 'static>(
        &mut self,
        root: usize,
        value: Option<T>,
        bytes: usize,
    ) -> Result<T, RecvFault> {
        let p = self.members.len();
        assert!(root < p, "broadcast root out of range");
        let me = (self.my_index + p - root) % p;
        let mut have: Option<T> = if me == 0 {
            Some(value.expect("root must supply the broadcast value"))
        } else {
            None
        };
        let rounds = p.next_power_of_two().trailing_zeros() as usize;
        for round in 0..rounds {
            let bit = 1usize << round;
            let tag = COLLECTIVE_TAG | (3 << 32) | round as u64;
            if me < bit {
                let partner = me + bit;
                if partner < p {
                    let to = (partner + root) % p;
                    let v = have.clone().expect("sender must hold the value");
                    self.send(to, tag, v, bytes);
                }
            } else if me < 2 * bit {
                let partner = me - bit;
                let from = (partner + root) % p;
                have = Some(self.try_recv(from, tag)?);
            }
        }
        Ok(have.expect("broadcast must deliver to every member"))
    }

    /// All-to-one gather to local rank `root`: returns `Some(values)` in
    /// member order at the root, `None` elsewhere. Linear algorithm (the
    /// root's single port serializes the receives anyway).
    #[allow(clippy::needless_range_loop)] // the loop variable is a rank
    pub fn gather<T: Send + 'static>(
        &mut self,
        root: usize,
        value: T,
        bytes: usize,
    ) -> Option<Vec<T>> {
        let p = self.members.len();
        assert!(root < p, "gather root out of range");
        let tag = COLLECTIVE_TAG | 4 << 32;
        if self.my_index == root {
            let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
            out[root] = Some(value);
            #[allow(clippy::needless_range_loop)] // `from` is a rank, not just an index
            for from in 0..p {
                if from != root {
                    out[from] = Some(self.recv(from, tag));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send(root, tag, value, bytes);
            None
        }
    }

    /// Fault-aware [`Scope::gather`]: the root fails when a contributing
    /// member crashed or aborted before sending. Same linear algorithm
    /// and tag as the infallible variant.
    pub fn try_gather<T: Send + 'static>(
        &mut self,
        root: usize,
        value: T,
        bytes: usize,
    ) -> Result<Option<Vec<T>>, RecvFault> {
        let p = self.members.len();
        assert!(root < p, "gather root out of range");
        let tag = COLLECTIVE_TAG | 4 << 32;
        if self.my_index == root {
            let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
            out[root] = Some(value);
            #[allow(clippy::needless_range_loop)] // `from` is a rank, not just an index
            for from in 0..p {
                if from != root {
                    out[from] = Some(self.try_recv(from, tag)?);
                }
            }
            Ok(Some(out.into_iter().map(Option::unwrap).collect()))
        } else {
            self.send(root, tag, value, bytes);
            Ok(None)
        }
    }

    /// Recursive-doubling all-reduce: `⌈log₂ P⌉` rounds exchanging the
    /// **whole** vector — latency-optimal (`log P` startups) but moves
    /// `O(M log P)` bytes per rank, versus the ring algorithm's `O(M)`
    /// with `O(P)` startups. The classic trade-off: use this for short
    /// vectors, [`Scope::allreduce_sum_u64`] for long ones. Requires a
    /// power-of-two membership.
    ///
    /// # Panics
    /// If the scope size is not a power of two.
    pub fn allreduce_sum_u64_doubling(&mut self, v: &mut [u64]) {
        let p = self.members.len();
        assert!(p.is_power_of_two(), "recursive doubling needs 2^k members");
        if p == 1 {
            return;
        }
        let rounds = p.trailing_zeros() as usize;
        for round in 0..rounds {
            let partner = self.my_index ^ (1 << round);
            let tag = COLLECTIVE_TAG | (5 << 32) | round as u64;
            let bytes = v.len() * 8;
            let sh = self.isend(partner, tag, v.to_vec(), bytes);
            let incoming: Vec<u64> = self.recv(partner, tag);
            self.wait_send(sh);
            for (dst, src) in v.iter_mut().zip(&incoming) {
                *dst += src;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Comm cannot be constructed without the runtime; the behavioural
    // tests live in runtime.rs where simulations can be spawned.
    use super::COLLECTIVE_TAG;

    #[test]
    fn collective_tags_do_not_collide_with_user_space() {
        // User tags in the parallel crate stay far below 2^62.
        assert!(COLLECTIVE_TAG > u32::MAX as u64);
    }
}
