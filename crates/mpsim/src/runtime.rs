//! Spawning and collecting a simulation.

use crate::comm::{Comm, CrashUnwind, SecondaryPanic};
use crate::fault::FaultPlan;
use crate::machine::{ClusterProfile, MachineProfile};
use crate::message::Envelope;
use crate::stats::{imbalance, RankStats};
use crate::topology::Topology;
use crate::trace::TraceEvent;
use crate::wall::{ExecBackend, WallTimings};
use crossbeam::channel::unbounded;
use std::any::Any;
use std::sync::{Arc, Once};

/// Configuration and entry point of a simulated machine.
#[derive(Debug, Clone)]
pub struct Simulator {
    procs: usize,
    cluster: ClusterProfile,
    topology: Topology,
    tracing: bool,
    plan: Option<Arc<FaultPlan>>,
    backend: ExecBackend,
}

/// Injected crashes and their secondary effects unwind rank threads with
/// marker payloads; the default panic hook would print a backtrace for
/// each, flooding stderr on fault-heavy runs. Install (once) a hook that
/// stays silent for those markers and defers to the previous hook for
/// real panics.
fn silence_fault_unwinds() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if !payload.is::<CrashUnwind>() && !payload.is::<SecondaryPanic>() {
                prev(info);
            }
        }));
    });
}

impl Simulator {
    /// A simulator with `procs` ranks, defaulting to the Cray T3E profile
    /// on a torus sized for `procs` (the paper's testbed).
    ///
    /// # Panics
    /// If `procs == 0`.
    pub fn new(procs: usize) -> Self {
        assert!(procs >= 1, "need at least one processor");
        Simulator {
            procs,
            cluster: ClusterProfile::default(),
            topology: Topology::torus_for(procs),
            tracing: false,
            plan: None,
            backend: ExecBackend::Sim,
        }
    }

    /// Selects the execution backend: [`ExecBackend::Sim`] (virtual time,
    /// the default) or [`ExecBackend::Native`] (full-speed wall-clock
    /// execution with per-rank [`WallTimings`] in [`SimResult::wall`]).
    /// Fault plans run on either backend; on native, injected faults are
    /// real (thread panics, sleeps, wall-clock retransmit timers).
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Runs the simulation under a deterministic fault plan (message
    /// drops/delays, stragglers, crashes). Plans that crash ranks require
    /// [`Simulator::run_with_faults`].
    ///
    /// # Panics
    /// If the plan's parameters are out of range.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        plan.validate()
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        self.plan = Some(Arc::new(plan));
        self
    }

    /// Enables per-rank event tracing; the recorded timelines land in
    /// [`SimResult::traces`].
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Overrides the machine profile (every rank runs it at speed 1.0 —
    /// shorthand for a uniform [`ClusterProfile`]).
    pub fn machine(mut self, machine: MachineProfile) -> Self {
        self.cluster = ClusterProfile::uniform(machine);
        self
    }

    /// Overrides the whole cluster profile: base machine plus per-rank
    /// relative speeds. Per-rank speeds multiply compute charges (and, on
    /// the native backend, stretch counting brackets with real sleeps)
    /// exactly like fault-plan straggler slowdowns — the two compose into
    /// one per-rank factor.
    ///
    /// # Panics
    /// If the profile's parameters are out of range for `procs` ranks.
    pub fn cluster(mut self, cluster: ClusterProfile) -> Self {
        cluster
            .validate_for_procs(self.procs)
            .unwrap_or_else(|e| panic!("invalid cluster profile: {e}"));
        self.cluster = cluster;
        self
    }

    /// Overrides the interconnect topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Number of ranks.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Runs `f` on every rank concurrently (one OS thread per rank) and
    /// collects results and accounting. `f` receives this rank's
    /// [`Comm`]; its return value lands in [`SimResult::results`] at the
    /// rank's index.
    ///
    /// # Panics
    /// Propagates any rank's panic. Also panics if the configured fault
    /// plan can crash ranks — crash-tolerant callers must use
    /// [`Simulator::run_with_faults`], which reports crashed ranks as
    /// `None` instead.
    pub fn run<T, F>(&self, f: F) -> SimResult<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        if let Some(plan) = &self.plan {
            assert!(
                !plan.has_crashes(),
                "the fault plan crashes ranks: use run_with_faults"
            );
        }
        let r = self.run_with_faults(f);
        SimResult {
            results: r
                .results
                .into_iter()
                .map(|v| v.expect("no rank can crash without a crashing fault plan"))
                .collect(),
            ranks: r.ranks,
            traces: r.traces,
            wall: r.wall,
        }
    }

    /// Like [`Simulator::run`], but tolerates injected rank crashes: a
    /// crashed rank's result slot is `None` (its [`RankStats`] still
    /// reflect the time up to the crash). Non-injected panics (bugs in
    /// `f`) still propagate, preferring the root-cause panic over
    /// secondary receive failures it triggered on other ranks.
    pub fn run_with_faults<T, F>(&self, f: F) -> SimResult<Option<T>>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        silence_fault_unwinds();
        let p = self.procs;
        // One wall origin for the whole run: native fault machinery
        // compares cross-rank timestamps (delayed-arrival deadlines,
        // crash tombstones), so every rank must measure from the same
        // instant.
        let wall_origin = (self.backend == ExecBackend::Native).then(std::time::Instant::now);
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| unbounded::<Envelope>()).unzip();
        type RankResult<T> = (Option<T>, RankStats, Vec<TraceEvent>, Option<WallTimings>);
        type RankOutcome<T> = Result<RankResult<T>, Box<dyn Any + Send>>;
        let mut outputs: Vec<Option<RankResult<T>>> = (0..p).map(|_| None).collect();
        let mut primary_panic: Option<Box<dyn Any + Send>> = None;
        let mut secondary_panic: Option<Box<dyn Any + Send>> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let f = &f;
                let machine = self.cluster.profile_for(rank);
                // One combined compute multiplier per rank: fault-plan
                // straggler slowdown × cluster slowdown (1/speed). Both
                // default to the literal 1.0, so homogeneous fault-free
                // runs charge through exactly the historical constant.
                let slowdown = self.plan.as_ref().map_or(1.0, |p| p.slowdown_of(rank))
                    * self.cluster.slowdown_of(rank);
                let topology = self.topology;
                let tracing = self.tracing;
                let plan = self.plan.clone();
                let backend = self.backend;
                handles.push(scope.spawn(move || -> RankOutcome<T> {
                    let mut comm = Comm::new(
                        rank,
                        p,
                        machine,
                        slowdown,
                        topology,
                        senders,
                        inbox,
                        tracing,
                        plan,
                        backend,
                        wall_origin,
                    );
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm))) {
                        Ok(value) => {
                            // Tell peers this rank is done: a receive still
                            // pending on it is a protocol bug that should
                            // panic loudly, not hang.
                            comm.send_goodbyes(false);
                            let mut stats = comm.stats();
                            let wall = comm.take_wall();
                            if let Some(w) = &wall {
                                // The finished wall timings are the
                                // authoritative native accounting: stamp
                                // them into the final stats so the
                                // response time equals the slowest rank's
                                // measured total exactly.
                                stats.clock = w.total;
                                stats.busy = w.counting;
                                stats.idle = w.exchange;
                                stats.io = w.io;
                            }
                            Ok((Some(value), stats, comm.take_trace(), wall))
                        }
                        Err(payload) if payload.is::<CrashUnwind>() => {
                            // Injected crash: tombstones were already sent
                            // at the moment of death.
                            let stats = comm.stats();
                            let wall = comm.take_wall();
                            Ok((None, stats, comm.take_trace(), wall))
                        }
                        Err(payload) => {
                            comm.send_goodbyes(true);
                            Err(payload)
                        }
                    }
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(Ok(tuple)) => outputs[rank] = Some(tuple),
                    Ok(Err(payload)) | Err(payload) => {
                        // Prefer the root-cause panic over the secondary
                        // receive failures it triggered elsewhere.
                        if payload.is::<SecondaryPanic>() {
                            secondary_panic.get_or_insert(payload);
                        } else {
                            primary_panic.get_or_insert(payload);
                        }
                    }
                }
            }
        });
        if let Some(payload) = primary_panic.or(secondary_panic) {
            // A surviving secondary marker (no primary found) re-panics
            // with its diagnostic string so test harnesses can match it.
            match payload.downcast::<SecondaryPanic>() {
                Ok(sp) => panic!("{}", sp.0),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        let mut results = Vec::with_capacity(p);
        let mut ranks = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        let mut wall = Vec::new();
        for tuple in outputs {
            let (value, stats, trace, rank_wall) = tuple.unwrap();
            results.push(value);
            ranks.push(stats);
            traces.push(trace);
            wall.extend(rank_wall);
        }
        SimResult {
            results,
            ranks,
            traces,
            wall,
        }
    }
}

/// The outcome of a simulated run.
#[derive(Debug)]
pub struct SimResult<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank time/traffic accounting.
    pub ranks: Vec<RankStats>,
    /// Per-rank event timelines; empty vectors unless
    /// [`Simulator::tracing`] was enabled.
    pub traces: Vec<Vec<TraceEvent>>,
    /// Per-rank wall-clock timings, indexed by rank; empty unless the
    /// native backend ran.
    pub wall: Vec<WallTimings>,
}

impl<T> SimResult<T> {
    /// Response time: the maximum final clock over all ranks — what the
    /// paper's y-axes plot.
    pub fn response_time(&self) -> f64 {
        self.ranks.iter().map(|r| r.clock).fold(0.0, f64::max)
    }

    /// Total bytes put on the wire by all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total messages sent by all ranks.
    pub fn total_messages(&self) -> u64 {
        self.ranks.iter().map(|r| r.messages_sent).sum()
    }

    /// Load imbalance of compute time across ranks (`max/avg − 1`) — the
    /// metric behind the paper's Section III-C load-balance quotes.
    pub fn compute_imbalance(&self) -> f64 {
        imbalance(self.ranks.iter().map(|r| r.busy))
    }

    /// Sum of idle (message-wait) time across ranks.
    pub fn total_idle(&self) -> f64 {
        self.ranks.iter().map(|r| r.idle).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineProfile;

    fn ideal(procs: usize) -> Simulator {
        Simulator::new(procs).machine(MachineProfile::ideal())
    }

    fn t3e(procs: usize) -> Simulator {
        Simulator::new(procs).machine(MachineProfile::cray_t3e())
    }

    #[test]
    fn single_rank_runs() {
        let r = Simulator::new(1).run(|comm| {
            comm.advance(1.5);
            comm.rank()
        });
        assert_eq!(r.results, vec![0]);
        assert!((r.response_time() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        Simulator::new(0);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let r = t3e(2).run(|comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                w.send(1, 7, vec![1u32, 2, 3], 12);
                w.recv::<String>(1, 8)
            } else {
                let v: Vec<u32> = w.recv(0, 7);
                w.send(0, 8, format!("got {}", v.len()), 16);
                String::new()
            }
        });
        assert_eq!(r.results[0], "got 3");
        // Two messages, 28 bytes total.
        assert_eq!(r.total_messages(), 2);
        assert_eq!(r.total_bytes(), 28);
        // Virtual time covers two startups at least.
        assert!(r.response_time() >= 2.0 * MachineProfile::cray_t3e().t_s);
    }

    #[test]
    fn shared_payloads_move_without_copying_but_charge_wire_bytes() {
        // Send an `Arc<[u64]>` payload: the receiver must get the *same*
        // allocation (refcount bump, no deep copy) while the simulator
        // still charges the full logical wire size — the invariant the
        // parallel crate's shared transaction pages rely on.
        use std::sync::Arc;
        let page: Arc<[u64]> = Arc::from((0..1024u64).collect::<Vec<_>>());
        let sent = page.clone();
        let r = t3e(2).run(move |comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                w.send(1, 3, sent.clone(), 8 * 1024);
                None
            } else {
                Some(w.recv::<Arc<[u64]>>(0, 3))
            }
        });
        let received = r.results[1].as_ref().expect("rank 1 received the page");
        assert!(
            Arc::ptr_eq(received, &page),
            "payload must be the same allocation, not a copy"
        );
        // Wire accounting still reflects the logical page size.
        assert_eq!(r.ranks[0].bytes_sent, 8 * 1024);
        assert_eq!(r.ranks[1].bytes_received, 8 * 1024);
    }

    #[test]
    fn receive_waits_for_arrival_and_counts_idle() {
        let r = t3e(2).run(|comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                // Sender computes for 1 ms before sending.
                w.comm().advance(1e-3);
                w.send(1, 0, 42u64, 1_000_000);
            } else {
                let v: u64 = w.recv(0, 0);
                assert_eq!(v, 42);
            }
            w.comm().clock()
        });
        let m = MachineProfile::cray_t3e();
        // Receiver clock ≥ sender compute + wire time of 1 MB.
        let wire = 1e6 * m.t_w;
        assert!(r.results[1] >= 1e-3 + wire);
        // The receiver idled at least as long as the sender computed.
        assert!(r.ranks[1].idle >= 1e-3 - 1e-9);
    }

    #[test]
    fn isend_overlaps_compute() {
        // With non-blocking send + compute, the sender's clock is
        // max(compute, link time), not the sum.
        let m = MachineProfile::cray_t3e();
        let bytes = 10_000_000usize; // ~33 ms of wire time
        let compute = 0.040; // 40 ms of compute
        let r = t3e(2).run(move |comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                let h = w.isend(1, 0, vec![0u8; 4], bytes);
                w.comm().advance(compute);
                w.wait_send(h);
                w.comm().clock()
            } else {
                let _: Vec<u8> = w.recv(0, 0);
                0.0
            }
        });
        let wire = bytes as f64 * m.t_w + m.t_s;
        assert!(wire < compute, "test premise: compute dominates");
        // Only the sender CPU overhead (t_s) is unavoidable; the wire time
        // fully overlaps the computation.
        let sender_clock = r.results[0];
        assert!(
            (sender_clock - (compute + m.t_s)).abs() < 1e-9,
            "overlap: clock {sender_clock} should be compute {compute} + t_s {}",
            m.t_s
        );
    }

    #[test]
    fn blocking_send_serializes() {
        // P-1 blocking sends serialize on the sender's single port — the
        // DD communication pattern.
        let p = 8;
        let bytes = 1_000_000usize;
        let r = t3e(p).run(move |comm| {
            let mut w = comm.world();
            let me = w.rank();
            for other in 0..p {
                if other != me {
                    w.send(other, 1, (), bytes);
                }
            }
            let mut got = 0;
            for other in 0..p {
                if other != me {
                    w.recv::<()>(other, 1);
                    got += 1;
                }
            }
            got
        });
        assert!(r.results.iter().all(|&g| g == p - 1));
        let m = MachineProfile::cray_t3e();
        // Sender-side alone is (P-1)(t_s + b·t_w); unloading adds more.
        let min_time = (p - 1) as f64 * (m.t_s + bytes as f64 * m.t_w);
        assert!(
            r.response_time() >= min_time,
            "{} < {min_time}",
            r.response_time()
        );
    }

    #[test]
    fn allreduce_sums_across_all_ranks() {
        for p in [1, 2, 3, 4, 7, 8] {
            let r = ideal(p).run(move |comm| {
                let mut v: Vec<u64> = (0..10)
                    .map(|i| (comm.rank() as u64 + 1) * (i + 1))
                    .collect();
                comm.world().allreduce_sum_u64(&mut v);
                v
            });
            let total_rank: u64 = (1..=p as u64).sum();
            for ranks_v in &r.results {
                for (i, &x) in ranks_v.iter().enumerate() {
                    assert_eq!(x, total_rank * (i as u64 + 1), "p={p} idx={i}");
                }
            }
        }
    }

    #[test]
    fn allreduce_on_vector_shorter_than_ranks() {
        let r = ideal(8).run(|comm| {
            let mut v = vec![1u64; 3];
            comm.world().allreduce_sum_u64(&mut v);
            v
        });
        assert!(r.results.iter().all(|v| v == &vec![8u64; 3]));
    }

    #[test]
    fn allreduce_cost_is_order_m_not_pm() {
        // Ring reduce-scatter + allgather: per-rank time grows with M but
        // only weakly with P (startup terms), unlike a naive gather.
        let m_entries = 100_000usize;
        let time = |p: usize| {
            t3e(p)
                .run(move |comm| {
                    let mut v = vec![1u64; m_entries];
                    comm.world().allreduce_sum_u64(&mut v);
                })
                .response_time()
        };
        let t4 = time(4);
        let t16 = time(16);
        assert!(
            t16 < 2.0 * t4,
            "O(M) reduction should not grow ~4x with P: {t4} -> {t16}"
        );
    }

    #[test]
    fn allgather_delivers_everyones_value_in_rank_order() {
        for p in [2, 3, 5, 8] {
            let r = ideal(p).run(|comm| {
                let mine = format!("rank{}", comm.rank());
                comm.world().allgather(mine, 8)
            });
            for got in &r.results {
                let want: Vec<String> = (0..p).map(|i| format!("rank{i}")).collect();
                assert_eq!(got, &want, "p={p}");
            }
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let r = t3e(4).run(|comm| {
            // Rank 2 computes much longer than the others.
            if comm.rank() == 2 {
                comm.advance(0.5);
            }
            comm.world().barrier();
            comm.clock()
        });
        // Nobody's post-barrier clock is below the slow rank's compute.
        for (rank, &c) in r.results.iter().enumerate() {
            assert!(c >= 0.5, "rank {rank} clock {c} escaped the barrier");
        }
    }

    #[test]
    fn scopes_partition_communication() {
        // Two disjoint pair-scopes exchange values independently.
        let r = ideal(4).run(|comm| {
            let me = comm.rank();
            let members = if me < 2 { vec![0, 1] } else { vec![2, 3] };
            let id = if me < 2 { 10 } else { 11 };
            let mut s = comm.scope(id, members);
            let peer = 1 - s.rank();
            s.send(peer, 0, me as u64, 8);
            s.recv::<u64>(peer, 0)
        });
        assert_eq!(r.results, vec![1, 0, 3, 2]);
    }

    #[test]
    fn grid_scopes_like_hd() {
        // 2×3 grid: column allreduce then row allgather, mirroring HD's
        // communication structure.
        let (rows, cols) = (2usize, 3usize);
        let r = ideal(rows * cols).run(move |comm| {
            let me = comm.rank();
            let (row, col) = (me / cols, me % cols);
            // Column scope: ranks sharing `col`.
            let col_members: Vec<usize> = (0..rows).map(|r| r * cols + col).collect();
            let mut v = vec![me as u64];
            comm.scope(100 + col as u64, col_members)
                .allreduce_sum_u64(&mut v);
            // Row scope: ranks sharing `row`.
            let row_members: Vec<usize> = (0..cols).map(|c| row * cols + c).collect();
            let gathered = comm.scope(200 + row as u64, row_members).allgather(v[0], 8);
            gathered
        });
        // Column sums: col c sums ranks {c, c+3} → {3, 5, 7}.
        for (rank, got) in r.results.iter().enumerate() {
            let _ = rank;
            assert_eq!(got, &vec![3u64, 5, 7]);
        }
    }

    #[test]
    fn io_charges_accrue() {
        let sim = Simulator::new(1).machine(MachineProfile::ibm_sp2());
        let r = sim.run(|comm| {
            comm.charge_io(20_000_000); // 20 MB at 20 MB/s = 1 s
        });
        assert!((r.ranks[0].io - 1.0).abs() < 1e-9);
        assert!((r.response_time() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_virtual_time() {
        let run_once = || {
            t3e(6)
                .run(|comm| {
                    let mut v = vec![comm.rank() as u64; 1000];
                    comm.advance(1e-4 * (comm.rank() as f64 + 1.0));
                    let mut w = comm.world();
                    w.allreduce_sum_u64(&mut v);
                    let all = w.allgather(v[0], 8);
                    all.len() as u64 + v[0]
                })
                .response_time()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "virtual time must not depend on thread scheduling");
    }

    #[test]
    fn stats_account_where_time_went() {
        let r = t3e(2).run(|comm| {
            comm.advance(0.01);
            let mut w = comm.world();
            let peer = 1 - w.rank();
            w.send(peer, 0, vec![0u8; 100], 100);
            let _: Vec<u8> = w.recv(peer, 0);
        });
        for s in &r.ranks {
            assert!((s.busy - 0.01).abs() < 1e-12);
            assert!(s.clock >= s.busy + s.idle + s.io - 1e-12);
            assert_eq!(s.messages_sent, 1);
            assert_eq!(s.bytes_sent, 100);
            assert_eq!(s.bytes_received, 100);
        }
    }

    #[test]
    fn compute_imbalance_reported() {
        let r = ideal(4).run(|comm| {
            comm.advance(if comm.rank() == 0 { 2.0 } else { 1.0 });
            comm.world().barrier();
        });
        // avg = 1.25, max = 2 → 0.6.
        assert!((r.compute_imbalance() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                let r = ideal(p).run(move |comm| {
                    let mut w = comm.world();
                    let value = (w.rank() == root).then(|| format!("payload-{root}"));
                    w.broadcast(root, value, 16)
                });
                assert!(
                    r.results.iter().all(|v| v == &format!("payload-{root}")),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn broadcast_cost_is_logarithmic() {
        // Binomial tree: doubling P adds one round, not P more sends.
        let bytes = 1_000_000usize;
        let time = |p: usize| {
            t3e(p)
                .run(move |comm| {
                    let mut w = comm.world();
                    let value = (w.rank() == 0).then(|| vec![0u8; 4]);
                    w.broadcast(0, value, bytes);
                })
                .response_time()
        };
        let t8 = time(8);
        let t64 = time(64);
        assert!(
            t64 < 3.0 * t8,
            "log-depth broadcast should not grow ~8x: {t8} -> {t64}"
        );
    }

    #[test]
    fn gather_collects_in_member_order() {
        let r = ideal(5).run(|comm| {
            let mut w = comm.world();
            let mine = w.rank() as u64 * 10;
            w.gather(2, mine, 8)
        });
        for (rank, got) in r.results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(got.as_deref(), Some(&[0u64, 10, 20, 30, 40][..]));
            } else {
                assert!(got.is_none());
            }
        }
    }

    #[test]
    fn doubling_allreduce_matches_ring() {
        for p in [2usize, 4, 8, 16] {
            let r = ideal(p).run(move |comm| {
                let mut ring: Vec<u64> = (0..7).map(|i| comm.rank() as u64 + i).collect();
                let mut dbl = ring.clone();
                let mut w = comm.world();
                w.allreduce_sum_u64(&mut ring);
                w.allreduce_sum_u64_doubling(&mut dbl);
                (ring, dbl)
            });
            for (ring, dbl) in &r.results {
                assert_eq!(ring, dbl, "p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^k members")]
    fn doubling_rejects_non_power_of_two() {
        ideal(3).run(|comm| {
            let mut v = vec![1u64];
            comm.world().allreduce_sum_u64_doubling(&mut v);
        });
    }

    #[test]
    fn doubling_beats_ring_on_short_vectors_loses_on_long() {
        // The classic trade-off: log P startups vs O(M) bytes.
        let time = |len: usize, doubling: bool| {
            t3e(32)
                .run(move |comm| {
                    let mut v = vec![1u64; len];
                    let mut w = comm.world();
                    if doubling {
                        w.allreduce_sum_u64_doubling(&mut v);
                    } else {
                        w.allreduce_sum_u64(&mut v);
                    }
                })
                .response_time()
        };
        assert!(
            time(4, true) < time(4, false),
            "short vector: doubling (log P startups) must win"
        );
        assert!(
            time(2_000_000, true) > time(2_000_000, false),
            "long vector: ring (O(M) bytes) must win"
        );
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn receive_type_mismatch_is_loud() {
        ideal(2).run(|comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                w.send(1, 0, 42u64, 8);
            } else {
                // Protocol bug: sender shipped u64, receiver expects String.
                let _: String = w.recv(0, 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "member of the scope")]
    fn non_member_scope_rejected() {
        ideal(3).run(|comm| {
            if comm.rank() == 2 {
                // Rank 2 opens a scope it does not belong to.
                let _ = comm.scope(9, vec![0, 1]);
            }
        });
    }

    #[test]
    fn rank_panic_propagates_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            ideal(3).run(|comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                // Other ranks do independent work and finish.
                comm.advance(1e-6);
            })
        });
        assert!(result.is_err(), "the simulation must surface the panic");
    }

    #[test]
    fn tracing_records_the_timeline() {
        let r = t3e(2).tracing(true).run(|comm| {
            comm.advance(0.5e-3);
            let mut w = comm.world();
            let peer = 1 - w.rank();
            w.send(peer, 0, 7u64, 64);
            let _: u64 = w.recv(peer, 0);
            comm.charge_io(0);
        });
        assert_eq!(r.traces.len(), 2);
        for (rank, trace) in r.traces.iter().enumerate() {
            let classes: Vec<char> = trace.iter().map(|e| e.class()).collect();
            assert!(classes.contains(&'C'), "rank {rank}: {classes:?}");
            assert!(classes.contains(&'S'));
            assert!(classes.contains(&'R'));
            // Events are recorded in clock order per rank.
            let times: Vec<f64> = trace.iter().map(crate::TraceEvent::at).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        }
        let rendered = crate::render_timeline(&r.traces, 0);
        assert!(rendered.contains("compute"));
        assert!(rendered.contains("-> r"));
        // Tracing off ⇒ empty timelines.
        let quiet = t3e(2).run(|comm| comm.advance(1e-3));
        assert!(quiet.traces.iter().all(Vec::is_empty));
    }

    #[test]
    fn many_ranks_run_on_one_core() {
        // 128 logical processors — the paper's full T3E — on any host.
        let r = ideal(128).run(|comm| {
            let mut v = vec![1u64; 4];
            comm.world().allreduce_sum_u64(&mut v);
            v[0]
        });
        assert!(r.results.iter().all(|&x| x == 128));
    }

    // --- native backend --------------------------------------------------

    use crate::ExecBackend;

    #[test]
    fn native_backend_runs_the_same_workload() {
        let workload = |comm: &mut Comm| {
            comm.enter_pass(1);
            let mut v = vec![comm.rank() as u64 + 1; 64];
            comm.charge_counting(&crate::CountingWork {
                candidate_checks: 64,
                ..Default::default()
            });
            comm.world().allreduce_sum_u64(&mut v);
            comm.charge_io(1024);
            v[0]
        };
        let sim = t3e(4).run(workload);
        let native = t3e(4).backend(ExecBackend::Native).run(workload);
        assert_eq!(sim.results, native.results, "mined values must agree");
        // Sim: virtual clocks, no wall timings. Native: the reverse.
        assert!(sim.wall.is_empty());
        assert_eq!(native.wall.len(), 4);
        for w in &native.wall {
            assert!(w.total > 0.0);
            assert_eq!(w.pass_starts.len(), 1);
            assert!(w.counting + w.exchange + w.io <= w.total + 1e-9);
        }
        // Native stats mirror the wall accounting.
        for (s, w) in native.ranks.iter().zip(&native.wall) {
            assert_eq!(s.clock.to_bits(), w.total.to_bits());
            assert_eq!(s.busy.to_bits(), w.counting.to_bits());
        }
        assert!(native.response_time() > 0.0);
        // Traffic accounting is backend-independent.
        assert_eq!(sim.total_messages(), native.total_messages());
        assert_eq!(sim.total_bytes(), native.total_bytes());
    }

    #[test]
    fn native_backend_runs_fault_plans_for_real() {
        // Drops + a straggler on the native backend: every message still
        // arrives (retransmit machinery), lost copies really cost wall
        // time, and the straggler's sleeps stretch its counting bracket.
        let r = t3e(2)
            .backend(ExecBackend::Native)
            .fault_plan(
                FaultPlan::new()
                    .seed(3)
                    .drop_rate(0.4)
                    .rto(2e-4)
                    .slowdown(1, 3.0),
            )
            .run(|comm| {
                let mut w = comm.world();
                if w.rank() == 0 {
                    for i in 0..50u64 {
                        w.send(1, i, i, 64);
                    }
                    0
                } else {
                    let mut sum = 0;
                    for i in 0..50u64 {
                        let got: u64 = w.recv(0, i);
                        assert_eq!(got, i);
                        sum += got;
                    }
                    w.comm().advance(0.0); // charge point: bracket the recv loop
                    sum
                }
            });
        assert_eq!(r.results, vec![0, (0..50).sum::<u64>()]);
        assert!(
            r.ranks[0].retransmits > 5,
            "drop rate 0.4 over 50 sends: {} retransmits",
            r.ranks[0].retransmits
        );
        // Each retransmit slept at least one base RTO of real time.
        let min_wall = r.ranks[0].retransmits as f64 * 2e-4;
        assert!(
            r.wall[0].total >= min_wall,
            "sender wall {} < {} (RTO sleeps missing)",
            r.wall[0].total,
            min_wall
        );
    }

    #[test]
    fn native_crash_is_a_real_thread_death_detected_by_timeout() {
        // Rank 1 panics for real mid-run; rank 0's blocking receive must
        // surface Dead instead of hanging, bounded by the detector
        // deadline.
        let r = t3e(2)
            .backend(ExecBackend::Native)
            .fault_plan(
                FaultPlan::new()
                    .crash(1, CrashPoint::AtTime(2e-3))
                    .detect_timeout(1e-3),
            )
            .run_with_faults(|comm| {
                if comm.rank() == 1 {
                    // Spin past the scheduled crash time: the next charge
                    // point fires the injected panic.
                    loop {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        comm.advance(0.0);
                    }
                }
                comm.world().try_recv::<u64>(1, 5)
            });
        assert!(r.results[1].is_none(), "crashed rank yields no result");
        let fault = r.results[0].unwrap().unwrap_err();
        assert_eq!(fault, RecvFault::Dead { rank: 1, at: 2e-3 });
        assert_eq!(r.ranks[0].timeouts, 1);
        // The crashed rank's wall timings still exist (time up to death).
        assert_eq!(r.wall.len(), 2);
    }

    #[test]
    fn native_pass_boundary_crash_fires_on_enter_pass() {
        let r = t3e(2)
            .backend(ExecBackend::Native)
            .fault_plan(FaultPlan::new().crash(0, CrashPoint::AtPass(2)))
            .run_with_faults(|comm| {
                comm.enter_pass(1);
                comm.advance(0.0);
                comm.enter_pass(2);
                comm.advance(0.0);
                comm.rank()
            });
        assert!(r.results[0].is_none());
        assert_eq!(r.results[1], Some(1));
        // The dead rank entered pass 2 (the boundary is recorded before
        // the crash fires) but never finished it.
        assert_eq!(
            r.wall[0]
                .pass_starts
                .iter()
                .map(|&(k, _)| k)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn native_delayed_messages_wait_out_their_deadline() {
        let delay = 5e-3;
        let r = t3e(2)
            .backend(ExecBackend::Native)
            .fault_plan(FaultPlan::new().seed(7).delays(1.0, delay))
            .run(move |comm| {
                let mut w = comm.world();
                if w.rank() == 0 {
                    w.send(1, 0, 42u64, 8);
                    0.0
                } else {
                    let _: u64 = w.recv(0, 0);
                    w.comm().clock()
                }
            });
        // delay_rate 1.0: the receive cannot complete before the delayed
        // copy's wall-clock arrival deadline.
        assert!(
            r.results[1] >= delay,
            "receiver finished at {} < delay {delay}",
            r.results[1]
        );
    }

    // --- fault injection -------------------------------------------------

    use crate::{CrashPoint, FaultPlan, RecvFault};

    #[test]
    fn dropped_messages_are_retransmitted_and_charged() {
        let workload = |comm: &mut Comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                for i in 0..200u64 {
                    w.send(1, i, i, 64);
                }
            } else {
                for i in 0..200u64 {
                    let got: u64 = w.recv(0, i);
                    assert_eq!(got, i);
                }
            }
            w.comm().clock()
        };
        let clean = t3e(2).run(workload);
        let faulty = t3e(2)
            .fault_plan(FaultPlan::new().seed(3).drop_rate(0.3).rto(1e-5))
            .run(workload);
        // Every message still arrives intact, but lost copies cost the
        // sender retransmits and virtual time.
        assert!(
            faulty.ranks[0].retransmits > 10,
            "drop rate 0.3 over 200 sends"
        );
        assert!(faulty.response_time() > clean.response_time());
        // Only delivered copies count as traffic.
        assert_eq!(faulty.ranks[0].messages_sent, clean.ranks[0].messages_sent);
    }

    #[test]
    fn fault_decisions_are_bit_deterministic() {
        let run_once = || {
            t3e(4)
                .fault_plan(
                    FaultPlan::new()
                        .seed(11)
                        .drop_rate(0.2)
                        .delays(0.1, 5e-4)
                        .rto(1e-5)
                        .slowdown(2, 3.0),
                )
                .run(|comm| {
                    comm.advance(1e-4);
                    let mut v = vec![comm.rank() as u64; 500];
                    let mut w = comm.world();
                    w.allreduce_sum_u64(&mut v);
                    w.allgather(v[0], 8)
                })
        };
        let a = run_once();
        let b = run_once();
        for (x, y) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(x.clock.to_bits(), y.clock.to_bits());
            assert_eq!(x.idle.to_bits(), y.idle.to_bits());
            assert_eq!(x.retransmits, y.retransmits);
        }
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn stragglers_scale_compute_charges() {
        let r = t3e(2)
            .fault_plan(FaultPlan::new().slowdown(1, 2.0))
            .run(|comm| {
                comm.advance(0.25);
                comm.clock()
            });
        assert!((r.ranks[0].busy - 0.25).abs() < 1e-12);
        assert!((r.ranks[1].busy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cluster_speeds_scale_compute_charges() {
        use crate::ClusterProfile;
        // Rank 1 at half speed: its compute charges double, mirroring a
        // fault-plan slowdown of 2.
        let r = Simulator::new(2)
            .cluster(ClusterProfile::default().speed(1, 0.5))
            .run(|comm| {
                comm.advance(0.25);
                comm.clock()
            });
        assert!((r.ranks[0].busy - 0.25).abs() < 1e-12);
        assert!((r.ranks[1].busy - 0.5).abs() < 1e-12);
        // A fast rank (speed 2.0) halves its charges.
        let r = Simulator::new(2)
            .cluster(ClusterProfile::default().speed(1, 2.0))
            .run(|comm| {
                comm.advance(0.25);
                comm.clock()
            });
        assert!((r.ranks[1].busy - 0.125).abs() < 1e-12);
    }

    #[test]
    fn cluster_and_straggler_slowdowns_compose() {
        use crate::ClusterProfile;
        // speed 0.5 (×2) on top of a plan slowdown of 3 → ×6.
        let r = Simulator::new(2)
            .cluster(ClusterProfile::default().speed(1, 0.5))
            .fault_plan(FaultPlan::new().slowdown(1, 3.0))
            .run(|comm| {
                comm.advance(0.1);
                comm.clock()
            });
        assert!((r.ranks[0].busy - 0.1).abs() < 1e-12);
        assert!((r.ranks[1].busy - 0.6).abs() < 1e-12);
    }

    #[test]
    fn uniform_cluster_changes_nothing() {
        use crate::ClusterProfile;
        let workload = |comm: &mut Comm| {
            comm.advance(1e-4);
            let mut v = vec![comm.rank() as u64; 100];
            comm.world().allreduce_sum_u64(&mut v);
            comm.clock()
        };
        let bare = t3e(4).run(workload);
        let uniform = Simulator::new(4)
            .cluster(ClusterProfile::uniform(MachineProfile::cray_t3e()))
            .run(workload);
        for (a, b) in bare.ranks.iter().zip(&uniform.ranks) {
            assert_eq!(a.clock.to_bits(), b.clock.to_bits());
            assert_eq!(a.busy.to_bits(), b.busy.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "invalid cluster profile")]
    fn out_of_range_cluster_rank_rejected() {
        let _ = Simulator::new(2).cluster(crate::ClusterProfile::default().speed(5, 0.5));
    }

    #[test]
    fn native_cluster_speeds_sleep_for_real() {
        use crate::ClusterProfile;
        // A half-speed rank on the native backend really sleeps out the
        // extra time: its counting bracket is at least as long as the
        // fast rank's.
        let r = Simulator::new(2)
            .cluster(ClusterProfile::default().speed(1, 0.5))
            .backend(ExecBackend::Native)
            .run(|comm| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                comm.advance(0.0);
                comm.rank()
            });
        assert_eq!(r.results, vec![0, 1]);
        assert!(
            r.wall[1].counting >= r.wall[0].counting,
            "slow rank bracket {} < fast rank bracket {}",
            r.wall[1].counting,
            r.wall[0].counting
        );
        assert!(r.wall[1].counting >= 9e-3, "5ms bracket + 5ms pad expected");
    }

    #[test]
    fn crash_surfaces_as_recv_fault_not_a_hang() {
        let crash_at = 1e-3;
        let r = t3e(2)
            .fault_plan(FaultPlan::new().crash(1, CrashPoint::AtTime(crash_at)))
            .run_with_faults(move |comm| {
                if comm.rank() == 1 {
                    comm.advance(1.0); // crosses the crash time
                    unreachable!("rank 1 must crash mid-advance");
                }
                comm.world().try_recv::<u64>(1, 5)
            });
        assert!(r.results[1].is_none(), "crashed rank yields no result");
        let fault = r.results[0].unwrap().unwrap_err();
        assert_eq!(
            fault,
            RecvFault::Dead {
                rank: 1,
                at: crash_at
            }
        );
        assert_eq!(r.ranks[0].timeouts, 1);
        // Crash time is exact despite being crossed mid-charge.
        assert_eq!(r.ranks[1].clock.to_bits(), crash_at.to_bits());
    }

    #[test]
    fn messages_sent_before_a_crash_still_arrive() {
        let r = t3e(2)
            .fault_plan(FaultPlan::new().crash(1, CrashPoint::AtTime(1e-3)))
            .run_with_faults(|comm| {
                if comm.rank() == 1 {
                    comm.world().send(0, 3, 99u64, 8);
                    comm.advance(1.0);
                    unreachable!();
                }
                let mut w = comm.world();
                let first: Result<u64, RecvFault> = w.try_recv(1, 3);
                let second: Result<u64, RecvFault> = w.try_recv(1, 4);
                (first, second)
            });
        let (first, second) = r.results[0].unwrap();
        assert_eq!(first, Ok(99), "pre-crash message must be delivered");
        assert!(matches!(second, Err(RecvFault::Dead { rank: 1, .. })));
    }

    #[test]
    fn pass_boundary_crash_fires_on_enter_pass() {
        let r = t3e(2)
            .fault_plan(FaultPlan::new().crash(0, CrashPoint::AtPass(2)))
            .run_with_faults(|comm| {
                comm.enter_pass(1);
                comm.advance(1e-4);
                comm.enter_pass(2);
                comm.advance(1e-4);
                comm.rank()
            });
        assert!(r.results[0].is_none());
        assert_eq!(r.results[1], Some(1));
    }

    #[test]
    fn abort_notifications_fail_same_epoch_receives_only() {
        let r = t3e(2)
            .fault_plan(FaultPlan::new().crash(0, CrashPoint::AtPass(999)))
            .run_with_faults(|comm| {
                if comm.rank() == 0 {
                    comm.send_abort(&[1], 0);
                    comm.world().send(1, 10, 42u64, 8);
                    return (Err(RecvFault::Aborted { rank: 0, at: 0.0 }), Ok(0));
                }
                let aborted: Result<u64, RecvFault> = comm.world().try_recv(0, 9);
                // Sync receives ignore aborts: the data on tag 10 arrives.
                let sync: Result<u64, RecvFault> = comm.world().try_recv_sync(0, 10);
                (aborted, sync)
            });
        let (aborted, sync) = r.results[1].unwrap();
        assert!(matches!(aborted, Err(RecvFault::Aborted { rank: 0, .. })));
        assert_eq!(sync, Ok(42));
    }

    #[test]
    fn all_ranks_crashing_returns_all_none() {
        let r = t3e(3)
            .fault_plan(
                FaultPlan::new()
                    .crash(0, CrashPoint::AtTime(1e-4))
                    .crash(1, CrashPoint::AtTime(2e-4))
                    .crash(2, CrashPoint::AtTime(5e-4)),
            )
            .run_with_faults(|comm| {
                comm.advance(1.0);
                comm.rank()
            });
        assert!(r.results.iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "exited without sending")]
    fn receive_from_exited_peer_panics_with_diagnostic() {
        ideal(2).run(|comm| {
            if comm.rank() == 1 {
                // Rank 0 finishes without ever sending: this must be a
                // loud protocol-bug panic naming both ranks and the tag,
                // not a silent hang.
                let _: u64 = comm.world().recv(0, 3);
            }
        });
    }

    #[test]
    #[should_panic(expected = "use run_with_faults")]
    fn run_rejects_crashing_plans() {
        t3e(2)
            .fault_plan(FaultPlan::new().crash(0, CrashPoint::AtTime(1.0)))
            .run(|comm| comm.rank());
    }

    #[test]
    fn fault_free_plans_change_nothing() {
        let workload = |comm: &mut Comm| {
            let mut v = vec![comm.rank() as u64; 100];
            comm.world().allreduce_sum_u64(&mut v);
            comm.clock()
        };
        let bare = t3e(4).run(workload);
        let planned = t3e(4).fault_plan(FaultPlan::new().seed(5)).run(workload);
        for (a, b) in bare.ranks.iter().zip(&planned.ranks) {
            assert_eq!(a.clock.to_bits(), b.clock.to_bits());
            assert_eq!(a.retransmits, 0);
            assert_eq!(b.retransmits, 0);
        }
    }
}

#[cfg(test)]
mod race_probe {
    use super::*;
    use crate::{CrashPoint, FaultPlan, Topology};

    #[test]
    fn send_to_exited_crashed_rank() {
        let r = Simulator::new(2)
            .machine(MachineProfile::ideal())
            .topology(Topology::FullyConnected)
            .fault_plan(FaultPlan::new().crash(1, CrashPoint::AtTime(0.0)))
            .run_with_faults(|comm| {
                if comm.rank() == 1 {
                    comm.advance(1.0);
                    unreachable!();
                }
                // Ensure rank 1's thread has really exited (receiver dropped).
                std::thread::sleep(std::time::Duration::from_millis(300));
                comm.world().send(1, 7, 42u64, 8);
                comm.world().try_recv::<u64>(1, 8)
            });
        assert!(r.results[0].as_ref().unwrap().is_err());
    }
}
