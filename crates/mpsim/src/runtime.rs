//! Spawning and collecting a simulation.

use crate::comm::Comm;
use crate::machine::MachineProfile;
use crate::message::Envelope;
use crate::stats::{imbalance, RankStats};
use crate::topology::Topology;
use crate::trace::TraceEvent;
use crossbeam::channel::unbounded;

/// Configuration and entry point of a simulated machine.
#[derive(Debug, Clone)]
pub struct Simulator {
    procs: usize,
    machine: MachineProfile,
    topology: Topology,
    tracing: bool,
}

impl Simulator {
    /// A simulator with `procs` ranks, defaulting to the Cray T3E profile
    /// on a torus sized for `procs` (the paper's testbed).
    ///
    /// # Panics
    /// If `procs == 0`.
    pub fn new(procs: usize) -> Self {
        assert!(procs >= 1, "need at least one processor");
        Simulator {
            procs,
            machine: MachineProfile::cray_t3e(),
            topology: Topology::torus_for(procs),
            tracing: false,
        }
    }

    /// Enables per-rank event tracing; the recorded timelines land in
    /// [`SimResult::traces`].
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Overrides the machine profile.
    pub fn machine(mut self, machine: MachineProfile) -> Self {
        self.machine = machine;
        self
    }

    /// Overrides the interconnect topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Number of ranks.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Runs `f` on every rank concurrently (one OS thread per rank) and
    /// collects results and accounting. `f` receives this rank's
    /// [`Comm`]; its return value lands in [`SimResult::results`] at the
    /// rank's index.
    ///
    /// # Panics
    /// Propagates any rank's panic.
    pub fn run<T, F>(&self, f: F) -> SimResult<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let p = self.procs;
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| unbounded::<Envelope>()).unzip();
        type RankResult<T> = (T, RankStats, Vec<TraceEvent>);
        let mut outputs: Vec<Option<RankResult<T>>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let f = &f;
                let machine = self.machine;
                let topology = self.topology;
                let tracing = self.tracing;
                handles.push(scope.spawn(move || {
                    let mut comm = Comm::new(rank, p, machine, topology, senders, inbox, tracing);
                    let value = f(&mut comm);
                    let stats = comm.stats();
                    (value, stats, comm.take_trace())
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(triple) => outputs[rank] = Some(triple),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let mut results = Vec::with_capacity(p);
        let mut ranks = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        for triple in outputs {
            let (value, stats, trace) = triple.unwrap();
            results.push(value);
            ranks.push(stats);
            traces.push(trace);
        }
        SimResult {
            results,
            ranks,
            traces,
        }
    }
}

/// The outcome of a simulated run.
#[derive(Debug)]
pub struct SimResult<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank time/traffic accounting.
    pub ranks: Vec<RankStats>,
    /// Per-rank event timelines; empty vectors unless
    /// [`Simulator::tracing`] was enabled.
    pub traces: Vec<Vec<TraceEvent>>,
}

impl<T> SimResult<T> {
    /// Response time: the maximum final clock over all ranks — what the
    /// paper's y-axes plot.
    pub fn response_time(&self) -> f64 {
        self.ranks.iter().map(|r| r.clock).fold(0.0, f64::max)
    }

    /// Total bytes put on the wire by all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total messages sent by all ranks.
    pub fn total_messages(&self) -> u64 {
        self.ranks.iter().map(|r| r.messages_sent).sum()
    }

    /// Load imbalance of compute time across ranks (`max/avg − 1`) — the
    /// metric behind the paper's Section III-C load-balance quotes.
    pub fn compute_imbalance(&self) -> f64 {
        imbalance(self.ranks.iter().map(|r| r.busy))
    }

    /// Sum of idle (message-wait) time across ranks.
    pub fn total_idle(&self) -> f64 {
        self.ranks.iter().map(|r| r.idle).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineProfile;

    fn ideal(procs: usize) -> Simulator {
        Simulator::new(procs).machine(MachineProfile::ideal())
    }

    fn t3e(procs: usize) -> Simulator {
        Simulator::new(procs).machine(MachineProfile::cray_t3e())
    }

    #[test]
    fn single_rank_runs() {
        let r = Simulator::new(1).run(|comm| {
            comm.advance(1.5);
            comm.rank()
        });
        assert_eq!(r.results, vec![0]);
        assert!((r.response_time() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        Simulator::new(0);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let r = t3e(2).run(|comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                w.send(1, 7, vec![1u32, 2, 3], 12);
                w.recv::<String>(1, 8)
            } else {
                let v: Vec<u32> = w.recv(0, 7);
                w.send(0, 8, format!("got {}", v.len()), 16);
                String::new()
            }
        });
        assert_eq!(r.results[0], "got 3");
        // Two messages, 28 bytes total.
        assert_eq!(r.total_messages(), 2);
        assert_eq!(r.total_bytes(), 28);
        // Virtual time covers two startups at least.
        assert!(r.response_time() >= 2.0 * MachineProfile::cray_t3e().t_s);
    }

    #[test]
    fn shared_payloads_move_without_copying_but_charge_wire_bytes() {
        // Send an `Arc<[u64]>` payload: the receiver must get the *same*
        // allocation (refcount bump, no deep copy) while the simulator
        // still charges the full logical wire size — the invariant the
        // parallel crate's shared transaction pages rely on.
        use std::sync::Arc;
        let page: Arc<[u64]> = Arc::from((0..1024u64).collect::<Vec<_>>());
        let sent = page.clone();
        let r = t3e(2).run(move |comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                w.send(1, 3, sent.clone(), 8 * 1024);
                None
            } else {
                Some(w.recv::<Arc<[u64]>>(0, 3))
            }
        });
        let received = r.results[1].as_ref().expect("rank 1 received the page");
        assert!(
            Arc::ptr_eq(received, &page),
            "payload must be the same allocation, not a copy"
        );
        // Wire accounting still reflects the logical page size.
        assert_eq!(r.ranks[0].bytes_sent, 8 * 1024);
        assert_eq!(r.ranks[1].bytes_received, 8 * 1024);
    }

    #[test]
    fn receive_waits_for_arrival_and_counts_idle() {
        let r = t3e(2).run(|comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                // Sender computes for 1 ms before sending.
                w.comm().advance(1e-3);
                w.send(1, 0, 42u64, 1_000_000);
            } else {
                let v: u64 = w.recv(0, 0);
                assert_eq!(v, 42);
            }
            w.comm().clock()
        });
        let m = MachineProfile::cray_t3e();
        // Receiver clock ≥ sender compute + wire time of 1 MB.
        let wire = 1e6 * m.t_w;
        assert!(r.results[1] >= 1e-3 + wire);
        // The receiver idled at least as long as the sender computed.
        assert!(r.ranks[1].idle >= 1e-3 - 1e-9);
    }

    #[test]
    fn isend_overlaps_compute() {
        // With non-blocking send + compute, the sender's clock is
        // max(compute, link time), not the sum.
        let m = MachineProfile::cray_t3e();
        let bytes = 10_000_000usize; // ~33 ms of wire time
        let compute = 0.040; // 40 ms of compute
        let r = t3e(2).run(move |comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                let h = w.isend(1, 0, vec![0u8; 4], bytes);
                w.comm().advance(compute);
                w.wait_send(h);
                w.comm().clock()
            } else {
                let _: Vec<u8> = w.recv(0, 0);
                0.0
            }
        });
        let wire = bytes as f64 * m.t_w + m.t_s;
        assert!(wire < compute, "test premise: compute dominates");
        // Only the sender CPU overhead (t_s) is unavoidable; the wire time
        // fully overlaps the computation.
        let sender_clock = r.results[0];
        assert!(
            (sender_clock - (compute + m.t_s)).abs() < 1e-9,
            "overlap: clock {sender_clock} should be compute {compute} + t_s {}",
            m.t_s
        );
    }

    #[test]
    fn blocking_send_serializes() {
        // P-1 blocking sends serialize on the sender's single port — the
        // DD communication pattern.
        let p = 8;
        let bytes = 1_000_000usize;
        let r = t3e(p).run(move |comm| {
            let mut w = comm.world();
            let me = w.rank();
            for other in 0..p {
                if other != me {
                    w.send(other, 1, (), bytes);
                }
            }
            let mut got = 0;
            for other in 0..p {
                if other != me {
                    w.recv::<()>(other, 1);
                    got += 1;
                }
            }
            got
        });
        assert!(r.results.iter().all(|&g| g == p - 1));
        let m = MachineProfile::cray_t3e();
        // Sender-side alone is (P-1)(t_s + b·t_w); unloading adds more.
        let min_time = (p - 1) as f64 * (m.t_s + bytes as f64 * m.t_w);
        assert!(
            r.response_time() >= min_time,
            "{} < {min_time}",
            r.response_time()
        );
    }

    #[test]
    fn allreduce_sums_across_all_ranks() {
        for p in [1, 2, 3, 4, 7, 8] {
            let r = ideal(p).run(move |comm| {
                let mut v: Vec<u64> = (0..10)
                    .map(|i| (comm.rank() as u64 + 1) * (i + 1))
                    .collect();
                comm.world().allreduce_sum_u64(&mut v);
                v
            });
            let total_rank: u64 = (1..=p as u64).sum();
            for ranks_v in &r.results {
                for (i, &x) in ranks_v.iter().enumerate() {
                    assert_eq!(x, total_rank * (i as u64 + 1), "p={p} idx={i}");
                }
            }
        }
    }

    #[test]
    fn allreduce_on_vector_shorter_than_ranks() {
        let r = ideal(8).run(|comm| {
            let mut v = vec![1u64; 3];
            comm.world().allreduce_sum_u64(&mut v);
            v
        });
        assert!(r.results.iter().all(|v| v == &vec![8u64; 3]));
    }

    #[test]
    fn allreduce_cost_is_order_m_not_pm() {
        // Ring reduce-scatter + allgather: per-rank time grows with M but
        // only weakly with P (startup terms), unlike a naive gather.
        let m_entries = 100_000usize;
        let time = |p: usize| {
            t3e(p)
                .run(move |comm| {
                    let mut v = vec![1u64; m_entries];
                    comm.world().allreduce_sum_u64(&mut v);
                })
                .response_time()
        };
        let t4 = time(4);
        let t16 = time(16);
        assert!(
            t16 < 2.0 * t4,
            "O(M) reduction should not grow ~4x with P: {t4} -> {t16}"
        );
    }

    #[test]
    fn allgather_delivers_everyones_value_in_rank_order() {
        for p in [2, 3, 5, 8] {
            let r = ideal(p).run(|comm| {
                let mine = format!("rank{}", comm.rank());
                comm.world().allgather(mine, 8)
            });
            for got in &r.results {
                let want: Vec<String> = (0..p).map(|i| format!("rank{i}")).collect();
                assert_eq!(got, &want, "p={p}");
            }
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let r = t3e(4).run(|comm| {
            // Rank 2 computes much longer than the others.
            if comm.rank() == 2 {
                comm.advance(0.5);
            }
            comm.world().barrier();
            comm.clock()
        });
        // Nobody's post-barrier clock is below the slow rank's compute.
        for (rank, &c) in r.results.iter().enumerate() {
            assert!(c >= 0.5, "rank {rank} clock {c} escaped the barrier");
        }
    }

    #[test]
    fn scopes_partition_communication() {
        // Two disjoint pair-scopes exchange values independently.
        let r = ideal(4).run(|comm| {
            let me = comm.rank();
            let members = if me < 2 { vec![0, 1] } else { vec![2, 3] };
            let id = if me < 2 { 10 } else { 11 };
            let mut s = comm.scope(id, members);
            let peer = 1 - s.rank();
            s.send(peer, 0, me as u64, 8);
            s.recv::<u64>(peer, 0)
        });
        assert_eq!(r.results, vec![1, 0, 3, 2]);
    }

    #[test]
    fn grid_scopes_like_hd() {
        // 2×3 grid: column allreduce then row allgather, mirroring HD's
        // communication structure.
        let (rows, cols) = (2usize, 3usize);
        let r = ideal(rows * cols).run(move |comm| {
            let me = comm.rank();
            let (row, col) = (me / cols, me % cols);
            // Column scope: ranks sharing `col`.
            let col_members: Vec<usize> = (0..rows).map(|r| r * cols + col).collect();
            let mut v = vec![me as u64];
            comm.scope(100 + col as u64, col_members)
                .allreduce_sum_u64(&mut v);
            // Row scope: ranks sharing `row`.
            let row_members: Vec<usize> = (0..cols).map(|c| row * cols + c).collect();
            let gathered = comm.scope(200 + row as u64, row_members).allgather(v[0], 8);
            gathered
        });
        // Column sums: col c sums ranks {c, c+3} → {3, 5, 7}.
        for (rank, got) in r.results.iter().enumerate() {
            let _ = rank;
            assert_eq!(got, &vec![3u64, 5, 7]);
        }
    }

    #[test]
    fn io_charges_accrue() {
        let sim = Simulator::new(1).machine(MachineProfile::ibm_sp2());
        let r = sim.run(|comm| {
            comm.charge_io(20_000_000); // 20 MB at 20 MB/s = 1 s
        });
        assert!((r.ranks[0].io - 1.0).abs() < 1e-9);
        assert!((r.response_time() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_virtual_time() {
        let run_once = || {
            t3e(6)
                .run(|comm| {
                    let mut v = vec![comm.rank() as u64; 1000];
                    comm.advance(1e-4 * (comm.rank() as f64 + 1.0));
                    let mut w = comm.world();
                    w.allreduce_sum_u64(&mut v);
                    let all = w.allgather(v[0], 8);
                    all.len() as u64 + v[0]
                })
                .response_time()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "virtual time must not depend on thread scheduling");
    }

    #[test]
    fn stats_account_where_time_went() {
        let r = t3e(2).run(|comm| {
            comm.advance(0.01);
            let mut w = comm.world();
            let peer = 1 - w.rank();
            w.send(peer, 0, vec![0u8; 100], 100);
            let _: Vec<u8> = w.recv(peer, 0);
        });
        for s in &r.ranks {
            assert!((s.busy - 0.01).abs() < 1e-12);
            assert!(s.clock >= s.busy + s.idle + s.io - 1e-12);
            assert_eq!(s.messages_sent, 1);
            assert_eq!(s.bytes_sent, 100);
            assert_eq!(s.bytes_received, 100);
        }
    }

    #[test]
    fn compute_imbalance_reported() {
        let r = ideal(4).run(|comm| {
            comm.advance(if comm.rank() == 0 { 2.0 } else { 1.0 });
            comm.world().barrier();
        });
        // avg = 1.25, max = 2 → 0.6.
        assert!((r.compute_imbalance() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                let r = ideal(p).run(move |comm| {
                    let mut w = comm.world();
                    let value = (w.rank() == root).then(|| format!("payload-{root}"));
                    w.broadcast(root, value, 16)
                });
                assert!(
                    r.results.iter().all(|v| v == &format!("payload-{root}")),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn broadcast_cost_is_logarithmic() {
        // Binomial tree: doubling P adds one round, not P more sends.
        let bytes = 1_000_000usize;
        let time = |p: usize| {
            t3e(p)
                .run(move |comm| {
                    let mut w = comm.world();
                    let value = (w.rank() == 0).then(|| vec![0u8; 4]);
                    w.broadcast(0, value, bytes);
                })
                .response_time()
        };
        let t8 = time(8);
        let t64 = time(64);
        assert!(
            t64 < 3.0 * t8,
            "log-depth broadcast should not grow ~8x: {t8} -> {t64}"
        );
    }

    #[test]
    fn gather_collects_in_member_order() {
        let r = ideal(5).run(|comm| {
            let mut w = comm.world();
            let mine = w.rank() as u64 * 10;
            w.gather(2, mine, 8)
        });
        for (rank, got) in r.results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(got.as_deref(), Some(&[0u64, 10, 20, 30, 40][..]));
            } else {
                assert!(got.is_none());
            }
        }
    }

    #[test]
    fn doubling_allreduce_matches_ring() {
        for p in [2usize, 4, 8, 16] {
            let r = ideal(p).run(move |comm| {
                let mut ring: Vec<u64> = (0..7).map(|i| comm.rank() as u64 + i).collect();
                let mut dbl = ring.clone();
                let mut w = comm.world();
                w.allreduce_sum_u64(&mut ring);
                w.allreduce_sum_u64_doubling(&mut dbl);
                (ring, dbl)
            });
            for (ring, dbl) in &r.results {
                assert_eq!(ring, dbl, "p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^k members")]
    fn doubling_rejects_non_power_of_two() {
        ideal(3).run(|comm| {
            let mut v = vec![1u64];
            comm.world().allreduce_sum_u64_doubling(&mut v);
        });
    }

    #[test]
    fn doubling_beats_ring_on_short_vectors_loses_on_long() {
        // The classic trade-off: log P startups vs O(M) bytes.
        let time = |len: usize, doubling: bool| {
            t3e(32)
                .run(move |comm| {
                    let mut v = vec![1u64; len];
                    let mut w = comm.world();
                    if doubling {
                        w.allreduce_sum_u64_doubling(&mut v);
                    } else {
                        w.allreduce_sum_u64(&mut v);
                    }
                })
                .response_time()
        };
        assert!(
            time(4, true) < time(4, false),
            "short vector: doubling (log P startups) must win"
        );
        assert!(
            time(2_000_000, true) > time(2_000_000, false),
            "long vector: ring (O(M) bytes) must win"
        );
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn receive_type_mismatch_is_loud() {
        ideal(2).run(|comm| {
            let mut w = comm.world();
            if w.rank() == 0 {
                w.send(1, 0, 42u64, 8);
            } else {
                // Protocol bug: sender shipped u64, receiver expects String.
                let _: String = w.recv(0, 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "member of the scope")]
    fn non_member_scope_rejected() {
        ideal(3).run(|comm| {
            if comm.rank() == 2 {
                // Rank 2 opens a scope it does not belong to.
                let _ = comm.scope(9, vec![0, 1]);
            }
        });
    }

    #[test]
    fn rank_panic_propagates_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            ideal(3).run(|comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                // Other ranks do independent work and finish.
                comm.advance(1e-6);
            })
        });
        assert!(result.is_err(), "the simulation must surface the panic");
    }

    #[test]
    fn tracing_records_the_timeline() {
        let r = t3e(2).tracing(true).run(|comm| {
            comm.advance(0.5e-3);
            let mut w = comm.world();
            let peer = 1 - w.rank();
            w.send(peer, 0, 7u64, 64);
            let _: u64 = w.recv(peer, 0);
            comm.charge_io(0);
        });
        assert_eq!(r.traces.len(), 2);
        for (rank, trace) in r.traces.iter().enumerate() {
            let classes: Vec<char> = trace.iter().map(|e| e.class()).collect();
            assert!(classes.contains(&'C'), "rank {rank}: {classes:?}");
            assert!(classes.contains(&'S'));
            assert!(classes.contains(&'R'));
            // Events are recorded in clock order per rank.
            let times: Vec<f64> = trace.iter().map(crate::TraceEvent::at).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        }
        let rendered = crate::render_timeline(&r.traces, 0);
        assert!(rendered.contains("compute"));
        assert!(rendered.contains("-> r"));
        // Tracing off ⇒ empty timelines.
        let quiet = t3e(2).run(|comm| comm.advance(1e-3));
        assert!(quiet.traces.iter().all(Vec::is_empty));
    }

    #[test]
    fn many_ranks_run_on_one_core() {
        // 128 logical processors — the paper's full T3E — on any host.
        let r = ideal(128).run(|comm| {
            let mut v = vec![1u64; 4];
            comm.world().allreduce_sum_u64(&mut v);
            v[0]
        });
        assert!(r.results.iter().all(|&x| x == 128));
    }
}
