#![warn(missing_docs)]

//! # armine-mpsim
//!
//! A deterministic message-passing multicomputer simulator — the stand-in
//! for the paper's 128-processor Cray T3E and 16-node IBM SP2.
//!
//! Each logical processor runs as a real OS thread exchanging typed
//! messages over channels, so the algorithms *really execute* (hash trees
//! are built, counts are exchanged, results are exact). Time, however, is
//! **virtual**: every rank carries a clock advanced by
//!
//! * explicit compute charges ([`Comm::advance`]) priced from counted
//!   counting-structure operations (batched through
//!   [`Comm::charge_counting`] and a structure-agnostic [`CountingWork`]
//!   ledger),
//! * message costs under a postal model — per-message startup `t_s`,
//!   per-byte link occupancy `t_w` at the sender, per-byte unload at the
//!   single-ported receiver, and per-hop latency from the [`Topology`] —
//! * and optional I/O charges ([`Comm::charge_io`]) for re-scanning a
//!   disk-resident database.
//!
//! Message causality (`recv completes no earlier than the message's
//! arrival time`) and the collectives' communication rounds propagate
//! clocks between ranks, so the *response time* of a run — the maximum
//! final clock — reproduces the paper's scaling curves for any processor
//! count, independent of how many physical cores the host has.
//!
//! ## Example
//!
//! ```
//! use armine_mpsim::{Simulator, MachineProfile};
//!
//! let sim = Simulator::new(4).machine(MachineProfile::cray_t3e());
//! let result = sim.run(|comm| {
//!     let mut counts = vec![comm.rank() as u64 + 1; 8];
//!     let mut world = comm.world();
//!     world.allreduce_sum_u64(&mut counts);
//!     counts[0]
//! });
//! // 1 + 2 + 3 + 4 summed on every rank.
//! assert!(result.results.iter().all(|&c| c == 10));
//! assert!(result.response_time() > 0.0, "communication takes virtual time");
//! ```

//! ## Heterogeneous clusters
//!
//! A [`ClusterProfile`] describes a machine whose ranks are not all the
//! same speed: a base [`MachineProfile`] plus per-rank relative `speed`
//! factors, loadable from a small text file
//! ([`Simulator::cluster`]). Per-rank speeds multiply compute charges on
//! the sim backend and stretch counting brackets with real sleeps on the
//! native one; fault-plan straggler slowdowns ride the same combined
//! per-rank multiplier.

//! ## Fault injection
//!
//! A [`FaultPlan`] makes the simulated machine unreliable — deterministic
//! message loss with retransmit/backoff charged to the virtual clock,
//! per-rank compute slowdowns (stragglers), and rank crashes surfaced to
//! peers as failed receives ([`RecvFault`]) rather than hangs. Crashing
//! plans run through [`Simulator::run_with_faults`]; every fault decision
//! is a pure function of the plan seed and virtual state, so the same
//! plan reproduces bit-identical clocks and fault counters.

//! ## Execution backends
//!
//! [`Simulator::backend`] selects between the default virtual-time mode
//! ([`ExecBackend::Sim`]) and a native wall-clock mode
//! ([`ExecBackend::Native`]) where the same rank threads run at full
//! hardware speed: charges become no-ops that attribute real elapsed time
//! to counting/exchange/io categories, and per-rank [`WallTimings`] land
//! in [`SimResult::wall`]. Mined results are identical across backends;
//! fault plans require the sim backend.

mod comm;
mod fault;
mod machine;
mod message;
mod runtime;
mod stats;
mod topology;
mod trace;
mod wall;

pub use comm::{Comm, RecvFault, RecvHandle, Scope, SendHandle};
pub use fault::{CrashPoint, FaultPlan};
pub use machine::{ClusterProfile, CountingWork, MachineProfile};
pub use runtime::{SimResult, Simulator};
pub use stats::{imbalance, RankStats};
pub use topology::Topology;
pub use trace::{render_timeline, TraceEvent};
pub use wall::{ExecBackend, WallTimings};
