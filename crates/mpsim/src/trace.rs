//! Optional per-rank event traces.
//!
//! When enabled on the [`Simulator`](crate::Simulator), every rank records
//! a timeline of virtual-time events (compute, send, receive, I/O), which
//! the post-processing helpers can render as a textual Gantt-style
//! timeline — invaluable when a new algorithm's clocks come out wrong.

/// One virtual-time event on a rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Local computation: `[start, start + duration)`.
    Compute {
        /// Start of the charge (virtual seconds).
        start: f64,
        /// Duration (virtual seconds).
        duration: f64,
    },
    /// A message send (CPU-overhead start time; link occupancy until
    /// `completion`).
    Send {
        /// When the send was issued.
        start: f64,
        /// Sender-side completion (link free).
        completion: f64,
        /// Destination global rank.
        dst: usize,
        /// Wire bytes.
        bytes: usize,
    },
    /// A completed receive.
    Recv {
        /// When the receive completed (after arrival + unload).
        at: f64,
        /// Time spent blocked waiting for the message.
        idle: f64,
        /// Source global rank.
        src: usize,
        /// Wire bytes.
        bytes: usize,
    },
    /// An I/O charge.
    Io {
        /// Start of the charge.
        start: f64,
        /// Duration.
        duration: f64,
    },
}

impl TraceEvent {
    /// The event's (start) timestamp.
    pub fn at(&self) -> f64 {
        match *self {
            TraceEvent::Compute { start, .. } => start,
            TraceEvent::Send { start, .. } => start,
            TraceEvent::Recv { at, .. } => at,
            TraceEvent::Io { start, .. } => start,
        }
    }

    /// Single-letter class for compact rendering.
    pub fn class(&self) -> char {
        match self {
            TraceEvent::Compute { .. } => 'C',
            TraceEvent::Send { .. } => 'S',
            TraceEvent::Recv { .. } => 'R',
            TraceEvent::Io { .. } => 'I',
        }
    }
}

/// Renders per-rank timelines as text, one line per event, interleaved by
/// time — `limit` caps the number of lines (0 = unlimited).
pub fn render_timeline(traces: &[Vec<TraceEvent>], limit: usize) -> String {
    let mut events: Vec<(usize, &TraceEvent)> = traces
        .iter()
        .enumerate()
        .flat_map(|(rank, t)| t.iter().map(move |e| (rank, e)))
        .collect();
    events.sort_by(|a, b| a.1.at().partial_cmp(&b.1.at()).unwrap());
    let mut out = String::new();
    for (i, (rank, e)) in events.iter().enumerate() {
        if limit != 0 && i >= limit {
            out.push_str(&format!("... ({} more events)\n", events.len() - limit));
            break;
        }
        let line = match e {
            TraceEvent::Compute { start, duration } => {
                format!("{start:>12.6}s r{rank:<3} C compute {:.6}s", duration)
            }
            TraceEvent::Send {
                start,
                completion,
                dst,
                bytes,
            } => format!(
                "{start:>12.6}s r{rank:<3} S -> r{dst} {bytes}B (link free {completion:.6}s)"
            ),
            TraceEvent::Recv {
                at,
                idle,
                src,
                bytes,
            } => {
                format!("{at:>12.6}s r{rank:<3} R <- r{src} {bytes}B (idle {idle:.6}s)")
            }
            TraceEvent::Io { start, duration } => {
                format!("{start:>12.6}s r{rank:<3} I io {duration:.6}s")
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_report_timestamps_and_classes() {
        let c = TraceEvent::Compute {
            start: 1.0,
            duration: 0.5,
        };
        let s = TraceEvent::Send {
            start: 2.0,
            completion: 2.1,
            dst: 3,
            bytes: 100,
        };
        let r = TraceEvent::Recv {
            at: 3.0,
            idle: 0.2,
            src: 1,
            bytes: 50,
        };
        let io = TraceEvent::Io {
            start: 4.0,
            duration: 0.1,
        };
        assert_eq!(c.at(), 1.0);
        assert_eq!(s.at(), 2.0);
        assert_eq!(r.at(), 3.0);
        assert_eq!(io.at(), 4.0);
        assert_eq!(
            [c.class(), s.class(), r.class(), io.class()],
            ['C', 'S', 'R', 'I']
        );
    }

    #[test]
    fn timeline_sorts_and_limits() {
        let traces = vec![
            vec![TraceEvent::Compute {
                start: 2.0,
                duration: 1.0,
            }],
            vec![TraceEvent::Compute {
                start: 1.0,
                duration: 1.0,
            }],
        ];
        let full = render_timeline(&traces, 0);
        let first = full.lines().next().unwrap();
        assert!(
            first.contains("r1"),
            "earlier event (rank 1) first: {first}"
        );
        let limited = render_timeline(&traces, 1);
        assert!(limited.contains("1 more events"));
    }
}
