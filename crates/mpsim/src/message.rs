//! Message envelopes carried between ranks.

use std::any::Any;

/// A matching key: messages are addressed by (scope id, source rank, tag),
/// mirroring MPI's (communicator, source, tag) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct MatchKey {
    /// The scope (sub-communicator) the message belongs to.
    pub scope: u64,
    /// Global rank of the sender.
    pub src: usize,
    /// User tag.
    pub tag: u64,
}

/// A message in flight. The payload is type-erased; the receiver downcasts
/// with the type it expects (a mismatch is a protocol bug and panics with
/// a diagnostic).
pub(crate) struct Envelope {
    pub key: MatchKey,
    /// Virtual time at which the last byte reaches the receiver's inbox.
    pub arrival: f64,
    /// Wire size, charged again at the receiver as unload time
    /// (single-port model).
    pub bytes: usize,
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("key", &self.key)
            .field("arrival", &self.arrival)
            .field("bytes", &self.bytes)
            .finish()
    }
}
