//! Message envelopes carried between ranks.

use std::any::Any;

/// A matching key: messages are addressed by (scope id, source rank, tag),
/// mirroring MPI's (communicator, source, tag) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct MatchKey {
    /// The scope (sub-communicator) the message belongs to.
    pub scope: u64,
    /// Global rank of the sender.
    pub src: usize,
    /// User tag.
    pub tag: u64,
}

/// What an envelope carries: either user data, or a control notification
/// about the *sender's* fate. Control packets are matched by source rank
/// only (their key's scope/tag are ignored) and ride the same per-sender
/// FIFO channels as data, so "sent before crashing/aborting" is exactly
/// "delivered before the control packet" — the property the deterministic
/// failure-detection rule relies on.
pub(crate) enum Packet {
    /// Ordinary user payload; the receiver downcasts to the expected type.
    Data(Box<dyn Any + Send>),
    /// The sender's thread finished (cleanly or by panic) without a crash
    /// being injected. Receives still pending on it are protocol bugs and
    /// panic loudly instead of hanging.
    Goodbye {
        /// Whether the sender finished by panicking.
        panicked: bool,
    },
    /// The sender crashed (fault injection) at the given virtual time.
    Tombstone {
        /// Sender's virtual clock at the crash.
        at: f64,
    },
    /// The sender abandoned attempt `epoch` of a recovery protocol at the
    /// given virtual time; peers blocked on it in the same epoch fail
    /// their receives instead of waiting forever.
    Abort {
        /// The recovery-protocol attempt being abandoned.
        epoch: u64,
        /// Sender's virtual clock at the abort.
        at: f64,
    },
}

/// A message in flight. The payload is type-erased; the receiver downcasts
/// with the type it expects (a mismatch is a protocol bug and panics with
/// a diagnostic).
pub(crate) struct Envelope {
    pub key: MatchKey,
    /// Virtual time at which the last byte reaches the receiver's inbox.
    pub arrival: f64,
    /// Wire size, charged again at the receiver as unload time
    /// (single-port model).
    pub bytes: usize,
    pub packet: Packet,
}

impl Envelope {
    /// Whether this envelope carries user data (vs. a control packet).
    pub fn is_data(&self) -> bool {
        matches!(self.packet, Packet::Data(_))
    }
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.packet {
            Packet::Data(_) => "data",
            Packet::Goodbye { .. } => "goodbye",
            Packet::Tombstone { .. } => "tombstone",
            Packet::Abort { .. } => "abort",
        };
        f.debug_struct("Envelope")
            .field("key", &self.key)
            .field("arrival", &self.arrival)
            .field("bytes", &self.bytes)
            .field("kind", &kind)
            .finish()
    }
}
