//! Per-rank accounting of virtual time and traffic.

/// Where one rank's virtual time went, plus its traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Final virtual clock (response time of this rank).
    pub clock: f64,
    /// Time spent in explicit compute charges.
    pub busy: f64,
    /// Time spent blocked waiting for messages that had not arrived.
    pub idle: f64,
    /// Time spent in I/O charges.
    pub io: f64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Transmission attempts lost to injected faults and re-sent after an
    /// ack-timeout backoff (0 in fault-free runs). The backoff is charged
    /// to the virtual clock on the sim backend and really slept out on
    /// the wall clock on the native one.
    pub retransmits: u64,
    /// Failure-detector timeouts: receives that concluded the awaited
    /// peer was dead (after waiting out the plan's `detect_timeout` — in
    /// virtual time on sim, real time on native).
    pub timeouts: u64,
    /// Recovery events this rank committed (memberships shrunk and work
    /// redistributed after a peer crash).
    pub recoveries: u64,
}

impl RankStats {
    /// Time attributable to communication: everything that is neither
    /// compute, idle wait, nor I/O.
    pub fn comm_time(&self) -> f64 {
        (self.clock - self.busy - self.idle - self.io).max(0.0)
    }

    /// The time fields as `(name, seconds)` pairs — the metric-name
    /// suffixes the registry records under `armine.rank.<name>_seconds`.
    pub fn named_times(&self) -> [(&'static str, f64); 4] {
        [
            ("clock", self.clock),
            ("busy", self.busy),
            ("idle", self.idle),
            ("io", self.io),
        ]
    }

    /// The traffic and fault counters as `(name, count)` pairs — the
    /// metric-name suffixes the registry records under
    /// `armine.rank.<name>`. Exhaustively destructured so a newly added
    /// counter cannot be silently dropped from the export.
    pub fn named_counters(&self) -> [(&'static str, u64); 7] {
        let RankStats {
            clock: _,
            busy: _,
            idle: _,
            io: _,
            messages_sent,
            bytes_sent,
            messages_received,
            bytes_received,
            retransmits,
            timeouts,
            recoveries,
        } = *self;
        [
            ("messages_sent", messages_sent),
            ("bytes_sent", bytes_sent),
            ("messages_received", messages_received),
            ("bytes_received", bytes_received),
            ("retransmits", retransmits),
            ("timeouts", timeouts),
            ("recoveries", recoveries),
        ]
    }
}

/// Load imbalance across ranks for any per-rank metric: `max/avg − 1`.
pub fn imbalance(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    let avg = v.iter().sum::<f64>() / v.len() as f64;
    if avg <= 0.0 {
        return 0.0;
    }
    let max = v.iter().cloned().fold(f64::MIN, f64::max);
    max / avg - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_time_is_residual() {
        let s = RankStats {
            clock: 10.0,
            busy: 6.0,
            idle: 2.0,
            io: 1.0,
            ..Default::default()
        };
        assert!((s.comm_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_time_never_negative() {
        let s = RankStats {
            clock: 1.0,
            busy: 2.0,
            ..Default::default()
        };
        assert_eq!(s.comm_time(), 0.0);
    }

    #[test]
    fn imbalance_of_equal_loads_is_zero() {
        assert!(imbalance([3.0, 3.0, 3.0]) < 1e-12);
    }

    #[test]
    fn imbalance_metric_value() {
        // avg 2, max 3 → 0.5.
        assert!((imbalance([1.0, 2.0, 3.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn imbalance_degenerate_inputs() {
        assert_eq!(imbalance([]), 0.0);
        assert_eq!(imbalance([0.0, 0.0]), 0.0);
    }
}
