//! The native wall-clock execution backend.
//!
//! The simulator's second mode of operation: ranks are still one real OS
//! thread each exchanging owned messages over channels, but nothing is
//! priced on a virtual clock — `advance`/`charge_counting`/`charge_io`
//! stop charging and instead *measure*, attributing real elapsed time to
//! the work category the charge point brackets. The result is a run at
//! full hardware speed whose mined output is identical to the sim
//! backend's (message matching is by `(scope, src, tag)`, never by
//! arrival time) and whose [`WallTimings`] report where the host's time
//! actually went.
//!
//! Attribution is *bracketed*: every charge point in the drivers sits
//! immediately after the real work it prices (count a batch, then charge
//! it), so the wall time since the previous charge point belongs to that
//! category. Sends and receive completions attribute to `exchange`,
//! compute charges to `counting`, I/O charges to `io`.

use std::time::Instant;

/// Which execution backend a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Virtual-time simulation: charges priced by a [`crate::MachineProfile`]
    /// under a postal communication model (the default).
    #[default]
    Sim,
    /// Native wall-clock execution: no charges, real elapsed time measured
    /// per rank. Fault plans run for real here: injected crashes are
    /// worker-thread panics, stragglers — and slow
    /// [`crate::ClusterProfile`] ranks — sleep out their extra time, and
    /// drops retransmit against wall-clock RTO timers (see the fault
    /// module).
    Native,
}

impl ExecBackend {
    /// Every backend, in CLI listing order.
    pub const ALL: [ExecBackend; 2] = [ExecBackend::Sim, ExecBackend::Native];

    /// Short name ("sim" / "native").
    pub fn name(&self) -> &'static str {
        match self {
            ExecBackend::Sim => "sim",
            ExecBackend::Native => "native",
        }
    }

    /// Parses a backend name as the CLI spells it (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where one rank's real (wall-clock) time went during a native run.
/// All values are seconds since the rank's thread started.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WallTimings {
    /// Total wall time of the rank, thread start to closure return.
    pub total: f64,
    /// Wall time attributed to candidate counting and other compute
    /// charge points.
    pub counting: f64,
    /// Wall time attributed to message exchange: blocking receive waits
    /// plus send/receive handling.
    pub exchange: f64,
    /// Wall time attributed to I/O charge points (database scans).
    pub io: f64,
    /// `(pass, wall seconds at pass entry)` for every
    /// [`crate::Comm::enter_pass`] call, in order.
    pub pass_starts: Vec<(usize, f64)>,
}

impl WallTimings {
    /// The per-category totals as `(name, seconds)` pairs — the
    /// metric-name suffixes the registry records under
    /// `armine.wall.<name>_seconds`.
    pub fn named_times(&self) -> [(&'static str, f64); 4] {
        [
            ("total", self.total),
            ("counting", self.counting),
            ("exchange", self.exchange),
            ("io", self.io),
        ]
    }

    /// Per-pass wall durations `(pass, seconds)`: each pass runs from its
    /// entry to the next pass's entry (the last until `total`).
    pub fn pass_durations(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(self.pass_starts.len());
        for (i, &(pass, start)) in self.pass_starts.iter().enumerate() {
            let end = self
                .pass_starts
                .get(i + 1)
                .map_or(self.total, |&(_, next)| next);
            out.push((pass, (end - start).max(0.0)));
        }
        out
    }
}

/// The category a charge point attributes its bracket to.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WallCategory {
    Counting,
    Exchange,
    Io,
}

/// Per-rank measurement state of a native run, owned by the rank's
/// [`crate::Comm`].
pub(crate) struct NativeState {
    origin: Instant,
    /// Elapsed seconds at the previous charge point.
    last_mark: f64,
    timings: WallTimings,
}

impl NativeState {
    pub fn new() -> Self {
        Self::with_origin(Instant::now())
    }

    /// A state measuring from `origin`, so every rank of one run shares a
    /// common epoch and cross-rank timestamps (delayed-arrival deadlines,
    /// crash tombstones) are comparable.
    pub fn with_origin(origin: Instant) -> Self {
        NativeState {
            origin,
            last_mark: 0.0,
            timings: WallTimings::default(),
        }
    }

    /// Wall seconds since this rank's thread started.
    pub fn elapsed(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Read-only view of what has been attributed so far.
    pub fn timings(&self) -> &WallTimings {
        &self.timings
    }

    /// Attributes the time since the previous charge point to `category`
    /// and returns the bracket length in seconds (the straggler machinery
    /// scales injected sleeps by it).
    pub fn attribute(&mut self, category: WallCategory) -> f64 {
        let now = self.elapsed();
        let bracket = (now - self.last_mark).max(0.0);
        match category {
            WallCategory::Counting => self.timings.counting += bracket,
            WallCategory::Exchange => self.timings.exchange += bracket,
            WallCategory::Io => self.timings.io += bracket,
        }
        self.last_mark = now;
        bracket
    }

    /// Records a pass boundary.
    pub fn enter_pass(&mut self, pass: usize) {
        let now = self.elapsed();
        self.timings.pass_starts.push((pass, now));
    }

    /// Finalizes the measurement (sets `total`) and yields the timings.
    pub fn finish(mut self) -> WallTimings {
        self.timings.total = self.elapsed();
        self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in ExecBackend::ALL {
            assert_eq!(ExecBackend::parse(b.name()), Some(b));
            assert_eq!(ExecBackend::parse(&b.name().to_uppercase()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(ExecBackend::parse("Native"), Some(ExecBackend::Native));
        assert_eq!(ExecBackend::parse("quantum"), None);
        assert_eq!(ExecBackend::default(), ExecBackend::Sim);
    }

    #[test]
    fn attribution_brackets_elapsed_time() {
        let mut s = NativeState::new();
        std::thread::sleep(std::time::Duration::from_millis(5));
        s.attribute(WallCategory::Counting);
        std::thread::sleep(std::time::Duration::from_millis(5));
        s.attribute(WallCategory::Exchange);
        let t = s.finish();
        assert!(t.counting >= 4e-3, "counting bracket lost: {t:?}");
        assert!(t.exchange >= 4e-3, "exchange bracket lost: {t:?}");
        assert!(t.total >= t.counting + t.exchange - 1e-9);
    }

    #[test]
    fn pass_durations_partition_the_run() {
        let t = WallTimings {
            total: 10.0,
            pass_starts: vec![(1, 0.0), (2, 4.0), (3, 7.0)],
            ..WallTimings::default()
        };
        assert_eq!(t.pass_durations(), vec![(1, 4.0), (2, 3.0), (3, 3.0)]);
        assert!(WallTimings::default().pass_durations().is_empty());
    }
}
