//! Interconnect topologies.
//!
//! The topology contributes per-hop latency to message arrival times. The
//! paper's discussion of DD (Section III-B) notes that "on all realistic
//! parallel computers, the processors are connected via sparser networks
//! (such as 2D, 3D or hypercube)": the simulator provides those, plus the
//! idealized fully-connected network, so the DD-vs-IDD contrast can be
//! studied under different routing distances.

/// An interconnect shape; determines the hop count between ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Direct link between every pair (hop count 1).
    FullyConnected,
    /// Bidirectional ring: distance is the shorter way round.
    Ring,
    /// 2-D mesh (no wraparound), row-major rank layout.
    Mesh2D {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// 3-D torus (wraparound in all dimensions) — the Cray T3E's network.
    Torus3D {
        /// X dimension.
        x: usize,
        /// Y dimension.
        y: usize,
        /// Z dimension.
        z: usize,
    },
    /// Hypercube: distance is the Hamming distance of the rank ids.
    Hypercube,
}

impl Topology {
    /// Number of network hops between two ranks (0 for self).
    pub fn hops(&self, from: usize, to: usize, size: usize) -> usize {
        if from == to {
            return 0;
        }
        match *self {
            Topology::FullyConnected => 1,
            Topology::Ring => {
                let d = from.abs_diff(to);
                d.min(size - d)
            }
            Topology::Mesh2D { cols, .. } => {
                let (r1, c1) = (from / cols, from % cols);
                let (r2, c2) = (to / cols, to % cols);
                r1.abs_diff(r2) + c1.abs_diff(c2)
            }
            Topology::Torus3D { x, y, .. } => {
                let coords = |r: usize| (r % x, (r / x) % y, r / (x * y));
                let (x1, y1, z1) = coords(from);
                let (x2, y2, z2) = coords(to);
                let wrap = |a: usize, b: usize, dim: usize| {
                    let d = a.abs_diff(b);
                    d.min(dim - d)
                };
                let zdim = size / (x * y).max(1);
                wrap(x1, x2, x) + wrap(y1, y2, y) + wrap(z1, z2, zdim.max(1))
            }
            Topology::Hypercube => (from ^ to).count_ones() as usize,
        }
    }

    /// A torus sized to hold `p` ranks, mimicking T3E partitioning: the
    /// most cubic x·y·z ≥ p factorization of the next power of two.
    pub fn torus_for(p: usize) -> Topology {
        let mut dims = [1usize; 3];
        let mut total = 1;
        let mut axis = 0;
        while total < p {
            dims[axis] *= 2;
            total *= 2;
            axis = (axis + 1) % 3;
        }
        Topology::Torus3D {
            x: dims[0],
            y: dims[1],
            z: dims[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_distance_is_zero() {
        for t in [
            Topology::FullyConnected,
            Topology::Ring,
            Topology::Mesh2D { rows: 2, cols: 4 },
            Topology::Hypercube,
        ] {
            assert_eq!(t.hops(3, 3, 8), 0);
        }
    }

    #[test]
    fn ring_wraps_both_ways() {
        let r = Topology::Ring;
        assert_eq!(r.hops(0, 1, 8), 1);
        assert_eq!(r.hops(0, 7, 8), 1, "wraparound is one hop");
        assert_eq!(r.hops(0, 4, 8), 4);
        assert_eq!(r.hops(6, 2, 8), 4);
    }

    #[test]
    fn mesh_is_manhattan() {
        let m = Topology::Mesh2D { rows: 3, cols: 4 };
        // rank 0 = (0,0), rank 11 = (2,3).
        assert_eq!(m.hops(0, 11, 12), 5);
        assert_eq!(m.hops(1, 2, 12), 1);
    }

    #[test]
    fn hypercube_is_hamming() {
        let h = Topology::Hypercube;
        assert_eq!(h.hops(0b000, 0b111, 8), 3);
        assert_eq!(h.hops(0b101, 0b100, 8), 1);
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::Torus3D { x: 4, y: 4, z: 2 };
        // x-neighbours across the wrap.
        assert_eq!(t.hops(0, 3, 32), 1);
    }

    #[test]
    fn torus_for_covers_p() {
        for p in [1, 2, 7, 16, 128] {
            if let Topology::Torus3D { x, y, z } = Topology::torus_for(p) {
                assert!(x * y * z >= p, "torus too small for {p}");
            } else {
                panic!("expected torus");
            }
        }
    }

    #[test]
    fn symmetric_distances() {
        for t in [
            Topology::Ring,
            Topology::Mesh2D { rows: 4, cols: 4 },
            Topology::Hypercube,
            Topology::Torus3D { x: 4, y: 2, z: 2 },
        ] {
            for a in 0..16 {
                for b in 0..16 {
                    assert_eq!(t.hops(a, b, 16), t.hops(b, a, 16), "{t:?} {a}->{b}");
                }
            }
        }
    }
}
