//! Property-based tests of the simulator's collectives: for arbitrary
//! member counts, vector lengths and contents, the algorithms must
//! produce exactly the mathematical result on every rank — and virtual
//! time must stay deterministic and causal.

use armine_mpsim::{MachineProfile, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ring allreduce == element-wise sum, any p, any length.
    #[test]
    fn allreduce_is_sum(
        p in 1usize..10,
        base in prop::collection::vec(0u64..1000, 0..40),
    ) {
        let base_ref = &base;
        let r = Simulator::new(p)
            .machine(MachineProfile::ideal())
            .run(move |comm| {
                let mut v: Vec<u64> = base_ref
                    .iter()
                    .map(|&x| x + comm.rank() as u64)
                    .collect();
                comm.world().allreduce_sum_u64(&mut v);
                v
            });
        let rank_sum: u64 = (0..p as u64).sum();
        for got in &r.results {
            let want: Vec<u64> = base.iter().map(|&x| x * p as u64 + rank_sum).collect();
            prop_assert_eq!(got, &want);
        }
    }

    /// Allgather delivers every member's value in member order.
    #[test]
    fn allgather_orders_by_rank(p in 1usize..10, salt in 0u64..1000) {
        let r = Simulator::new(p)
            .machine(MachineProfile::ideal())
            .run(move |comm| {
                let mine = comm.rank() as u64 * 1000 + salt;
                comm.world().allgather(mine, 8)
            });
        for got in &r.results {
            let want: Vec<u64> = (0..p as u64).map(|i| i * 1000 + salt).collect();
            prop_assert_eq!(got, &want);
        }
    }

    /// Broadcast delivers the root's value everywhere, for any root.
    #[test]
    fn broadcast_delivers(p in 1usize..10, root_seed in 0usize..100, payload in 0u64..u64::MAX) {
        let root = root_seed % p;
        let r = Simulator::new(p)
            .machine(MachineProfile::ideal())
            .run(move |comm| {
                let mut w = comm.world();
                let value = (w.rank() == root).then_some(payload);
                w.broadcast(root, value, 8)
            });
        prop_assert!(r.results.iter().all(|&v| v == payload));
    }

    /// Response time is deterministic and never below any rank's busy time.
    #[test]
    fn virtual_time_causal_and_deterministic(
        p in 2usize..8,
        work_us in prop::collection::vec(1u64..500, 2..8),
    ) {
        let work = &work_us;
        let run = || {
            Simulator::new(p).run(move |comm| {
                let us = work[comm.rank() % work.len()] as f64 * 1e-6;
                comm.advance(us);
                let mut v = vec![comm.rank() as u64; 16];
                comm.world().allreduce_sum_u64(&mut v);
                comm.clock()
            })
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.results, &b.results, "virtual clocks must be reproducible");
        let max_busy = work.iter().take(p).cloned().max().unwrap_or(0) as f64 * 1e-6;
        prop_assert!(a.response_time() >= max_busy - 1e-12);
        // Everyone's post-allreduce clock is at least the slowest rank's
        // pre-collective compute (the collective synchronizes).
        let slowest = (0..p)
            .map(|r| work[r % work.len()] as f64 * 1e-6)
            .fold(0.0f64, f64::max);
        for &c in &a.results {
            prop_assert!(c >= slowest - 1e-12);
        }
    }
}
