//! The analytical performance model of Section IV.
//!
//! The centerpiece is `V(i, j)` — the expected number of **distinct** leaf
//! nodes a transaction with `i` potential candidates visits in a hash tree
//! with `j` leaves (Equation 1):
//!
//! ```text
//! V(1, j) = 1
//! V(i, j) = 1 + (j-1)/j · V(i-1, j)  =  (jⁱ - (j-1)ⁱ) / jⁱ⁻¹
//! ```
//!
//! with the limit `V(i, j) → i` as `j → ∞` (Equation 2): when the tree is
//! much larger than the number of potential candidates, every potential
//! candidate lands in its own leaf. This asymmetry — `V(C, L/P) > V(C, L)/P`
//! — is exactly the redundant work DD performs and IDD eliminates, and it
//! is what Figure 11 measures.
//!
//! The per-algorithm runtime equations (3–7) and the HD `G` window
//! (Equation 8) are provided for analysis and for cross-checking the
//! simulator's measured curves against the paper's closed forms.

/// Expected number of distinct leaves visited: `V(i, j)` of Equation 1.
///
/// `i` is the number of potential candidates of the transaction
/// (`C = (|t| choose k)`), `j` the number of leaves in the hash tree
/// (`L = M/S`). Returns 0 when either argument is 0.
pub fn expected_distinct_leaves(i: f64, j: f64) -> f64 {
    if i <= 0.0 || j <= 0.0 {
        return 0.0;
    }
    // j · (1 - (1 - 1/j)^i): numerically stable form of (jⁱ-(j-1)ⁱ)/jⁱ⁻¹,
    // computed as j · (-expm1(i · ln(1 - 1/j))).
    let log_ratio = (-1.0 / j).ln_1p(); // ln(1 - 1/j) ≤ 0
    j * -((i * log_ratio).exp_m1())
}

/// Machine and algorithm constants for the closed-form runtimes.
///
/// Time unit is seconds. The communication constants for the paper's two
/// testbeds are provided by [`CostParams::cray_t3e`] and
/// [`CostParams::ibm_sp2`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of one hash-tree descent per potential candidate (`t_travers`).
    pub t_travers: f64,
    /// Cost of checking the candidates of one leaf (`t_check`).
    pub t_check: f64,
    /// Cost of inserting one candidate during tree construction.
    pub t_insert: f64,
    /// Message startup latency (`t_s`).
    pub t_s: f64,
    /// Per-byte transfer time (`t_w`).
    pub t_w: f64,
    /// Wire bytes per transaction (id + length + items).
    pub bytes_per_transaction: f64,
    /// Wire bytes per candidate count entry in reductions/broadcasts.
    pub bytes_per_candidate: f64,
    /// Extra cost per transaction-byte re-read when the hash tree is
    /// partitioned and the database is scanned again (0 when I/O is
    /// simulated from memory, as the paper does on the T3E).
    pub io_per_byte: f64,
}

impl CostParams {
    /// Constants approximating the paper's Cray T3E: 303 MB/s effective
    /// bandwidth, 16 µs message startup, 600 MHz Alpha EV5 compute.
    pub fn cray_t3e() -> Self {
        CostParams {
            t_travers: 60e-9,
            t_check: 500e-9,
            t_insert: 400e-9,
            t_s: 16e-6,
            t_w: 1.0 / 303e6,
            bytes_per_transaction: 12.0 + 4.0 * 15.0, // avg |t| = 15
            bytes_per_candidate: 8.0,
            io_per_byte: 0.0,
        }
    }

    /// Constants approximating the paper's IBM SP2: 110 MB/s HPS peak
    /// (~35 MB/s effective), 66.7 MHz Power2 compute (≈9× slower per op
    /// than the T3E's Alpha), disk-resident database.
    pub fn ibm_sp2() -> Self {
        CostParams {
            t_travers: 540e-9,
            t_check: 4.5e-6,
            t_insert: 3.6e-6,
            t_s: 40e-6,
            t_w: 1.0 / 35e6,
            bytes_per_transaction: 12.0 + 4.0 * 15.0,
            bytes_per_candidate: 8.0,
            io_per_byte: 1.0 / 20e6, // ~20 MB/s sustained disk scan
        }
    }
}

/// The workload of one pass, in the symbols of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Total number of transactions (`N`).
    pub n: f64,
    /// Total number of candidates (`M`).
    pub m: f64,
    /// Average potential candidates per transaction (`C = (I choose k)`).
    pub c: f64,
    /// Average candidates per leaf (`S`).
    pub s: f64,
}

impl Workload {
    /// Average leaves in the full serial hash tree (`L = M/S`).
    pub fn leaves(&self) -> f64 {
        if self.s <= 0.0 {
            0.0
        } else {
            self.m / self.s
        }
    }
}

/// Equation 3: serial Apriori runtime
/// `N·C·t_travers + N·V(C,L)·t_check + O(M)`.
pub fn serial_time(w: &Workload, p: &CostParams) -> f64 {
    let l = w.leaves();
    w.n * w.c * p.t_travers + w.n * expected_distinct_leaves(w.c, l) * p.t_check + w.m * p.t_insert
}

/// Equation 4: CD per-processor runtime. Each processor builds the *whole*
/// tree (O(M)), counts N/P transactions over it, then pays an O(M) global
/// reduction.
pub fn cd_time(w: &Workload, procs: f64, p: &CostParams) -> f64 {
    let l = w.leaves();
    w.n / procs * w.c * p.t_travers
        + w.n / procs * expected_distinct_leaves(w.c, l) * p.t_check
        + w.m * p.t_insert
        + w.m * p.bytes_per_candidate * p.t_w // global reduction, O(M)
}

/// Equation 5: DD per-processor runtime. All N transactions pass through a
/// tree of M/P candidates (L/P leaves): traversal work is NOT reduced, leaf
/// checking is reduced by less than P, and O(N) data movement is added.
pub fn dd_time(w: &Workload, procs: f64, p: &CostParams) -> f64 {
    let l = w.leaves();
    w.n * w.c * p.t_travers
        + w.n * expected_distinct_leaves(w.c, l / procs) * p.t_check
        + w.m / procs * p.t_insert
        + w.n * p.bytes_per_transaction * p.t_w // data movement, O(N)
}

/// Equation 6: IDD per-processor runtime. The bitmap filter cuts potential
/// candidates to C/P, so both traversal and leaf checking scale down
/// linearly; data movement stays O(N).
pub fn idd_time(w: &Workload, procs: f64, p: &CostParams) -> f64 {
    let l = w.leaves();
    w.n * w.c / procs * p.t_travers
        + w.n * expected_distinct_leaves(w.c / procs, l / procs) * p.t_check
        + w.m / procs * p.t_insert
        + w.n * p.bytes_per_transaction * p.t_w
}

/// Equation 7: HD per-processor runtime with `G` candidate partitions
/// (grid of G rows × P/G columns). Each processor handles G·N/P
/// transactions against a tree of M/G candidates, moves G·N/P transaction
/// data, and reduces O(M/G) counts.
pub fn hd_time(w: &Workload, procs: f64, g: f64, p: &CostParams) -> f64 {
    let l = w.leaves();
    let g = g.clamp(1.0, procs);
    g * w.n / procs * (w.c / g) * p.t_travers
        + g * w.n / procs * expected_distinct_leaves(w.c / g, l / g) * p.t_check
        + w.m / g * p.t_insert
        + g * w.n / procs * p.bytes_per_transaction * p.t_w
        + w.m / g * p.bytes_per_candidate * p.t_w
}

/// Equation 8: the open interval of `G` values for which HD beats CD,
/// `1 < G < O(M·P/N)`. Returns `None` when the window is empty (CD is
/// already optimal, i.e. HD should choose G = 1 and *be* CD).
pub fn hd_beats_cd_window(m: f64, n: f64, procs: f64) -> Option<(f64, f64)> {
    let upper = m * procs / n;
    (upper > 1.0).then_some((1.0, upper))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Monte-Carlo estimate of V(i, j): throw i balls into j bins uniformly
    /// and count occupied bins.
    fn monte_carlo_v(i: usize, j: usize, trials: usize, seed: u64) -> f64 {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0usize;
        let mut seen = vec![0u32; j];
        for trial in 1..=trials as u32 {
            for _ in 0..i {
                seen[rng.gen_range(0..j)] = trial;
            }
            total += seen.iter().filter(|&&s| s == trial).count();
        }
        total as f64 / trials as f64
    }

    #[test]
    fn v_base_cases() {
        assert_eq!(expected_distinct_leaves(0.0, 10.0), 0.0);
        assert_eq!(expected_distinct_leaves(5.0, 0.0), 0.0);
        assert!(
            (expected_distinct_leaves(1.0, 7.0) - 1.0).abs() < 1e-9,
            "V(1,j) = 1"
        );
    }

    #[test]
    fn v_matches_recurrence() {
        // V(i,j) = 1 + (j-1)/j · V(i-1,j), checked for a grid of values.
        for j in [2.0, 5.0, 50.0, 1000.0] {
            let mut v = 1.0;
            for i in 2..=30 {
                v = 1.0 + (j - 1.0) / j * v;
                let closed = expected_distinct_leaves(i as f64, j);
                assert!(
                    (closed - v).abs() < 1e-6 * v,
                    "V({i},{j}): closed {closed} vs recurrence {v}"
                );
            }
        }
    }

    #[test]
    fn v_limit_is_i_for_large_j() {
        // Equation 2: lim_{j→∞} V(i,j) = i.
        let v = expected_distinct_leaves(20.0, 1e9);
        assert!((v - 20.0).abs() < 1e-5, "got {v}");
    }

    #[test]
    fn v_bounded_by_min_i_j() {
        for &(i, j) in &[(3.0, 10.0), (100.0, 7.0), (50.0, 50.0)] {
            let v = expected_distinct_leaves(i, j);
            assert!(v <= i.min(j) + 1e-9, "V({i},{j}) = {v} exceeds min(i,j)");
            assert!(v > 0.0);
        }
    }

    #[test]
    fn v_monotone_in_both_arguments() {
        let mut prev = 0.0;
        for i in 1..=40 {
            let v = expected_distinct_leaves(i as f64, 25.0);
            assert!(v > prev, "V must increase with i");
            prev = v;
        }
        let mut prev = 0.0;
        for j in 1..=40 {
            let v = expected_distinct_leaves(25.0, j as f64);
            assert!(v > prev, "V must increase with j");
            prev = v;
        }
    }

    #[test]
    fn v_matches_monte_carlo() {
        for &(i, j) in &[(10usize, 8usize), (30, 100), (100, 20)] {
            let closed = expected_distinct_leaves(i as f64, j as f64);
            let mc = monte_carlo_v(i, j, 4000, 42);
            let rel = (closed - mc).abs() / closed;
            assert!(rel < 0.03, "V({i},{j}): closed {closed}, MC {mc}");
        }
    }

    #[test]
    fn dd_redundancy_v_asymmetry() {
        // The heart of the DD critique: V(C, L/P) > V(C, L)/P.
        let (c, l, p) = (500.0, 10_000.0, 16.0);
        let dd_checks = expected_distinct_leaves(c, l / p);
        let fair_share = expected_distinct_leaves(c, l) / p;
        assert!(
            dd_checks > 2.0 * fair_share,
            "DD leaf checking should be far above the fair share: {dd_checks} vs {fair_share}"
        );
        // And IDD's V(C/P, L/P) is close to the fair share.
        let idd_checks = expected_distinct_leaves(c / p, l / p);
        assert!(idd_checks < 1.2 * fair_share);
    }

    fn paper_workload() -> Workload {
        Workload {
            n: 1_000_000.0,
            m: 700_000.0,
            c: 455.0, // (15 choose 3)
            s: 16.0,
        }
    }

    #[test]
    fn cd_scales_in_n_but_not_m() {
        let p = CostParams::cray_t3e();
        let w = paper_workload();
        let t16 = cd_time(&w, 16.0, &p);
        let t64 = cd_time(&w, 64.0, &p);
        assert!(t64 < t16, "more processors, less time");
        // Per-processor efficiency in N: doubling N roughly doubles time.
        let mut w2 = w;
        w2.n *= 2.0;
        let t64_2n = cd_time(&w2, 64.0, &p);
        assert!(t64_2n > 1.7 * t64 && t64_2n < 2.3 * t64);
        // But the O(M) term does not parallelize: with M scaled 10x and N
        // tiny, time approaches 10x the tree cost regardless of P.
        let mut wm = w;
        wm.n = 1000.0;
        wm.m *= 10.0;
        assert!(cd_time(&wm, 64.0, &p) > 5.0 * cd_time(&w, 64.0, &p) * 0.1);
    }

    #[test]
    fn dd_slower_than_idd_slower_than_serial_per_processor_work() {
        let p = CostParams::cray_t3e();
        let w = paper_workload();
        let procs = 32.0;
        let serial = serial_time(&w, &p);
        let dd = dd_time(&w, procs, &p);
        let idd = idd_time(&w, procs, &p);
        assert!(idd < dd, "IDD strictly improves on DD");
        // IDD achieves near-linear speedup on computation; DD does not.
        assert!(serial / idd > 0.5 * procs);
        assert!(serial / dd < 0.3 * procs);
    }

    #[test]
    fn hd_interpolates_cd_and_idd() {
        let p = CostParams::cray_t3e();
        let w = paper_workload();
        let procs = 64.0;
        // G = 1 reduces to CD's compute profile (plus negligible extras).
        let hd1 = hd_time(&w, procs, 1.0, &p);
        let cd = cd_time(&w, procs, &p);
        assert!((hd1 - cd).abs() / cd < 0.05, "HD(G=1) ≈ CD: {hd1} vs {cd}");
        // G = P reduces to IDD.
        let hdp = hd_time(&w, procs, procs, &p);
        let idd = idd_time(&w, procs, &p);
        assert!(
            (hdp - idd).abs() / idd < 0.05,
            "HD(G=P) ≈ IDD: {hdp} vs {idd}"
        );
    }

    #[test]
    fn hd_window_matches_equation_8() {
        // M relatively large vs N: wide window.
        let win = hd_beats_cd_window(8e6, 1.3e6, 64.0).unwrap();
        assert!(win.1 > 100.0);
        // N very large compared to M·P: no window; HD should pick G=1 (=CD).
        assert!(hd_beats_cd_window(1e4, 1e9, 16.0).is_none());
    }

    #[test]
    fn hd_optimal_g_grows_with_m() {
        let p = CostParams::cray_t3e();
        let procs = 64.0;
        let best_g = |m: f64| -> f64 {
            let w = Workload {
                n: 1.3e6,
                m,
                c: 455.0,
                s: 16.0,
            };
            let mut best = (f64::INFINITY, 1.0);
            for g in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
                let t = hd_time(&w, procs, g, &p);
                if t < best.0 {
                    best = (t, g);
                }
            }
            best.1
        };
        assert!(
            best_g(8e6) >= best_g(7e5),
            "larger candidate sets favour more candidate partitions"
        );
    }

    #[test]
    fn workload_leaves() {
        let w = paper_workload();
        assert!((w.leaves() - 43750.0).abs() < 1e-9);
        let degenerate = Workload { s: 0.0, ..w };
        assert_eq!(degenerate.leaves(), 0.0);
    }
}
