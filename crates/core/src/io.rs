//! Plain-text transaction database I/O.
//!
//! The format is one transaction per line: whitespace-separated item ids,
//! optionally prefixed by `tid:`. Lines that are empty or start with `#`
//! are skipped. This matches the de-facto format of public association-rule
//! datasets (e.g. the FIMI repository), so real datasets drop in directly.
//!
//! ```text
//! # minsup experiments, T15.I6
//! 1: 3 5 19 204
//! 2: 5 19
//! 3 5 7
//! ```

use crate::dataset::Dataset;
use crate::item::Item;
use crate::transaction::Transaction;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from reading a transaction database.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A token could not be parsed as an item id.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, token } => {
                write!(f, "line {line}: invalid item id {token:?}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads a transaction database from any reader.
///
/// Transactions without an explicit `tid:` prefix get sequential ids
/// starting from 1.
pub fn read_transactions<R: Read>(reader: R) -> Result<Dataset, ReadError> {
    let buf = BufReader::new(reader);
    let mut transactions = Vec::new();
    let mut next_tid: u64 = 1;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (tid, rest) = match trimmed.split_once(':') {
            Some((tid_str, rest)) => {
                let tid = tid_str
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| ReadError::Parse {
                        line: lineno + 1,
                        token: tid_str.trim().to_owned(),
                    })?;
                (tid, rest)
            }
            None => (next_tid, trimmed),
        };
        let mut items = Vec::new();
        for token in rest.split_whitespace() {
            let id = token.parse::<u32>().map_err(|_| ReadError::Parse {
                line: lineno + 1,
                token: token.to_owned(),
            })?;
            items.push(Item(id));
        }
        transactions.push(Transaction::new(tid, items));
        next_tid = tid + 1;
    }
    Ok(Dataset::new(transactions))
}

/// Reads a transaction database from a file path.
pub fn read_transactions_file<P: AsRef<Path>>(path: P) -> Result<Dataset, ReadError> {
    read_transactions(std::fs::File::open(path)?)
}

/// Writes a dataset in the text format (with explicit tids).
pub fn write_transactions<W: Write>(writer: W, dataset: &Dataset) -> std::io::Result<()> {
    let mut buf = BufWriter::new(writer);
    for t in dataset.transactions() {
        write!(buf, "{}:", t.tid())?;
        for item in t.items() {
            write!(buf, " {item}")?;
        }
        writeln!(buf)?;
    }
    buf.flush()
}

/// Writes a dataset to a file path.
pub fn write_transactions_file<P: AsRef<Path>>(path: P, dataset: &Dataset) -> std::io::Result<()> {
    write_transactions(std::fs::File::create(path)?, dataset)
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------
//
// Layout (all little-endian):
//   magic  b"ARMN"  | version u32 = 1 | num_items u32 | num_transactions u64
//   then per transaction: tid u64 | len u32 | len × item u32
//
// Roughly 3–4× smaller than the text form and parses an order of magnitude
// faster — worth it for multi-million-transaction experiment inputs.

const BINARY_MAGIC: &[u8; 4] = b"ARMN";
const BINARY_VERSION: u32 = 1;

/// Writes a dataset in the compact binary format.
pub fn write_transactions_binary<W: Write>(writer: W, dataset: &Dataset) -> std::io::Result<()> {
    let mut buf = BufWriter::new(writer);
    buf.write_all(BINARY_MAGIC)?;
    buf.write_all(&BINARY_VERSION.to_le_bytes())?;
    buf.write_all(&dataset.num_items().to_le_bytes())?;
    buf.write_all(&(dataset.len() as u64).to_le_bytes())?;
    for t in dataset.transactions() {
        buf.write_all(&t.tid().to_le_bytes())?;
        buf.write_all(&(t.len() as u32).to_le_bytes())?;
        for item in t.items() {
            buf.write_all(&item.id().to_le_bytes())?;
        }
    }
    buf.flush()
}

/// Reads a dataset written by [`write_transactions_binary`].
pub fn read_transactions_binary<R: Read>(reader: R) -> Result<Dataset, ReadError> {
    let mut buf = BufReader::new(reader);
    let mut magic = [0u8; 4];
    buf.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(ReadError::Parse {
            line: 0,
            token: format!("bad magic {magic:?}"),
        });
    }
    let version = read_u32(&mut buf)?;
    if version != BINARY_VERSION {
        return Err(ReadError::Parse {
            line: 0,
            token: format!("unsupported version {version}"),
        });
    }
    let num_items = read_u32(&mut buf)?;
    let n = read_u64(&mut buf)?;
    let mut transactions = Vec::with_capacity(n.min(1 << 24) as usize);
    for _ in 0..n {
        let tid = read_u64(&mut buf)?;
        let len = read_u32(&mut buf)? as usize;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            let id = read_u32(&mut buf)?;
            if id >= num_items {
                return Err(ReadError::Parse {
                    line: 0,
                    token: format!("item {id} outside universe {num_items}"),
                });
            }
            items.push(Item(id));
        }
        transactions.push(Transaction::new(tid, items));
    }
    Ok(Dataset::with_num_items(transactions, num_items))
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a transaction database, auto-detecting the binary format by its
/// magic bytes and falling back to the text parser.
pub fn read_transactions_auto<P: AsRef<Path>>(path: P) -> Result<Dataset, ReadError> {
    let bytes = std::fs::read(path)?;
    if bytes.starts_with(BINARY_MAGIC) {
        read_transactions_binary(&bytes[..])
    } else {
        read_transactions(&bytes[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_format() {
        let text = "# comment\n\n1: 3 5 19\n2: 5 19\n7 3\n";
        let d = read_transactions(text.as_bytes()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.transactions()[0].tid(), 1);
        assert_eq!(d.transactions()[1].tid(), 2);
        // Line without a tid continues the sequence.
        assert_eq!(d.transactions()[2].tid(), 3);
        assert_eq!(
            d.transactions()[2].items(),
            &[Item(3), Item(7)],
            "items are sorted on ingest"
        );
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let original = Dataset::new(vec![
            Transaction::new(10, vec![Item(4), Item(1)]),
            Transaction::new(11, vec![Item(9)]),
            Transaction::new(12, vec![]),
        ]);
        let mut bytes = Vec::new();
        write_transactions(&mut bytes, &original).unwrap();
        let reread = read_transactions(&bytes[..]).unwrap();
        assert_eq!(reread.len(), original.len());
        for (a, b) in reread.transactions().iter().zip(original.transactions()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bad_item_reports_line_and_token() {
        let err = read_transactions("1: 3 x 5\n".as_bytes()).unwrap_err();
        match err {
            ReadError::Parse { line, token } => {
                assert_eq!(line, 1);
                assert_eq!(token, "x");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn bad_tid_reports_error() {
        let err = read_transactions("abc: 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_dataset() {
        let d = read_transactions("".as_bytes()).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let original = Dataset::with_num_items(
            vec![
                Transaction::new(10, vec![Item(4), Item(1)]),
                Transaction::new(11, vec![Item(9)]),
                Transaction::new(12, vec![]),
            ],
            50,
        );
        let mut bytes = Vec::new();
        write_transactions_binary(&mut bytes, &original).unwrap();
        let reread = read_transactions_binary(&bytes[..]).unwrap();
        assert_eq!(reread.transactions(), original.transactions());
        assert_eq!(reread.num_items(), 50, "universe size survives");
    }

    #[test]
    fn binary_rejects_bad_magic_and_version() {
        let err = read_transactions_binary(&b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("magic") || err.to_string().contains("i/o"));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ARMN");
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_transactions_binary(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn binary_rejects_out_of_universe_item() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ARMN");
        bytes.extend_from_slice(&1u32.to_le_bytes()); // version
        bytes.extend_from_slice(&5u32.to_le_bytes()); // num_items
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one transaction
        bytes.extend_from_slice(&1u64.to_le_bytes()); // tid
        bytes.extend_from_slice(&1u32.to_le_bytes()); // len
        bytes.extend_from_slice(&9u32.to_le_bytes()); // item 9 >= 5
        let err = read_transactions_binary(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("universe"));
    }

    #[test]
    fn binary_truncated_input_is_io_error() {
        let original = Dataset::new(vec![Transaction::new(1, vec![Item(0), Item(1)])]);
        let mut bytes = Vec::new();
        write_transactions_binary(&mut bytes, &original).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            read_transactions_binary(&bytes[..]),
            Err(ReadError::Io(_))
        ));
    }

    #[test]
    fn auto_detection_reads_both_formats() {
        let dir = std::env::temp_dir().join("armine_io_auto");
        std::fs::create_dir_all(&dir).unwrap();
        let d = Dataset::new(vec![Transaction::new(1, vec![Item(2), Item(3)])]);

        let text_path = dir.join("db.txt");
        write_transactions_file(&text_path, &d).unwrap();
        let bin_path = dir.join("db.bin");
        write_transactions_binary(std::fs::File::create(&bin_path).unwrap(), &d).unwrap();

        for p in [&text_path, &bin_path] {
            let r = read_transactions_auto(p).unwrap();
            assert_eq!(r.transactions(), d.transactions(), "{}", p.display());
        }
        std::fs::remove_file(text_path).ok();
        std::fs::remove_file(bin_path).ok();
    }

    #[test]
    fn binary_is_smaller_than_text() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let d = Dataset::new(
            (0..200)
                .map(|tid| {
                    Transaction::new(
                        tid,
                        (0..15).map(|_| Item(rng.gen_range(0..100_000))).collect(),
                    )
                })
                .collect(),
        );
        let mut text = Vec::new();
        write_transactions(&mut text, &d).unwrap();
        let mut bin = Vec::new();
        write_transactions_binary(&mut bin, &d).unwrap();
        assert!(
            bin.len() < text.len(),
            "binary {} should beat text {}",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("armine_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.txt");
        let d = Dataset::new(vec![Transaction::new(1, vec![Item(2), Item(3)])]);
        write_transactions_file(&path, &d).unwrap();
        let r = read_transactions_file(&path).unwrap();
        assert_eq!(r.transactions(), d.transactions());
        std::fs::remove_file(&path).ok();
    }
}
