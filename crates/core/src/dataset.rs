//! A transaction database with summary statistics and partitioning helpers.

use crate::item::{Item, ItemInterner};
use crate::itemset::ItemSet;
use crate::transaction::Transaction;

/// A horizontal transaction database (`T` in the paper), optionally with an
/// item-name interner for human-readable examples.
///
/// Parallel algorithms assume the transactions are evenly distributed among
/// processors (Section III); [`Dataset::partition`] produces that
/// distribution.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    transactions: Vec<Transaction>,
    interner: Option<ItemInterner>,
    num_items: u32,
}

impl Dataset {
    /// Builds a dataset from transactions; `num_items` is inferred as
    /// `max item id + 1`.
    pub fn new(transactions: Vec<Transaction>) -> Self {
        let num_items = transactions
            .iter()
            .filter_map(|t| t.items().last())
            .map(|i| i.id() + 1)
            .max()
            .unwrap_or(0);
        Dataset {
            transactions,
            interner: None,
            num_items,
        }
    }

    /// Builds a dataset from transactions with an explicit item universe
    /// size (`|I|`), which may exceed the largest id actually occurring.
    pub fn with_num_items(transactions: Vec<Transaction>, num_items: u32) -> Self {
        debug_assert!(
            transactions
                .iter()
                .all(|t| t.items().last().is_none_or(|i| i.id() < num_items)),
            "transaction item exceeds declared universe"
        );
        Dataset {
            transactions,
            interner: None,
            num_items,
        }
    }

    /// Builds a dataset from named transactions, interning item names.
    /// Transaction ids are assigned 1-based in order, matching Table I.
    pub fn from_named_transactions(named: &[&[&str]]) -> Self {
        let mut interner = ItemInterner::new();
        let transactions = named
            .iter()
            .enumerate()
            .map(|(i, names)| {
                let items = names.iter().map(|n| interner.intern(n)).collect();
                Transaction::new(i as u64 + 1, items)
            })
            .collect();
        let num_items = interner.len() as u32;
        Dataset {
            transactions,
            interner: Some(interner),
            num_items,
        }
    }

    /// The transactions.
    #[inline]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions (`N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Size of the item universe (`|I|`): valid ids are `0..num_items`.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The item-name interner, present when built from named transactions.
    pub fn interner(&self) -> Option<&ItemInterner> {
        self.interner.as_ref()
    }

    /// Resolves named items into an [`ItemSet`]; `None` if any name is
    /// unknown or the dataset has no interner.
    pub fn itemset(&self, names: &[&str]) -> Option<ItemSet> {
        let interner = self.interner.as_ref()?;
        let items: Option<Vec<Item>> = names.iter().map(|n| interner.get(n)).collect();
        Some(ItemSet::new(items?))
    }

    /// Support count of `set`: the number of transactions containing it —
    /// σ(C) of Section II, computed by brute force. The mining algorithms
    /// never call this (they use the hash tree); it exists as the ground
    /// truth for tests and examples.
    pub fn support_count(&self, set: &ItemSet) -> u64 {
        self.transactions
            .iter()
            .filter(|t| t.contains_set(set))
            .count() as u64
    }

    /// Average transaction length (`I` of the analysis; `|T|`=15 for the
    /// paper's synthetic data).
    pub fn avg_transaction_len(&self) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        let total: usize = self.transactions.iter().map(Transaction::len).sum();
        total as f64 / self.transactions.len() as f64
    }

    /// Total bytes when shipped on the wire, used by the cost model for
    /// whole-database movement estimates.
    pub fn wire_size(&self) -> usize {
        self.transactions.iter().map(Transaction::wire_size).sum()
    }

    /// Splits the database into `p` contiguous, maximally even parts: part
    /// sizes differ by at most one. This is the even distribution of
    /// transactions among processors that Section III assumes.
    pub fn partition(&self, p: usize) -> Vec<Vec<Transaction>> {
        assert!(p > 0, "cannot partition into zero parts");
        let n = self.transactions.len();
        let base = n / p;
        let extra = n % p;
        let mut parts = Vec::with_capacity(p);
        let mut start = 0;
        for rank in 0..p {
            let size = base + usize::from(rank < extra);
            parts.push(self.transactions[start..start + size].to_vec());
            start += size;
        }
        debug_assert_eq!(start, n);
        parts
    }

    /// Per-item occurrence counts over the whole database — the first pass
    /// of Apriori (`F_1` computation) and the input to the IDD bin-packing
    /// partitioner's first-item statistics.
    pub fn item_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_items as usize];
        for t in &self.transactions {
            for item in t.items() {
                counts[item.index()] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    fn table1() -> Dataset {
        Dataset::from_named_transactions(&[
            &["Bread", "Coke", "Milk"],
            &["Beer", "Bread"],
            &["Beer", "Coke", "Diaper", "Milk"],
            &["Beer", "Bread", "Diaper", "Milk"],
            &["Coke", "Diaper", "Milk"],
        ])
    }

    #[test]
    fn table1_supports_match_the_paper() {
        let d = table1();
        // σ(Diaper, Milk) = 3 and σ(Diaper, Milk, Beer) = 2 (Section II).
        let dm = d.itemset(&["Diaper", "Milk"]).unwrap();
        let dmb = d.itemset(&["Diaper", "Milk", "Beer"]).unwrap();
        assert_eq!(d.support_count(&dm), 3);
        assert_eq!(d.support_count(&dmb), 2);
    }

    #[test]
    fn num_items_inferred() {
        let d = Dataset::new(vec![tx(1, &[0, 4]), tx(2, &[2])]);
        assert_eq!(d.num_items(), 5);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn with_num_items_overrides() {
        let d = Dataset::with_num_items(vec![tx(1, &[0, 4])], 100);
        assert_eq!(d.num_items(), 100);
    }

    #[test]
    fn itemset_resolution_fails_on_unknown_name() {
        let d = table1();
        assert!(d.itemset(&["Diaper", "Caviar"]).is_none());
        let plain = Dataset::new(vec![tx(1, &[0])]);
        assert!(plain.itemset(&["Bread"]).is_none(), "no interner");
    }

    #[test]
    fn partition_is_even_and_complete() {
        let d = Dataset::new((0..10).map(|i| tx(i, &[i as u32])).collect());
        let parts = d.partition(3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 10);
        // Order preserved, no duplication.
        let flat: Vec<u64> = parts.iter().flatten().map(Transaction::tid).collect();
        assert_eq!(flat, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn partition_more_parts_than_transactions() {
        let d = Dataset::new(vec![tx(0, &[1]), tx(1, &[2])]);
        let parts = d.partition(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn partition_zero_panics() {
        Dataset::new(vec![]).partition(0);
    }

    #[test]
    fn item_counts_accumulate() {
        let d = Dataset::new(vec![tx(1, &[0, 1]), tx(2, &[1, 2]), tx(3, &[1])]);
        assert_eq!(d.item_counts(), vec![1, 3, 1]);
    }

    #[test]
    fn avg_transaction_len() {
        let d = Dataset::new(vec![tx(1, &[0, 1]), tx(2, &[0, 1, 2, 3])]);
        assert!((d.avg_transaction_len() - 3.0).abs() < 1e-12);
        assert_eq!(Dataset::new(vec![]).avg_transaction_len(), 0.0);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.num_items(), 0);
        assert_eq!(d.item_counts(), Vec::<u64>::new());
    }
}
