#![warn(missing_docs)]

//! # armine-core
//!
//! Serial association-rule mining building blocks, following Agrawal &
//! Srikant's Apriori algorithm (VLDB '94) as presented in Han, Karypis &
//! Kumar, *Scalable Parallel Data Mining for Association Rules* (SIGMOD '97
//! / TKDE '99). This crate provides everything the paper's **serial**
//! pipeline needs, plus the shared pieces its parallel formulations build on:
//!
//! - [`Item`], [`ItemSet`], [`Transaction`], [`Dataset`] — the transaction
//!   data model (Section II of the paper).
//! - [`hashtree::HashTree`] — the candidate hash tree with the recursive
//!   `subset` operation, leaf splitting, per-transaction distinct-leaf-visit
//!   accounting, and the first-item bitmap root filter used by IDD
//!   (Sections II and III-C).
//! - [`counter`] — the pluggable candidate-counting seam: the
//!   [`CandidateCounter`](counter::CandidateCounter) trait, the
//!   structure-agnostic work ledger, and the backend knob selecting the
//!   hash tree, the [`trie::CandidateTrie`], or the Eclat-style
//!   [`vertical::VerticalCounter`].
//! - [`apriori`] — `apriori_gen` (join + prune) and the multi-pass mining
//!   loop, including the memory-capped mode that partitions the hash tree
//!   and rescans the database (the behaviour Figure 12 exercises).
//! - [`rules`] — rule generation from frequent itemsets (the second step).
//! - [`model`] — the analytical cost model of Section IV: the V(i,j)
//!   expected distinct-leaf formula (Eq. 1–2) and the per-algorithm runtime
//!   equations (Eq. 3–8).
//! - [`binpack`] — the bin-packing first-item candidate partitioner IDD uses
//!   for load balance, with the two-level (second-item) refinement.
//!
//! ## Quick example
//!
//! ```
//! use armine_core::{Dataset, Transaction, apriori::{Apriori, AprioriParams}};
//!
//! // The supermarket transactions of Table I in the paper.
//! let dataset = Dataset::from_named_transactions(&[
//!     &["Bread", "Coke", "Milk"],
//!     &["Beer", "Bread"],
//!     &["Beer", "Coke", "Diaper", "Milk"],
//!     &["Beer", "Bread", "Diaper", "Milk"],
//!     &["Coke", "Diaper", "Milk"],
//! ]);
//! let result = Apriori::new(AprioriParams::with_min_support_count(3)).mine(dataset.transactions());
//! // {Diaper, Milk} has support count 3, so it is frequent.
//! let dm = dataset.itemset(&["Diaper", "Milk"]).unwrap();
//! assert_eq!(result.support(&dm), Some(3));
//! ```

pub mod apriori;
pub mod binpack;
pub mod bitmap;
pub mod counter;
pub mod dataset;
pub mod dhp;
pub mod hashtree;
pub mod io;
pub mod item;
pub mod itemset;
pub mod model;
pub mod rules;
pub mod stable_hash;
pub mod stats;
pub mod summaries;
pub mod tidlist;
pub mod transaction;
pub mod trie;
pub mod vertical;

pub use bitmap::ItemBitmap;
pub use dataset::Dataset;
pub use item::Item;
pub use itemset::ItemSet;
pub use transaction::Transaction;
