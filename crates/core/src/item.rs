//! The atomic unit of the data model: an item.
//!
//! Items are dense small integers (`u32`), which is how both the IBM Quest
//! generator and every serious Apriori implementation represent them: the
//! candidate hash tree hashes on the integer value, and the IDD bitmap
//! filter indexes a bit vector by it.

use std::fmt;

/// A single item, identified by a dense non-negative integer id.
///
/// Items are `Copy`, 4 bytes, and totally ordered by id. Itemsets and
/// transactions always store their items in ascending id order, which is
/// what makes the `apriori_gen` join and the hash-tree subset recursion
/// linear-time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Item(pub u32);

impl Item {
    /// Creates an item from its raw id.
    #[inline]
    pub const fn new(id: u32) -> Self {
        Item(id)
    }

    /// The raw integer id.
    #[inline]
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Index into dense per-item arrays (bitmaps, count tables).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Item {
    #[inline]
    fn from(id: u32) -> Self {
        Item(id)
    }
}

impl From<Item> for u32 {
    #[inline]
    fn from(item: Item) -> Self {
        item.0
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Maps item names (e.g. `"Diaper"`) to dense [`Item`] ids and back.
///
/// The mining pipeline works on integer ids only; this interner exists for
/// ergonomic examples and for reading named transaction files.
#[derive(Debug, Default, Clone)]
pub struct ItemInterner {
    names: Vec<String>,
    by_name: std::collections::HashMap<String, Item>,
}

impl ItemInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the item for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> Item {
        if let Some(&item) = self.by_name.get(name) {
            return item;
        }
        let item = Item(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), item);
        item
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Item> {
        self.by_name.get(name).copied()
    }

    /// The name of `item`, if it was interned here.
    pub fn name(&self, item: Item) -> Option<&str> {
        self.names.get(item.index()).map(String::as_str)
    }

    /// Number of distinct interned items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no items have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_ordering_follows_id() {
        assert!(Item(1) < Item(2));
        assert_eq!(Item(7), Item::new(7));
        assert_eq!(Item(7).id(), 7);
        assert_eq!(Item(7).index(), 7usize);
    }

    #[test]
    fn item_conversions_roundtrip() {
        let item: Item = 42u32.into();
        let raw: u32 = item.into();
        assert_eq!(raw, 42);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Item(3).to_string(), "3");
        assert_eq!(format!("{:?}", Item(3)), "i3");
    }

    #[test]
    fn interner_assigns_dense_ids_in_first_seen_order() {
        let mut interner = ItemInterner::new();
        let bread = interner.intern("Bread");
        let milk = interner.intern("Milk");
        assert_eq!(bread, Item(0));
        assert_eq!(milk, Item(1));
        assert_eq!(interner.intern("Bread"), bread, "re-intern is idempotent");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn interner_lookups() {
        let mut interner = ItemInterner::new();
        let beer = interner.intern("Beer");
        assert_eq!(interner.get("Beer"), Some(beer));
        assert_eq!(interner.get("Wine"), None);
        assert_eq!(interner.name(beer), Some("Beer"));
        assert_eq!(interner.name(Item(99)), None);
    }

    #[test]
    fn empty_interner() {
        let interner = ItemInterner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 0);
    }
}
