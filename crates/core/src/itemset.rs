//! Sorted itemsets: the `C` and `F_k` elements of the Apriori algorithm.

use crate::item::Item;
use std::fmt;

/// An immutable set of items, stored sorted in ascending id order.
///
/// The sort invariant is established at construction and relied on
/// everywhere: subset tests are linear merges, `apriori_gen` joins compare
/// `k-2`-item prefixes positionally, and the hash tree inserts items in
/// order without re-sorting (exactly as the paper notes in Section II).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemSet {
    items: Box<[Item]>,
}

impl ItemSet {
    /// Builds an itemset from arbitrary items, sorting and deduplicating.
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        ItemSet {
            items: items.into_boxed_slice(),
        }
    }

    /// Builds an itemset from items already in strictly ascending order.
    ///
    /// # Panics
    /// In debug builds, panics if the slice is not strictly ascending.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "ItemSet::from_sorted requires strictly ascending items, got {items:?}"
        );
        ItemSet {
            items: items.into_boxed_slice(),
        }
    }

    /// The empty itemset.
    pub fn empty() -> Self {
        ItemSet {
            items: Box::new([]),
        }
    }

    /// A single-item set.
    pub fn singleton(item: Item) -> Self {
        ItemSet {
            items: vec![item].into_boxed_slice(),
        }
    }

    /// Number of items (the `k` of a size-`k` candidate).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether this is the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, in ascending order.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The smallest (first) item — the item IDD partitions candidates by.
    #[inline]
    pub fn first(&self) -> Option<Item> {
        self.items.first().copied()
    }

    /// The second item, used by the two-level partition refinement.
    #[inline]
    pub fn second(&self) -> Option<Item> {
        self.items.get(1).copied()
    }

    /// The largest (last) item.
    #[inline]
    pub fn last(&self) -> Option<Item> {
        self.items.last().copied()
    }

    /// Whether `item` is a member (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether `self ⊆ other`, both sorted: linear merge scan.
    pub fn is_subset_of_items(&self, other: &[Item]) -> bool {
        if self.items.len() > other.len() {
            return false;
        }
        let mut oi = 0;
        'outer: for &needle in self.items.iter() {
            while oi < other.len() {
                match other[oi].cmp(&needle) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &ItemSet) -> bool {
        self.is_subset_of_items(other.items())
    }

    /// Set union (used when assembling rules: X ∪ Y).
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let mut merged = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (0, 0);
        while a < self.items.len() && b < other.items.len() {
            match self.items[a].cmp(&other.items[b]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.items[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.items[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.items[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        merged.extend_from_slice(&self.items[a..]);
        merged.extend_from_slice(&other.items[b..]);
        ItemSet::from_sorted(merged)
    }

    /// Set difference `self \ other` (used for rule consequents).
    pub fn difference(&self, other: &ItemSet) -> ItemSet {
        let kept: Vec<Item> = self
            .items
            .iter()
            .copied()
            .filter(|&i| !other.contains(i))
            .collect();
        ItemSet::from_sorted(kept)
    }

    /// The itemset with item at `pos` removed: the `k` subsets of size
    /// `k-1`, which the `apriori_gen` prune step checks against `F_{k-1}`.
    pub fn without_index(&self, pos: usize) -> ItemSet {
        let mut items = Vec::with_capacity(self.items.len() - 1);
        items.extend_from_slice(&self.items[..pos]);
        items.extend_from_slice(&self.items[pos + 1..]);
        ItemSet::from_sorted(items)
    }

    /// All `k-1`-sized subsets, in item-removal order.
    pub fn subsets_dropping_one(&self) -> impl Iterator<Item = ItemSet> + '_ {
        (0..self.items.len()).map(move |i| self.without_index(i))
    }

    /// Extends this set by one item strictly larger than the current last
    /// item — the `apriori_gen` join.
    ///
    /// # Panics
    /// In debug builds, panics if `item` is not larger than the last item.
    pub fn extend_with(&self, item: Item) -> ItemSet {
        debug_assert!(
            self.items.last().is_none_or(|&l| l < item),
            "extend_with requires a strictly larger item"
        );
        let mut items = Vec::with_capacity(self.items.len() + 1);
        items.extend_from_slice(&self.items);
        items.push(item);
        ItemSet::from_sorted(items)
    }
}

impl From<Vec<Item>> for ItemSet {
    fn from(items: Vec<Item>) -> Self {
        ItemSet::new(items)
    }
}

impl From<&[u32]> for ItemSet {
    fn from(ids: &[u32]) -> Self {
        ItemSet::new(ids.iter().map(|&id| Item(id)).collect())
    }
}

impl<const N: usize> From<[u32; N]> for ItemSet {
    fn from(ids: [u32; N]) -> Self {
        ItemSet::new(ids.iter().map(|&id| Item(id)).collect())
    }
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<'a> IntoIterator for &'a ItemSet {
    type Item = Item;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Item>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from(ids)
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = ItemSet::new(vec![Item(3), Item(1), Item(3), Item(2)]);
        assert_eq!(s.items(), &[Item(1), Item(2), Item(3)]);
    }

    #[test]
    fn accessors() {
        let s = set(&[2, 5, 9]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.first(), Some(Item(2)));
        assert_eq!(s.second(), Some(Item(5)));
        assert_eq!(s.last(), Some(Item(9)));
        assert!(s.contains(Item(5)));
        assert!(!s.contains(Item(4)));
    }

    #[test]
    fn empty_set_accessors() {
        let e = ItemSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.first(), None);
        assert_eq!(e.second(), None);
        assert_eq!(e.last(), None);
    }

    #[test]
    fn subset_relation() {
        let small = set(&[2, 5]);
        let big = set(&[1, 2, 3, 5, 9]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(ItemSet::empty().is_subset_of(&small));
        assert!(small.is_subset_of(&small), "subset is reflexive");
        assert!(!set(&[2, 4]).is_subset_of(&big));
    }

    #[test]
    fn subset_of_raw_items() {
        let s = set(&[1, 6]);
        assert!(s.is_subset_of_items(&[Item(1), Item(2), Item(6)]));
        assert!(!s.is_subset_of_items(&[Item(1), Item(2)]));
        assert!(!s.is_subset_of_items(&[]));
    }

    #[test]
    fn union_and_difference() {
        let a = set(&[1, 3, 5]);
        let b = set(&[2, 3, 6]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 5, 6]));
        assert_eq!(a.difference(&b), set(&[1, 5]));
        assert_eq!(b.difference(&a), set(&[2, 6]));
        assert_eq!(a.union(&ItemSet::empty()), a);
        assert_eq!(a.difference(&a), ItemSet::empty());
    }

    #[test]
    fn without_index_yields_all_k_minus_1_subsets() {
        let s = set(&[1, 2, 3]);
        let subs: Vec<ItemSet> = s.subsets_dropping_one().collect();
        assert_eq!(subs, vec![set(&[2, 3]), set(&[1, 3]), set(&[1, 2])]);
    }

    #[test]
    fn extend_with_appends() {
        let s = set(&[1, 2]);
        assert_eq!(s.extend_with(Item(9)), set(&[1, 2, 9]));
        assert_eq!(ItemSet::empty().extend_with(Item(0)), set(&[0]));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn extend_with_rejects_smaller_item() {
        set(&[5]).extend_with(Item(3));
    }

    #[test]
    fn ordering_is_lexicographic() {
        // apriori_gen relies on F_{k-1} being sorted lexicographically so
        // that joinable prefixes are adjacent.
        let mut v = vec![set(&[1, 3]), set(&[1, 2]), set(&[0, 9])];
        v.sort();
        assert_eq!(v, vec![set(&[0, 9]), set(&[1, 2]), set(&[1, 3])]);
    }

    #[test]
    fn display_formats_braces() {
        assert_eq!(set(&[1, 2]).to_string(), "{1, 2}");
        assert_eq!(ItemSet::empty().to_string(), "{}");
    }
}
