//! The pluggable candidate-counting seam.
//!
//! The paper's entire performance story (Eq. 1 and the CD/DD/IDD/HD
//! response-time curves) is driven by counting-structure *operation
//! counts*, not by any property unique to the hash tree. This module
//! turns the counting structure into a seam: [`CandidateCounter`] is the
//! object-safe contract every backend satisfies, [`CounterStats`] is the
//! structure-agnostic work ledger the virtual-time model charges from,
//! and [`CounterBackend`] is the config knob that selects a backend at
//! run time. Three production backends exist — the paper's
//! [`HashTree`](crate::hashtree::HashTree) (the default, which keeps
//! every virtual-time golden bit-identical), the item-indexed
//! [`CandidateTrie`](crate::trie::CandidateTrie) of later Apriori
//! implementations (Borgelt's, Bodon's), and the Eclat-style
//! [`VerticalCounter`](crate::vertical::VerticalCounter), which pivots
//! each batch into per-item tid bitmaps and counts by AND + popcount
//! instead of walking transaction subsets at all. Structure choice dominating
//! Apriori runtime is the point of Singh et al. (arXiv:1511.07017);
//! making it a measured experiment instead of an architectural fact is
//! the point of this seam.

use crate::hashtree::{HashTree, HashTreeParams, OwnershipFilter};
use crate::itemset::ItemSet;
use crate::transaction::Transaction;
use crate::trie::CandidateTrie;
use crate::vertical::VerticalCounter;

/// Accumulated work counters of a candidate-counting structure.
///
/// These counters are the bridge between the real execution and the
/// analytical model of Section IV: `traversal_steps` accrues `t_travers`
/// units, `distinct_leaf_visits` accrues `t_check` units, and `inserts`
/// accrues tree-construction units. Figure 11 plots
/// `distinct_leaf_visits / transactions` directly. Each backend maps its
/// own traversal onto the same six counters (the hash tree's hash
/// descents and the trie's child descents both land in
/// `traversal_steps`), so the virtual-time charge is computed the same
/// way regardless of structure.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterStats {
    /// Candidate insertions (construction work, the `O(M)` term).
    pub inserts: u64,
    /// Transactions processed through the subset walk.
    pub transactions: u64,
    /// Starting items accepted at the root (after ownership filtering) —
    /// the quantity IDD's filter reduces by roughly a factor of `P`.
    pub root_starts: u64,
    /// Descents into existing children (`t_travers` units; the model's
    /// `C` per transaction). Hash descents for the hash tree, sorted
    /// child-list matches for the trie.
    pub traversal_steps: u64,
    /// Distinct terminal nodes visited, counted once per
    /// (transaction, node) — the model's `V(i, j)`, `t_check` units.
    pub distinct_leaf_visits: u64,
    /// Individual candidate-vs-transaction comparisons performed at
    /// terminal nodes.
    pub candidate_checks: u64,
    /// `u64` words touched by bitmap AND/popcount intersections — the
    /// vertical backend's dominant work term (`t_word` units). Zero for
    /// the horizontal backends. Sparse-list intersections report element
    /// probes in the same unit.
    pub intersection_words: u64,
}

impl CounterStats {
    /// The ledger's field names, in declaration order — the metric-name
    /// suffixes the registry records under `armine.counting.<field>`.
    pub const FIELD_NAMES: [&'static str; 7] = [
        "inserts",
        "transactions",
        "root_starts",
        "traversal_steps",
        "distinct_leaf_visits",
        "candidate_checks",
        "intersection_words",
    ];

    /// Every field as a `(name, value)` pair, names matching
    /// [`FIELD_NAMES`](Self::FIELD_NAMES). The exhaustive destructure
    /// makes forgetting a newly added field a compile error, the same
    /// guarantee [`merged`](Self::merged) gives the aggregation path.
    pub fn named_fields(&self) -> [(&'static str, u64); 7] {
        let CounterStats {
            inserts,
            transactions,
            root_starts,
            traversal_steps,
            distinct_leaf_visits,
            candidate_checks,
            intersection_words,
        } = *self;
        [
            ("inserts", inserts),
            ("transactions", transactions),
            ("root_starts", root_starts),
            ("traversal_steps", traversal_steps),
            ("distinct_leaf_visits", distinct_leaf_visits),
            ("candidate_checks", candidate_checks),
            ("intersection_words", intersection_words),
        ]
    }

    /// Average distinct leaves visited per transaction — the y-axis of
    /// Figure 11.
    pub fn avg_leaf_visits_per_transaction(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.distinct_leaf_visits as f64 / self.transactions as f64
        }
    }

    /// Element-wise sum, used when aggregating per-pass or per-processor
    /// stats. Both operands are destructured exhaustively (no `..`), so a
    /// newly added ledger field cannot be silently dropped from the merge
    /// — forgetting it is a compile error, not a masked zero when ranks
    /// running different backends aggregate.
    pub fn merged(&self, other: &CounterStats) -> CounterStats {
        let CounterStats {
            inserts,
            transactions,
            root_starts,
            traversal_steps,
            distinct_leaf_visits,
            candidate_checks,
            intersection_words,
        } = *self;
        let CounterStats {
            inserts: o_inserts,
            transactions: o_transactions,
            root_starts: o_root_starts,
            traversal_steps: o_traversal_steps,
            distinct_leaf_visits: o_distinct_leaf_visits,
            candidate_checks: o_candidate_checks,
            intersection_words: o_intersection_words,
        } = *other;
        CounterStats {
            inserts: inserts + o_inserts,
            transactions: transactions + o_transactions,
            root_starts: root_starts + o_root_starts,
            traversal_steps: traversal_steps + o_traversal_steps,
            distinct_leaf_visits: distinct_leaf_visits + o_distinct_leaf_visits,
            candidate_checks: candidate_checks + o_candidate_checks,
            intersection_words: intersection_words + o_intersection_words,
        }
    }
}

/// The contract every candidate-counting structure satisfies.
///
/// A counter is built over one pass's size-`k` candidates (via
/// [`CounterBackend::build`]), counts a batch of transactions under an
/// [`OwnershipFilter`], and reports per-candidate counts plus a
/// [`CounterStats`] work ledger. The trait is object-safe: the parallel
/// formulations hold a `Box<dyn CandidateCounter>` chosen by the config
/// knob.
///
/// Two ordering guarantees every backend upholds (CD's count-vector
/// reduction and DD/IDD's `frequent` exchange depend on them):
///
/// 1. [`count_vector`](Self::count_vector) /
///    [`set_count_vector`](Self::set_count_vector) index candidates in
///    **insertion order** — identical across ranks because `apriori_gen`
///    is deterministic and sorted.
/// 2. [`frequent`](Self::frequent) returns survivors in insertion order.
pub trait CandidateCounter {
    /// The candidate size this counter was built for.
    fn k(&self) -> usize;

    /// Number of candidates stored.
    fn num_candidates(&self) -> usize;

    /// Whether the counter holds no candidates.
    fn is_empty(&self) -> bool {
        self.num_candidates() == 0
    }

    /// Counts every candidate contained in each transaction, honoring
    /// the ownership filter's root (and second-level) pruning.
    fn count_all(&mut self, transactions: &[Transaction], filter: &OwnershipFilter);

    /// The accumulated count for `set`, or `None` if never inserted.
    fn count_of(&self, set: &ItemSet) -> Option<u64>;

    /// Per-candidate counts in insertion order (what CD's global
    /// reduction sums).
    fn count_vector(&self) -> Vec<u64>;

    /// Overwrites the per-candidate counts (after a reduction).
    ///
    /// # Panics
    /// If the length differs from [`num_candidates`](Self::num_candidates).
    fn set_count_vector(&mut self, counts: &[u64]);

    /// Candidates with `count >= min_count`, insertion order.
    fn frequent(&self, min_count: u64) -> Vec<(ItemSet, u64)>;

    /// The work ledger accumulated since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    fn stats(&self) -> CounterStats;

    /// Zeroes the work ledger (counts are kept).
    fn reset_stats(&mut self);

    /// Logical bytes this counter's candidates occupy on the wire — what
    /// IDD charges when candidates move between processors.
    fn wire_size(&self) -> usize;
}

impl CandidateCounter for HashTree {
    fn k(&self) -> usize {
        HashTree::k(self)
    }

    fn num_candidates(&self) -> usize {
        HashTree::num_candidates(self)
    }

    fn count_all(&mut self, transactions: &[Transaction], filter: &OwnershipFilter) {
        HashTree::count_all(self, transactions, filter);
    }

    fn count_of(&self, set: &ItemSet) -> Option<u64> {
        HashTree::count_of(self, set)
    }

    fn count_vector(&self) -> Vec<u64> {
        HashTree::count_vector(self)
    }

    fn set_count_vector(&mut self, counts: &[u64]) {
        HashTree::set_count_vector(self, counts);
    }

    fn frequent(&self, min_count: u64) -> Vec<(ItemSet, u64)> {
        HashTree::frequent(self, min_count)
    }

    fn stats(&self) -> CounterStats {
        *HashTree::stats(self)
    }

    fn reset_stats(&mut self) {
        HashTree::reset_stats(self);
    }

    fn wire_size(&self) -> usize {
        HashTree::wire_size(self)
    }
}

impl CandidateCounter for CandidateTrie {
    fn k(&self) -> usize {
        CandidateTrie::k(self)
    }

    fn num_candidates(&self) -> usize {
        CandidateTrie::num_candidates(self)
    }

    fn count_all(&mut self, transactions: &[Transaction], filter: &OwnershipFilter) {
        CandidateTrie::count_all(self, transactions, filter);
    }

    fn count_of(&self, set: &ItemSet) -> Option<u64> {
        CandidateTrie::count_of(self, set)
    }

    fn count_vector(&self) -> Vec<u64> {
        CandidateTrie::count_vector(self)
    }

    fn set_count_vector(&mut self, counts: &[u64]) {
        CandidateTrie::set_count_vector(self, counts);
    }

    fn frequent(&self, min_count: u64) -> Vec<(ItemSet, u64)> {
        CandidateTrie::frequent(self, min_count)
    }

    fn stats(&self) -> CounterStats {
        *CandidateTrie::stats(self)
    }

    fn reset_stats(&mut self) {
        CandidateTrie::reset_stats(self);
    }

    fn wire_size(&self) -> usize {
        CandidateTrie::wire_size(self)
    }
}

impl CandidateCounter for VerticalCounter {
    fn k(&self) -> usize {
        VerticalCounter::k(self)
    }

    fn num_candidates(&self) -> usize {
        VerticalCounter::num_candidates(self)
    }

    fn count_all(&mut self, transactions: &[Transaction], filter: &OwnershipFilter) {
        VerticalCounter::count_all(self, transactions, filter);
    }

    fn count_of(&self, set: &ItemSet) -> Option<u64> {
        VerticalCounter::count_of(self, set)
    }

    fn count_vector(&self) -> Vec<u64> {
        VerticalCounter::count_vector(self)
    }

    fn set_count_vector(&mut self, counts: &[u64]) {
        VerticalCounter::set_count_vector(self, counts);
    }

    fn frequent(&self, min_count: u64) -> Vec<(ItemSet, u64)> {
        VerticalCounter::frequent(self, min_count)
    }

    fn stats(&self) -> CounterStats {
        *VerticalCounter::stats(self)
    }

    fn reset_stats(&mut self) {
        VerticalCounter::reset_stats(self);
    }

    fn wire_size(&self) -> usize {
        VerticalCounter::wire_size(self)
    }
}

/// Which counting structure to build — the config knob threaded from the
/// CLI through `AprioriParams`/`ParallelParams` down to every pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum CounterBackend {
    /// The paper's candidate hash tree (Section II). The default: the
    /// virtual-time goldens were captured against it and stay
    /// bit-identical.
    #[default]
    HashTree,
    /// The item-indexed prefix trie of later Apriori implementations.
    Trie,
    /// The Eclat-style vertical backend: per-item tid bitmaps intersected
    /// by wide-word AND + popcount, with a sorted-tid-list fallback for
    /// low-density items.
    Vertical,
}

impl CounterBackend {
    /// Every available backend, in display order.
    pub const ALL: [CounterBackend; 3] = [
        CounterBackend::HashTree,
        CounterBackend::Trie,
        CounterBackend::Vertical,
    ];

    /// Builds the selected structure over one pass's size-`k`
    /// candidates. `tree` shapes the hash tree and is ignored by the
    /// other backends.
    pub fn build(
        self,
        k: usize,
        tree: HashTreeParams,
        candidates: Vec<ItemSet>,
    ) -> Box<dyn CandidateCounter> {
        match self {
            CounterBackend::HashTree => Box::new(HashTree::build(k, tree, candidates)),
            CounterBackend::Trie => Box::new(CandidateTrie::build(k, candidates)),
            CounterBackend::Vertical => Box::new(VerticalCounter::build(k, candidates)),
        }
    }

    /// Parses a backend name as accepted by the CLI's `--counter` flag.
    /// Matching is ASCII case-insensitive (`Trie`, `VERTICAL`, … all
    /// resolve).
    pub fn parse(name: &str) -> Option<CounterBackend> {
        CounterBackend::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// The canonical name (round-trips through [`parse`](Self::parse)).
    pub fn name(self) -> &'static str {
        match self {
            CounterBackend::HashTree => "hashtree",
            CounterBackend::Trie => "trie",
            CounterBackend::Vertical => "vertical",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    #[test]
    fn avg_leaf_visits_handles_zero_transactions() {
        assert_eq!(
            CounterStats::default().avg_leaf_visits_per_transaction(),
            0.0
        );
    }

    #[test]
    fn avg_leaf_visits_divides() {
        let s = CounterStats {
            transactions: 4,
            distinct_leaf_visits: 10,
            ..Default::default()
        };
        assert!((s.avg_leaf_visits_per_transaction() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merged_sums_fields() {
        let a = CounterStats {
            inserts: 1,
            transactions: 2,
            root_starts: 3,
            traversal_steps: 4,
            distinct_leaf_visits: 5,
            candidate_checks: 6,
            intersection_words: 7,
        };
        let b = a;
        let m = a.merged(&b);
        assert_eq!(m.inserts, 2);
        assert_eq!(m.transactions, 4);
        assert_eq!(m.root_starts, 6);
        assert_eq!(m.traversal_steps, 8);
        assert_eq!(m.distinct_leaf_visits, 10);
        assert_eq!(m.candidate_checks, 12);
        assert_eq!(m.intersection_words, 14);
    }

    /// Merging across ranks running different backends must not mask
    /// fields that are zero in one operand: every field of an
    /// all-nonzero ledger survives a merge with the default (all-zero)
    /// ledger unchanged, in both orders.
    #[test]
    fn merged_preserves_fields_zero_in_one_operand() {
        let vertical_rank = CounterStats {
            inserts: 11,
            transactions: 22,
            root_starts: 33,
            traversal_steps: 44,
            distinct_leaf_visits: 55,
            candidate_checks: 66,
            intersection_words: 77,
        };
        let horizontal_rank = CounterStats::default();
        assert_eq!(vertical_rank.merged(&horizontal_rank), vertical_rank);
        assert_eq!(horizontal_rank.merged(&vertical_rank), vertical_rank);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in CounterBackend::ALL {
            assert_eq!(CounterBackend::parse(backend.name()), Some(backend));
            // Case-insensitive: uppercase and mixed-case resolve too.
            assert_eq!(
                CounterBackend::parse(&backend.name().to_ascii_uppercase()),
                Some(backend)
            );
        }
        assert_eq!(
            CounterBackend::parse("Vertical"),
            Some(CounterBackend::Vertical)
        );
        assert_eq!(CounterBackend::parse("btree"), None);
        assert_eq!(CounterBackend::default(), CounterBackend::HashTree);
        assert_eq!(CounterBackend::ALL.len(), 3);
    }

    #[test]
    fn all_backends_count_identically_through_the_trait() {
        let candidates = vec![
            ItemSet::from([1, 2]),
            ItemSet::from([1, 3]),
            ItemSet::from([2, 3]),
        ];
        let transactions = vec![
            Transaction::new(0, vec![Item(1), Item(2), Item(3)]),
            Transaction::new(1, vec![Item(1), Item(3)]),
            Transaction::new(2, vec![Item(2)]),
        ];
        let mut vectors = Vec::new();
        for backend in CounterBackend::ALL {
            let mut counter = backend.build(2, HashTreeParams::default(), candidates.clone());
            assert_eq!(counter.k(), 2);
            assert_eq!(counter.num_candidates(), 3);
            assert!(!counter.is_empty());
            counter.count_all(&transactions, &OwnershipFilter::all());
            assert_eq!(counter.stats().transactions, 3);
            assert_eq!(counter.count_of(&ItemSet::from([1, 3])), Some(2));
            assert_eq!(counter.frequent(2), vec![(ItemSet::from([1, 3]), 2)]);
            counter.reset_stats();
            assert_eq!(counter.stats(), CounterStats::default());
            vectors.push(counter.count_vector());
        }
        for (i, v) in vectors.iter().enumerate() {
            assert_eq!(
                v,
                &vec![1, 2, 1],
                "backend {} diverged",
                CounterBackend::ALL[i].name()
            );
        }
    }
}
