//! Candidate partitioning for the distributed-candidate algorithms.
//!
//! DD partitions candidates round-robin; IDD partitions them by **first
//! item** using bin packing so every processor gets (a) roughly the same
//! number of candidates and (b) a compact first-item ownership bitmap for
//! root filtering (Section III-C). When too many candidates share one first
//! item (more than `M/P`, increasingly likely as `P` grows), the paper's
//! refinement splits that item by **second** item; `partition_two_level`
//! implements it.
//!
//! The packer is the classic Longest-Processing-Time greedy (the paper
//! cites bin-packing [Papadimitriou & Steiglitz]; LPT's 4/3 bound is ample
//! here — the paper itself reports 1.3–2.3% candidate imbalance).

use crate::bitmap::ItemBitmap;
use crate::hashtree::OwnershipFilter;
use crate::item::Item;
use crate::itemset::ItemSet;
use std::collections::HashSet;

/// The result of packing weighted units into bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    /// `assignment[u]` = bin of unit `u`.
    pub assignment: Vec<usize>,
    /// Total weight per bin.
    pub loads: Vec<u64>,
}

impl Packing {
    /// Relative load imbalance: `max/avg − 1` over non-zero totals, 0 for
    /// an empty packing. The paper reports this metric (1.3% at P=4, 2.3%
    /// at P=8 for candidate counts). The average runs over **non-empty**
    /// bins, so a packing where one bin holds everything and the rest are
    /// unused (e.g. more processors than first-item groups) reports 0, not
    /// `P − 1`.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.loads.iter().sum();
        if total == 0 || self.loads.is_empty() {
            return 0.0;
        }
        let nonempty = self.loads.iter().filter(|&&l| l > 0).count();
        let avg = total as f64 / nonempty as f64;
        let max = *self.loads.iter().max().unwrap() as f64;
        max / avg - 1.0
    }
}

/// Longest-Processing-Time greedy packing: sort units by weight descending,
/// repeatedly assign to the least-loaded bin. Deterministic: ties broken by
/// unit index then bin index.
pub fn pack_lpt(weights: &[u64], bins: usize) -> Packing {
    assert!(bins > 0, "need at least one bin");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(weights[u]), u));
    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0usize; weights.len()];
    for u in order {
        let bin = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .unwrap();
        assignment[u] = bin;
        loads[bin] += weights[u];
    }
    Packing { assignment, loads }
}

/// Capacity-aware LPT: bins have relative capacities (speeds) and each
/// unit goes to the bin with the **earliest projected finish time**
/// `(load + weight) / capacity` — the heterogeneous generalization of
/// least-loaded-first, greedily steering the heaviest units to the
/// effectively fastest bins. Deterministic: ties broken by unit index
/// then bin index.
///
/// With **uniform** capacities this is exactly [`pack_lpt`], bit for bit:
/// the uniform case is detected and routed through the integer
/// `(load, bin)` comparison, so no float division can perturb a
/// homogeneous packing.
pub fn pack_lpt_weighted(weights: &[u64], capacities: &[f64]) -> Packing {
    assert!(!capacities.is_empty(), "need at least one bin");
    assert!(
        capacities.iter().all(|&c| c.is_finite() && c > 0.0),
        "capacities must be finite and positive: {capacities:?}"
    );
    if capacities.windows(2).all(|w| w[0] == w[1]) {
        return pack_lpt(weights, capacities.len());
    }
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(weights[u]), u));
    let mut loads = vec![0u64; capacities.len()];
    let mut assignment = vec![0usize; weights.len()];
    for u in order {
        let w = weights[u];
        let bin = loads
            .iter()
            .enumerate()
            .map(|(i, &l)| (((l + w) as f64 / capacities[i], i), i))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite finish times"))
            .map(|(_, i)| i)
            .unwrap();
        assignment[u] = bin;
        loads[bin] += w;
    }
    Packing { assignment, loads }
}

/// A partition of a candidate set across `P` processors: each processor's
/// candidate list plus the ownership filter it applies at the hash-tree
/// root. Every candidate appears in exactly one part.
#[derive(Debug, Clone)]
pub struct CandidatePartition {
    /// Per-processor candidate lists, each lexicographically sorted.
    pub parts: Vec<Vec<ItemSet>>,
    /// Per-processor root filters (bitmap or two-level).
    pub filters: Vec<OwnershipFilter>,
    /// Candidate-count imbalance of the packing (`max/avg − 1`).
    pub imbalance: f64,
}

impl CandidatePartition {
    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.parts.len()
    }

    /// Total candidates across all parts.
    pub fn total_candidates(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }
}

/// DD's round-robin partition: candidate `i` goes to processor `i mod P`.
/// No ownership filter exists (DD cannot prune at the root — that is its
/// redundant-work problem).
pub fn partition_round_robin(candidates: &[ItemSet], p: usize) -> CandidatePartition {
    assert!(p > 0);
    let mut parts: Vec<Vec<ItemSet>> = vec![Vec::new(); p];
    for (i, c) in candidates.iter().enumerate() {
        parts[i % p].push(c.clone());
    }
    let loads: Vec<u64> = parts.iter().map(|part| part.len() as u64).collect();
    let imbalance = Packing {
        assignment: Vec::new(),
        loads,
    }
    .imbalance();
    CandidatePartition {
        parts,
        filters: (0..p).map(|_| OwnershipFilter::all()).collect(),
        imbalance,
    }
}

/// IDD's partition: bin-pack first items by their candidate counts so each
/// processor owns whole first-item groups of roughly equal total size
/// (scaled by its relative `capacity` — faster processors get heavier
/// shares), and give each processor the matching bitmap filter. Uniform
/// capacities reproduce the classic equal-share packing bit for bit.
pub fn partition_by_first_item(
    candidates: &[ItemSet],
    num_items: u32,
    capacities: &[f64],
) -> CandidatePartition {
    let p = capacities.len();
    assert!(p > 0);
    let hist = crate::apriori::first_item_histogram(candidates, num_items);
    // Pack only items that actually start candidates.
    let active: Vec<u32> = (0..num_items).filter(|&i| hist[i as usize] > 0).collect();
    let weights: Vec<u64> = active.iter().map(|&i| hist[i as usize]).collect();
    let packing = pack_lpt_weighted(&weights, capacities);

    let mut owner = vec![usize::MAX; num_items as usize];
    for (u, &item) in active.iter().enumerate() {
        owner[item as usize] = packing.assignment[u];
    }
    let mut parts: Vec<Vec<ItemSet>> = vec![Vec::new(); p];
    for c in candidates {
        let first = c.first().expect("empty candidate");
        parts[owner[first.index()]].push(c.clone());
    }
    let filters = (0..p)
        .map(|proc| {
            let bitmap = ItemBitmap::from_items(
                num_items,
                active
                    .iter()
                    .enumerate()
                    .filter(|&(u, _)| packing.assignment[u] == proc)
                    .map(|(_, &i)| Item(i)),
            );
            OwnershipFilter::first_item(bitmap)
        })
        .collect();
    CandidatePartition {
        parts,
        filters,
        imbalance: packing.imbalance(),
    }
}

/// The two-level refinement: first items whose candidate count exceeds
/// `split_threshold` are split by second item, so a single hot first item
/// can be spread over several processors. Candidates must have at least two
/// items (the refinement only matters for k ≥ 2 passes).
pub fn partition_two_level(
    candidates: &[ItemSet],
    num_items: u32,
    capacities: &[f64],
    split_threshold: u64,
) -> CandidatePartition {
    let p = capacities.len();
    assert!(p > 0);
    assert!(
        candidates.iter().all(|c| c.len() >= 2),
        "two-level partitioning requires candidates of size >= 2"
    );
    let hist = crate::apriori::first_item_histogram(candidates, num_items);

    /// A packable unit: a whole first-item group, or one (first, second)
    /// subgroup of a split first item.
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum Unit {
        First(Item),
        Pair(Item, Item),
    }

    let mut units: Vec<Unit> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    let split: Vec<bool> = hist.iter().map(|&c| c > split_threshold).collect();
    // Whole groups.
    for item in 0..num_items {
        let c = hist[item as usize];
        if c > 0 && !split[item as usize] {
            units.push(Unit::First(Item(item)));
            weights.push(c);
        }
    }
    // Split groups: one unit per (first, second) pair.
    let mut pair_hist: std::collections::HashMap<(Item, Item), u64> =
        std::collections::HashMap::new();
    for c in candidates {
        let first = c.first().unwrap();
        if split[first.index()] {
            *pair_hist.entry((first, c.second().unwrap())).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<((Item, Item), u64)> = pair_hist.into_iter().collect();
    pairs.sort(); // determinism
    for (pair, w) in pairs {
        units.push(Unit::Pair(pair.0, pair.1));
        weights.push(w);
    }

    let packing = pack_lpt_weighted(&weights, capacities);
    let mut unit_owner: std::collections::HashMap<Unit, usize> = std::collections::HashMap::new();
    for (u, unit) in units.iter().enumerate() {
        unit_owner.insert(*unit, packing.assignment[u]);
    }

    let mut parts: Vec<Vec<ItemSet>> = vec![Vec::new(); p];
    for c in candidates {
        let first = c.first().unwrap();
        let unit = if split[first.index()] {
            Unit::Pair(first, c.second().unwrap())
        } else {
            Unit::First(first)
        };
        parts[unit_owner[&unit]].push(c.clone());
    }

    let filters = (0..p)
        .map(|proc| {
            let mut owned_first = ItemBitmap::new(num_items);
            let mut owned_pairs: HashSet<(Item, Item)> = HashSet::new();
            for (unit, &owner) in &unit_owner {
                if owner != proc {
                    continue;
                }
                match unit {
                    Unit::First(i) => owned_first.insert(*i),
                    Unit::Pair(f, s) => {
                        owned_pairs.insert((*f, *s));
                    }
                }
            }
            OwnershipFilter::two_level(owned_first, owned_pairs)
        })
        .collect();

    CandidatePartition {
        parts,
        filters,
        imbalance: packing.imbalance(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from(ids)
    }

    #[test]
    fn lpt_balances_simple_weights() {
        // LPT on [5,5,4,3,3] with 2 bins: 5|5, 4→bin0, 3→bin1, 3→bin1
        // giving 9/11 (LPT is a 4/3-approximation, not optimal).
        let p = pack_lpt(&[5, 5, 4, 3, 3], 2);
        assert_eq!(p.loads.iter().sum::<u64>(), 20);
        assert!(*p.loads.iter().max().unwrap() <= 11);
        assert!(p.imbalance() <= 0.1 + 1e-9);
        // A perfectly splittable instance does pack perfectly.
        let q = pack_lpt(&[4, 3, 3, 2, 2, 2], 2);
        assert_eq!(*q.loads.iter().max().unwrap(), 8);
        assert!(q.imbalance() < 1e-9);
    }

    #[test]
    fn lpt_is_deterministic() {
        let w = vec![7, 7, 7, 1, 2, 3];
        assert_eq!(pack_lpt(&w, 3), pack_lpt(&w, 3));
    }

    #[test]
    fn lpt_empty_and_degenerate() {
        let p = pack_lpt(&[], 3);
        assert_eq!(p.loads, vec![0, 0, 0]);
        assert_eq!(p.imbalance(), 0.0);
        let single = pack_lpt(&[10], 4);
        assert_eq!(single.loads.iter().sum::<u64>(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn lpt_zero_bins_panics() {
        pack_lpt(&[1], 0);
    }

    #[test]
    fn imbalance_metric() {
        let p = Packing {
            assignment: vec![],
            loads: vec![30, 10, 20],
        };
        // avg 20, max 30 → 50%.
        assert!((p.imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn imbalance_averages_over_nonempty_bins() {
        // All-but-one-empty: one bin holds everything, so among the bins
        // actually in use the packing is perfectly balanced. The old
        // formula divided by the total bin count and reported P − 1.
        let p = Packing {
            assignment: vec![],
            loads: vec![0, 0, 30, 0],
        };
        assert_eq!(p.imbalance(), 0.0);
        // Mixed: non-empty loads [30, 10] → avg 20, max 30 → 50%,
        // regardless of how many empty bins ride along.
        let q = Packing {
            assignment: vec![],
            loads: vec![30, 0, 10, 0, 0],
        };
        assert!((q.imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_uniform_capacities_reproduce_lpt_exactly() {
        for weights in [
            vec![5, 5, 4, 3, 3],
            vec![7, 7, 7, 1, 2, 3],
            vec![1000, 999, 1, 1, 1, 1, 1],
            vec![],
        ] {
            for bins in [1usize, 2, 3, 7] {
                let caps = vec![1.0; bins];
                assert_eq!(pack_lpt_weighted(&weights, &caps), pack_lpt(&weights, bins));
                // Any uniform value, not just 1.0.
                let caps = vec![2.5; bins];
                assert_eq!(pack_lpt_weighted(&weights, &caps), pack_lpt(&weights, bins));
            }
        }
    }

    #[test]
    fn weighted_capacities_skew_loads_toward_fast_bins() {
        // A 2×-capacity bin should absorb about twice the weight.
        let weights = vec![1u64; 90];
        let p = pack_lpt_weighted(&weights, &[2.0, 1.0]);
        assert_eq!(p.loads.iter().sum::<u64>(), 90);
        assert_eq!(p.loads, vec![60, 30]);
        // The heaviest unit lands on the fastest bin first.
        let q = pack_lpt_weighted(&[10, 1], &[1.0, 4.0]);
        assert_eq!(q.assignment[0], 1);
    }

    #[test]
    fn weighted_packing_is_deterministic() {
        let w = vec![7, 7, 7, 1, 2, 3];
        let caps = [1.0, 0.5, 2.0];
        assert_eq!(pack_lpt_weighted(&w, &caps), pack_lpt_weighted(&w, &caps));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn weighted_rejects_bad_capacities() {
        pack_lpt_weighted(&[1], &[1.0, 0.0]);
    }

    fn sample_candidates() -> Vec<ItemSet> {
        // First-item histogram: item 0 → 4 candidates, 1 → 2, 2 → 1, 5 → 1.
        vec![
            set(&[0, 1]),
            set(&[0, 2]),
            set(&[0, 3]),
            set(&[0, 5]),
            set(&[1, 2]),
            set(&[1, 4]),
            set(&[2, 6]),
            set(&[5, 6]),
        ]
    }

    #[test]
    fn round_robin_covers_all_candidates() {
        let cands = sample_candidates();
        let part = partition_round_robin(&cands, 3);
        assert_eq!(part.total_candidates(), cands.len());
        assert_eq!(part.num_procs(), 3);
        // Round robin: parts have sizes 3, 3, 2.
        let sizes: Vec<usize> = part.parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2]);
        assert!(part.filters.iter().all(OwnershipFilter::is_all));
    }

    #[test]
    fn first_item_partition_is_exact_and_filtered() {
        let cands = sample_candidates();
        let part = partition_by_first_item(&cands, 8, &[1.0; 2]);
        assert_eq!(part.total_candidates(), cands.len());
        // All candidates with the same first item land on one processor,
        // and that processor's filter admits the first item.
        for (proc, cand_list) in part.parts.iter().enumerate() {
            for c in cand_list {
                let first = c.first().unwrap();
                assert!(part.filters[proc].allows_root(first));
                // No other processor's filter admits it.
                for (other, f) in part.filters.iter().enumerate() {
                    if other != proc {
                        assert!(!f.allows_root(first), "first item owned twice");
                    }
                }
            }
        }
    }

    #[test]
    fn first_item_partition_balances_weights() {
        // 100 first items with equal candidate counts pack evenly.
        let cands: Vec<ItemSet> = (0..100u32).map(|i| set(&[i, i + 100])).collect();
        let part = partition_by_first_item(&cands, 200, &[1.0; 4]);
        assert!(part.imbalance < 1e-9);
        for p in &part.parts {
            assert_eq!(p.len(), 25);
        }
    }

    #[test]
    fn hot_first_item_breaks_single_level_balance() {
        // One item starts 90% of candidates: single-level packing can't
        // balance (the paper's motivation for two-level).
        let mut cands: Vec<ItemSet> = (1..=90u32).map(|s| set(&[0, s])).collect();
        cands.push(set(&[1, 2]));
        cands.push(set(&[2, 3]));
        let single = partition_by_first_item(&cands, 100, &[1.0; 4]);
        assert!(single.imbalance > 1.0, "hot item forces imbalance");
        let double = partition_two_level(&cands, 100, &[1.0; 4], 10);
        assert!(
            double.imbalance < 0.3,
            "two-level split restores balance, got {}",
            double.imbalance
        );
        assert_eq!(double.total_candidates(), cands.len());
    }

    #[test]
    fn two_level_filters_route_correctly() {
        let mut cands: Vec<ItemSet> = (1..=20u32).map(|s| set(&[0, s])).collect();
        cands.push(set(&[3, 4]));
        let part = partition_two_level(&cands, 30, &[1.0; 3], 5);
        for (proc, cand_list) in part.parts.iter().enumerate() {
            for c in cand_list {
                let first = c.first().unwrap();
                let second = c.second().unwrap();
                assert!(part.filters[proc].allows_root(first));
                assert!(part.filters[proc].allows_second(first, second));
            }
        }
        // Each candidate is admitted by exactly one processor's filter.
        for c in &cands {
            let owners = part
                .filters
                .iter()
                .filter(|f| {
                    f.allows_root(c.first().unwrap())
                        && f.allows_second(c.first().unwrap(), c.second().unwrap())
                })
                .count();
            assert_eq!(owners, 1, "candidate {c} owned by {owners} processors");
        }
    }

    #[test]
    #[should_panic(expected = "size >= 2")]
    fn two_level_rejects_singletons() {
        partition_two_level(&[set(&[1])], 10, &[1.0; 2], 1);
    }

    #[test]
    fn partition_single_processor() {
        let cands = sample_candidates();
        let part = partition_by_first_item(&cands, 8, &[1.0; 1]);
        assert_eq!(part.parts[0].len(), cands.len());
        assert_eq!(part.imbalance, 0.0);
    }

    #[test]
    fn parts_remain_sorted() {
        // apriori_gen emits sorted candidates; per-part order must stay
        // sorted because each processor rebuilds its own tree and relies on
        // deterministic candidate order for reductions.
        let cands = sample_candidates();
        for part in [
            partition_round_robin(&cands, 3),
            partition_by_first_item(&cands, 8, &[1.0; 3]),
            partition_two_level(&cands, 8, &[1.0; 3], 2),
        ] {
            for p in &part.parts {
                assert!(p.windows(2).all(|w| w[0] < w[1]), "part not sorted: {p:?}");
            }
        }
    }
}
