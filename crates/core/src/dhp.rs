//! DHP — Direct Hashing and Pruning (Park, Chen & Yu, SIGMOD '95).
//!
//! The serial algorithm behind PDM, the parallel formulation the paper's
//! Section III-E cites as "similar in nature to the CD algorithm". DHP
//! augments Apriori with two ideas:
//!
//! 1. **Hash filtering** — while counting pass `k`, every (k+1)-subset of
//!    each transaction is hashed into a bucket table; a pass-(k+1)
//!    candidate is generated only if, besides surviving the Apriori
//!    subset prune, its bucket count reaches minimum support. Heavy
//!    buckets over-approximate the candidate's own support, so no
//!    frequent itemset is ever lost — but vast numbers of hopeless
//!    candidates never get built into the hash tree (the savings
//!    concentrate in pass 2, where `|C_2|` is largest).
//! 2. **Transaction trimming** — after pass `k`, an item can only matter
//!    to later passes if it occurs in some frequent `k`-itemset
//!    (anti-monotonicity); all other items are dropped from the
//!    database, shrinking every later scan.
//!
//! The miner produces the *identical* frequent-itemset lattice to
//! [`Apriori`](crate::apriori::Apriori) — tested — with strictly fewer
//! candidates counted.

use crate::apriori::{
    apriori_gen, count_candidates, FrequentItemsets, MinSupport, MiningRun, PassInfo,
};
use crate::bitmap::ItemBitmap;
use crate::counter::CounterBackend;
use crate::hashtree::HashTreeParams;
use crate::item::Item;
use crate::itemset::ItemSet;
use crate::stable_hash::hash_itemset;
use crate::transaction::Transaction;

/// The bucket table for one pass's hash filter.
#[derive(Debug, Clone)]
pub struct HashFilter {
    buckets: Vec<u64>,
}

impl HashFilter {
    /// An all-zero filter with `buckets` buckets.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 1, "need at least one bucket");
        HashFilter {
            buckets: vec![0; buckets],
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the filter has zero buckets (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Hashes `set` to its bucket index.
    #[inline]
    pub fn bucket_of(&self, set: &ItemSet) -> usize {
        (hash_itemset(set) % self.buckets.len() as u64) as usize
    }

    /// Adds one occurrence of `set`.
    #[inline]
    pub fn add(&mut self, set: &ItemSet) {
        let b = self.bucket_of(set);
        self.buckets[b] += 1;
    }

    /// Whether `set`'s bucket reaches `min_count` — a necessary condition
    /// for `set` to be frequent (the bucket aggregates every subset that
    /// hashed there, so it upper-bounds σ(set)).
    #[inline]
    pub fn admits(&self, set: &ItemSet, min_count: u64) -> bool {
        self.buckets[self.bucket_of(set)] >= min_count
    }

    /// Raw bucket counts — what PDM's global reduction sums.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Overwrites the bucket counts (after a reduction).
    ///
    /// # Panics
    /// If the length differs.
    pub fn set_counts(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.buckets.len(), "bucket arity mismatch");
        self.buckets.copy_from_slice(counts);
    }

    /// Fraction of buckets at or above `min_count` (diagnostics: a filter
    /// where most buckets are heavy prunes nothing).
    pub fn heavy_fraction(&self, min_count: u64) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        self.buckets.iter().filter(|&&c| c >= min_count).count() as f64 / self.buckets.len() as f64
    }
}

/// DHP tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DhpParams {
    /// Minimum support threshold.
    pub min_support: MinSupport,
    /// Hash-tree shape for the counting passes. Ignored by the trie
    /// backend.
    pub tree: HashTreeParams,
    /// Which counting structure counts each pass's candidates.
    pub counter: CounterBackend,
    /// Buckets in each pass's hash filter.
    pub buckets: usize,
    /// Build hash filters for passes `2..=1+hash_filter_passes` (the
    /// original builds them while counting the preceding pass; filters
    /// beyond pass 3 rarely pay for themselves).
    pub hash_filter_passes: usize,
    /// Enable transaction trimming between passes.
    pub trim: bool,
    /// Stop after this pass.
    pub max_k: Option<usize>,
}

impl DhpParams {
    /// Defaults: 2¹⁵ buckets, filters for passes 2 and 3, trimming on.
    pub fn with_min_support(fraction: f64) -> Self {
        DhpParams {
            min_support: MinSupport::Fraction(fraction),
            tree: HashTreeParams::default(),
            counter: CounterBackend::default(),
            buckets: 1 << 15,
            hash_filter_passes: 2,
            trim: true,
            max_k: None,
        }
    }

    /// Defaults with an absolute count threshold.
    pub fn with_min_support_count(count: u64) -> Self {
        DhpParams {
            min_support: MinSupport::Count(count),
            ..Self::with_min_support(0.0)
        }
    }

    /// Selects the candidate-counting backend.
    pub fn counter(mut self, counter: CounterBackend) -> Self {
        self.counter = counter;
        self
    }

    /// Sets the bucket count.
    pub fn buckets(mut self, buckets: usize) -> Self {
        assert!(buckets >= 1);
        self.buckets = buckets;
        self
    }

    /// Sets how many passes get hash filters.
    pub fn hash_filter_passes(mut self, n: usize) -> Self {
        self.hash_filter_passes = n;
        self
    }

    /// Enables/disables transaction trimming.
    pub fn trim(mut self, on: bool) -> Self {
        self.trim = on;
        self
    }

    /// Caps the maximum itemset size.
    pub fn max_k(mut self, k: usize) -> Self {
        self.max_k = Some(k);
        self
    }
}

/// Per-pass DHP accounting beyond the base [`PassInfo`].
#[derive(Debug, Clone, Default)]
pub struct DhpPassInfo {
    /// Candidates Apriori would have generated (before the bucket prune).
    pub apriori_candidates: usize,
    /// Candidates actually counted (after the bucket prune).
    pub candidates: usize,
    /// Transactions surviving in the (possibly trimmed) database.
    pub live_transactions: usize,
    /// Total items across the live transactions (trimming shrinks this).
    pub live_items: usize,
}

/// The result of a DHP run: the standard mining result plus the
/// pruning/trimming diagnostics.
#[derive(Debug, Clone, Default)]
pub struct DhpRun {
    /// Frequent itemsets and per-pass base accounting.
    pub run: MiningRun,
    /// Per-pass DHP-specific accounting, aligned with `run.passes`.
    pub dhp_passes: Vec<DhpPassInfo>,
}

impl DhpRun {
    /// The discovered frequent itemsets.
    pub fn frequent(&self) -> &FrequentItemsets {
        &self.run.frequent
    }

    /// Total candidates pruned by the hash filters across all passes.
    pub fn candidates_pruned(&self) -> usize {
        self.dhp_passes
            .iter()
            .map(|p| p.apriori_candidates - p.candidates)
            .sum()
    }
}

/// The DHP miner.
///
/// ```
/// use armine_core::dhp::{Dhp, DhpParams};
/// use armine_core::{Transaction, Item, ItemSet};
///
/// let db: Vec<Transaction> = (0..10)
///     .map(|t| Transaction::new(t, vec![Item(1), Item(2), Item((t % 3) as u32 + 3)]))
///     .collect();
/// let run = Dhp::new(DhpParams::with_min_support_count(5)).mine(&db);
/// assert_eq!(run.frequent().support(&ItemSet::from([1, 2])), Some(10));
/// ```
#[derive(Debug, Clone)]
pub struct Dhp {
    params: DhpParams,
}

impl Dhp {
    /// A miner with the given parameters.
    pub fn new(params: DhpParams) -> Self {
        Dhp { params }
    }

    /// Mines all frequent itemsets. Equivalent output to Apriori.
    pub fn mine(&self, transactions: &[Transaction]) -> DhpRun {
        let min_count = self.params.min_support.resolve(transactions.len());
        let mut out = DhpRun::default();
        out.run.min_count = min_count;

        // Live (possibly trimmed) database; starts as a copy.
        let mut db: Vec<Transaction> = transactions.to_vec();

        // Pass 1: item counts + the pass-2 hash filter in the same scan.
        let num_items = db
            .iter()
            .filter_map(|t| t.items().last())
            .map(|i| i.id() + 1)
            .max()
            .unwrap_or(0) as usize;
        let mut counts = vec![0u64; num_items];
        let mut filter =
            (self.params.hash_filter_passes >= 1).then(|| HashFilter::new(self.params.buckets));
        for t in &db {
            for item in t.items() {
                counts[item.index()] += 1;
            }
            if let Some(f) = &mut filter {
                for pair in t.k_subsets(2) {
                    f.add(&pair);
                }
            }
        }
        let f1: Vec<(ItemSet, u64)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(id, &c)| (ItemSet::singleton(Item(id as u32)), c))
            .collect();
        out.run.passes.push(PassInfo {
            k: 1,
            candidates: counts.iter().filter(|&&c| c > 0).count(),
            frequent: f1.len(),
            db_scans: 1,
            tree_stats: Default::default(),
        });
        out.dhp_passes.push(DhpPassInfo {
            apriori_candidates: counts.iter().filter(|&&c| c > 0).count(),
            candidates: counts.iter().filter(|&&c| c > 0).count(),
            live_transactions: db.len(),
            live_items: db.iter().map(Transaction::len).sum(),
        });
        let mut levels: Vec<Vec<(ItemSet, u64)>> = vec![f1];

        let mut k = 2;
        while self.params.max_k.is_none_or(|m| k <= m) {
            let prev: Vec<ItemSet> = levels
                .last()
                .unwrap()
                .iter()
                .map(|(s, _)| s.clone())
                .collect();
            if prev.is_empty() {
                break;
            }
            // Trim the database using F_{k-1} (sound: an item absent from
            // every frequent (k-1)-itemset cannot occur in any frequent
            // itemset of size >= k).
            if self.params.trim {
                db = trim_database(&db, levels.last().unwrap(), num_items as u32, k);
            }
            // Generate with the Apriori join+prune, then the bucket prune.
            let apriori_cands = apriori_gen(&prev);
            let apriori_count = apriori_cands.len();
            let candidates: Vec<ItemSet> = match &filter {
                Some(f) => apriori_cands
                    .into_iter()
                    .filter(|c| f.admits(c, min_count))
                    .collect(),
                None => apriori_cands,
            };
            if candidates.is_empty() {
                break;
            }
            // Count this pass; build next pass's filter in the same scan
            // if configured.
            let mut next_filter =
                (self.params.hash_filter_passes >= k).then(|| HashFilter::new(self.params.buckets));
            if let Some(f) = &mut next_filter {
                for t in &db {
                    for sub in t.k_subsets(k + 1) {
                        f.add(&sub);
                    }
                }
            }
            let (level, info) = count_candidates(
                k,
                candidates,
                &db,
                min_count,
                self.params.counter,
                self.params.tree,
                None,
            );
            out.dhp_passes.push(DhpPassInfo {
                apriori_candidates: apriori_count,
                candidates: info.candidates,
                live_transactions: db.len(),
                live_items: db.iter().map(Transaction::len).sum(),
            });
            out.run.passes.push(info);
            let done = level.is_empty();
            levels.push(level);
            filter = next_filter;
            k += 1;
            if done {
                break;
            }
        }
        out.run.frequent = FrequentItemsets::from_levels(levels, transactions.len() as u64);
        out
    }
}

/// Removes items that occur in no frequent (k−1)-itemset, and transactions
/// left with fewer than `k` items.
fn trim_database(
    db: &[Transaction],
    prev_level: &[(ItemSet, u64)],
    num_items: u32,
    k: usize,
) -> Vec<Transaction> {
    let mut keep = ItemBitmap::new(num_items);
    for (set, _) in prev_level {
        for item in set {
            keep.insert(item);
        }
    }
    db.iter()
        .filter_map(|t| {
            let kept: Vec<Item> = t
                .items()
                .iter()
                .copied()
                .filter(|&i| keep.contains(i))
                .collect();
            (kept.len() >= k).then(|| Transaction::from_sorted(t.tid(), kept))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{Apriori, AprioriParams};
    use rand::prelude::*;
    use std::collections::HashMap;

    fn random_db(seed: u64, n: usize, items: u32) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|tid| {
                let len = rng.gen_range(1..=10);
                Transaction::new(
                    tid as u64,
                    (0..len).map(|_| Item(rng.gen_range(0..items))).collect(),
                )
            })
            .collect()
    }

    fn lattice_of(f: &FrequentItemsets) -> HashMap<ItemSet, u64> {
        f.iter().map(|(s, c)| (s.clone(), c)).collect()
    }

    #[test]
    fn filter_admits_is_an_upper_bound() {
        let mut f = HashFilter::new(64);
        let a = ItemSet::from([1, 2]);
        for _ in 0..5 {
            f.add(&a);
        }
        assert!(f.admits(&a, 5));
        assert!(!f.admits(&a, 6));
        // A colliding set inherits the bucket count — false positives are
        // allowed (over-approximation), false negatives are not.
        let other = ItemSet::from([9, 17]);
        if f.bucket_of(&other) == f.bucket_of(&a) {
            assert!(f.admits(&other, 5));
        }
    }

    #[test]
    fn filter_counts_roundtrip() {
        let mut f = HashFilter::new(8);
        f.add(&ItemSet::from([1]));
        let snapshot = f.counts().to_vec();
        let mut g = HashFilter::new(8);
        g.set_counts(&snapshot);
        assert_eq!(g.counts(), &snapshot[..]);
        assert!(f.heavy_fraction(1) > 0.0);
        assert_eq!(f.heavy_fraction(100), 0.0);
    }

    #[test]
    fn dhp_matches_apriori_exactly() {
        for seed in [1u64, 2, 3, 4] {
            let db = random_db(seed, 60, 15);
            for min_count in [2u64, 3, 5] {
                let apriori =
                    Apriori::new(AprioriParams::with_min_support_count(min_count)).mine(&db);
                let dhp = Dhp::new(DhpParams::with_min_support_count(min_count)).mine(&db);
                assert_eq!(
                    lattice_of(&dhp.run.frequent),
                    lattice_of(&apriori.frequent),
                    "seed={seed} min={min_count}"
                );
            }
        }
    }

    #[test]
    fn dhp_with_tiny_bucket_table_still_exact() {
        // Heavy collisions ⇒ weak pruning, never wrong answers.
        let db = random_db(7, 80, 12);
        let apriori = Apriori::new(AprioriParams::with_min_support_count(3)).mine(&db);
        let dhp = Dhp::new(DhpParams::with_min_support_count(3).buckets(4)).mine(&db);
        assert_eq!(lattice_of(&dhp.run.frequent), lattice_of(&apriori.frequent));
    }

    #[test]
    fn dhp_prunes_candidates() {
        let db = random_db(11, 200, 40);
        let min_count = 4;
        let apriori = Apriori::new(AprioriParams::with_min_support_count(min_count)).mine(&db);
        let dhp = Dhp::new(DhpParams::with_min_support_count(min_count).buckets(1 << 14)).mine(&db);
        // Identical answers...
        assert_eq!(lattice_of(&dhp.run.frequent), lattice_of(&apriori.frequent));
        // ...with strictly fewer pass-2 candidates counted.
        let a2 = apriori.passes.iter().find(|p| p.k == 2).unwrap().candidates;
        let d2 = dhp.run.passes.iter().find(|p| p.k == 2).unwrap().candidates;
        assert!(
            d2 < a2,
            "bucket prune should shrink |C2|: apriori {a2}, dhp {d2}"
        );
        assert!(dhp.candidates_pruned() > 0);
        // The diagnostics record the pre-prune count.
        assert_eq!(dhp.dhp_passes[1].apriori_candidates, a2);
    }

    #[test]
    fn trimming_shrinks_live_items_and_stays_exact() {
        let db = random_db(13, 150, 30);
        let min_count = 5;
        let trimmed = Dhp::new(DhpParams::with_min_support_count(min_count).trim(true)).mine(&db);
        let untrimmed =
            Dhp::new(DhpParams::with_min_support_count(min_count).trim(false)).mine(&db);
        assert_eq!(
            lattice_of(&trimmed.run.frequent),
            lattice_of(&untrimmed.run.frequent)
        );
        // Pass-2 live volume under trimming ≤ untrimmed.
        if trimmed.dhp_passes.len() > 1 {
            assert!(
                trimmed.dhp_passes[1].live_items <= untrimmed.dhp_passes[1].live_items,
                "trimming must not grow the database"
            );
        }
    }

    #[test]
    fn no_filters_degenerates_to_apriori() {
        let db = random_db(17, 60, 15);
        let apriori = Apriori::new(AprioriParams::with_min_support_count(3)).mine(&db);
        let dhp = Dhp::new(
            DhpParams::with_min_support_count(3)
                .hash_filter_passes(0)
                .trim(false),
        )
        .mine(&db);
        assert_eq!(lattice_of(&dhp.run.frequent), lattice_of(&apriori.frequent));
        for (a, d) in apriori.passes.iter().zip(dhp.run.passes.iter()) {
            assert_eq!(a.candidates, d.candidates, "pass {}", a.k);
        }
    }

    #[test]
    fn max_k_and_empty_db() {
        let dhp = Dhp::new(DhpParams::with_min_support_count(1).max_k(2)).mine(&[]);
        assert!(dhp.run.frequent.is_empty());
        let db = random_db(19, 40, 10);
        let capped = Dhp::new(DhpParams::with_min_support_count(2).max_k(2)).mine(&db);
        assert!(capped.run.frequent.max_len() <= 2);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        HashFilter::new(0);
    }
}
