//! Transactions: the `t ∈ T` of the paper.

use crate::item::Item;
use crate::itemset::ItemSet;
use std::fmt;

/// A transaction: a transaction id plus a sorted set of distinct items.
///
/// Like [`ItemSet`], items are kept in ascending order so
/// the hash-tree subset operation can walk the suffix positionally.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    tid: u64,
    items: Box<[Item]>,
}

impl Transaction {
    /// Creates a transaction, sorting and deduplicating its items.
    pub fn new(tid: u64, mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        Transaction {
            tid,
            items: items.into_boxed_slice(),
        }
    }

    /// Creates a transaction from items already strictly ascending.
    pub fn from_sorted(tid: u64, items: Vec<Item>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "Transaction::from_sorted requires strictly ascending items"
        );
        Transaction {
            tid,
            items: items.into_boxed_slice(),
        }
    }

    /// The transaction id.
    #[inline]
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The items, ascending.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items (`I` in the paper's analysis).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the transaction is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the transaction contains `item`.
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether the transaction contains every item of `set` — i.e. whether
    /// it supports the candidate (`C ⊆ t`).
    pub fn contains_set(&self, set: &ItemSet) -> bool {
        set.is_subset_of_items(&self.items)
    }

    /// The number of size-`k` potential candidates this transaction
    /// generates: `C(|t|, k)` — the binomial coefficient the paper calls
    /// `C` in Section IV. Saturates at `u64::MAX`.
    pub fn potential_candidates(&self, k: usize) -> u64 {
        binomial(self.items.len() as u64, k as u64)
    }

    /// Serialized size in bytes when shipped between processors: a u64 tid,
    /// a u32 length, and one u32 per item. This is the figure the
    /// communication cost model charges for data movement.
    pub fn wire_size(&self) -> usize {
        8 + 4 + 4 * self.items.len()
    }

    /// Enumerates every size-`k` subset of this transaction in
    /// lexicographic order — the *potential candidates* HPA hashes and
    /// ships (Section III-E). Their number is `(|t| choose k)`, which is
    /// exactly why the paper warns that HPA's communication volume blows
    /// up for `k > 2`.
    pub fn k_subsets(&self, k: usize) -> Vec<ItemSet> {
        let n = self.items.len();
        if k == 0 || k > n {
            return Vec::new();
        }
        // Clamp the hint: C(|t|, k) can reach millions for wide
        // transactions, and pre-reserving that much (~24 bytes per slot)
        // per transaction is a real memory spike. Let the vector grow past
        // the hint instead.
        let mut out = Vec::with_capacity(self.potential_candidates(k).min(1024) as usize);
        let mut idx: Vec<usize> = (0..k).collect();
        loop {
            out.push(ItemSet::from_sorted(
                idx.iter().map(|&i| self.items[i]).collect(),
            ));
            // Advance the combination (standard odometer).
            let mut pos = k;
            loop {
                if pos == 0 {
                    return out;
                }
                pos -= 1;
                if idx[pos] != pos + n - k {
                    break;
                }
            }
            idx[pos] += 1;
            for i in pos + 1..k {
                idx[i] = idx[i - 1] + 1;
            }
        }
    }
}

/// Binomial coefficient with saturation, used for the `C = (I choose k)`
/// term of the analytical model.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}[", self.tid)?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let t = tx(7, &[5, 1, 5, 3]);
        assert_eq!(t.tid(), 7);
        assert_eq!(t.items(), &[Item(1), Item(3), Item(5)]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn contains_item_and_set() {
        let t = tx(0, &[1, 2, 3, 5, 6]);
        assert!(t.contains(Item(5)));
        assert!(!t.contains(Item(4)));
        assert!(t.contains_set(&ItemSet::from([1, 5, 6])));
        assert!(!t.contains_set(&ItemSet::from([1, 4])));
        assert!(t.contains_set(&ItemSet::empty()));
    }

    #[test]
    fn potential_candidates_is_binomial() {
        let t = tx(0, &[1, 2, 3, 4, 5]);
        assert_eq!(t.potential_candidates(2), 10);
        assert_eq!(t.potential_candidates(3), 10);
        assert_eq!(t.potential_candidates(5), 1);
        assert_eq!(t.potential_candidates(6), 0);
    }

    #[test]
    fn binomial_edge_cases() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(10, 11), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
        // Saturation instead of overflow.
        assert_eq!(binomial(10_000, 5_000), u64::MAX);
    }

    #[test]
    fn wire_size_counts_header_plus_items() {
        assert_eq!(tx(0, &[]).wire_size(), 12);
        assert_eq!(tx(0, &[1, 2, 3]).wire_size(), 12 + 12);
    }

    #[test]
    fn empty_transaction() {
        let t = tx(1, &[]);
        assert!(t.is_empty());
        assert_eq!(t.potential_candidates(1), 0);
        assert!(t.k_subsets(1).is_empty());
    }

    #[test]
    fn k_subsets_enumerates_all_combinations() {
        let t = tx(0, &[1, 3, 5, 7]);
        let subs = t.k_subsets(2);
        assert_eq!(subs.len(), 6);
        assert_eq!(subs[0], ItemSet::from([1, 3]));
        assert_eq!(subs[5], ItemSet::from([5, 7]));
        // Lexicographic and distinct.
        assert!(subs.windows(2).all(|w| w[0] < w[1]));
        // Count always matches the binomial (k = 0 is defined as empty,
        // not the single empty set — no pass ever counts 0-candidates).
        for k in 1..=5 {
            assert_eq!(t.k_subsets(k).len() as u64, t.potential_candidates(k));
        }
    }

    #[test]
    fn k_subsets_full_and_overflow() {
        let t = tx(0, &[2, 4]);
        assert_eq!(t.k_subsets(2), vec![ItemSet::from([2, 4])]);
        assert!(t.k_subsets(3).is_empty());
        assert!(t.k_subsets(0).is_empty());
    }
}
