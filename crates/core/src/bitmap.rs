//! Dense item bitmaps.
//!
//! IDD keeps "the first items of the candidates it has in a bit-map"
//! (Section III-C) and consults it at the root of the hash tree to skip
//! starting items whose candidates live on other processors.

use crate::item::Item;

/// A fixed-universe bit set indexed by [`Item`] id.
#[derive(Clone, PartialEq, Eq)]
pub struct ItemBitmap {
    words: Vec<u64>,
    num_items: u32,
}

impl ItemBitmap {
    /// An all-zero bitmap over `0..num_items`.
    pub fn new(num_items: u32) -> Self {
        ItemBitmap {
            words: vec![0; (num_items as usize).div_ceil(64)],
            num_items,
        }
    }

    /// Builds a bitmap with the given items set.
    pub fn from_items<I: IntoIterator<Item = Item>>(num_items: u32, items: I) -> Self {
        let mut bm = ItemBitmap::new(num_items);
        for item in items {
            bm.insert(item);
        }
        bm
    }

    /// The universe size.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Sets the bit for `item`.
    ///
    /// # Panics
    /// If `item` is outside the universe.
    pub fn insert(&mut self, item: Item) {
        assert!(item.id() < self.num_items, "item {item} out of universe");
        self.words[item.index() / 64] |= 1u64 << (item.index() % 64);
    }

    /// Clears the bit for `item`.
    pub fn remove(&mut self, item: Item) {
        if item.id() < self.num_items {
            self.words[item.index() / 64] &= !(1u64 << (item.index() % 64));
        }
    }

    /// Whether the bit for `item` is set. Items outside the universe are
    /// never contained.
    #[inline]
    pub fn contains(&self, item: Item) -> bool {
        if item.id() >= self.num_items {
            return false;
        }
        self.words[item.index() / 64] & (1u64 << (item.index() % 64)) != 0
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the set items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Item> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(Item((wi * 64) as u32 + bit))
            })
        })
    }

    /// Bitwise OR with another bitmap of the same universe.
    pub fn union_with(&mut self, other: &ItemBitmap) {
        assert_eq!(self.num_items, other.num_items, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether the two bitmaps share no items.
    pub fn is_disjoint(&self, other: &ItemBitmap) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Size in bytes when shipped between processors (what broadcasting the
    /// ownership bitmaps costs in the IDD setup phase).
    pub fn wire_size(&self) -> usize {
        8 * self.words.len() + 4
    }
}

/// Wide-word kernels over raw `u64` blocks — the inner loops of the
/// vertical (tid-bitmap) counting backend. A block is simply a dense bit
/// set packed 64 bits per word; candidates intersect by ANDing blocks and
/// a support count is one popcount sweep. All kernels return or consume
/// plain slices so callers can account the touched word count exactly
/// (that count is what `CounterStats::intersection_words` prices).
pub mod words {
    /// Number of `u64` words needed to hold `bits` bits.
    pub fn words_for(bits: usize) -> usize {
        bits.div_ceil(64)
    }

    /// Sets bit `i` in a block.
    #[inline]
    pub fn set_bit(block: &mut [u64], i: usize) {
        block[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set in a block.
    #[inline]
    pub fn test_bit(block: &[u64], i: usize) -> bool {
        block[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `a AND b` into a fresh block. Blocks must be the same length.
    pub fn and(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert_eq!(a.len(), b.len(), "block length mismatch");
        a.iter().zip(b).map(|(&x, &y)| x & y).collect()
    }

    /// Popcount of `a AND b` without materializing the intersection — the
    /// final step of a candidate evaluation.
    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len(), "block length mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x & y).count_ones() as u64)
            .sum()
    }

    /// Popcount of one block.
    pub fn popcount(block: &[u64]) -> u64 {
        block.iter().map(|w| w.count_ones() as u64).sum()
    }
}

impl std::fmt::Debug for ItemBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bm = ItemBitmap::new(130);
        assert!(bm.is_empty());
        bm.insert(Item(0));
        bm.insert(Item(64));
        bm.insert(Item(129));
        assert!(bm.contains(Item(0)));
        assert!(bm.contains(Item(64)));
        assert!(bm.contains(Item(129)));
        assert!(!bm.contains(Item(1)));
        assert_eq!(bm.len(), 3);
        bm.remove(Item(64));
        assert!(!bm.contains(Item(64)));
        assert_eq!(bm.len(), 2);
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let bm = ItemBitmap::new(10);
        assert!(!bm.contains(Item(10)));
        assert!(!bm.contains(Item(1000)));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_insert_panics() {
        ItemBitmap::new(10).insert(Item(10));
    }

    #[test]
    fn iter_ascending() {
        let bm = ItemBitmap::from_items(200, [Item(5), Item(190), Item(63), Item(64)]);
        let items: Vec<u32> = bm.iter().map(Item::id).collect();
        assert_eq!(items, vec![5, 63, 64, 190]);
    }

    #[test]
    fn union_and_disjoint() {
        let mut a = ItemBitmap::from_items(100, [Item(1), Item(2)]);
        let b = ItemBitmap::from_items(100, [Item(2), Item(3)]);
        let c = ItemBitmap::from_items(100, [Item(50)]);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&c));
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(Item(3)));
    }

    #[test]
    fn wire_size_rounds_to_words() {
        assert_eq!(ItemBitmap::new(1).wire_size(), 12);
        assert_eq!(ItemBitmap::new(64).wire_size(), 12);
        assert_eq!(ItemBitmap::new(65).wire_size(), 20);
    }

    #[test]
    fn word_kernels_match_naive_bit_sets() {
        let n = 200;
        let mut a = vec![0u64; words::words_for(n)];
        let mut b = vec![0u64; words::words_for(n)];
        let set_a: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
        let set_b: Vec<usize> = (0..n)
            .filter(|i| i % 5 == 0 || i % 3 == 0 && i % 2 == 0)
            .collect();
        for &i in &set_a {
            words::set_bit(&mut a, i);
        }
        for &i in &set_b {
            words::set_bit(&mut b, i);
        }
        assert!(words::test_bit(&a, 0) && !words::test_bit(&a, 1));
        assert_eq!(words::popcount(&a), set_a.len() as u64);
        let both: Vec<usize> = set_a
            .iter()
            .copied()
            .filter(|i| set_b.contains(i))
            .collect();
        assert_eq!(words::and_popcount(&a, &b), both.len() as u64);
        let anded = words::and(&a, &b);
        assert_eq!(words::popcount(&anded), both.len() as u64);
        for &i in &both {
            assert!(words::test_bit(&anded, i));
        }
    }

    #[test]
    fn word_kernels_handle_empty_blocks() {
        assert_eq!(words::words_for(0), 0);
        assert_eq!(words::words_for(64), 1);
        assert_eq!(words::words_for(65), 2);
        assert_eq!(words::popcount(&[]), 0);
        assert_eq!(words::and_popcount(&[], &[]), 0);
        assert!(words::and(&[], &[]).is_empty());
    }

    #[test]
    fn empty_universe() {
        let bm = ItemBitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.len(), 0);
        assert_eq!(bm.iter().count(), 0);
    }
}
