//! A vertical (tid-list) index: the independent support-counting method
//! used to cross-validate the hash-tree pipeline.
//!
//! The horizontal layout (transactions as item lists) is what Apriori and
//! all the parallel formulations scan; the *vertical* layout keeps, per
//! item, the sorted list of transaction ids containing it, and computes
//! σ(C) by intersecting the members' lists. The two representations share
//! no code, which makes the vertical index a strong oracle in tests —
//! and it is also the layout the paper contrasts in Section III-E when
//! citing Zaki et al.'s "entirely different nature" algorithms.

use crate::item::Item;
use crate::itemset::ItemSet;
use crate::transaction::Transaction;

/// Per-item sorted transaction-id lists.
///
/// ```
/// use armine_core::tidlist::TidListIndex;
/// use armine_core::{Transaction, Item, ItemSet};
///
/// let db = vec![
///     Transaction::new(1, vec![Item(0), Item(1)]),
///     Transaction::new(2, vec![Item(1)]),
/// ];
/// let index = TidListIndex::build(&db);
/// assert_eq!(index.support(&ItemSet::from([1])), 2);
/// assert_eq!(index.support(&ItemSet::from([0, 1])), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TidListIndex {
    lists: Vec<Vec<u32>>,
    num_transactions: usize,
}

impl TidListIndex {
    /// Builds the index; transaction ids are positional (index in the
    /// slice), so duplicate `tid()` values are harmless.
    pub fn build(transactions: &[Transaction]) -> Self {
        let num_items = transactions
            .iter()
            .filter_map(|t| t.items().last())
            .map(|i| i.id() + 1)
            .max()
            .unwrap_or(0) as usize;
        let mut lists = vec![Vec::new(); num_items];
        for (pos, t) in transactions.iter().enumerate() {
            for item in t.items() {
                lists[item.index()].push(pos as u32);
            }
        }
        TidListIndex {
            lists,
            num_transactions: transactions.len(),
        }
    }

    /// Number of indexed transactions.
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// The tid-list of one item (empty if the item never occurs).
    pub fn tids(&self, item: Item) -> &[u32] {
        self.lists.get(item.index()).map_or(&[], Vec::as_slice)
    }

    /// σ(C): the size of the intersection of the members' tid-lists.
    pub fn support(&self, set: &ItemSet) -> u64 {
        if set.is_empty() {
            return self.num_transactions as u64;
        }
        self.intersection(set).len() as u64
    }

    /// The exact tid set supporting `C` (positional indices).
    pub fn supporting_tids(&self, set: &ItemSet) -> Vec<u32> {
        if set.is_empty() {
            return (0..self.num_transactions as u32).collect();
        }
        self.intersection(set).into_owned()
    }

    /// Intersection of the members' tid-lists, smallest list first so the
    /// working set shrinks as fast as possible, with an early exit the
    /// moment it empties. A singleton query borrows the stored list
    /// instead of copying it — this index is the cross-validation oracle
    /// on multi-million-transaction datasets, where a defensive copy of
    /// the smallest list per query would dominate.
    fn intersection<'a>(&'a self, set: &ItemSet) -> std::borrow::Cow<'a, [u32]> {
        let mut lists: Vec<&[u32]> = set.items().iter().map(|&i| self.tids(i)).collect();
        lists.sort_by_key(|l| l.len());
        let mut acc = std::borrow::Cow::Borrowed(lists[0]);
        for list in &lists[1..] {
            if acc.is_empty() {
                break;
            }
            acc = std::borrow::Cow::Owned(intersect_sorted(&acc, list));
        }
        acc
    }
}

/// Intersection of two ascending id lists (galloping for skewed sizes).
/// Shared with the vertical counting backend, which falls back to sorted
/// tid lists for low-density items instead of materializing near-empty
/// bitmaps.
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // Gallop when the size ratio is extreme; merge otherwise.
    if large.len() / small.len().max(1) >= 16 {
        let mut out = Vec::with_capacity(small.len());
        let mut lo = 0;
        for &x in small {
            match large[lo..].binary_search(&x) {
                Ok(pos) => {
                    out.push(x);
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= large.len() {
                break;
            }
        }
        out
    } else {
        let mut out = Vec::with_capacity(small.len());
        let (mut i, mut j) = (0, 0);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from(ids)
    }

    fn table1() -> Vec<Transaction> {
        // Items: Bread=0, Coke=1, Milk=2, Beer=3, Diaper=4.
        vec![
            tx(1, &[0, 1, 2]),
            tx(2, &[3, 0]),
            tx(3, &[3, 1, 4, 2]),
            tx(4, &[3, 0, 4, 2]),
            tx(5, &[1, 4, 2]),
        ]
    }

    #[test]
    fn supports_match_paper_example() {
        let idx = TidListIndex::build(&table1());
        assert_eq!(idx.support(&set(&[4, 2])), 3, "σ(Diaper, Milk)");
        assert_eq!(idx.support(&set(&[4, 2, 3])), 2, "σ(Diaper, Milk, Beer)");
        assert_eq!(idx.support(&set(&[0])), 3);
        assert_eq!(idx.support(&ItemSet::empty()), 5);
    }

    #[test]
    fn supporting_tids_are_exact() {
        let idx = TidListIndex::build(&table1());
        assert_eq!(idx.supporting_tids(&set(&[4, 2])), vec![2, 3, 4]);
        assert_eq!(idx.supporting_tids(&set(&[0, 4, 1])), Vec::<u32>::new());
    }

    #[test]
    fn unknown_item_has_zero_support() {
        let idx = TidListIndex::build(&table1());
        assert_eq!(idx.support(&set(&[99])), 0);
        assert_eq!(idx.tids(Item(99)), &[] as &[u32]);
    }

    #[test]
    fn matches_horizontal_counting_on_random_data() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        let transactions: Vec<Transaction> = (0..200)
            .map(|tid| {
                let len = rng.gen_range(0..=10);
                Transaction::new(tid, (0..len).map(|_| Item(rng.gen_range(0..30))).collect())
            })
            .collect();
        let idx = TidListIndex::build(&transactions);
        for _ in 0..200 {
            let k = rng.gen_range(1..=4);
            let q = ItemSet::new((0..k).map(|_| Item(rng.gen_range(0..32))).collect());
            let horizontal = transactions.iter().filter(|t| t.contains_set(&q)).count() as u64;
            assert_eq!(idx.support(&q), horizontal, "query {q}");
        }
    }

    #[test]
    fn intersect_handles_galloping_path() {
        // Ratio >= 16 triggers the binary-search path.
        let small = vec![5u32, 100, 900];
        let large: Vec<u32> = (0..1000).collect();
        assert_eq!(intersect_sorted(&small, &large), small);
        let disjoint: Vec<u32> = (1000..2000).collect();
        assert!(intersect_sorted(&small, &disjoint).is_empty());
    }

    #[test]
    fn support_and_supporting_tids_agree_on_one_path() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        // Skewed data: item 0 is near-universal, high items are rare, so
        // queries exercise the galloping path and the early exit.
        let transactions: Vec<Transaction> = (0..500)
            .map(|tid| {
                let mut ids: Vec<u32> = vec![0];
                for i in 1..40u32 {
                    if rng.gen_range(0..i + 1) == 0 {
                        ids.push(i);
                    }
                }
                Transaction::new(tid, ids.into_iter().map(Item).collect())
            })
            .collect();
        let idx = TidListIndex::build(&transactions);
        for _ in 0..300 {
            let k = rng.gen_range(1..=4);
            let q = ItemSet::new((0..k).map(|_| Item(rng.gen_range(0..42))).collect());
            let tids = idx.supporting_tids(&q);
            assert_eq!(idx.support(&q), tids.len() as u64, "query {q}");
            assert!(tids.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            for &t in &tids {
                assert!(transactions[t as usize].contains_set(&q));
            }
        }
        // Singleton queries borrow the stored list and return it intact.
        assert_eq!(idx.supporting_tids(&set(&[0])).len(), 500);
    }

    #[test]
    fn empty_database() {
        let idx = TidListIndex::build(&[]);
        assert_eq!(idx.num_transactions(), 0);
        assert_eq!(idx.support(&set(&[1])), 0);
        assert_eq!(idx.support(&ItemSet::empty()), 0);
    }
}
