//! Condensed representations of a frequent-itemset lattice: maximal and
//! closed frequent itemsets.
//!
//! The full lattice `∪F_k` is often enormous (dense workloads make
//! `|F_k| ≈ |C_k|` for many passes); two standard lossless/lossy
//! summaries tame it:
//!
//! - a frequent itemset is **maximal** if no proper superset is frequent
//!   (lossy: counts of non-maximal sets are not recoverable);
//! - it is **closed** if no proper superset has the *same* support count
//!   (lossless: every frequent itemset's count equals the count of its
//!   smallest closed superset).

use crate::apriori::FrequentItemsets;
use crate::itemset::ItemSet;

/// Extracts the maximal frequent itemsets, lexicographically ordered
/// within each size, larger sizes last.
///
/// ```
/// use armine_core::apriori::{Apriori, AprioriParams};
/// use armine_core::summaries::maximal_itemsets;
/// use armine_core::{Transaction, Item, ItemSet};
///
/// let db: Vec<Transaction> = (0..3)
///     .map(|t| Transaction::new(t, vec![Item(1), Item(2), Item(3)]))
///     .collect();
/// let run = Apriori::new(AprioriParams::with_min_support_count(3)).mine(&db);
/// // 7 frequent itemsets, but a single maximal one: {1, 2, 3}.
/// assert_eq!(run.frequent.len(), 7);
/// let maximal = maximal_itemsets(&run.frequent);
/// assert_eq!(maximal, vec![(ItemSet::from([1, 2, 3]), 3)]);
/// ```
pub fn maximal_itemsets(frequent: &FrequentItemsets) -> Vec<(ItemSet, u64)> {
    let max_len = frequent.max_len();
    let mut out = Vec::new();
    for size in 1..=max_len {
        let supersets = frequent.level(size + 1);
        for (set, count) in frequent.level(size) {
            // A set is maximal iff it extends into no frequent superset.
            // Supersets of size+1 suffice: anti-monotonicity means any
            // larger frequent superset implies one at size+1.
            let has_frequent_superset = supersets.iter().any(|(sup, _)| set.is_subset_of(sup));
            if !has_frequent_superset {
                out.push((set.clone(), *count));
            }
        }
    }
    out
}

/// Extracts the closed frequent itemsets (no proper superset with equal
/// support), lexicographically ordered within each size.
pub fn closed_itemsets(frequent: &FrequentItemsets) -> Vec<(ItemSet, u64)> {
    let max_len = frequent.max_len();
    let mut out = Vec::new();
    for size in 1..=max_len {
        let supersets = frequent.level(size + 1);
        for (set, count) in frequent.level(size) {
            // Any superset has support ≤ count; equality at size+1 decides
            // closedness (a larger equal-support superset implies an
            // equal-support one at size+1 by anti-monotonicity).
            let absorbed = supersets
                .iter()
                .any(|(sup, sc)| sc == count && set.is_subset_of(sup));
            if !absorbed {
                out.push((set.clone(), *count));
            }
        }
    }
    out
}

/// Recovers the support of an arbitrary frequent itemset from the closed
/// summary: the count of its smallest superset among the closed sets
/// (`None` if the set is not frequent at all).
pub fn support_from_closed(closed: &[(ItemSet, u64)], query: &ItemSet) -> Option<u64> {
    closed
        .iter()
        .filter(|(c, _)| query.is_subset_of(c))
        .map(|(_, count)| *count)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{Apriori, AprioriParams};
    use crate::dataset::Dataset;

    fn table1() -> Dataset {
        Dataset::from_named_transactions(&[
            &["Bread", "Coke", "Milk"],
            &["Beer", "Bread"],
            &["Beer", "Coke", "Diaper", "Milk"],
            &["Beer", "Bread", "Diaper", "Milk"],
            &["Coke", "Diaper", "Milk"],
        ])
    }

    fn mined(min_count: u64) -> FrequentItemsets {
        Apriori::new(AprioriParams::with_min_support_count(min_count))
            .mine(table1().transactions())
            .frequent
    }

    #[test]
    fn maximal_sets_have_no_frequent_supersets() {
        let f = mined(2);
        let maximal = maximal_itemsets(&f);
        assert!(!maximal.is_empty());
        for (m, _) in &maximal {
            for (other, _) in f.iter() {
                if m.is_subset_of(other) && m != other {
                    panic!("{m} has frequent superset {other}");
                }
            }
        }
        // Every frequent set is under some maximal set.
        for (s, _) in f.iter() {
            assert!(
                maximal.iter().any(|(m, _)| s.is_subset_of(m)),
                "{s} not covered"
            );
        }
        // Maximal is a (strict, here) subset of the lattice.
        assert!(maximal.len() < f.len());
    }

    #[test]
    fn closed_summary_is_lossless() {
        let f = mined(2);
        let closed = closed_itemsets(&f);
        // Every frequent itemset's support is recoverable.
        for (s, count) in f.iter() {
            assert_eq!(
                support_from_closed(&closed, s),
                Some(count),
                "support of {s} lost"
            );
        }
        // And closed ⊆ frequent with matching counts.
        for (c, count) in &closed {
            assert_eq!(f.support(c), Some(*count));
        }
    }

    #[test]
    fn maximal_subset_of_closed() {
        // Every maximal itemset is closed (strict superset would be
        // frequent, contradiction).
        let f = mined(2);
        let closed: std::collections::HashSet<ItemSet> =
            closed_itemsets(&f).into_iter().map(|(s, _)| s).collect();
        for (m, _) in maximal_itemsets(&f) {
            assert!(closed.contains(&m), "maximal {m} not closed");
        }
    }

    #[test]
    fn singleton_lattice() {
        let f = mined(4); // only {Milk} has support 4.
        let maximal = maximal_itemsets(&f);
        let closed = closed_itemsets(&f);
        assert_eq!(maximal, closed);
        assert_eq!(maximal.len(), f.len());
    }

    #[test]
    fn empty_lattice() {
        let f = mined(100);
        assert!(maximal_itemsets(&f).is_empty());
        assert!(closed_itemsets(&f).is_empty());
        assert_eq!(support_from_closed(&[], &ItemSet::from([1])), None);
    }

    #[test]
    fn support_from_closed_rejects_infrequent() {
        let f = mined(3);
        let closed = closed_itemsets(&f);
        let d = table1();
        let infrequent = d.itemset(&["Beer", "Coke"]).unwrap(); // σ = 1 < 3
        assert_eq!(support_from_closed(&closed, &infrequent), None);
    }
}
