//! Association-rule generation — the second step of rule discovery.
//!
//! The paper focuses on the (expensive) frequent-itemset step and calls the
//! rule step "straightforward"; we implement it anyway so the library is a
//! complete rule miner. The algorithm is `ap-genrules` of Agrawal &
//! Srikant: for each frequent itemset `f`, grow confident consequents
//! level-wise, pruning with the fact that if `f\Y ⟹ Y` fails the confidence
//! bar, so does `f\Y' ⟹ Y'` for every `Y' ⊇ Y`.

use crate::apriori::{apriori_gen, FrequentItemsets};
use crate::itemset::ItemSet;

/// An association rule `X ⟹ Y` with its measures.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The antecedent `X`.
    pub antecedent: ItemSet,
    /// The consequent `Y` (disjoint from `X`).
    pub consequent: ItemSet,
    /// σ(X ∪ Y): how many transactions contain the whole rule.
    pub support_count: u64,
    /// Relative support `σ(X ∪ Y)/|T|`.
    pub support: f64,
    /// Confidence `σ(X ∪ Y)/σ(X)`.
    pub confidence: f64,
    /// Relative support of the antecedent, `σ(X)/|T|`.
    pub antecedent_support: f64,
    /// Relative support of the consequent, `σ(Y)/|T|`.
    pub consequent_support: f64,
}

impl Rule {
    /// Lift: `conf(X⟹Y) / supp(Y)` — how much more often X and Y co-occur
    /// than if independent. 1.0 means independence; > 1 positive
    /// association.
    pub fn lift(&self) -> f64 {
        self.confidence / self.consequent_support
    }

    /// Leverage (Piatetsky-Shapiro): `supp(X∪Y) − supp(X)·supp(Y)`.
    pub fn leverage(&self) -> f64 {
        self.support - self.antecedent_support * self.consequent_support
    }

    /// Conviction: `(1 − supp(Y)) / (1 − conf)`; ∞ for exact implications.
    pub fn conviction(&self) -> f64 {
        let denom = 1.0 - self.confidence;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            (1.0 - self.consequent_support) / denom
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} => {} (sup {:.1}%, conf {:.1}%)",
            self.antecedent,
            self.consequent,
            self.support * 100.0,
            self.confidence * 100.0
        )
    }
}

/// Generates every rule meeting `min_confidence` from the frequent-itemset
/// lattice. Rules are emitted for all itemsets of size ≥ 2; both sides are
/// non-empty. Output order: by itemset (lexicographic, smaller sizes
/// first), then by consequent size, then lexicographic consequent.
///
/// ```
/// use armine_core::apriori::{Apriori, AprioriParams};
/// use armine_core::rules::generate_rules;
/// use armine_core::{Transaction, Item};
///
/// let db: Vec<Transaction> = (0..4)
///     .map(|t| Transaction::new(t, vec![Item(1), Item(2)]))
///     .collect();
/// let run = Apriori::new(AprioriParams::with_min_support_count(3)).mine(&db);
/// let rules = generate_rules(&run.frequent, 0.9);
/// assert_eq!(rules.len(), 2, "{{1}}=>{{2}} and {{2}}=>{{1}}");
/// assert!(rules.iter().all(|r| r.confidence == 1.0));
/// ```
pub fn generate_rules(frequent: &FrequentItemsets, min_confidence: f64) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence must be a fraction, got {min_confidence}"
    );
    let n = frequent.num_transactions().max(1) as f64;
    let mut rules = Vec::new();
    for size in 2..=frequent.max_len() {
        for (itemset, count) in frequent.level(size) {
            grow_rules(frequent, itemset, *count, min_confidence, n, &mut rules);
        }
    }
    rules
}

/// Generates the rules of a **single** frequent itemset (level-wise
/// consequent growth). This is the unit of work the parallel rule
/// generator distributes: each processor takes a share of the frequent
/// itemsets and calls this on each.
pub fn rules_for_itemset(
    frequent: &FrequentItemsets,
    itemset: &ItemSet,
    min_confidence: f64,
) -> Vec<Rule> {
    rules_for_itemset_counted(frequent, itemset, min_confidence).0
}

/// Like [`rules_for_itemset`], but also reports how many consequents were
/// actually confidence-evaluated. Level-wise pruning makes this far
/// smaller than the `2^|itemset| − 2` bipartitions in all but the
/// all-confident case, so cost models must charge this number, not the
/// exponential bound.
pub fn rules_for_itemset_counted(
    frequent: &FrequentItemsets,
    itemset: &ItemSet,
    min_confidence: f64,
) -> (Vec<Rule>, u64) {
    let n = frequent.num_transactions().max(1) as f64;
    let count = match frequent.support(itemset) {
        Some(c) => c,
        None => return (Vec::new(), 0),
    };
    let mut out = Vec::new();
    let mut evaluated = 0;
    if itemset.len() >= 2 {
        evaluated = grow_rules(frequent, itemset, count, min_confidence, n, &mut out);
    }
    (out, evaluated)
}

/// Level-wise consequent growth for one frequent itemset. Returns the
/// number of consequents confidence-evaluated ([`try_rule`] calls).
fn grow_rules(
    frequent: &FrequentItemsets,
    itemset: &ItemSet,
    count: u64,
    min_confidence: f64,
    n: f64,
    out: &mut Vec<Rule>,
) -> u64 {
    let mut evaluated = 0u64;
    // Level 1: single-item consequents.
    let mut consequents: Vec<ItemSet> = Vec::new();
    for item in itemset {
        let consequent = ItemSet::singleton(item);
        evaluated += 1;
        if let Some(rule) = try_rule(frequent, itemset, &consequent, count, min_confidence, n) {
            out.push(rule);
            consequents.push(consequent);
        }
    }
    // Levels 2..: join surviving consequents, Apriori-style. A consequent
    // can have at most |itemset| - 1 items (the antecedent is non-empty).
    while !consequents.is_empty() && consequents[0].len() + 1 < itemset.len() {
        consequents.sort();
        consequents.dedup();
        let next = apriori_gen(&consequents);
        consequents = next
            .into_iter()
            .filter_map(|consequent| {
                evaluated += 1;
                let rule = try_rule(frequent, itemset, &consequent, count, min_confidence, n)?;
                out.push(rule);
                Some(consequent)
            })
            .collect();
    }
    evaluated
}

/// Builds the rule `itemset\consequent ⟹ consequent` if it clears the
/// confidence bar.
fn try_rule(
    frequent: &FrequentItemsets,
    itemset: &ItemSet,
    consequent: &ItemSet,
    count: u64,
    min_confidence: f64,
    n: f64,
) -> Option<Rule> {
    let antecedent = itemset.difference(consequent);
    debug_assert!(!antecedent.is_empty());
    // The antecedent is a subset of a frequent set, hence frequent itself.
    let antecedent_count = frequent
        .support(&antecedent)
        .expect("antecedent of a frequent itemset must be frequent");
    let consequent_count = frequent
        .support(consequent)
        .expect("consequent of a frequent itemset must be frequent");
    let confidence = count as f64 / antecedent_count as f64;
    (confidence >= min_confidence).then(|| Rule {
        antecedent,
        consequent: consequent.clone(),
        support_count: count,
        support: count as f64 / n,
        confidence,
        antecedent_support: antecedent_count as f64 / n,
        consequent_support: consequent_count as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{Apriori, AprioriParams};
    use crate::dataset::Dataset;
    use crate::item::Item;
    use crate::transaction::Transaction;

    fn table1() -> Dataset {
        Dataset::from_named_transactions(&[
            &["Bread", "Coke", "Milk"],
            &["Beer", "Bread"],
            &["Beer", "Coke", "Diaper", "Milk"],
            &["Beer", "Bread", "Diaper", "Milk"],
            &["Coke", "Diaper", "Milk"],
        ])
    }

    /// The paper's Section II example: {Diaper, Milk} ⟹ {Beer} has
    /// support 40% and confidence 66%.
    #[test]
    fn paper_example_rule_measures() {
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(d.transactions());
        let rules = generate_rules(&run.frequent, 0.5);
        let dm = d.itemset(&["Diaper", "Milk"]).unwrap();
        let beer = d.itemset(&["Beer"]).unwrap();
        let rule = rules
            .iter()
            .find(|r| r.antecedent == dm && r.consequent == beer)
            .expect("rule {Diaper, Milk} => {Beer} must be generated");
        assert!((rule.support - 0.4).abs() < 1e-12, "support 40%");
        assert!(
            (rule.confidence - 2.0 / 3.0).abs() < 1e-12,
            "confidence 66%"
        );
        assert_eq!(rule.support_count, 2);
    }

    #[test]
    fn all_rules_meet_confidence_and_are_valid() {
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(d.transactions());
        let rules = generate_rules(&run.frequent, 0.6);
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(r.confidence >= 0.6);
            assert!(r.confidence <= 1.0 + 1e-12);
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
            // Sides are disjoint and their union is frequent with the
            // recorded count.
            let union = r.antecedent.union(&r.consequent);
            assert_eq!(union.len(), r.antecedent.len() + r.consequent.len());
            assert_eq!(run.frequent.support(&union), Some(r.support_count));
        }
    }

    #[test]
    fn rules_match_brute_force_enumeration() {
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(d.transactions());
        let min_conf = 0.55;
        let got = generate_rules(&run.frequent, min_conf);
        // Brute force: for every frequent itemset of size >= 2, try every
        // non-trivial bipartition.
        let mut want = 0usize;
        for size in 2..=run.frequent.max_len() {
            for (itemset, count) in run.frequent.level(size) {
                let items = itemset.items();
                for mask in 1u32..(1 << items.len()) - 1 {
                    let consequent: Vec<Item> = (0..items.len())
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| items[i])
                        .collect();
                    let consequent = ItemSet::from_sorted(consequent);
                    let antecedent = itemset.difference(&consequent);
                    let ac = run.frequent.support(&antecedent).unwrap();
                    if *count as f64 / ac as f64 >= min_conf {
                        want += 1;
                    }
                }
            }
        }
        assert_eq!(got.len(), want);
    }

    #[test]
    fn higher_confidence_yields_fewer_rules() {
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(d.transactions());
        let loose = generate_rules(&run.frequent, 0.0);
        let tight = generate_rules(&run.frequent, 0.9);
        assert!(tight.len() <= loose.len());
    }

    #[test]
    fn confidence_one_rules_are_exact_implications() {
        let transactions: Vec<Transaction> = (0..10)
            .map(|tid| {
                // Item 1 always implies item 2.
                if tid % 2 == 0 {
                    Transaction::new(tid, vec![Item(1), Item(2)])
                } else {
                    Transaction::new(tid, vec![Item(2), Item(3)])
                }
            })
            .collect();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(&transactions);
        let rules = generate_rules(&run.frequent, 1.0);
        assert!(rules
            .iter()
            .any(|r| r.antecedent == ItemSet::from([1]) && r.consequent == ItemSet::from([2])));
        // And nothing below confidence 1.0 sneaks in.
        for r in &rules {
            assert!(r.confidence >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn interest_measures_on_the_paper_rule() {
        // {Diaper, Milk} => {Beer}: supp 2/5, conf 2/3, supp(X)=3/5,
        // supp(Y)=3/5.
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(d.transactions());
        let rules = generate_rules(&run.frequent, 0.5);
        let dm = d.itemset(&["Diaper", "Milk"]).unwrap();
        let beer = d.itemset(&["Beer"]).unwrap();
        let r = rules
            .iter()
            .find(|r| r.antecedent == dm && r.consequent == beer)
            .unwrap();
        assert!((r.antecedent_support - 0.6).abs() < 1e-12);
        assert!((r.consequent_support - 0.6).abs() < 1e-12);
        // lift = (2/3) / (3/5) = 10/9.
        assert!((r.lift() - 10.0 / 9.0).abs() < 1e-12);
        // leverage = 2/5 - (3/5)(3/5) = 0.04.
        assert!((r.leverage() - 0.04).abs() < 1e-12);
        // conviction = (1 - 0.6) / (1 - 2/3) = 1.2.
        assert!((r.conviction() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn conviction_of_exact_implication_is_infinite() {
        let r = Rule {
            antecedent: ItemSet::from([1]),
            consequent: ItemSet::from([2]),
            support_count: 5,
            support: 0.5,
            confidence: 1.0,
            antecedent_support: 0.5,
            consequent_support: 0.7,
        };
        assert!(r.conviction().is_infinite());
        assert!(r.lift() > 1.0);
    }

    #[test]
    fn no_frequent_itemsets_no_rules() {
        let run = Apriori::new(AprioriParams::with_min_support_count(100)).mine(&[]);
        assert!(generate_rules(&run.frequent, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "confidence must be a fraction")]
    fn rejects_out_of_range_confidence() {
        generate_rules(&FrequentItemsets::default(), 1.5);
    }

    #[test]
    fn rules_for_itemset_is_the_unit_of_generate_rules() {
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(d.transactions());
        let whole = generate_rules(&run.frequent, 0.6);
        let mut pieced: Vec<Rule> = Vec::new();
        for size in 2..=run.frequent.max_len() {
            for (set, _) in run.frequent.level(size) {
                pieced.extend(rules_for_itemset(&run.frequent, set, 0.6));
            }
        }
        assert_eq!(whole.len(), pieced.len());
        for (a, b) in whole.iter().zip(&pieced) {
            assert_eq!(a, b);
        }
        // Non-frequent and singleton queries produce nothing.
        assert!(rules_for_itemset(&run.frequent, &ItemSet::from([0]), 0.0).is_empty());
        assert!(rules_for_itemset(&run.frequent, &ItemSet::from([90, 91]), 0.0).is_empty());
    }

    #[test]
    fn evaluated_count_is_exhaustive_when_nothing_prunes() {
        // All transactions identical ⇒ every rule has confidence 1, so
        // level-wise growth evaluates every non-trivial consequent of the
        // 4-itemset: 2^4 − 2 = 14.
        let transactions: Vec<Transaction> = (0..5)
            .map(|tid| Transaction::new(tid, vec![Item(1), Item(2), Item(3), Item(4)]))
            .collect();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(&transactions);
        let four = ItemSet::from([1, 2, 3, 4]);
        let (rules, evaluated) = rules_for_itemset_counted(&run.frequent, &four, 0.9);
        assert_eq!(evaluated, 14);
        assert_eq!(rules.len(), 14);
    }

    #[test]
    fn evaluated_count_reflects_level_wise_pruning() {
        // The triple {1,2,3} is much rarer than its pairs, so every
        // single-item consequent of the triple fails a 0.9 confidence bar
        // (conf = 2/12) and growth stops after the 3 level-1 evaluations —
        // far below the 2^3 − 2 = 6 bipartitions.
        let mut transactions = Vec::new();
        let mut tid = 0u64;
        for pair in [[1u32, 2], [1, 3], [2, 3]] {
            for _ in 0..10 {
                transactions.push(Transaction::new(
                    tid,
                    pair.iter().map(|&i| Item(i)).collect(),
                ));
                tid += 1;
            }
        }
        for _ in 0..2 {
            transactions.push(Transaction::new(tid, vec![Item(1), Item(2), Item(3)]));
            tid += 1;
        }
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(&transactions);
        let triple = ItemSet::from([1, 2, 3]);
        assert!(
            run.frequent.support(&triple).is_some(),
            "triple is frequent"
        );
        let (rules, evaluated) = rules_for_itemset_counted(&run.frequent, &triple, 0.9);
        assert!(rules.is_empty());
        assert_eq!(evaluated, 3, "pruning stops after the level-1 failures");
        // Counted and uncounted variants agree on the rules themselves.
        assert_eq!(
            rules_for_itemset(&run.frequent, &triple, 0.9),
            rules_for_itemset_counted(&run.frequent, &triple, 0.9).0
        );
    }

    #[test]
    fn display_formats_percentages() {
        let r = Rule {
            antecedent: ItemSet::from([1]),
            consequent: ItemSet::from([2]),
            support_count: 2,
            support: 0.4,
            confidence: 0.5,
            antecedent_support: 0.8,
            consequent_support: 0.5,
        };
        assert_eq!(r.to_string(), "{1} => {2} (sup 40.0%, conf 50.0%)");
    }
}
