//! Descriptive statistics of a transaction database.
//!
//! Used by the CLI's `stats` subcommand and by experiments to
//! characterize generated workloads (the paper describes its datasets by
//! exactly these numbers: transaction-length distribution, item skew).

use crate::dataset::Dataset;
use crate::item::Item;

/// Summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of transactions (`N`).
    pub num_transactions: usize,
    /// Declared item-universe size.
    pub num_items: u32,
    /// Items that actually occur at least once.
    pub active_items: usize,
    /// Average transaction length (`|T|`).
    pub avg_transaction_len: f64,
    /// Minimum transaction length.
    pub min_transaction_len: usize,
    /// Maximum transaction length.
    pub max_transaction_len: usize,
    /// Density: avg length / active items (fraction of the universe a
    /// transaction touches).
    pub density: f64,
    /// Gini coefficient of item occurrence counts — 0 is uniform, →1 is
    /// extreme skew. Quest data is moderately skewed (exponential pattern
    /// weights).
    pub item_gini: f64,
    /// The `top_items` most frequent items with their counts, descending.
    pub top_items: Vec<(Item, u64)>,
}

/// Computes the summary, keeping the `top_k` most frequent items.
pub fn dataset_stats(dataset: &Dataset, top_k: usize) -> DatasetStats {
    let counts = dataset.item_counts();
    let active: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    let lengths: Vec<usize> = dataset.transactions().iter().map(|t| t.len()).collect();
    let mut indexed: Vec<(Item, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (Item(i as u32), c))
        .collect();
    indexed.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    indexed.truncate(top_k);
    DatasetStats {
        num_transactions: dataset.len(),
        num_items: dataset.num_items(),
        active_items: active.len(),
        avg_transaction_len: dataset.avg_transaction_len(),
        min_transaction_len: lengths.iter().copied().min().unwrap_or(0),
        max_transaction_len: lengths.iter().copied().max().unwrap_or(0),
        density: if active.is_empty() {
            0.0
        } else {
            dataset.avg_transaction_len() / active.len() as f64
        },
        item_gini: gini(&active),
        top_items: indexed,
    }
}

/// Gini coefficient of a set of non-negative weights (0 = all equal).
pub fn gini(weights: &[u64]) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = weights.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // G = (2·Σ i·x_i) / (n·Σ x) − (n+1)/n, with 1-based rank i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} transactions over {} items ({} active)",
            self.num_transactions, self.num_items, self.active_items
        )?;
        writeln!(
            f,
            "transaction length: avg {:.1}, min {}, max {}; density {:.3}",
            self.avg_transaction_len,
            self.min_transaction_len,
            self.max_transaction_len,
            self.density
        )?;
        writeln!(f, "item skew (Gini): {:.3}", self.item_gini)?;
        write!(f, "top items:")?;
        for (item, count) in &self.top_items {
            write!(f, " {item}({count})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    #[test]
    fn basic_summary() {
        let d = Dataset::new(vec![tx(1, &[0, 1]), tx(2, &[1, 2, 3]), tx(3, &[1])]);
        let s = dataset_stats(&d, 2);
        assert_eq!(s.num_transactions, 3);
        assert_eq!(s.active_items, 4);
        assert_eq!(s.min_transaction_len, 1);
        assert_eq!(s.max_transaction_len, 3);
        assert!((s.avg_transaction_len - 2.0).abs() < 1e-12);
        assert_eq!(s.top_items[0], (Item(1), 3));
        assert_eq!(s.top_items.len(), 2);
    }

    #[test]
    fn gini_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
    }

    #[test]
    fn gini_extreme_skew_near_one() {
        let mut w = vec![0u64; 999];
        w.push(1_000_000);
        assert!(gini(&w) > 0.99);
    }

    #[test]
    fn gini_known_value() {
        // For [1, 3]: G = (2·(1·1 + 2·3))/(2·4) − 3/2 = 14/8 − 1.5 = 0.25.
        assert!((gini(&[1, 3]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gini_degenerate() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        assert_eq!(gini(&[7]), 0.0);
    }

    #[test]
    fn empty_dataset_stats() {
        let s = dataset_stats(&Dataset::new(vec![]), 5);
        assert_eq!(s.num_transactions, 0);
        assert_eq!(s.density, 0.0);
        assert!(s.top_items.is_empty());
    }

    #[test]
    fn display_renders() {
        let d = Dataset::new(vec![tx(1, &[0, 1])]);
        let text = dataset_stats(&d, 3).to_string();
        assert!(text.contains("1 transactions"));
        assert!(text.contains("Gini"));
    }
}
