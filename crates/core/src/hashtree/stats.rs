//! Work counters for the hash tree.
//!
//! The counter definition now lives in [`crate::counter`] — the same six
//! fields serve every [`CandidateCounter`](crate::counter::CandidateCounter)
//! backend — and is re-exported here under its historical name so
//! `hashtree::TreeStats` keeps working everywhere.

pub use crate::counter::CounterStats as TreeStats;
