//! Work counters for the hash tree.
//!
//! These counters are the bridge between the real execution and the
//! analytical model of Section IV: `traversal_steps` accrues `t_travers`
//! units, `distinct_leaf_visits` accrues `t_check` units, and `inserts`
//! accrues tree-construction units. Figure 11 plots
//! `distinct_leaf_visits / transactions` directly.

/// Accumulated work counters of a [`HashTree`](super::HashTree).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Candidate insertions (tree-construction work, the `O(M)` term).
    pub inserts: u64,
    /// Transactions processed through `subset`.
    pub transactions: u64,
    /// Starting items processed at the root (after bitmap filtering) — the
    /// quantity IDD's filter reduces by roughly a factor of `P`.
    pub root_starts: u64,
    /// Hash descents into existing children (`t_travers` units; the model's
    /// `C` per transaction).
    pub traversal_steps: u64,
    /// Distinct leaf nodes visited, counted once per (transaction, leaf) —
    /// the model's `V(i, j)`, `t_check` units.
    pub distinct_leaf_visits: u64,
    /// Individual candidate-vs-transaction comparisons performed at leaves.
    pub candidate_checks: u64,
}

impl TreeStats {
    /// Average distinct leaves visited per transaction — the y-axis of
    /// Figure 11.
    pub fn avg_leaf_visits_per_transaction(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.distinct_leaf_visits as f64 / self.transactions as f64
        }
    }

    /// Element-wise sum, used when aggregating per-pass or per-processor
    /// stats.
    pub fn merged(&self, other: &TreeStats) -> TreeStats {
        TreeStats {
            inserts: self.inserts + other.inserts,
            transactions: self.transactions + other.transactions,
            root_starts: self.root_starts + other.root_starts,
            traversal_steps: self.traversal_steps + other.traversal_steps,
            distinct_leaf_visits: self.distinct_leaf_visits + other.distinct_leaf_visits,
            candidate_checks: self.candidate_checks + other.candidate_checks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_leaf_visits_handles_zero_transactions() {
        assert_eq!(TreeStats::default().avg_leaf_visits_per_transaction(), 0.0);
    }

    #[test]
    fn avg_leaf_visits_divides() {
        let s = TreeStats {
            transactions: 4,
            distinct_leaf_visits: 10,
            ..Default::default()
        };
        assert!((s.avg_leaf_visits_per_transaction() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merged_sums_fields() {
        let a = TreeStats {
            inserts: 1,
            transactions: 2,
            root_starts: 3,
            traversal_steps: 4,
            distinct_leaf_visits: 5,
            candidate_checks: 6,
        };
        let b = a;
        let m = a.merged(&b);
        assert_eq!(m.inserts, 2);
        assert_eq!(m.transactions, 4);
        assert_eq!(m.root_starts, 6);
        assert_eq!(m.traversal_steps, 8);
        assert_eq!(m.distinct_leaf_visits, 10);
        assert_eq!(m.candidate_checks, 12);
    }
}
