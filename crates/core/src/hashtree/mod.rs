//! The candidate hash tree of Section II, with the instrumentation the
//! paper's analysis (Section IV) and Figure 11 require.
//!
//! Internal nodes hold hash tables (fixed fan-out) linking to children;
//! leaves hold candidate itemsets. Candidates are inserted by hashing
//! successive items; when a leaf overflows and its depth is still less than
//! `k`, it splits into an internal node and redistributes its candidates by
//! the next item. The `subset` operation walks the tree with every item of
//! a transaction as a possible starting item, recursively hashing the items
//! that follow, and checks the candidates of each **distinct** leaf it
//! reaches exactly once per transaction (re-visits are suppressed with an
//! epoch stamp, as the paper describes: "if this node is revisited due to a
//! different candidate from the same transaction, no checking needs to be
//! performed").
//!
//! The tree counts its own work — hash-descents (`t_travers` units),
//! distinct leaf visits (`t_check` units), and per-candidate comparisons —
//! which is what lets the parallel simulator price computation with the
//! paper's cost model, and what regenerates Figure 11 directly.

mod filter;
mod node;
mod stats;

pub use filter::OwnershipFilter;
pub use stats::TreeStats;

use crate::itemset::ItemSet;
use crate::transaction::Transaction;
use node::Node;

/// Configuration for a [`HashTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashTreeParams {
    /// Hash-table fan-out of internal nodes (the example of Figure 2 uses 3).
    pub branching: usize,
    /// Maximum candidates per leaf before it splits (the paper's "maximum
    /// allowed"; this controls `S`, the average leaf occupancy, in the
    /// analysis).
    pub max_leaf: usize,
}

impl Default for HashTreeParams {
    fn default() -> Self {
        HashTreeParams {
            branching: 8,
            max_leaf: 16,
        }
    }
}

/// A candidate hash tree for candidates of a fixed size `k`.
///
/// ```
/// use armine_core::hashtree::{HashTree, HashTreeParams, OwnershipFilter};
/// use armine_core::{ItemSet, Transaction, Item};
///
/// let mut tree = HashTree::build(2, HashTreeParams::default(), vec![
///     ItemSet::from([1, 2]),
///     ItemSet::from([2, 5]),
/// ]);
/// tree.subset(&Transaction::new(1, vec![Item(1), Item(2), Item(3)]),
///             &OwnershipFilter::all());
/// assert_eq!(tree.count_of(&ItemSet::from([1, 2])), Some(1));
/// assert_eq!(tree.count_of(&ItemSet::from([2, 5])), Some(0));
/// ```
pub struct HashTree {
    k: usize,
    params: HashTreeParams,
    candidates: Vec<CandidateSlot>,
    root: Node,
    epoch: u64,
    stats: TreeStats,
}

/// A candidate and its running support count.
#[derive(Debug, Clone)]
struct CandidateSlot {
    items: ItemSet,
    count: u64,
}

impl HashTree {
    /// An empty tree for size-`k` candidates.
    ///
    /// # Panics
    /// If `k == 0` or the params are degenerate (branching < 2, max_leaf == 0).
    pub fn new(k: usize, params: HashTreeParams) -> Self {
        assert!(k >= 1, "candidate size must be at least 1");
        assert!(params.branching >= 2, "branching must be at least 2");
        assert!(params.max_leaf >= 1, "max_leaf must be at least 1");
        HashTree {
            k,
            params,
            candidates: Vec::new(),
            root: Node::empty_leaf(),
            epoch: 0,
            stats: TreeStats::default(),
        }
    }

    /// Builds a tree containing all of `candidates` (each must have exactly
    /// `k` items).
    pub fn build(k: usize, params: HashTreeParams, candidates: Vec<ItemSet>) -> Self {
        let mut tree = HashTree::new(k, params);
        for c in candidates {
            tree.insert(c);
        }
        tree
    }

    /// The candidate size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates stored (`M` for this processor's tree).
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Number of leaf nodes (`L` of the analysis).
    pub fn num_leaves(&self) -> usize {
        self.root.count_leaves()
    }

    /// Average candidates per non-empty leaf (`S` of the analysis).
    pub fn avg_leaf_occupancy(&self) -> f64 {
        let (leaves, occupied) = self.root.leaf_occupancy();
        if occupied == 0 {
            0.0
        } else {
            debug_assert!(leaves >= 1);
            self.candidates.len() as f64 / occupied as f64
        }
    }

    /// Inserts one size-`k` candidate.
    ///
    /// # Panics
    /// If the candidate does not have exactly `k` items.
    pub fn insert(&mut self, items: ItemSet) {
        assert_eq!(
            items.len(),
            self.k,
            "candidate {items} has wrong size for a k={} tree",
            self.k
        );
        let id = self.candidates.len() as u32;
        self.candidates.push(CandidateSlot { items, count: 0 });
        self.stats.inserts += 1;
        // `item_at` reveals any candidate's d-th item; the node uses it both
        // to route the new candidate and to redistribute old ones on splits.
        let candidates = &self.candidates;
        self.root
            .insert(id, 0, self.k, self.params, &mut |cid, depth| {
                candidates[cid as usize].items.items()[depth]
            });
    }

    /// Computes, for one transaction, which candidates it contains and
    /// bumps their counts: the `subset(C_k, t)` of Figure 1.
    ///
    /// `filter` prunes starting items at the root (and optionally second
    /// items), implementing IDD's bitmap check. Use
    /// [`OwnershipFilter::all`] for the serial algorithm and CD/DD.
    pub fn subset(&mut self, t: &Transaction, filter: &OwnershipFilter) {
        if self.candidates.is_empty() {
            return;
        }
        self.epoch += 1;
        self.stats.transactions += 1;
        let items = t.items();
        if items.len() < self.k {
            return;
        }
        // Split borrows: the recursion needs &mut nodes and &mut candidate
        // counts simultaneously, so hand the node walk raw parts.
        let k = self.k;
        let epoch = self.epoch;
        Node::subset_walk(
            &mut self.root,
            items,
            0,
            0,
            k,
            epoch,
            filter,
            None,
            &mut self.candidates,
            &mut self.stats,
        );
    }

    /// Runs `subset` for every transaction of a slice.
    pub fn count_all(&mut self, transactions: &[Transaction], filter: &OwnershipFilter) {
        for t in transactions {
            self.subset(t, filter);
        }
    }

    /// The support count accumulated for `items`, or `None` if the set was
    /// never inserted.
    pub fn count_of(&self, items: &ItemSet) -> Option<u64> {
        self.candidates
            .iter()
            .find(|c| &c.items == items)
            .map(|c| c.count)
    }

    /// Iterates over `(candidate, count)` pairs in insertion order.
    pub fn counts(&self) -> impl Iterator<Item = (&ItemSet, u64)> + '_ {
        self.candidates.iter().map(|c| (&c.items, c.count))
    }

    /// The raw count vector, ordered by insertion. This is what CD's global
    /// reduction sums element-wise across processors (candidate order is
    /// identical on every processor because `apriori_gen` is deterministic).
    pub fn count_vector(&self) -> Vec<u64> {
        self.candidates.iter().map(|c| c.count).collect()
    }

    /// Overwrites the count vector (after a global reduction delivers the
    /// summed counts back).
    ///
    /// # Panics
    /// If the length differs from the number of candidates.
    pub fn set_count_vector(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.candidates.len(),
            "count vector length mismatch"
        );
        for (slot, &c) in self.candidates.iter_mut().zip(counts) {
            slot.count = c;
        }
    }

    /// Extracts the frequent itemsets: candidates with `count >= min_count`,
    /// with their counts, in insertion (lexicographic) order.
    pub fn frequent(&self, min_count: u64) -> Vec<(ItemSet, u64)> {
        self.candidates
            .iter()
            .filter(|c| c.count >= min_count)
            .map(|c| (c.items.clone(), c.count))
            .collect()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Resets the work counters (not the candidate counts).
    pub fn reset_stats(&mut self) {
        self.stats = TreeStats::default();
    }

    /// Bytes needed to ship every candidate of this tree (4 bytes per item
    /// plus an 8-byte count), used by communication costing.
    pub fn wire_size(&self) -> usize {
        self.candidates.len() * (4 * self.k + 8)
    }
}

impl std::fmt::Debug for HashTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashTree")
            .field("k", &self.k)
            .field("candidates", &self.candidates.len())
            .field("leaves", &self.num_leaves())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from(ids)
    }

    fn tx(ids: &[u32]) -> Transaction {
        Transaction::new(0, ids.iter().map(|&i| Item(i)).collect())
    }

    /// The worked example of Figures 2 and 3: branching 3, the fifteen
    /// 3-candidates of the paper, transaction {1 2 3 5 6}.
    fn paper_tree() -> HashTree {
        let cands = [
            [1, 4, 5],
            [1, 2, 4],
            [4, 5, 7],
            [1, 2, 5],
            [4, 5, 8],
            [1, 5, 9],
            [1, 3, 6],
            [2, 3, 4],
            [5, 6, 7],
            [3, 4, 5],
            [3, 5, 6],
            [3, 5, 7],
            [6, 8, 9],
            [3, 6, 7],
            [3, 6, 8],
        ];
        HashTree::build(
            3,
            HashTreeParams {
                branching: 3,
                max_leaf: 3,
            },
            cands.iter().map(|c| set(c)).collect(),
        )
    }

    /// Brute-force reference: count subset containment directly.
    fn brute_counts(cands: &[ItemSet], transactions: &[Transaction]) -> Vec<u64> {
        cands
            .iter()
            .map(|c| transactions.iter().filter(|t| t.contains_set(c)).count() as u64)
            .collect()
    }

    #[test]
    fn paper_example_counts_candidates_in_transaction() {
        let mut tree = paper_tree();
        tree.subset(&tx(&[1, 2, 3, 5, 6]), &OwnershipFilter::all());
        // Candidates contained in {1 2 3 5 6}: {1 2 5}, {1 3 6}, {3 5 6}.
        assert_eq!(tree.count_of(&set(&[1, 2, 5])), Some(1));
        assert_eq!(tree.count_of(&set(&[1, 3, 6])), Some(1));
        assert_eq!(tree.count_of(&set(&[3, 5, 6])), Some(1));
        let total: u64 = tree.counts().map(|(_, c)| c).sum();
        assert_eq!(total, 3, "exactly three candidates are subsets");
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let k = 2 + trial % 3;
            let num_items = 30u32;
            let mut cands: Vec<ItemSet> = (0..80)
                .map(|_| {
                    let mut ids: Vec<u32> = (0..num_items).collect();
                    ids.shuffle(&mut rng);
                    set(&ids[..k])
                })
                .collect();
            cands.sort();
            cands.dedup();
            let transactions: Vec<Transaction> = (0..60)
                .map(|tid| {
                    let len = rng.gen_range(0..=12);
                    let mut ids: Vec<u32> = (0..num_items).collect();
                    ids.shuffle(&mut rng);
                    Transaction::new(tid, ids[..len].iter().map(|&i| Item(i)).collect())
                })
                .collect();
            let mut tree = HashTree::build(
                k,
                HashTreeParams {
                    branching: 3,
                    max_leaf: 2,
                },
                cands.clone(),
            );
            tree.count_all(&transactions, &OwnershipFilter::all());
            let expected = brute_counts(&cands, &transactions);
            for (c, want) in cands.iter().zip(&expected) {
                assert_eq!(
                    tree.count_of(c),
                    Some(*want),
                    "k={k} candidate {c} miscounted"
                );
            }
        }
    }

    #[test]
    fn leaf_split_keeps_counts_correct() {
        // Force deep splitting with max_leaf=1.
        let cands: Vec<ItemSet> = (0..9)
            .flat_map(|a| (a + 1..10).map(move |b| set(&[a, b])))
            .collect();
        let mut tree = HashTree::build(
            2,
            HashTreeParams {
                branching: 2,
                max_leaf: 1,
            },
            cands.clone(),
        );
        assert_eq!(tree.num_candidates(), 45);
        let t = tx(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        tree.subset(&t, &OwnershipFilter::all());
        for c in &cands {
            assert_eq!(tree.count_of(c), Some(1));
        }
    }

    #[test]
    fn distinct_leaf_visits_are_counted_once_per_transaction() {
        let mut tree = paper_tree();
        tree.subset(&tx(&[1, 2, 3, 5, 6]), &OwnershipFilter::all());
        let stats = tree.stats();
        assert_eq!(stats.transactions, 1);
        assert!(stats.distinct_leaf_visits >= 1);
        assert!(
            stats.distinct_leaf_visits <= tree.num_leaves() as u64,
            "cannot visit more distinct leaves than exist"
        );
        // A second identical transaction doubles the visit count exactly:
        // the epoch stamp resets between transactions.
        let first = stats.distinct_leaf_visits;
        tree.subset(&tx(&[1, 2, 3, 5, 6]), &OwnershipFilter::all());
        assert_eq!(tree.stats().distinct_leaf_visits, 2 * first);
    }

    #[test]
    fn bitmap_filter_skips_non_owned_roots() {
        // Figure 8: processor owns candidates starting with 1, 3, 5 only.
        let mut owned = paper_tree();
        let bitmap = crate::ItemBitmap::from_items(10, [Item(1), Item(3), Item(5)]);
        let filter = OwnershipFilter::first_item(bitmap);
        let t = tx(&[1, 2, 3, 5, 6]);
        owned.subset(&t, &filter);
        // Counting is still correct for owned candidates...
        assert_eq!(owned.count_of(&set(&[1, 2, 5])), Some(1));
        assert_eq!(owned.count_of(&set(&[3, 5, 6])), Some(1));
        // ...and the filtered run does strictly less root work than the
        // unfiltered one.
        let filtered_starts = owned.stats().root_starts;
        let mut unfiltered = paper_tree();
        unfiltered.subset(&t, &OwnershipFilter::all());
        assert!(filtered_starts < unfiltered.stats().root_starts);
    }

    #[test]
    fn count_vector_roundtrip() {
        let mut tree = paper_tree();
        tree.subset(&tx(&[1, 2, 3, 5, 6]), &OwnershipFilter::all());
        let v = tree.count_vector();
        assert_eq!(v.len(), 15);
        let doubled: Vec<u64> = v.iter().map(|c| c * 2).collect();
        tree.set_count_vector(&doubled);
        assert_eq!(tree.count_of(&set(&[1, 2, 5])), Some(2));
    }

    #[test]
    fn frequent_filters_by_min_count() {
        let mut tree = paper_tree();
        for _ in 0..3 {
            tree.subset(&tx(&[1, 2, 3, 5, 6]), &OwnershipFilter::all());
        }
        tree.subset(&tx(&[1, 2, 5]), &OwnershipFilter::all());
        let f = tree.frequent(4);
        assert_eq!(f, vec![(set(&[1, 2, 5]), 4)]);
        let f3 = tree.frequent(3);
        assert_eq!(f3.len(), 3);
    }

    #[test]
    fn short_transaction_counts_nothing() {
        let mut tree = paper_tree();
        tree.subset(&tx(&[1, 2]), &OwnershipFilter::all());
        assert!(tree.counts().all(|(_, c)| c == 0));
    }

    #[test]
    fn occupancy_and_leaves() {
        let tree = paper_tree();
        assert!(tree.num_leaves() >= 5, "the figure's tree has many leaves");
        let s = tree.avg_leaf_occupancy();
        assert!(s > 0.0 && s <= 3.0, "max_leaf=3 bounds occupancy, got {s}");
    }

    #[test]
    fn empty_tree_subset_is_noop() {
        let mut tree = HashTree::new(3, HashTreeParams::default());
        tree.subset(&tx(&[1, 2, 3]), &OwnershipFilter::all());
        assert_eq!(tree.stats().transactions, 0);
        assert_eq!(tree.num_leaves(), 1, "empty root leaf");
        assert_eq!(tree.avg_leaf_occupancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn insert_rejects_wrong_arity() {
        let mut tree = HashTree::new(3, HashTreeParams::default());
        tree.insert(set(&[1, 2]));
    }

    #[test]
    fn k1_tree_works() {
        let mut tree = HashTree::build(
            1,
            HashTreeParams {
                branching: 2,
                max_leaf: 1,
            },
            vec![set(&[0]), set(&[1]), set(&[2]), set(&[3])],
        );
        tree.subset(&tx(&[1, 3]), &OwnershipFilter::all());
        assert_eq!(tree.count_of(&set(&[1])), Some(1));
        assert_eq!(tree.count_of(&set(&[0])), Some(0));
        assert_eq!(tree.count_of(&set(&[3])), Some(1));
    }

    #[test]
    fn wire_size_scales_with_candidates() {
        let tree = paper_tree();
        assert_eq!(tree.wire_size(), 15 * (12 + 8));
    }
}
