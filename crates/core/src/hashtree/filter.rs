//! Ownership filters: the bitmap pruning of IDD (Section III-C).
//!
//! A processor running IDD owns only the candidates whose first item falls
//! in its partition, keeps those first items in a bitmap, and — at the root
//! of the hash tree — skips every starting item of a transaction that the
//! bitmap rejects. The two-level variant additionally filters by second
//! item for first items whose candidate population was too large for a
//! single processor (the paper's refinement for skewed first items).

use crate::bitmap::ItemBitmap;
use crate::item::Item;
use std::collections::HashSet;

/// Root-level (and optionally second-level) pruning for the subset walk.
#[derive(Debug, Clone)]
pub struct OwnershipFilter {
    mode: Mode,
}

#[derive(Debug, Clone)]
enum Mode {
    /// No pruning: the serial algorithm, CD, and DD.
    All,
    /// Prune starting items not in the bitmap: plain IDD.
    FirstItem(ItemBitmap),
    /// Like `FirstItem`, but some first items are *split*: for those, only
    /// specific (first, second) pairs are owned.
    TwoLevel {
        /// First items owned outright.
        owned_first: ItemBitmap,
        /// First items owned only for certain second items.
        split_first: ItemBitmap,
        /// The owned (first, second) pairs for split first items.
        owned_pairs: HashSet<(Item, Item)>,
    },
}

impl OwnershipFilter {
    /// A filter that allows everything.
    pub fn all() -> Self {
        OwnershipFilter { mode: Mode::All }
    }

    /// A first-item bitmap filter (IDD).
    pub fn first_item(bitmap: ItemBitmap) -> Self {
        OwnershipFilter {
            mode: Mode::FirstItem(bitmap),
        }
    }

    /// A two-level filter: `owned_first` items are owned outright;
    /// `owned_pairs` enumerates the (first, second) combinations owned for
    /// first items that were split across processors.
    pub fn two_level(owned_first: ItemBitmap, owned_pairs: HashSet<(Item, Item)>) -> Self {
        let num_items = owned_first.num_items();
        let mut split_first = ItemBitmap::new(num_items);
        for &(first, _) in &owned_pairs {
            split_first.insert(first);
        }
        OwnershipFilter {
            mode: Mode::TwoLevel {
                owned_first,
                split_first,
                owned_pairs,
            },
        }
    }

    /// Whether a candidate path may *start* with `item` at the tree root.
    #[inline]
    pub fn allows_root(&self, item: Item) -> bool {
        match &self.mode {
            Mode::All => true,
            Mode::FirstItem(bm) => bm.contains(item),
            Mode::TwoLevel {
                owned_first,
                split_first,
                ..
            } => owned_first.contains(item) || split_first.contains(item),
        }
    }

    /// Whether a path that started with `first` may continue with `second`
    /// at depth 1. Always true except for split first items in two-level
    /// mode.
    #[inline]
    pub fn allows_second(&self, first: Item, second: Item) -> bool {
        match &self.mode {
            Mode::All | Mode::FirstItem(_) => true,
            Mode::TwoLevel {
                owned_first,
                owned_pairs,
                ..
            } => owned_first.contains(first) || owned_pairs.contains(&(first, second)),
        }
    }

    /// Whether this filter prunes anything at all.
    pub fn is_all(&self) -> bool {
        matches!(self.mode, Mode::All)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_allows_everything() {
        let f = OwnershipFilter::all();
        assert!(f.is_all());
        assert!(f.allows_root(Item(0)));
        assert!(f.allows_second(Item(0), Item(1)));
    }

    #[test]
    fn first_item_filters_roots_only() {
        let f = OwnershipFilter::first_item(ItemBitmap::from_items(10, [Item(2), Item(5)]));
        assert!(!f.is_all());
        assert!(f.allows_root(Item(2)));
        assert!(!f.allows_root(Item(3)));
        // Second items are never filtered in single-level mode.
        assert!(f.allows_second(Item(2), Item(9)));
    }

    #[test]
    fn two_level_owns_outright_and_by_pair() {
        let owned_first = ItemBitmap::from_items(10, [Item(1)]);
        let pairs: HashSet<(Item, Item)> = [(Item(4), Item(5)), (Item(4), Item(7))]
            .into_iter()
            .collect();
        let f = OwnershipFilter::two_level(owned_first, pairs);
        // Item 1 is owned outright: all seconds pass.
        assert!(f.allows_root(Item(1)));
        assert!(f.allows_second(Item(1), Item(9)));
        // Item 4 is split: only listed seconds pass.
        assert!(f.allows_root(Item(4)));
        assert!(f.allows_second(Item(4), Item(5)));
        assert!(!f.allows_second(Item(4), Item(6)));
        // Item 3 is not owned at all.
        assert!(!f.allows_root(Item(3)));
    }
}
