//! Hash-tree nodes: hash-table internal nodes and candidate leaves.

use super::filter::OwnershipFilter;
use super::stats::TreeStats;
use super::{CandidateSlot, HashTreeParams};
use crate::item::Item;

/// The hash function of the tree: items are hashed on their integer value
/// (Figure 2 uses `mod 3`: buckets {1,4,7}, {2,5,8}, {3,6,9}).
#[inline]
pub(super) fn hash(item: Item, branching: usize) -> usize {
    item.index() % branching
}

pub(super) enum Node {
    /// Internal node: a hash table of `branching` child links.
    Interior { children: Vec<Option<Box<Node>>> },
    /// Leaf node: candidate ids plus the epoch of the last transaction that
    /// checked this leaf (the revisit-suppression stamp).
    Leaf { cands: Vec<u32>, last_epoch: u64 },
}

impl Node {
    pub(super) fn empty_leaf() -> Node {
        Node::Leaf {
            cands: Vec::new(),
            last_epoch: 0,
        }
    }

    /// Inserts candidate `id` into the subtree rooted here. `item_at(id, d)`
    /// reveals the `d`-th item of any candidate, which both routes the new
    /// candidate and redistributes existing ones when a leaf splits.
    pub(super) fn insert(
        &mut self,
        id: u32,
        depth: usize,
        k: usize,
        params: HashTreeParams,
        item_at: &mut dyn FnMut(u32, usize) -> Item,
    ) {
        match self {
            Node::Interior { children } => {
                let h = hash(item_at(id, depth), params.branching);
                children[h]
                    .get_or_insert_with(|| Box::new(Node::empty_leaf()))
                    .insert(id, depth + 1, k, params, item_at);
            }
            Node::Leaf { cands, .. } => {
                cands.push(id);
                // Split when over-full, unless already at full depth `k`
                // (all k items consumed; hashing further is impossible).
                if cands.len() > params.max_leaf && depth < k {
                    let moved = std::mem::take(cands);
                    *self = Node::Interior {
                        children: (0..params.branching).map(|_| None).collect(),
                    };
                    for cid in moved {
                        self.insert(cid, depth, k, params, item_at);
                    }
                }
            }
        }
    }

    /// Total number of leaf nodes in this subtree.
    pub(super) fn count_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Interior { children } => {
                children.iter().flatten().map(|c| c.count_leaves()).sum()
            }
        }
    }

    /// `(total leaves, non-empty leaves)` in this subtree.
    pub(super) fn leaf_occupancy(&self) -> (usize, usize) {
        match self {
            Node::Leaf { cands, .. } => (1, usize::from(!cands.is_empty())),
            Node::Interior { children } => children.iter().flatten().fold((0, 0), |(tl, to), c| {
                let (l, o) = c.leaf_occupancy();
                (tl + l, to + o)
            }),
        }
    }

    /// The recursive subset operation of Section II. `titems` is the whole
    /// (sorted) transaction; `start` is the index from which the next item
    /// of a candidate path may be drawn; `depth` is how many items the
    /// current path has consumed. Counts are updated in `candidates`, work
    /// counters in `stats`.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn subset_walk(
        node: &mut Node,
        titems: &[Item],
        start: usize,
        depth: usize,
        k: usize,
        epoch: u64,
        filter: &OwnershipFilter,
        path_first: Option<Item>,
        candidates: &mut [CandidateSlot],
        stats: &mut TreeStats,
    ) {
        match node {
            Node::Leaf { cands, last_epoch } => {
                // Check each candidate of this leaf against the whole
                // transaction — but only on the first arrival per
                // transaction (the epoch stamp makes revisits free).
                if *last_epoch == epoch {
                    return;
                }
                *last_epoch = epoch;
                stats.distinct_leaf_visits += 1;
                for &cid in cands.iter() {
                    stats.candidate_checks += 1;
                    let slot = &mut candidates[cid as usize];
                    if slot.items.is_subset_of_items(titems) {
                        slot.count += 1;
                    }
                }
            }
            Node::Interior { children } => {
                // A candidate needs k - depth more items, so the last viable
                // starting position leaves at least that many behind.
                let needed = k - depth;
                if titems.len() < needed {
                    return;
                }
                let last = titems.len() - needed;
                for p in start..=last {
                    let item = titems[p];
                    if depth == 0 {
                        // IDD's bitmap check at the root: skip starting
                        // items whose candidates live on other processors.
                        if !filter.allows_root(item) {
                            continue;
                        }
                        stats.root_starts += 1;
                    } else if depth == 1 {
                        if let Some(first) = path_first {
                            if !filter.allows_second(first, item) {
                                continue;
                            }
                        }
                    }
                    let h = hash(item, children.len());
                    if let Some(child) = children[h].as_deref_mut() {
                        stats.traversal_steps += 1;
                        let first = if depth == 0 { Some(item) } else { path_first };
                        Node::subset_walk(
                            child,
                            titems,
                            p + 1,
                            depth + 1,
                            k,
                            epoch,
                            filter,
                            first,
                            candidates,
                            stats,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_matches_paper_buckets() {
        // Figure 2's hash function groups {1,4,7}, {2,5,8}, {3,6,9} mod 3.
        assert_eq!(hash(Item(1), 3), hash(Item(4), 3));
        assert_eq!(hash(Item(4), 3), hash(Item(7), 3));
        assert_eq!(hash(Item(2), 3), hash(Item(5), 3));
        assert_ne!(hash(Item(1), 3), hash(Item(2), 3));
        assert_ne!(hash(Item(2), 3), hash(Item(3), 3));
    }

    #[test]
    fn empty_leaf_counts() {
        let leaf = Node::empty_leaf();
        assert_eq!(leaf.count_leaves(), 1);
        assert_eq!(leaf.leaf_occupancy(), (1, 0));
    }
}
