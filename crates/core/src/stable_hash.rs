//! A stable, seedable itemset hash.
//!
//! HPA-style algorithms partition candidates by *hashing the itemset*:
//! every processor must compute the identical owner for the identical
//! candidate, across threads and across runs. `std`'s default hasher is
//! randomly seeded per process, so we provide FNV-1a over the item ids —
//! tiny, deterministic, and good enough for bucket spreading.

use crate::itemset::ItemSet;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable hash of an itemset: FNV-1a over the little-endian item ids.
pub fn hash_itemset(set: &ItemSet) -> u64 {
    let mut h = FNV_OFFSET;
    for item in set {
        for b in item.id().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// The processor owning `set` under hash partitioning over `p` buckets.
#[inline]
pub fn owner_of(set: &ItemSet, p: usize) -> usize {
    debug_assert!(p > 0);
    (hash_itemset(set) % p as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let s = ItemSet::from([3, 9, 14]);
        assert_eq!(hash_itemset(&s), hash_itemset(&s));
        assert_eq!(owner_of(&s, 7), owner_of(&s, 7));
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn different_sets_usually_differ() {
        let a = hash_itemset(&ItemSet::from([1, 2, 3]));
        let b = hash_itemset(&ItemSet::from([1, 2, 4]));
        let c = hash_itemset(&ItemSet::from([2, 3]));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn owners_spread_over_buckets() {
        // 1000 random-ish 3-sets over 8 buckets: no bucket should be
        // wildly over-loaded.
        let mut loads = [0usize; 8];
        for a in 0u32..10 {
            for b in 10..20 {
                for c in 20..30 {
                    loads[owner_of(&ItemSet::from([a, b, c]), 8)] += 1;
                }
            }
        }
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max < 2 * min.max(1), "bucket loads too skewed: {loads:?}");
    }
}
