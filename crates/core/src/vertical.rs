//! Vertical (tid-bitmap) candidate counting — the Eclat-style backend.
//!
//! The horizontal backends (hash tree, trie) walk every transaction's
//! k-subsets through a candidate structure, so their cost scales with
//! `transactions × subsets`. The vertical backend inverts the loop: a
//! batch of transactions is first pivoted into per-item tid sets (which
//! transactions contain item `i`), and a candidate's support is the size
//! of the intersection of its members' tid sets. Candidates are evaluated
//! in lexicographic order with a prefix stack, so a k-candidate costs one
//! AND + popcount against its cached (k−1)-prefix — shared prefixes are
//! intersected once, exactly like Eclat's equivalence-class processing
//! (Zaki et al., the "entirely different nature" algorithms the paper
//! cites in Section III-E).
//!
//! Tid sets are adaptive: high-density items become dense `u64` bitmap
//! blocks intersected with the wide-word kernels of
//! [`crate::bitmap::words`]; low-density items stay sorted `u32` tid
//! lists intersected with [`crate::tidlist::intersect_sorted`] (a bitmap
//! with a handful of set bits would waste both memory and sweep time).
//!
//! Ledger mapping onto [`CounterStats`]: each item occurrence scanned
//! while pivoting a batch is a `traversal_steps` unit, each
//! filter-admitted candidate is one `root_starts`, its final evaluation
//! one `distinct_leaf_visits` + one `candidate_checks`, and — the term
//! the other backends never emit — every `u64` word touched by an
//! AND/popcount (element probes, for sparse operands) accrues
//! `intersection_words`, which the virtual-time model prices at `t_word`.

use crate::bitmap::words;
use crate::counter::CounterStats;
use crate::hashtree::OwnershipFilter;
use crate::item::Item;
use crate::itemset::ItemSet;
use crate::tidlist::intersect_sorted;
use crate::transaction::Transaction;
use std::collections::HashMap;

/// A set of transaction positions within one batch, in the cheaper of the
/// two representations for its density.
#[derive(Debug, Clone)]
enum TidSet {
    /// Bit per transaction, packed 64 per word.
    Dense(Vec<u64>),
    /// Ascending transaction positions.
    Sparse(Vec<u32>),
}

impl TidSet {
    /// Chooses the representation: dense once the bitmap is no larger
    /// than the `u32` list (32 tids per 64-bit word break even).
    fn from_list(tids: Vec<u32>, num_tids: usize) -> TidSet {
        if tids.len() * 32 >= num_tids {
            let mut block = vec![0u64; words::words_for(num_tids)];
            for &t in &tids {
                words::set_bit(&mut block, t as usize);
            }
            TidSet::Dense(block)
        } else {
            TidSet::Sparse(tids)
        }
    }

    /// Intersection plus the touched-unit count (words for dense
    /// operands, element probes for sparse ones).
    fn intersect(&self, other: &TidSet) -> (TidSet, u64) {
        match (self, other) {
            (TidSet::Dense(a), TidSet::Dense(b)) => {
                (TidSet::Dense(words::and(a, b)), a.len() as u64)
            }
            (TidSet::Dense(block), TidSet::Sparse(list))
            | (TidSet::Sparse(list), TidSet::Dense(block)) => {
                let out: Vec<u32> = list
                    .iter()
                    .copied()
                    .filter(|&t| words::test_bit(block, t as usize))
                    .collect();
                (TidSet::Sparse(out), list.len() as u64)
            }
            (TidSet::Sparse(a), TidSet::Sparse(b)) => {
                let work = a.len().min(b.len()) as u64;
                (TidSet::Sparse(intersect_sorted(a, b)), work)
            }
        }
    }

    /// `|self ∩ other|` without materializing, plus the touched units.
    fn intersect_count(&self, other: &TidSet) -> (u64, u64) {
        match (self, other) {
            (TidSet::Dense(a), TidSet::Dense(b)) => (words::and_popcount(a, b), a.len() as u64),
            (TidSet::Dense(block), TidSet::Sparse(list))
            | (TidSet::Sparse(list), TidSet::Dense(block)) => {
                let count = list
                    .iter()
                    .filter(|&&t| words::test_bit(block, t as usize))
                    .count() as u64;
                (count, list.len() as u64)
            }
            (TidSet::Sparse(a), TidSet::Sparse(b)) => {
                let work = a.len().min(b.len()) as u64;
                (intersect_sorted(a, b).len() as u64, work)
            }
        }
    }

    /// Cardinality plus the touched units.
    fn len_counted(&self) -> (u64, u64) {
        match self {
            TidSet::Dense(block) => (words::popcount(block), block.len() as u64),
            TidSet::Sparse(list) => (list.len() as u64, list.len() as u64),
        }
    }
}

/// The vertical counting backend for candidates of a fixed size `k`.
///
/// ```
/// use armine_core::vertical::VerticalCounter;
/// use armine_core::hashtree::OwnershipFilter;
/// use armine_core::{ItemSet, Transaction, Item};
///
/// let mut vc = VerticalCounter::build(2, vec![ItemSet::from([1, 3])]);
/// vc.count_all(
///     &[Transaction::new(1, vec![Item(1), Item(2), Item(3)])],
///     &OwnershipFilter::all(),
/// );
/// assert_eq!(vc.count_of(&ItemSet::from([1, 3])), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct VerticalCounter {
    k: usize,
    /// `(candidate, accumulated count)` in insertion order — the order
    /// every [`crate::counter::CandidateCounter`] exposes.
    candidates: Vec<(ItemSet, u64)>,
    /// Candidate indices in lexicographic order (prefix sharing).
    order: Vec<u32>,
    /// Distinct items appearing in any candidate, ascending.
    items: Vec<Item>,
    stats: CounterStats,
}

impl VerticalCounter {
    /// Builds the counter over size-`k` candidates. Duplicate candidates
    /// are idempotent (first occurrence keeps the slot).
    ///
    /// # Panics
    /// If any candidate's size differs from `k`, or `k == 0`.
    pub fn build(k: usize, candidates: Vec<ItemSet>) -> Self {
        assert!(k >= 1, "candidate size must be at least 1");
        let mut vc = VerticalCounter {
            k,
            candidates: Vec::with_capacity(candidates.len()),
            order: Vec::new(),
            items: Vec::new(),
            stats: CounterStats::default(),
        };
        let mut slots: HashMap<ItemSet, u32> = HashMap::with_capacity(candidates.len());
        for set in candidates {
            assert_eq!(set.len(), k, "candidate {set} has wrong size for k={k}");
            vc.stats.inserts += 1;
            if !slots.contains_key(&set) {
                slots.insert(set.clone(), vc.candidates.len() as u32);
                vc.candidates.push((set, 0));
            }
        }
        vc.items = vc
            .candidates
            .iter()
            .flat_map(|(s, _)| s.items().iter().copied())
            .collect();
        vc.items.sort_unstable();
        vc.items.dedup();
        vc.order = (0..vc.candidates.len() as u32).collect();
        vc.order.sort_by(|&a, &b| {
            vc.candidates[a as usize]
                .0
                .cmp(&vc.candidates[b as usize].0)
        });
        vc
    }

    /// The candidate size this counter was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates stored.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Pivots one batch into per-item tid sets and evaluates every
    /// candidate against it, accumulating into the per-candidate counts.
    /// The filter prunes whole candidates before any intersection — a
    /// candidate is evaluated iff its first item passes the root filter
    /// and its (first, second) pair passes the depth-1 filter, exactly
    /// the paths a horizontal subset walk would admit.
    pub fn count_all(&mut self, transactions: &[Transaction], filter: &OwnershipFilter) {
        if self.candidates.is_empty() || transactions.is_empty() {
            return;
        }
        self.stats.transactions += transactions.len() as u64;
        let num_tids = transactions.len();
        // Pivot: horizontal batch → per-item tid lists (ascending by
        // construction — positions are visited in order).
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); self.items.len()];
        for (pos, t) in transactions.iter().enumerate() {
            for item in t.items() {
                self.stats.traversal_steps += 1;
                if let Ok(slot) = self.items.binary_search(item) {
                    lists[slot].push(pos as u32);
                }
            }
        }
        let base: Vec<TidSet> = lists
            .into_iter()
            .map(|l| TidSet::from_list(l, num_tids))
            .collect();
        let base_of = |item: Item| -> &TidSet {
            let slot = self
                .items
                .binary_search(&item)
                .expect("candidate items are indexed");
            &base[slot]
        };

        // Sweep candidates lexicographically; `stack[d]` caches the
        // intersection of the current candidate's first `d + 1` items.
        let mut stack: Vec<(Item, TidSet)> = Vec::new();
        for &ci in &self.order {
            let items = self.candidates[ci as usize].0.items();
            let first = items[0];
            if !filter.allows_root(first) {
                continue;
            }
            if items.len() >= 2 && !filter.allows_second(first, items[1]) {
                continue;
            }
            self.stats.root_starts += 1;
            // Keep the longest cached prefix this candidate shares with
            // its predecessor.
            let shared = stack
                .iter()
                .zip(items.iter().take(items.len() - 1))
                .take_while(|((cached, _), item)| cached == *item)
                .count();
            stack.truncate(shared);
            while stack.len() < items.len() - 1 {
                let depth = stack.len();
                let item = items[depth];
                let ts = if depth == 0 {
                    base_of(item).clone()
                } else {
                    let (ts, work) = stack[depth - 1].1.intersect(base_of(item));
                    self.stats.intersection_words += work;
                    ts
                };
                stack.push((item, ts));
            }
            // Final step: count without materializing.
            let last = items[items.len() - 1];
            let (count, work) = if items.len() == 1 {
                base_of(last).len_counted()
            } else {
                stack[items.len() - 2].1.intersect_count(base_of(last))
            };
            self.stats.intersection_words += work;
            self.stats.distinct_leaf_visits += 1;
            self.stats.candidate_checks += 1;
            self.candidates[ci as usize].1 += count;
        }
    }

    /// The accumulated count for `set`, or `None` if never inserted.
    pub fn count_of(&self, set: &ItemSet) -> Option<u64> {
        self.candidates
            .iter()
            .find(|(s, _)| s == set)
            .map(|&(_, c)| c)
    }

    /// Per-candidate counts in insertion order.
    pub fn count_vector(&self) -> Vec<u64> {
        self.candidates.iter().map(|&(_, c)| c).collect()
    }

    /// Overwrites the per-candidate counts (after a global reduction).
    ///
    /// # Panics
    /// If the length differs from [`num_candidates`](Self::num_candidates).
    pub fn set_count_vector(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.candidates.len(),
            "count vector length mismatch"
        );
        for (slot, &c) in self.candidates.iter_mut().zip(counts) {
            slot.1 = c;
        }
    }

    /// Candidates with `count >= min_count`, insertion order.
    pub fn frequent(&self, min_count: u64) -> Vec<(ItemSet, u64)> {
        self.candidates
            .iter()
            .filter(|&&(_, c)| c >= min_count)
            .cloned()
            .collect()
    }

    /// The accumulated work counters.
    pub fn stats(&self) -> &CounterStats {
        &self.stats
    }

    /// Zeroes the work counters (candidate counts are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CounterStats::default();
    }

    /// Logical bytes the stored candidates occupy on the wire — the same
    /// `|C| · (4k + 8)` accounting as the other backends, since all three
    /// ship the identical candidate list.
    pub fn wire_size(&self) -> usize {
        self.candidates.len() * (4 * self.k + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::ItemBitmap;
    use crate::hashtree::{HashTree, HashTreeParams};
    use rand::prelude::*;
    use std::collections::HashSet;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from(ids)
    }

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    const ALL: fn() -> OwnershipFilter = OwnershipFilter::all;

    #[test]
    fn counts_paper_example() {
        let cands = vec![
            set(&[1, 2, 5]),
            set(&[1, 3, 6]),
            set(&[3, 5, 6]),
            set(&[1, 4, 5]),
        ];
        let mut vc = VerticalCounter::build(3, cands);
        vc.count_all(&[tx(0, &[1, 2, 3, 5, 6])], &ALL());
        assert_eq!(vc.count_of(&set(&[1, 2, 5])), Some(1));
        assert_eq!(vc.count_of(&set(&[1, 3, 6])), Some(1));
        assert_eq!(vc.count_of(&set(&[3, 5, 6])), Some(1));
        assert_eq!(vc.count_of(&set(&[1, 4, 5])), Some(0));
        assert_eq!(vc.count_of(&set(&[9, 9, 9])), None);
    }

    #[test]
    fn equivalent_to_hash_tree_on_random_data() {
        let mut rng = StdRng::seed_from_u64(29);
        for trial in 0..10 {
            let k = 1 + trial % 4;
            let mut cands: Vec<ItemSet> = (0..120)
                .map(|_| {
                    let mut ids: Vec<u32> = (0..25).collect();
                    ids.shuffle(&mut rng);
                    set(&ids[..k])
                })
                .collect();
            cands.sort();
            cands.dedup();
            let txs: Vec<Transaction> = (0..80)
                .map(|tid| {
                    let len = rng.gen_range(0..=12);
                    let mut ids: Vec<u32> = (0..25).collect();
                    ids.shuffle(&mut rng);
                    tx(tid, &ids[..len])
                })
                .collect();
            let mut vc = VerticalCounter::build(k, cands.clone());
            vc.count_all(&txs, &ALL());
            let mut tree = HashTree::build(k, HashTreeParams::default(), cands.clone());
            tree.count_all(&txs, &ALL());
            for c in &cands {
                assert_eq!(vc.count_of(c), tree.count_of(c), "candidate {c}");
            }
        }
    }

    /// Splitting one batch into many must not change any count — the
    /// pivot is per batch but the counts accumulate.
    #[test]
    fn batched_counting_accumulates() {
        let mut rng = StdRng::seed_from_u64(31);
        let cands: Vec<ItemSet> = vec![set(&[0, 1]), set(&[0, 2]), set(&[1, 2]), set(&[3, 4])];
        let txs: Vec<Transaction> = (0..50)
            .map(|tid| {
                let len = rng.gen_range(0..=5);
                let mut ids: Vec<u32> = (0..6).collect();
                ids.shuffle(&mut rng);
                tx(tid, &ids[..len])
            })
            .collect();
        let mut whole = VerticalCounter::build(2, cands.clone());
        whole.count_all(&txs, &ALL());
        let mut paged = VerticalCounter::build(2, cands);
        for chunk in txs.chunks(7) {
            paged.count_all(chunk, &ALL());
        }
        assert_eq!(whole.count_vector(), paged.count_vector());
    }

    #[test]
    fn first_item_filter_prunes_candidates() {
        let cands = vec![set(&[1, 2]), set(&[3, 4]), set(&[5, 6])];
        let mut vc = VerticalCounter::build(2, cands);
        let filter = OwnershipFilter::first_item(ItemBitmap::from_items(10, [Item(3)]));
        vc.count_all(&[tx(0, &[1, 2, 3, 4, 5, 6])], &filter);
        assert_eq!(vc.count_of(&set(&[1, 2])), Some(0));
        assert_eq!(vc.count_of(&set(&[3, 4])), Some(1));
        assert_eq!(vc.count_of(&set(&[5, 6])), Some(0));
        // Exactly one candidate was admitted past the bitmap.
        assert_eq!(vc.stats().root_starts, 1);
    }

    #[test]
    fn two_level_filter_prunes_second_items() {
        let cands = vec![set(&[4, 5, 8]), set(&[4, 6, 8]), set(&[1, 2, 3])];
        let mut vc = VerticalCounter::build(3, cands);
        let owned_first = ItemBitmap::from_items(10, [Item(1)]);
        let pairs: HashSet<(Item, Item)> = [(Item(4), Item(5))].into_iter().collect();
        let filter = OwnershipFilter::two_level(owned_first, pairs);
        vc.count_all(&[tx(0, &[1, 2, 3, 4, 5, 6, 8])], &filter);
        assert_eq!(vc.count_of(&set(&[1, 2, 3])), Some(1));
        assert_eq!(vc.count_of(&set(&[4, 5, 8])), Some(1));
        assert_eq!(vc.count_of(&set(&[4, 6, 8])), Some(0));
    }

    #[test]
    fn stats_ledger_accrues_and_resets() {
        let mut vc = VerticalCounter::build(2, vec![set(&[1, 2]), set(&[1, 3])]);
        assert_eq!(vc.stats().inserts, 2);
        vc.count_all(&[tx(0, &[1, 2, 3]), tx(1, &[9])], &ALL());
        let s = *vc.stats();
        assert_eq!(s.transactions, 2);
        assert_eq!(s.root_starts, 2, "both candidates admitted");
        assert_eq!(s.distinct_leaf_visits, 2);
        assert_eq!(s.candidate_checks, 2);
        assert_eq!(s.traversal_steps, 4, "one probe per item occurrence");
        assert!(s.intersection_words > 0, "intersections were performed");
        vc.reset_stats();
        assert_eq!(*vc.stats(), CounterStats::default());
        assert_eq!(vc.count_of(&set(&[1, 2])), Some(1));
    }

    /// Both tid-set representations and their mixed intersections agree
    /// with brute force: item 0 is near-universal (dense), high items are
    /// rare (sparse).
    #[test]
    fn dense_and_sparse_paths_agree_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(37);
        let txs: Vec<Transaction> = (0..400)
            .map(|tid| {
                let mut ids: Vec<u32> = vec![0];
                for i in 1..40u32 {
                    if rng.gen_range(0..i + 1) == 0 {
                        ids.push(i);
                    }
                }
                Transaction::new(tid, ids.into_iter().map(Item).collect())
            })
            .collect();
        let mut cands: Vec<ItemSet> = (0..60)
            .map(|_| {
                let k = 2;
                let mut ids: Vec<u32> = (0..40).collect();
                ids.shuffle(&mut rng);
                set(&{
                    let mut v = ids[..k].to_vec();
                    v.sort_unstable();
                    v
                })
            })
            .collect();
        cands.push(set(&[0, 1])); // dense ∧ mid-density
        cands.push(set(&[38, 39])); // sparse ∧ sparse
        cands.sort();
        cands.dedup();
        let mut vc = VerticalCounter::build(2, cands.clone());
        vc.count_all(&txs, &ALL());
        for c in &cands {
            let want = txs.iter().filter(|t| t.contains_set(c)).count() as u64;
            assert_eq!(vc.count_of(c), Some(want), "candidate {c}");
        }
    }

    #[test]
    fn singleton_candidates_count_supports() {
        let mut vc = VerticalCounter::build(1, vec![set(&[3]), set(&[7])]);
        vc.count_all(&[tx(0, &[3]), tx(1, &[3, 7]), tx(2, &[3])], &ALL());
        assert_eq!(vc.frequent(3), vec![(set(&[3]), 3)]);
        assert_eq!(vc.frequent(1).len(), 2);
    }

    #[test]
    fn count_vector_round_trips() {
        let mut vc = VerticalCounter::build(2, vec![set(&[1, 2]), set(&[2, 3])]);
        vc.count_all(&[tx(0, &[1, 2]), tx(1, &[1, 2, 3])], &ALL());
        assert_eq!(vc.count_vector(), vec![2, 1]);
        vc.set_count_vector(&[7, 9]);
        assert_eq!(vc.count_of(&set(&[1, 2])), Some(7));
        assert_eq!(vc.count_of(&set(&[2, 3])), Some(9));
    }

    #[test]
    #[should_panic(expected = "count vector length mismatch")]
    fn count_vector_arity_checked() {
        let mut vc = VerticalCounter::build(2, vec![set(&[1, 2])]);
        vc.set_count_vector(&[1, 2]);
    }

    #[test]
    fn wire_size_matches_hash_tree() {
        let cands = vec![set(&[1, 2, 3]), set(&[1, 2, 4])];
        let vc = VerticalCounter::build(3, cands.clone());
        let tree = HashTree::build(3, HashTreeParams::default(), cands);
        assert_eq!(vc.wire_size(), tree.wire_size());
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut vc = VerticalCounter::build(2, vec![set(&[1, 2]), set(&[1, 2])]);
        assert_eq!(vc.num_candidates(), 1);
        vc.count_all(&[tx(0, &[1, 2, 3])], &ALL());
        assert_eq!(vc.count_of(&set(&[1, 2])), Some(1));
    }

    #[test]
    fn empty_counter_counts_no_transactions() {
        let mut vc = VerticalCounter::build(2, Vec::new());
        vc.count_all(&[tx(0, &[1, 2, 3])], &ALL());
        assert_eq!(vc.stats().transactions, 0);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn arity_checked() {
        VerticalCounter::build(3, vec![set(&[1, 2])]);
    }

    /// The prefix stack must re-derive shared prefixes correctly even
    /// when the filter skips candidates between two sharers.
    #[test]
    fn prefix_sharing_survives_filtered_gaps() {
        let cands = vec![
            set(&[1, 2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3, 4]),
            set(&[2, 3, 4]),
        ];
        let txs = vec![
            tx(0, &[1, 2, 3, 4]),
            tx(1, &[1, 2, 4]),
            tx(2, &[1, 3, 4]),
            tx(3, &[2, 3, 4]),
        ];
        // Drop the middle sharer's path with a two-level filter that only
        // admits (1,2) and (2,3) pairs.
        let owned_first = ItemBitmap::new(10);
        let pairs: HashSet<(Item, Item)> = [(Item(1), Item(2)), (Item(2), Item(3))]
            .into_iter()
            .collect();
        let filter = OwnershipFilter::two_level(owned_first, pairs);
        let mut vc = VerticalCounter::build(3, cands);
        vc.count_all(&txs, &filter);
        assert_eq!(vc.count_of(&set(&[1, 2, 3])), Some(1));
        assert_eq!(vc.count_of(&set(&[1, 2, 4])), Some(2));
        assert_eq!(vc.count_of(&set(&[1, 3, 4])), Some(0), "filtered out");
        assert_eq!(vc.count_of(&set(&[2, 3, 4])), Some(2));
    }
}
