//! The serial Apriori algorithm (Figure 1 of the paper).
//!
//! Each pass `k` generates candidates `C_k` from `F_{k-1}` with
//! [`apriori_gen`] (join + prune), counts their occurrences with a
//! [`HashTree`], and keeps the candidates meeting minimum support. The
//! algorithm stops when a pass produces no frequent itemsets.
//!
//! When a memory capacity is configured and `|C_k|` exceeds it, the
//! candidate set is partitioned and the database is scanned once per
//! partition — the multi-scan behaviour that makes serial Apriori (and CD)
//! "unscalable with respect to the increasing size of candidate set" and
//! that Figure 12 measures.

use crate::counter::CounterBackend;
use crate::hashtree::{HashTreeParams, OwnershipFilter, TreeStats};
use crate::item::Item;
use crate::itemset::ItemSet;
use crate::transaction::Transaction;
use std::collections::{HashMap, HashSet};

/// Minimum support, either as an absolute transaction count or as a
/// fraction of the database size (the paper quotes percentages: 0.1%,
/// 0.25%, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinSupport {
    /// Absolute: a candidate is frequent if its count is at least this.
    Count(u64),
    /// Relative: at least `fraction * N` transactions (rounded up, minimum 1).
    Fraction(f64),
}

impl MinSupport {
    /// Resolves to an absolute count for a database of `n` transactions.
    pub fn resolve(self, n: usize) -> u64 {
        match self {
            MinSupport::Count(c) => c,
            MinSupport::Fraction(f) => {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "support fraction out of range: {f}"
                );
                ((f * n as f64).ceil() as u64).max(1)
            }
        }
    }
}

/// Tunables for a mining run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AprioriParams {
    /// Minimum support threshold.
    pub min_support: MinSupport,
    /// Hash-tree shape (fan-out and leaf capacity). Ignored by the trie
    /// backend.
    pub tree: HashTreeParams,
    /// Which counting structure counts the candidates of each pass.
    pub counter: CounterBackend,
    /// Maximum candidates a single in-memory hash tree may hold. `None`
    /// means unlimited. When `|C_k|` exceeds this, the pass partitions the
    /// candidates and scans the database once per partition.
    pub memory_capacity: Option<usize>,
    /// Stop after this pass even if larger frequent itemsets exist.
    pub max_k: Option<usize>,
}

impl AprioriParams {
    /// Params with an absolute minimum support count and defaults otherwise.
    pub fn with_min_support_count(count: u64) -> Self {
        AprioriParams {
            min_support: MinSupport::Count(count),
            tree: HashTreeParams::default(),
            counter: CounterBackend::default(),
            memory_capacity: None,
            max_k: None,
        }
    }

    /// Params with a fractional minimum support and defaults otherwise.
    pub fn with_min_support(fraction: f64) -> Self {
        AprioriParams {
            min_support: MinSupport::Fraction(fraction),
            tree: HashTreeParams::default(),
            counter: CounterBackend::default(),
            memory_capacity: None,
            max_k: None,
        }
    }

    /// Sets the hash-tree shape.
    pub fn tree(mut self, tree: HashTreeParams) -> Self {
        self.tree = tree;
        self
    }

    /// Selects the candidate-counting backend.
    pub fn counter(mut self, counter: CounterBackend) -> Self {
        self.counter = counter;
        self
    }

    /// Caps the in-memory candidate count (forces multi-scan passes).
    pub fn memory_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "memory capacity must be positive");
        self.memory_capacity = Some(cap);
        self
    }

    /// Caps the maximum itemset size mined.
    pub fn max_k(mut self, k: usize) -> Self {
        self.max_k = Some(k);
        self
    }
}

/// All frequent itemsets discovered by a run: the `∪ F_k` of Figure 1.
#[derive(Debug, Clone, Default)]
pub struct FrequentItemsets {
    /// `levels[k-1]` holds `F_k` in lexicographic order with counts.
    levels: Vec<Vec<(ItemSet, u64)>>,
    by_set: HashMap<ItemSet, u64>,
    num_transactions: u64,
}

impl FrequentItemsets {
    /// Assembles a result from per-level `(itemset, count)` lists; level
    /// `i` of the input holds `F_{i+1}`. Used by the parallel drivers,
    /// which discover the levels pass by pass.
    pub fn from_levels(levels: Vec<Vec<(ItemSet, u64)>>, num_transactions: u64) -> Self {
        let mut out = FrequentItemsets {
            num_transactions,
            ..Default::default()
        };
        for level in levels {
            out.push_level(level);
        }
        out
    }

    fn push_level(&mut self, level: Vec<(ItemSet, u64)>) {
        for (set, count) in &level {
            self.by_set.insert(set.clone(), *count);
        }
        self.levels.push(level);
    }

    /// `F_k`, lexicographically ordered. Empty slice if the run never
    /// reached (or found nothing at) size `k`.
    pub fn level(&self, k: usize) -> &[(ItemSet, u64)] {
        if k == 0 || k > self.levels.len() {
            return &[];
        }
        &self.levels[k - 1]
    }

    /// Largest `k` with a non-empty `F_k`.
    pub fn max_len(&self) -> usize {
        self.levels
            .iter()
            .rposition(|l| !l.is_empty())
            .map_or(0, |i| i + 1)
    }

    /// The support count of a frequent itemset, `None` if not frequent.
    pub fn support(&self, set: &ItemSet) -> Option<u64> {
        self.by_set.get(set).copied()
    }

    /// The relative support (count / N) of a frequent itemset.
    pub fn relative_support(&self, set: &ItemSet) -> Option<f64> {
        self.support(set)
            .map(|c| c as f64 / self.num_transactions.max(1) as f64)
    }

    /// Whether `set` is frequent.
    pub fn contains(&self, set: &ItemSet) -> bool {
        self.by_set.contains_key(set)
    }

    /// Total number of frequent itemsets across all sizes.
    pub fn len(&self) -> usize {
        self.by_set.len()
    }

    /// Whether nothing is frequent.
    pub fn is_empty(&self) -> bool {
        self.by_set.is_empty()
    }

    /// Iterates all `(itemset, count)` pairs, smallest sizes first.
    pub fn iter(&self) -> impl Iterator<Item = (&ItemSet, u64)> + '_ {
        self.levels
            .iter()
            .flat_map(|l| l.iter().map(|(s, c)| (s, *c)))
    }

    /// The number of transactions the run mined (for relative support).
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }
}

/// Per-pass accounting of a mining run.
#[derive(Debug, Clone, Default)]
pub struct PassInfo {
    /// Pass number `k`.
    pub k: usize,
    /// `|C_k|` — candidates generated.
    pub candidates: usize,
    /// `|F_k|` — candidates that met minimum support.
    pub frequent: usize,
    /// Database scans this pass (1 unless memory-capped).
    pub db_scans: usize,
    /// Counting-structure work counters, summed over all partitions.
    pub tree_stats: TreeStats,
}

/// The result of a mining run: frequent itemsets plus per-pass accounting.
#[derive(Debug, Clone, Default)]
pub struct MiningRun {
    /// The discovered frequent itemsets.
    pub frequent: FrequentItemsets,
    /// One entry per executed pass, starting at `k = 1`.
    pub passes: Vec<PassInfo>,
    /// The resolved absolute minimum support count.
    pub min_count: u64,
}

impl MiningRun {
    /// Convenience passthrough: the support count of a frequent itemset.
    pub fn support(&self, set: &ItemSet) -> Option<u64> {
        self.frequent.support(set)
    }

    /// Total database scans over all passes.
    pub fn total_db_scans(&self) -> usize {
        self.passes.iter().map(|p| p.db_scans).sum()
    }
}

/// The serial Apriori miner.
///
/// ```
/// use armine_core::apriori::{Apriori, AprioriParams};
/// use armine_core::{Transaction, Item, ItemSet};
///
/// let db = vec![
///     Transaction::new(1, vec![Item(0), Item(1)]),
///     Transaction::new(2, vec![Item(0), Item(1), Item(2)]),
///     Transaction::new(3, vec![Item(1), Item(2)]),
/// ];
/// let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(&db);
/// assert_eq!(run.support(&ItemSet::from([0, 1])), Some(2));
/// assert_eq!(run.frequent.max_len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Apriori {
    params: AprioriParams,
}

impl Apriori {
    /// A miner with the given parameters.
    pub fn new(params: AprioriParams) -> Self {
        Apriori { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &AprioriParams {
        &self.params
    }

    /// Mines all frequent itemsets of `transactions`.
    pub fn mine(&self, transactions: &[Transaction]) -> MiningRun {
        let min_count = self.params.min_support.resolve(transactions.len());
        let mut run = MiningRun {
            min_count,
            ..Default::default()
        };
        run.frequent.num_transactions = transactions.len() as u64;

        // Pass 1: direct per-item counting (no tree needed).
        let f1 = frequent_singletons(transactions, min_count);
        run.passes.push(PassInfo {
            k: 1,
            candidates: f1.candidates,
            frequent: f1.frequent.len(),
            db_scans: 1,
            tree_stats: TreeStats::default(),
        });
        let mut prev: Vec<ItemSet> = f1.frequent.iter().map(|(s, _)| s.clone()).collect();
        run.frequent.push_level(f1.frequent);

        let mut k = 2;
        while !prev.is_empty() && self.params.max_k.is_none_or(|m| k <= m) {
            let candidates = apriori_gen(&prev);
            if candidates.is_empty() {
                break;
            }
            let (level, info) = count_candidates(
                k,
                candidates,
                transactions,
                min_count,
                self.params.counter,
                self.params.tree,
                self.params.memory_capacity,
            );
            run.passes.push(info);
            prev = level.iter().map(|(s, _)| s.clone()).collect();
            run.frequent.push_level(level);
            k += 1;
        }
        run
    }
}

struct Pass1 {
    candidates: usize,
    frequent: Vec<(ItemSet, u64)>,
}

/// Pass 1: count every item and keep those meeting minimum support.
fn frequent_singletons(transactions: &[Transaction], min_count: u64) -> Pass1 {
    let num_items = transactions
        .iter()
        .filter_map(|t| t.items().last())
        .map(|i| i.id() + 1)
        .max()
        .unwrap_or(0) as usize;
    let mut counts = vec![0u64; num_items];
    for t in transactions {
        for item in t.items() {
            counts[item.index()] += 1;
        }
    }
    let candidates = counts.iter().filter(|&&c| c > 0).count();
    let frequent = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(id, &c)| (ItemSet::singleton(Item(id as u32)), c))
        .collect();
    Pass1 {
        candidates,
        frequent,
    }
}

/// Counts `candidates` over `transactions` with the selected
/// [`CounterBackend`], partitioning the candidate set when it exceeds
/// `memory_capacity` (one database scan per partition). Returns the
/// frequent level and the pass accounting; an empty candidate set scans
/// the database zero times.
pub fn count_candidates(
    k: usize,
    candidates: Vec<ItemSet>,
    transactions: &[Transaction],
    min_count: u64,
    backend: CounterBackend,
    tree_params: HashTreeParams,
    memory_capacity: Option<usize>,
) -> (Vec<(ItemSet, u64)>, PassInfo) {
    let total = candidates.len();
    let chunk = memory_capacity.unwrap_or(usize::MAX).min(total.max(1));
    let mut level = Vec::new();
    let mut stats = TreeStats::default();
    let mut scans = 0;
    let mut idx = 0;
    while idx < total {
        let end = (idx + chunk).min(total);
        let mut counter = backend.build(k, tree_params, candidates[idx..end].to_vec());
        counter.count_all(transactions, &OwnershipFilter::all());
        stats = stats.merged(&counter.stats());
        level.extend(counter.frequent(min_count));
        scans += 1;
        idx = end;
    }
    let info = PassInfo {
        k,
        candidates: total,
        frequent: level.len(),
        db_scans: scans,
        tree_stats: stats,
    };
    (level, info)
}

/// `apriori_gen(F_{k-1})`: the join + prune candidate generation of the
/// Apriori algorithm.
///
/// `prev` must be the lexicographically sorted `F_{k-1}`. Two itemsets
/// sharing their first `k-2` items join into a `k`-candidate; the candidate
/// survives only if **all** of its `k-1`-subsets are in `prev` (the
/// anti-monotonicity prune). The output is lexicographically sorted, which
/// every parallel formulation relies on: processors generate identical
/// candidate sequences independently, so candidate *indices* agree across
/// processors and CD's count reduction can sum plain vectors.
pub fn apriori_gen(prev: &[ItemSet]) -> Vec<ItemSet> {
    debug_assert!(
        prev.windows(2).all(|w| w[0] < w[1]),
        "F_(k-1) must be sorted"
    );
    if prev.is_empty() {
        return Vec::new();
    }
    let k_minus_1 = prev[0].len();
    debug_assert!(prev.iter().all(|s| s.len() == k_minus_1));
    let prev_set: HashSet<&ItemSet> = prev.iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < prev.len() {
        // The block [i, block_end) shares the same (k-2)-item prefix.
        let prefix = &prev[i].items()[..k_minus_1 - 1];
        let mut block_end = i + 1;
        while block_end < prev.len() && &prev[block_end].items()[..k_minus_1 - 1] == prefix {
            block_end += 1;
        }
        for a in i..block_end {
            for b in a + 1..block_end {
                let candidate = prev[a].extend_with(prev[b].items()[k_minus_1 - 1]);
                // Prune: every (k-1)-subset must be frequent. (Two of them
                // are prev[a] and prev[b] themselves; checking all is
                // simpler and still O(k) hash probes.)
                let ok = candidate
                    .subsets_dropping_one()
                    .all(|s| prev_set.contains(&s));
                if ok {
                    out.push(candidate);
                }
            }
        }
        i = block_end;
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]), "output must be sorted");
    out
}

/// Counts, for each possible first item, how many of `candidates` start
/// with it — the statistic the IDD bin-packing partitioner consumes. The
/// paper notes candidates need not be stored for this; only the counts.
pub fn first_item_histogram(candidates: &[ItemSet], num_items: u32) -> Vec<u64> {
    let mut hist = vec![0u64; num_items as usize];
    for c in candidates {
        if let Some(first) = c.first() {
            hist[first.index()] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from(ids)
    }

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    fn table1() -> Dataset {
        Dataset::from_named_transactions(&[
            &["Bread", "Coke", "Milk"],
            &["Beer", "Bread"],
            &["Beer", "Coke", "Diaper", "Milk"],
            &["Beer", "Bread", "Diaper", "Milk"],
            &["Coke", "Diaper", "Milk"],
        ])
    }

    /// Brute-force frequent itemset miner for cross-checking (all sizes).
    fn brute_force(transactions: &[Transaction], min_count: u64) -> HashMap<ItemSet, u64> {
        let mut items: Vec<Item> = transactions
            .iter()
            .flat_map(|t| t.items().iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();
        let n = items.len();
        assert!(n <= 20, "brute force bound");
        let mut out = HashMap::new();
        for mask in 1u32..(1u32 << n) {
            let subset: Vec<Item> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| items[i])
                .collect();
            let s = ItemSet::from_sorted(subset);
            let count = transactions.iter().filter(|t| t.contains_set(&s)).count() as u64;
            if count >= min_count {
                out.insert(s, count);
            }
        }
        out
    }

    #[test]
    fn min_support_resolution() {
        assert_eq!(MinSupport::Count(7).resolve(100), 7);
        assert_eq!(MinSupport::Fraction(0.1).resolve(100), 10);
        assert_eq!(MinSupport::Fraction(0.101).resolve(100), 11, "rounds up");
        assert_eq!(MinSupport::Fraction(0.0).resolve(100), 1, "never zero");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn min_support_fraction_validated() {
        MinSupport::Fraction(1.5).resolve(10);
    }

    #[test]
    fn apriori_gen_joins_and_prunes() {
        // Example from Agrawal & Srikant: F_3 = {123, 124, 134, 135, 234}
        // joins to {1234, 1345}; {1345} is pruned because {145} ∉ F_3.
        let f3 = vec![
            set(&[1, 2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3, 4]),
            set(&[1, 3, 5]),
            set(&[2, 3, 4]),
        ];
        assert_eq!(apriori_gen(&f3), vec![set(&[1, 2, 3, 4])]);
    }

    #[test]
    fn apriori_gen_from_singletons() {
        let f1 = vec![set(&[1]), set(&[3]), set(&[7])];
        assert_eq!(
            apriori_gen(&f1),
            vec![set(&[1, 3]), set(&[1, 7]), set(&[3, 7])]
        );
    }

    #[test]
    fn apriori_gen_empty_input() {
        assert!(apriori_gen(&[]).is_empty());
        assert!(
            apriori_gen(&[set(&[5])]).is_empty(),
            "single set joins nothing"
        );
    }

    #[test]
    fn apriori_gen_matches_brute_force_definition() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            // Random F_2.
            let mut f2: Vec<ItemSet> = (0..25)
                .filter_map(|_| {
                    let a = rng.gen_range(0..8u32);
                    let b = rng.gen_range(0..8u32);
                    (a != b).then(|| set(&[a.min(b), a.max(b)]))
                })
                .collect();
            f2.sort();
            f2.dedup();
            let got = apriori_gen(&f2);
            // Brute force definition: every 3-set whose 2-subsets are all in F_2.
            let in_f2: HashSet<&ItemSet> = f2.iter().collect();
            let mut want = Vec::new();
            for a in 0..8u32 {
                for b in a + 1..8 {
                    for c in b + 1..8 {
                        let cand = set(&[a, b, c]);
                        if cand.subsets_dropping_one().all(|s| in_f2.contains(&s)) {
                            want.push(cand);
                        }
                    }
                }
            }
            assert_eq!(got, want);
        }
    }

    #[test]
    fn table1_mining_matches_section_2() {
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(3)).mine(d.transactions());
        // σ(Diaper, Milk)=3 — frequent at min count 3.
        let dm = d.itemset(&["Diaper", "Milk"]).unwrap();
        assert_eq!(run.support(&dm), Some(3));
        // σ(Diaper, Milk, Beer)=2 — not frequent.
        let dmb = d.itemset(&["Diaper", "Milk", "Beer"]).unwrap();
        assert_eq!(run.support(&dmb), None);
    }

    #[test]
    fn mining_matches_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..10u64 {
            let transactions: Vec<Transaction> = (0..40)
                .map(|tid| {
                    let len = rng.gen_range(1..=8);
                    let items: Vec<Item> = (0..len).map(|_| Item(rng.gen_range(0..12))).collect();
                    Transaction::new(tid, items)
                })
                .collect();
            let min_count = 2 + trial % 4;
            let run =
                Apriori::new(AprioriParams::with_min_support_count(min_count)).mine(&transactions);
            let expected = brute_force(&transactions, min_count);
            let got: HashMap<ItemSet, u64> =
                run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
            assert_eq!(got, expected, "trial {trial}");
        }
    }

    #[test]
    fn memory_cap_gives_same_answer_with_more_scans() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let transactions: Vec<Transaction> = (0..60)
            .map(|tid| {
                let len = rng.gen_range(2..=9);
                let items: Vec<Item> = (0..len).map(|_| Item(rng.gen_range(0..15))).collect();
                Transaction::new(tid, items)
            })
            .collect();
        let uncapped = Apriori::new(AprioriParams::with_min_support_count(3)).mine(&transactions);
        let capped = Apriori::new(AprioriParams::with_min_support_count(3).memory_capacity(5))
            .mine(&transactions);
        // Identical frequent itemsets...
        let a: Vec<_> = uncapped
            .frequent
            .iter()
            .map(|(s, c)| (s.clone(), c))
            .collect();
        let b: Vec<_> = capped
            .frequent
            .iter()
            .map(|(s, c)| (s.clone(), c))
            .collect();
        assert_eq!(a, b);
        // ...but strictly more database scans.
        assert!(capped.total_db_scans() > uncapped.total_db_scans());
    }

    #[test]
    fn max_k_stops_early() {
        let d = table1();
        let run =
            Apriori::new(AprioriParams::with_min_support_count(1).max_k(2)).mine(d.transactions());
        assert!(run.frequent.max_len() <= 2);
        assert!(run.passes.len() <= 2);
    }

    #[test]
    fn pass_info_records_candidate_counts() {
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(2)).mine(d.transactions());
        assert_eq!(run.passes[0].k, 1);
        assert_eq!(run.passes[0].candidates, 5, "five distinct items");
        for (i, p) in run.passes.iter().enumerate() {
            assert_eq!(p.k, i + 1);
            assert!(p.frequent <= p.candidates);
            assert!(p.db_scans >= 1);
        }
    }

    #[test]
    fn empty_database() {
        let run = Apriori::new(AprioriParams::with_min_support_count(1)).mine(&[]);
        assert!(run.frequent.is_empty());
        assert_eq!(run.frequent.max_len(), 0);
    }

    #[test]
    fn zero_candidates_report_zero_db_scans() {
        let d = table1();
        let (level, info) = count_candidates(
            2,
            Vec::new(),
            d.transactions(),
            1,
            CounterBackend::default(),
            HashTreeParams::default(),
            None,
        );
        assert!(level.is_empty());
        assert_eq!(info.candidates, 0);
        assert_eq!(info.db_scans, 0, "no candidates means no scan ran");
    }

    #[test]
    fn trie_backend_mines_identical_lattice() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let transactions: Vec<Transaction> = (0..80)
            .map(|tid| {
                let len = rng.gen_range(2..=10);
                let items: Vec<Item> = (0..len).map(|_| Item(rng.gen_range(0..18))).collect();
                Transaction::new(tid, items)
            })
            .collect();
        let base = AprioriParams::with_min_support_count(4);
        let tree_run = Apriori::new(base).mine(&transactions);
        let trie_run = Apriori::new(base.counter(CounterBackend::Trie)).mine(&transactions);
        let a: Vec<_> = tree_run.frequent.iter().collect();
        let b: Vec<_> = trie_run.frequent.iter().collect();
        assert_eq!(a, b);
        // Per-pass bookkeeping (candidates, frequent, scans) also agrees.
        for (x, y) in tree_run.passes.iter().zip(&trie_run.passes) {
            assert_eq!(
                (x.k, x.candidates, x.frequent, x.db_scans),
                (y.k, y.candidates, y.frequent, y.db_scans)
            );
        }
    }

    #[test]
    fn fractional_support_on_table1() {
        let d = table1();
        // 60% of 5 transactions = 3.
        let run = Apriori::new(AprioriParams::with_min_support(0.6)).mine(d.transactions());
        assert_eq!(run.min_count, 3);
        let dm = d.itemset(&["Diaper", "Milk"]).unwrap();
        assert_eq!(run.frequent.relative_support(&dm), Some(3.0 / 5.0));
    }

    #[test]
    fn frequent_itemsets_level_access() {
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(3)).mine(d.transactions());
        assert!(!run.frequent.level(1).is_empty());
        assert!(run.frequent.level(0).is_empty());
        assert!(run.frequent.level(99).is_empty());
        let total: usize = (1..=run.frequent.max_len())
            .map(|k| run.frequent.level(k).len())
            .sum();
        assert_eq!(total, run.frequent.len());
    }

    #[test]
    fn from_levels_reassembles() {
        let levels = vec![
            vec![(set(&[1]), 5), (set(&[2]), 4)],
            vec![(set(&[1, 2]), 3)],
        ];
        let f = FrequentItemsets::from_levels(levels, 10);
        assert_eq!(f.len(), 3);
        assert_eq!(f.support(&set(&[1, 2])), Some(3));
        assert_eq!(f.max_len(), 2);
        assert_eq!(f.num_transactions(), 10);
    }

    #[test]
    fn first_item_histogram_counts() {
        let cands = vec![set(&[0, 5]), set(&[0, 7]), set(&[3, 4])];
        assert_eq!(first_item_histogram(&cands, 6), vec![2, 0, 0, 1, 0, 0]);
    }

    #[test]
    fn support_monotonicity_holds() {
        // σ(X) ≥ σ(Y) whenever X ⊆ Y, over the discovered lattice.
        let d = table1();
        let run = Apriori::new(AprioriParams::with_min_support_count(1)).mine(d.transactions());
        for (set_b, count_b) in run.frequent.iter() {
            for (set_a, count_a) in run.frequent.iter() {
                if set_a.is_subset_of(set_b) {
                    assert!(
                        count_a >= count_b,
                        "monotonicity violated: {set_a}={count_a} ⊆ {set_b}={count_b}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_transaction_database() {
        let run = Apriori::new(AprioriParams::with_min_support_count(1)).mine(&[tx(1, &[2, 4, 6])]);
        assert_eq!(run.frequent.len(), 7, "all 2^3 - 1 subsets frequent");
        assert_eq!(run.frequent.max_len(), 3);
    }
}
