//! A prefix trie over candidate itemsets — the main alternative to the
//! paper's candidate hash tree.
//!
//! Later Apriori implementations (Borgelt's, Bodon's) replaced the hash
//! tree with an item-indexed trie: every path from the root spells a
//! candidate prefix, depth-`k` nodes carry the counts, and counting walks
//! the trie and the (sorted) transaction in lockstep. Compared to the
//! hash tree there is no hashing, no leaf checking against the whole
//! transaction, and no revisit bookkeeping — each candidate contained in
//! the transaction is reached by exactly one path.
//!
//! The trie is a full [`CandidateCounter`](crate::counter::CandidateCounter)
//! backend: it honors the [`OwnershipFilter`]'s root and second-level
//! pruning (so IDD/HD partitioned counting works unchanged) and keeps the
//! same six-field work ledger as the hash tree, mapping child descents to
//! `traversal_steps` and depth-`k` node arrivals to
//! `distinct_leaf_visits` so the virtual-time model can charge either
//! structure through one expression.

use crate::counter::CounterStats;
use crate::hashtree::OwnershipFilter;
use crate::item::Item;
use crate::itemset::ItemSet;
use crate::transaction::Transaction;

/// Arena-allocated trie node: sorted child list + optional candidate slot.
#[derive(Debug, Default, Clone)]
struct TrieNode {
    /// `(item, child index)`, ascending by item.
    children: Vec<(Item, u32)>,
    /// Index into the candidate arena when a candidate *ends* here.
    candidate: Option<u32>,
}

/// A counting trie for candidates of a fixed size `k`.
///
/// ```
/// use armine_core::trie::CandidateTrie;
/// use armine_core::hashtree::OwnershipFilter;
/// use armine_core::{ItemSet, Transaction, Item};
///
/// let mut trie = CandidateTrie::build(2, vec![ItemSet::from([1, 3])]);
/// trie.count(
///     &Transaction::new(1, vec![Item(1), Item(2), Item(3)]),
///     &OwnershipFilter::all(),
/// );
/// assert_eq!(trie.count_of(&ItemSet::from([1, 3])), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct CandidateTrie {
    k: usize,
    nodes: Vec<TrieNode>,
    candidates: Vec<(ItemSet, u64)>,
    stats: CounterStats,
}

impl CandidateTrie {
    /// Builds a trie over size-`k` candidates.
    ///
    /// # Panics
    /// If any candidate's size differs from `k`, or `k == 0`.
    pub fn build(k: usize, candidates: Vec<ItemSet>) -> Self {
        assert!(k >= 1, "candidate size must be at least 1");
        let mut trie = CandidateTrie {
            k,
            nodes: vec![TrieNode::default()],
            candidates: Vec::with_capacity(candidates.len()),
            stats: CounterStats::default(),
        };
        for set in candidates {
            assert_eq!(set.len(), k, "candidate {set} has wrong size for k={k}");
            trie.insert(set);
        }
        trie
    }

    fn insert(&mut self, set: ItemSet) {
        self.stats.inserts += 1;
        let mut node = 0u32;
        for &item in set.items() {
            let pos = self.nodes[node as usize]
                .children
                .binary_search_by_key(&item, |&(i, _)| i);
            node = match pos {
                Ok(p) => self.nodes[node as usize].children[p].1,
                Err(p) => {
                    let fresh = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[node as usize].children.insert(p, (item, fresh));
                    fresh
                }
            };
        }
        let slot = &mut self.nodes[node as usize].candidate;
        if slot.is_none() {
            *slot = Some(self.candidates.len() as u32);
            self.candidates.push((set, 0));
        }
    }

    /// The candidate size this trie was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates stored.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of trie nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Counts the candidates contained in one transaction: a lockstep walk
    /// of the trie and the sorted item list — each contained candidate is
    /// visited exactly once. The filter prunes first items at the root and
    /// (first, second) pairs at depth 1, exactly like the hash tree's
    /// `subset`.
    pub fn count(&mut self, t: &Transaction, filter: &OwnershipFilter) {
        if self.candidates.is_empty() {
            return;
        }
        self.stats.transactions += 1;
        let items = t.items();
        if items.len() < self.k {
            return;
        }
        let mut walker = Walker {
            nodes: &self.nodes,
            counts: &mut self.candidates,
            stats: &mut self.stats,
            filter,
        };
        walker.walk(0, items, self.k, 0, Item(0));
    }

    /// Counts a whole batch under one filter.
    pub fn count_all(&mut self, transactions: &[Transaction], filter: &OwnershipFilter) {
        for t in transactions {
            self.count(t, filter);
        }
    }

    /// The accumulated count for `set`, or `None` if never inserted.
    pub fn count_of(&self, set: &ItemSet) -> Option<u64> {
        self.candidates
            .iter()
            .find(|(s, _)| s == set)
            .map(|&(_, c)| c)
    }

    /// `(candidate, count)` pairs in insertion order.
    pub fn counts(&self) -> impl Iterator<Item = (&ItemSet, u64)> + '_ {
        self.candidates.iter().map(|(s, c)| (s, *c))
    }

    /// Per-candidate counts in insertion order.
    pub fn count_vector(&self) -> Vec<u64> {
        self.candidates.iter().map(|&(_, c)| c).collect()
    }

    /// Overwrites the per-candidate counts (after a global reduction).
    ///
    /// # Panics
    /// If the length differs from [`num_candidates`](Self::num_candidates).
    pub fn set_count_vector(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.candidates.len(),
            "count vector length mismatch"
        );
        for (slot, &c) in self.candidates.iter_mut().zip(counts) {
            slot.1 = c;
        }
    }

    /// Candidates with `count >= min_count`, insertion order.
    pub fn frequent(&self, min_count: u64) -> Vec<(ItemSet, u64)> {
        self.candidates
            .iter()
            .filter(|&&(_, c)| c >= min_count)
            .cloned()
            .collect()
    }

    /// The accumulated work counters.
    pub fn stats(&self) -> &CounterStats {
        &self.stats
    }

    /// Zeroes the work counters (candidate counts are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CounterStats::default();
    }

    /// Logical bytes the stored candidates occupy on the wire — the same
    /// `|C| · (4k + 8)` accounting as the hash tree, since both ship the
    /// identical candidate list.
    pub fn wire_size(&self) -> usize {
        self.candidates.len() * (4 * self.k + 8)
    }
}

/// The recursive lockstep walk, split out so the node arena is borrowed
/// shared while counts and stats are borrowed mutably (the old method
/// recursion had to clone every child list to appease the borrow
/// checker).
struct Walker<'a> {
    nodes: &'a [TrieNode],
    counts: &'a mut [(ItemSet, u64)],
    stats: &'a mut CounterStats,
    filter: &'a OwnershipFilter,
}

impl Walker<'_> {
    fn walk(&mut self, node: u32, suffix: &[Item], remaining: usize, depth: usize, first: Item) {
        let nodes = self.nodes;
        if remaining == 0 {
            // A depth-k arrival: the trie's analogue of a distinct leaf
            // visit (paths are unique, so it is distinct by construction).
            self.stats.distinct_leaf_visits += 1;
            if let Some(c) = nodes[node as usize].candidate {
                self.stats.candidate_checks += 1;
                self.counts[c as usize].1 += 1;
            }
            return;
        }
        if suffix.len() < remaining {
            return;
        }
        // Merge-intersect the child list with the transaction suffix.
        let children = &nodes[node as usize].children;
        let (mut ci, mut si) = (0usize, 0usize);
        while ci < children.len() && si + remaining <= suffix.len() {
            let (item, child) = children[ci];
            match item.cmp(&suffix[si]) {
                std::cmp::Ordering::Less => ci += 1,
                std::cmp::Ordering::Greater => si += 1,
                std::cmp::Ordering::Equal => {
                    let allowed = match depth {
                        0 => self.filter.allows_root(item),
                        1 => self.filter.allows_second(first, item),
                        _ => true,
                    };
                    if allowed {
                        if depth == 0 {
                            self.stats.root_starts += 1;
                        }
                        self.stats.traversal_steps += 1;
                        let start = if depth == 0 { item } else { first };
                        self.walk(child, &suffix[si + 1..], remaining - 1, depth + 1, start);
                    }
                    ci += 1;
                    si += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::ItemBitmap;
    use crate::hashtree::{HashTree, HashTreeParams};
    use rand::prelude::*;
    use std::collections::HashSet;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from(ids)
    }

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    const ALL: fn() -> OwnershipFilter = OwnershipFilter::all;

    #[test]
    fn counts_paper_example() {
        let cands = vec![
            set(&[1, 2, 5]),
            set(&[1, 3, 6]),
            set(&[3, 5, 6]),
            set(&[1, 4, 5]),
        ];
        let mut trie = CandidateTrie::build(3, cands);
        trie.count(&tx(0, &[1, 2, 3, 5, 6]), &ALL());
        assert_eq!(trie.count_of(&set(&[1, 2, 5])), Some(1));
        assert_eq!(trie.count_of(&set(&[1, 3, 6])), Some(1));
        assert_eq!(trie.count_of(&set(&[3, 5, 6])), Some(1));
        assert_eq!(trie.count_of(&set(&[1, 4, 5])), Some(0));
        assert_eq!(trie.count_of(&set(&[9, 9, 9])), None);
    }

    #[test]
    fn equivalent_to_hash_tree_on_random_data() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let k = 2 + trial % 3;
            let mut cands: Vec<ItemSet> = (0..120)
                .map(|_| {
                    let mut ids: Vec<u32> = (0..25).collect();
                    ids.shuffle(&mut rng);
                    set(&ids[..k])
                })
                .collect();
            cands.sort();
            cands.dedup();
            let txs: Vec<Transaction> = (0..80)
                .map(|tid| {
                    let len = rng.gen_range(0..=12);
                    let mut ids: Vec<u32> = (0..25).collect();
                    ids.shuffle(&mut rng);
                    tx(tid, &ids[..len])
                })
                .collect();
            let mut trie = CandidateTrie::build(k, cands.clone());
            trie.count_all(&txs, &ALL());
            let mut tree = HashTree::build(k, HashTreeParams::default(), cands.clone());
            tree.count_all(&txs, &ALL());
            for c in &cands {
                assert_eq!(trie.count_of(c), tree.count_of(c), "candidate {c}");
            }
        }
    }

    #[test]
    fn first_item_filter_prunes_roots() {
        let cands = vec![set(&[1, 2]), set(&[3, 4]), set(&[5, 6])];
        let mut trie = CandidateTrie::build(2, cands);
        // Own only first item 3: candidates starting at 1 or 5 must not
        // be counted even though the transaction contains them.
        let filter = OwnershipFilter::first_item(ItemBitmap::from_items(10, [Item(3)]));
        trie.count(&tx(0, &[1, 2, 3, 4, 5, 6]), &filter);
        assert_eq!(trie.count_of(&set(&[1, 2])), Some(0));
        assert_eq!(trie.count_of(&set(&[3, 4])), Some(1));
        assert_eq!(trie.count_of(&set(&[5, 6])), Some(0));
        // Exactly one root start survived the bitmap.
        assert_eq!(trie.stats().root_starts, 1);
    }

    #[test]
    fn two_level_filter_prunes_second_items() {
        let cands = vec![set(&[4, 5, 8]), set(&[4, 6, 8]), set(&[1, 2, 3])];
        let mut trie = CandidateTrie::build(3, cands);
        // Item 1 owned outright; item 4 split, owning only the (4, 5) pair.
        let owned_first = ItemBitmap::from_items(10, [Item(1)]);
        let pairs: HashSet<(Item, Item)> = [(Item(4), Item(5))].into_iter().collect();
        let filter = OwnershipFilter::two_level(owned_first, pairs);
        trie.count(&tx(0, &[1, 2, 3, 4, 5, 6, 8]), &filter);
        assert_eq!(trie.count_of(&set(&[1, 2, 3])), Some(1));
        assert_eq!(trie.count_of(&set(&[4, 5, 8])), Some(1));
        assert_eq!(trie.count_of(&set(&[4, 6, 8])), Some(0));
    }

    #[test]
    fn stats_ledger_accrues_and_resets() {
        let mut trie = CandidateTrie::build(2, vec![set(&[1, 2]), set(&[1, 3])]);
        assert_eq!(trie.stats().inserts, 2);
        trie.count(&tx(0, &[1, 2, 3]), &ALL());
        trie.count(&tx(1, &[9]), &ALL()); // short: counted as a transaction only
        let s = *trie.stats();
        assert_eq!(s.transactions, 2);
        assert_eq!(s.root_starts, 1); // single descent from the root via item 1
        assert_eq!(s.distinct_leaf_visits, 2); // {1,2} and {1,3} both reached
        assert_eq!(s.candidate_checks, 2);
        assert!(s.traversal_steps >= 3); // 1→2, 1→3 plus the root descent
        trie.reset_stats();
        assert_eq!(*trie.stats(), CounterStats::default());
        // Counts survive a stats reset.
        assert_eq!(trie.count_of(&set(&[1, 2])), Some(1));
    }

    #[test]
    fn empty_trie_counts_no_transactions() {
        let mut trie = CandidateTrie::build(2, Vec::new());
        trie.count(&tx(0, &[1, 2, 3]), &ALL());
        assert_eq!(trie.stats().transactions, 0);
    }

    #[test]
    fn count_vector_round_trips() {
        let mut trie = CandidateTrie::build(2, vec![set(&[1, 2]), set(&[2, 3])]);
        trie.count_all(&[tx(0, &[1, 2]), tx(1, &[1, 2, 3])], &ALL());
        assert_eq!(trie.count_vector(), vec![2, 1]);
        trie.set_count_vector(&[7, 9]);
        assert_eq!(trie.count_of(&set(&[1, 2])), Some(7));
        assert_eq!(trie.count_of(&set(&[2, 3])), Some(9));
    }

    #[test]
    #[should_panic(expected = "count vector length mismatch")]
    fn count_vector_arity_checked() {
        let mut trie = CandidateTrie::build(2, vec![set(&[1, 2])]);
        trie.set_count_vector(&[1, 2]);
    }

    #[test]
    fn wire_size_matches_hash_tree() {
        let cands = vec![set(&[1, 2, 3]), set(&[1, 2, 4])];
        let trie = CandidateTrie::build(3, cands.clone());
        let tree = HashTree::build(3, HashTreeParams::default(), cands);
        assert_eq!(trie.wire_size(), tree.wire_size());
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut trie = CandidateTrie::build(2, vec![set(&[1, 2]), set(&[1, 2])]);
        assert_eq!(trie.num_candidates(), 1);
        trie.count(&tx(0, &[1, 2, 3]), &ALL());
        assert_eq!(trie.count_of(&set(&[1, 2])), Some(1));
    }

    #[test]
    fn frequent_filters() {
        let mut trie = CandidateTrie::build(1, vec![set(&[3]), set(&[7])]);
        trie.count_all(&[tx(0, &[3]), tx(1, &[3, 7]), tx(2, &[3])], &ALL());
        assert_eq!(trie.frequent(3), vec![(set(&[3]), 3)]);
        assert_eq!(trie.frequent(1).len(), 2);
    }

    #[test]
    fn short_transactions_skipped() {
        let mut trie = CandidateTrie::build(3, vec![set(&[1, 2, 3])]);
        trie.count(&tx(0, &[1, 2]), &ALL());
        assert_eq!(trie.count_of(&set(&[1, 2, 3])), Some(0));
    }

    #[test]
    fn node_sharing_compresses_prefixes() {
        // {1,2,3} and {1,2,4} share the 1→2 path: 1 root + 2 shared + 2
        // leaves = 5 nodes.
        let trie = CandidateTrie::build(3, vec![set(&[1, 2, 3]), set(&[1, 2, 4])]);
        assert_eq!(trie.num_nodes(), 5);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn arity_checked() {
        CandidateTrie::build(3, vec![set(&[1, 2])]);
    }
}
