//! A prefix trie over candidate itemsets — the main alternative to the
//! paper's candidate hash tree.
//!
//! Later Apriori implementations (Borgelt's, Bodon's) replaced the hash
//! tree with an item-indexed trie: every path from the root spells a
//! candidate prefix, depth-`k` nodes carry the counts, and counting walks
//! the trie and the (sorted) transaction in lockstep. Compared to the
//! hash tree there is no hashing, no leaf checking against the whole
//! transaction, and no revisit bookkeeping — each candidate contained in
//! the transaction is reached by exactly one path.
//!
//! Provided here as an independent counting oracle (tested equivalent to
//! the hash tree) and for the `hashtree` bench's structure comparison.
//! The parallel formulations keep the hash tree — that is what the paper
//! models and instruments.

use crate::item::Item;
use crate::itemset::ItemSet;
use crate::transaction::Transaction;

/// Arena-allocated trie node: sorted child list + optional candidate slot.
#[derive(Debug, Default, Clone)]
struct TrieNode {
    /// `(item, child index)`, ascending by item.
    children: Vec<(Item, u32)>,
    /// Index into the candidate arena when a candidate *ends* here.
    candidate: Option<u32>,
}

/// A counting trie for candidates of a fixed size `k`.
///
/// ```
/// use armine_core::trie::CandidateTrie;
/// use armine_core::{ItemSet, Transaction, Item};
///
/// let mut trie = CandidateTrie::build(2, vec![ItemSet::from([1, 3])]);
/// trie.count(&Transaction::new(1, vec![Item(1), Item(2), Item(3)]));
/// assert_eq!(trie.count_of(&ItemSet::from([1, 3])), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct CandidateTrie {
    k: usize,
    nodes: Vec<TrieNode>,
    candidates: Vec<(ItemSet, u64)>,
}

impl CandidateTrie {
    /// Builds a trie over size-`k` candidates.
    ///
    /// # Panics
    /// If any candidate's size differs from `k`, or `k == 0`.
    pub fn build(k: usize, candidates: Vec<ItemSet>) -> Self {
        assert!(k >= 1, "candidate size must be at least 1");
        let mut trie = CandidateTrie {
            k,
            nodes: vec![TrieNode::default()],
            candidates: Vec::with_capacity(candidates.len()),
        };
        for set in candidates {
            assert_eq!(set.len(), k, "candidate {set} has wrong size for k={k}");
            trie.insert(set);
        }
        trie
    }

    fn insert(&mut self, set: ItemSet) {
        let mut node = 0u32;
        for &item in set.items() {
            let pos = self.nodes[node as usize]
                .children
                .binary_search_by_key(&item, |&(i, _)| i);
            node = match pos {
                Ok(p) => self.nodes[node as usize].children[p].1,
                Err(p) => {
                    let fresh = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[node as usize].children.insert(p, (item, fresh));
                    fresh
                }
            };
        }
        let slot = &mut self.nodes[node as usize].candidate;
        if slot.is_none() {
            *slot = Some(self.candidates.len() as u32);
            self.candidates.push((set, 0));
        }
    }

    /// Number of candidates stored.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of trie nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Counts the candidates contained in one transaction: a lockstep walk
    /// of the trie and the sorted item list — each contained candidate is
    /// visited exactly once.
    pub fn count(&mut self, t: &Transaction) {
        if t.len() < self.k {
            return;
        }
        self.walk(0, t.items(), self.k);
    }

    fn walk(&mut self, node: u32, suffix: &[Item], remaining: usize) {
        if remaining == 0 {
            if let Some(c) = self.nodes[node as usize].candidate {
                self.candidates[c as usize].1 += 1;
            }
            return;
        }
        if suffix.len() < remaining {
            return;
        }
        // Merge-intersect the child list with the transaction suffix.
        let children = self.nodes[node as usize].children.clone();
        let (mut ci, mut si) = (0usize, 0usize);
        while ci < children.len() && si + remaining <= suffix.len() {
            let (item, child) = children[ci];
            match item.cmp(&suffix[si]) {
                std::cmp::Ordering::Less => ci += 1,
                std::cmp::Ordering::Greater => si += 1,
                std::cmp::Ordering::Equal => {
                    self.walk(child, &suffix[si + 1..], remaining - 1);
                    ci += 1;
                    si += 1;
                }
            }
        }
    }

    /// Counts a whole batch.
    pub fn count_all(&mut self, transactions: &[Transaction]) {
        for t in transactions {
            self.count(t);
        }
    }

    /// The accumulated count for `set`, or `None` if never inserted.
    pub fn count_of(&self, set: &ItemSet) -> Option<u64> {
        self.candidates
            .iter()
            .find(|(s, _)| s == set)
            .map(|&(_, c)| c)
    }

    /// `(candidate, count)` pairs in insertion order.
    pub fn counts(&self) -> impl Iterator<Item = (&ItemSet, u64)> + '_ {
        self.candidates.iter().map(|(s, c)| (s, *c))
    }

    /// Candidates with `count >= min_count`, insertion order.
    pub fn frequent(&self, min_count: u64) -> Vec<(ItemSet, u64)> {
        self.candidates
            .iter()
            .filter(|&&(_, c)| c >= min_count)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashtree::{HashTree, HashTreeParams, OwnershipFilter};
    use rand::prelude::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from(ids)
    }

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    #[test]
    fn counts_paper_example() {
        let cands = vec![
            set(&[1, 2, 5]),
            set(&[1, 3, 6]),
            set(&[3, 5, 6]),
            set(&[1, 4, 5]),
        ];
        let mut trie = CandidateTrie::build(3, cands);
        trie.count(&tx(0, &[1, 2, 3, 5, 6]));
        assert_eq!(trie.count_of(&set(&[1, 2, 5])), Some(1));
        assert_eq!(trie.count_of(&set(&[1, 3, 6])), Some(1));
        assert_eq!(trie.count_of(&set(&[3, 5, 6])), Some(1));
        assert_eq!(trie.count_of(&set(&[1, 4, 5])), Some(0));
        assert_eq!(trie.count_of(&set(&[9, 9, 9])), None);
    }

    #[test]
    fn equivalent_to_hash_tree_on_random_data() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let k = 2 + trial % 3;
            let mut cands: Vec<ItemSet> = (0..120)
                .map(|_| {
                    let mut ids: Vec<u32> = (0..25).collect();
                    ids.shuffle(&mut rng);
                    set(&ids[..k])
                })
                .collect();
            cands.sort();
            cands.dedup();
            let txs: Vec<Transaction> = (0..80)
                .map(|tid| {
                    let len = rng.gen_range(0..=12);
                    let mut ids: Vec<u32> = (0..25).collect();
                    ids.shuffle(&mut rng);
                    tx(tid, &ids[..len])
                })
                .collect();
            let mut trie = CandidateTrie::build(k, cands.clone());
            trie.count_all(&txs);
            let mut tree = HashTree::build(k, HashTreeParams::default(), cands.clone());
            tree.count_all(&txs, &OwnershipFilter::all());
            for c in &cands {
                assert_eq!(trie.count_of(c), tree.count_of(c), "candidate {c}");
            }
        }
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut trie = CandidateTrie::build(2, vec![set(&[1, 2]), set(&[1, 2])]);
        assert_eq!(trie.num_candidates(), 1);
        trie.count(&tx(0, &[1, 2, 3]));
        assert_eq!(trie.count_of(&set(&[1, 2])), Some(1));
    }

    #[test]
    fn frequent_filters() {
        let mut trie = CandidateTrie::build(1, vec![set(&[3]), set(&[7])]);
        trie.count_all(&[tx(0, &[3]), tx(1, &[3, 7]), tx(2, &[3])]);
        assert_eq!(trie.frequent(3), vec![(set(&[3]), 3)]);
        assert_eq!(trie.frequent(1).len(), 2);
    }

    #[test]
    fn short_transactions_skipped() {
        let mut trie = CandidateTrie::build(3, vec![set(&[1, 2, 3])]);
        trie.count(&tx(0, &[1, 2]));
        assert_eq!(trie.count_of(&set(&[1, 2, 3])), Some(0));
    }

    #[test]
    fn node_sharing_compresses_prefixes() {
        // {1,2,3} and {1,2,4} share the 1→2 path: 1 root + 2 shared + 2
        // leaves = 5 nodes.
        let trie = CandidateTrie::build(3, vec![set(&[1, 2, 3]), set(&[1, 2, 4])]);
        assert_eq!(trie.num_nodes(), 5);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn arity_checked() {
        CandidateTrie::build(3, vec![set(&[1, 2])]);
    }
}
