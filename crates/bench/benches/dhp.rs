//! Apriori vs DHP on the same workload: what the hash filter and the
//! trimming buy in wall time.

use armine_core::apriori::{Apriori, AprioriParams};
use armine_core::dhp::{Dhp, DhpParams};
use armine_datagen::QuestParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(1500)
        .num_items(300)
        .num_patterns(120)
        .seed(88)
        .generate();
    let mut group = c.benchmark_group("dhp_vs_apriori");
    group.bench_function("apriori_1500tx", |b| {
        let miner = Apriori::new(AprioriParams::with_min_support(0.01).max_k(3));
        b.iter(|| miner.mine(std::hint::black_box(dataset.transactions())));
    });
    group.bench_function("dhp_1500tx", |b| {
        let miner = Dhp::new(DhpParams::with_min_support(0.01).buckets(1 << 15).max_k(3));
        b.iter(|| miner.mine(std::hint::black_box(dataset.transactions())));
    });
    group.bench_function("dhp_no_trim_1500tx", |b| {
        let miner = Dhp::new(
            DhpParams::with_min_support(0.01)
                .buckets(1 << 15)
                .trim(false)
                .max_k(3),
        );
        b.iter(|| miner.mine(std::hint::black_box(dataset.transactions())));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
