//! Microbenchmarks of the serial Apriori pipeline: full mining runs at two
//! support levels plus `apriori_gen` in isolation.

use armine_core::apriori::{apriori_gen, Apriori, AprioriParams};
use armine_core::ItemSet;
use armine_datagen::QuestParams;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn bench_mining(c: &mut Criterion) {
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(1000)
        .num_items(200)
        .num_patterns(80)
        .seed(42)
        .generate();
    let mut group = c.benchmark_group("serial_apriori");
    for support in [0.02f64, 0.01] {
        group.bench_function(format!("mine_T15_I6_1k_sup{support}"), |b| {
            let miner = Apriori::new(AprioriParams::with_min_support(support).max_k(4));
            b.iter(|| miner.mine(std::hint::black_box(dataset.transactions())));
        });
    }
    group.finish();
}

fn bench_apriori_gen(c: &mut Criterion) {
    // A dense F_2 over 120 items.
    let mut f2: Vec<ItemSet> = Vec::new();
    for a in 0u32..120 {
        for b in (a + 1)..120 {
            if (a * 31 + b * 17) % 3 != 0 {
                f2.push(ItemSet::from([a, b]));
            }
        }
    }
    f2.sort();
    c.bench_function("apriori_gen_dense_F2", |b| {
        b.iter_batched(
            || f2.clone(),
            |prev| apriori_gen(std::hint::black_box(&prev)),
            BatchSize::LargeInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    targets = bench_mining, bench_apriori_gen
}
criterion_main!(benches);
