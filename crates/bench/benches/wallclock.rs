//! Host wall-clock of the simulator hot path at scale: one iteration =
//! a full P=64, 5-pass, Figure-10-style mining run. This is the bench
//! that motivated sharing transaction pages (`Arc<[Transaction]>`): at
//! 64 ranks every page is re-sent dozens of times per pass, so deep-
//! copying page payloads dominated host time while contributing nothing
//! to the simulated (virtual-time) outputs. Numbers before/after the
//! change are recorded in EXPERIMENTS.md.

use armine_bench::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const PROCS: usize = 64;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("wallclock");
    let dataset = workloads::scaleup(PROCS, 200, 1010);
    let params = ParallelParams::with_min_support(0.015)
        .page_size(100)
        .max_k(5);
    for algo in [
        Algorithm::Cd,
        Algorithm::Dd,
        Algorithm::DdComm,
        Algorithm::Idd,
        Algorithm::Hd {
            group_threshold: 500,
        },
    ] {
        group.bench_function(format!("{}_p{PROCS}", algo.name()), |b| {
            let miner = ParallelMiner::new(PROCS);
            b.iter(|| miner.mine(algo, std::hint::black_box(&dataset), &params));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(20)).warm_up_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
