//! Figure 12 as a Criterion bench: the SP2 memory-wall comparison at one
//! support level (the full sweep is `exp_fig12`).

use armine_bench::workloads;
use armine_mpsim::MachineProfile;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = workloads::t15_i6_items(1000, 300, 1212);
    let params = ParallelParams::with_min_support(0.01)
        .page_size(100)
        .memory_capacity(1500)
        .max_k(4);
    let mut group = c.benchmark_group("fig12_sp2");
    for algo in [
        Algorithm::Cd,
        Algorithm::Idd,
        Algorithm::Hd {
            group_threshold: 1500,
        },
    ] {
        group.bench_function(algo.name(), |b| {
            let miner = ParallelMiner::new(16).machine(MachineProfile::ibm_sp2());
            b.iter(|| miner.mine(algo, std::hint::black_box(&dataset), &params));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
