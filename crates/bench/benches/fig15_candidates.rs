//! Figure 15 as a Criterion bench: candidate scaling at two support
//! levels (the M sweep is `exp_fig15`).

use armine_bench::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = workloads::t15_i6_items(1000, 400, 1515);
    let mut group = c.benchmark_group("fig15_candidates");
    for support in [0.015f64, 0.0075] {
        let params = ParallelParams::with_min_support(support)
            .page_size(100)
            .memory_capacity(2000)
            .max_k(3);
        for algo in [
            Algorithm::Cd,
            Algorithm::Idd,
            Algorithm::Hd {
                group_threshold: 800,
            },
        ] {
            group.bench_function(format!("{}_sup{support}", algo.name()), |b| {
                let miner = ParallelMiner::new(16);
                b.iter(|| miner.mine(algo, std::hint::black_box(&dataset), &params));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
