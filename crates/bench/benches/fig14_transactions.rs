//! Figure 14 as a Criterion bench: transaction scaling of CD/IDD/HD at a
//! fixed machine size (the N sweep is `exp_fig14`).

use armine_bench::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let params = ParallelParams::with_min_support(0.01)
        .page_size(100)
        .max_k(3);
    let mut group = c.benchmark_group("fig14_transactions");
    for n in [1000usize, 4000] {
        let dataset = workloads::t15_i6(n, 1414);
        for algo in [
            Algorithm::Cd,
            Algorithm::Idd,
            Algorithm::Hd {
                group_threshold: 800,
            },
        ] {
            group.bench_function(format!("{}_n{n}", algo.name()), |b| {
                let miner = ParallelMiner::new(16);
                b.iter(|| miner.mine(algo, std::hint::black_box(&dataset), &params));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
