//! Figure 13 as a Criterion bench: pass-3 computation at two machine
//! sizes (the speedup series is `exp_fig13`).

use armine_bench::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = workloads::t15_i6(2000, 1313);
    let params = ParallelParams::with_min_support(0.01)
        .page_size(100)
        .max_k(3);
    let mut group = c.benchmark_group("fig13_pass3");
    for procs in [4usize, 16] {
        for algo in [
            Algorithm::Cd,
            Algorithm::Idd,
            Algorithm::Hd {
                group_threshold: 800,
            },
        ] {
            group.bench_function(format!("{}_p{procs}", algo.name()), |b| {
                let miner = ParallelMiner::new(procs);
                b.iter(|| miner.mine(algo, std::hint::black_box(&dataset), &params));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
