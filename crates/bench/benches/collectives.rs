//! Microbenchmarks of the simulator's collectives: wall-clock cost of the
//! *simulation itself* for ring vs recursive-doubling all-reduce and the
//! binomial broadcast (virtual-time trade-offs are asserted in
//! armine-mpsim's tests).

use armine_mpsim::{MachineProfile, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    for p in [8usize, 32] {
        group.bench_function(format!("allreduce_ring_p{p}_m10k"), |b| {
            let sim = Simulator::new(p).machine(MachineProfile::cray_t3e());
            b.iter(|| {
                sim.run(|comm| {
                    let mut v = vec![1u64; 10_000];
                    comm.world().allreduce_sum_u64(&mut v);
                    v[0]
                })
            });
        });
        group.bench_function(format!("allreduce_doubling_p{p}_m10k"), |b| {
            let sim = Simulator::new(p).machine(MachineProfile::cray_t3e());
            b.iter(|| {
                sim.run(|comm| {
                    let mut v = vec![1u64; 10_000];
                    comm.world().allreduce_sum_u64_doubling(&mut v);
                    v[0]
                })
            });
        });
        group.bench_function(format!("broadcast_p{p}_1mb"), |b| {
            let sim = Simulator::new(p).machine(MachineProfile::cray_t3e());
            b.iter(|| {
                sim.run(|comm| {
                    let mut w = comm.world();
                    let v = (w.rank() == 0).then(|| vec![0u8; 1024]);
                    w.broadcast(0, v, 1_000_000).len()
                })
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
