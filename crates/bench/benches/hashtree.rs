//! Microbenchmarks of the candidate hash tree: construction, the subset
//! operation, and the effect of IDD's bitmap root filter.

use armine_core::bitmap::ItemBitmap;
use armine_core::hashtree::{HashTree, HashTreeParams, OwnershipFilter};
use armine_core::trie::CandidateTrie;
use armine_core::{Item, ItemSet, Transaction};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::prelude::*;
use std::time::Duration;

fn make_candidates(n: usize, universe: u32, k: usize, seed: u64) -> Vec<ItemSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<ItemSet> = (0..n * 2)
        .map(|_| {
            let mut ids: Vec<u32> = (0..universe).collect();
            ids.partial_shuffle(&mut rng, k);
            ItemSet::new(ids[..k].iter().map(|&i| Item(i)).collect())
        })
        .collect();
    out.sort();
    out.dedup();
    out.truncate(n);
    out
}

fn make_transactions(n: usize, universe: u32, len: usize, seed: u64) -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|tid| {
            let mut ids: Vec<u32> = (0..universe).collect();
            ids.partial_shuffle(&mut rng, len);
            Transaction::new(tid as u64, ids[..len].iter().map(|&i| Item(i)).collect())
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let cands = make_candidates(10_000, 300, 3, 1);
    c.bench_function("hashtree_build_10k", |b| {
        b.iter_batched(
            || cands.clone(),
            |cands| HashTree::build(3, HashTreeParams::default(), std::hint::black_box(cands)),
            BatchSize::LargeInput,
        );
    });
}

fn bench_subset(c: &mut Criterion) {
    let cands = make_candidates(10_000, 300, 3, 2);
    let txs = make_transactions(200, 300, 15, 3);
    let mut group = c.benchmark_group("hashtree_subset");
    group.bench_function("unfiltered_200tx", |b| {
        let mut tree = HashTree::build(3, HashTreeParams::default(), cands.clone());
        b.iter(|| tree.count_all(std::hint::black_box(&txs), &OwnershipFilter::all()));
    });
    // IDD's situation: own 1/8 of the first items (and only those
    // candidates), filter the rest at the root.
    let owned = ItemBitmap::from_items(300, (0u32..300).filter(|i| i % 8 == 0).map(Item));
    let filter = OwnershipFilter::first_item(owned);
    group.bench_function("bitmap_filtered_200tx", |b| {
        let own_cands: Vec<ItemSet> = cands
            .iter()
            .filter(|c| c.first().unwrap().id() % 8 == 0)
            .cloned()
            .collect();
        let mut tree = HashTree::build(3, HashTreeParams::default(), own_cands);
        b.iter(|| tree.count_all(std::hint::black_box(&txs), &filter));
    });
    group.finish();
}

fn bench_trie_vs_tree(c: &mut Criterion) {
    let cands = make_candidates(10_000, 300, 3, 5);
    let txs = make_transactions(200, 300, 15, 6);
    let mut group = c.benchmark_group("structure_comparison");
    group.bench_function("hash_tree_count_200tx", |b| {
        let mut tree = HashTree::build(3, HashTreeParams::default(), cands.clone());
        b.iter(|| tree.count_all(std::hint::black_box(&txs), &OwnershipFilter::all()));
    });
    group.bench_function("prefix_trie_count_200tx", |b| {
        let mut trie = CandidateTrie::build(3, cands.clone());
        b.iter(|| trie.count_all(std::hint::black_box(&txs), &OwnershipFilter::all()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    targets = bench_build, bench_subset, bench_trie_vs_tree
}
criterion_main!(benches);
