//! Figure 11 as a Criterion bench: DD vs IDD counting passes (the figure's
//! virtual leaf-visit series comes from `exp_fig11`).

use armine_bench::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let procs = 8;
    let dataset = workloads::scaleup(procs, 200, 1111);
    let params = ParallelParams::with_min_support(0.015)
        .page_size(100)
        .max_k(3);
    let mut group = c.benchmark_group("fig11_leaf_visits");
    for algo in [Algorithm::Dd, Algorithm::Idd] {
        group.bench_function(algo.name(), |b| {
            let miner = ParallelMiner::new(procs);
            b.iter(|| miner.mine(algo, std::hint::black_box(&dataset), &params));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
