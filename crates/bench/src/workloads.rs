//! Canonical workloads of the evaluation, scaled 1:100 from the paper.
//!
//! The paper's datasets are Quest `T15.I6` (average transaction length 15,
//! average pattern length 6). Response-time *shapes* are governed by the
//! ratios N/P (transactions per processor), M/P or M/G (candidates per
//! tree), and C/L (potential candidates vs leaves) — all preserved under
//! uniform scaling; EXPERIMENTS.md records the mapping per figure.

use armine_core::Dataset;
use armine_datagen::QuestParams;

/// The linear scale factor between the paper's workloads and ours.
pub const SCALE: usize = 100;

/// Item universe for the scaled experiments. The paper's datasets use
/// 1000 items; we keep the universe at 1000/√SCALE·√SCALE = 1000 divided
/// only where candidate counts must shrink proportionally — in practice a
/// few hundred items keeps |C_2| in a realistic band at our N.
pub const NUM_ITEMS: u32 = 250;

/// A `T15.I6` database with `n` transactions over [`NUM_ITEMS`] items.
pub fn t15_i6(n: usize, seed: u64) -> Dataset {
    QuestParams::paper_t15_i6()
        .num_transactions(n)
        .num_items(NUM_ITEMS)
        .num_patterns(120)
        .seed(seed)
        .generate()
}

/// A `T15.I6` database with an explicit item universe (experiments that
/// sweep the candidate count need wider universes).
pub fn t15_i6_items(n: usize, num_items: u32, seed: u64) -> Dataset {
    QuestParams::paper_t15_i6()
        .num_transactions(n)
        .num_items(num_items)
        .num_patterns((num_items as usize / 2).max(20))
        .seed(seed)
        .generate()
}

/// A `T10.I4` database with `n` transactions over [`NUM_ITEMS`] items —
/// the lighter Quest workload used by the counting-structure comparison
/// (shorter transactions keep the trie's merge-intersect walk and the
/// hash tree's subset descent in the same op-count regime).
pub fn t10_i4(n: usize, seed: u64) -> Dataset {
    QuestParams::paper_t15_i6()
        .avg_transaction_len(10.0)
        .avg_pattern_len(4.0)
        .num_transactions(n)
        .num_items(NUM_ITEMS)
        .num_patterns(120)
        .seed(seed)
        .generate()
}

/// Scaleup database: `per_proc` transactions for each of `procs`
/// processors (the Figure 10/11 setup keeps work per processor constant
/// as P grows).
pub fn scaleup(procs: usize, per_proc: usize, seed: u64) -> Dataset {
    t15_i6(procs * per_proc, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t15_shape() {
        let d = t15_i6(400, 1);
        assert_eq!(d.len(), 400);
        let avg = d.avg_transaction_len();
        assert!(avg > 10.0 && avg < 18.0, "got {avg}");
    }

    #[test]
    fn t10_shape() {
        let d = t10_i4(400, 1);
        assert_eq!(d.len(), 400);
        let avg = d.avg_transaction_len();
        assert!(avg > 6.0 && avg < 13.0, "got {avg}");
    }

    #[test]
    fn scaleup_grows_with_procs() {
        assert_eq!(scaleup(8, 100, 2).len(), 800);
    }
}
