//! # armine-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`exp_table2`, `exp_fig10` … `exp_fig15`, `exp_model`, `exp_imbalance`),
//! plus Criterion benches. Each binary prints the same series the paper
//! plots and drops a CSV under `experiments/` for plotting.
//!
//! Experiments run at 1:100 of the paper's scale (the virtual-time
//! simulator preserves the N/P, M/P and C/L ratios that determine curve
//! shapes; see DESIGN.md §1). Paper-vs-measured comparisons are recorded
//! in EXPERIMENTS.md.

pub mod experiments;
pub mod report;
pub mod workloads;
