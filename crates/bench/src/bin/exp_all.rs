//! Runs every experiment in sequence — the full reproduction of the
//! paper's evaluation section. Expect several minutes of (virtual-time)
//! simulation.
use armine_bench::experiments::*;
fn main() {
    let t = std::time::Instant::now();
    emit(&model::run(), "model_vij");
    emit(&table2::run(), "table2");
    emit(&imbalance::run(&imbalance::default_procs()), "imbalance");
    emit(&hpa_comm::run(), "hpa_comm");
    emit(&pdm_prune::run(), "pdm_prune");
    emit(&breakdown::run(&breakdown::default_procs()), "breakdown");
    emit(&ablation::run_tree_shape(), "ablation_tree_shape");
    emit(&ablation::run_page_size(), "ablation_page_size");
    emit(&ablation::run_topology(), "ablation_topology");
    emit(&faults::run_drop_rate(), "faults_drop_rate");
    emit(&faults::run_crash_recovery(), "faults_crash_recovery");
    emit(&hetero::run(), "hetero_placement");
    emit(&fig11::run(&fig11::default_procs()), "fig11_leaf_visits");
    emit(
        &fig12::run(&fig12::default_supports()),
        "fig12_sp2_candidates",
    );
    emit(&fig13::run(&fig13::default_procs()), "fig13_speedup");
    emit(
        &fig14::run(&fig14::default_transactions()),
        "fig14_transactions",
    );
    emit(&fig15::run(&fig15::default_supports()), "fig15_candidates");
    emit(&fig10::run(&fig10::default_procs()), "fig10_scaleup");
    println!(
        "\nall experiments done in {:.0}s",
        t.elapsed().as_secs_f64()
    );
}
