//! PDM's DHP-style candidate pruning vs CD (related work, §III-E).
use armine_bench::experiments::{emit, pdm_prune};
fn main() {
    emit(&pdm_prune::run(), "pdm_prune");
}
