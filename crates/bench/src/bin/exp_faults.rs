//! Fault-injection overhead: retransmission cost vs drop rate, and the
//! price of a pass-boundary crash recovery, at P=64.
use armine_bench::experiments::{emit, faults};
fn main() {
    emit(&faults::run_drop_rate(), "faults_drop_rate");
    emit(&faults::run_crash_recovery(), "faults_crash_recovery");
}
