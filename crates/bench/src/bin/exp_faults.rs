//! Fault-injection overhead: retransmission cost vs drop rate, the price
//! of a pass-boundary crash recovery at P=64, and the same fault plans on
//! both execution backends (sim-predicted vs native-measured, snapshotted
//! to experiments/BENCH_faults.json).
use armine_bench::experiments::{emit, faults};
fn main() {
    emit(&faults::run_drop_rate(), "faults_drop_rate");
    emit(&faults::run_crash_recovery(), "faults_crash_recovery");
    emit(&faults::run_both_backends(), "faults_backends");
}
