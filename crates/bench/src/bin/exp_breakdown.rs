//! Reproduces the Section V overhead-fraction quotes (Figure 13's
//! discussion): CD's tree-build and reduction shares, IDD's imbalance and
//! data-movement shares, as P grows.
use armine_bench::experiments::{breakdown, emit};
fn main() {
    emit(&breakdown::run(&breakdown::default_procs()), "breakdown");
}
