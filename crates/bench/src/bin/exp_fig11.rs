//! Regenerates Figure 11: distinct leaf visits per transaction, DD vs IDD.
use armine_bench::experiments::{emit, fig11};
fn main() {
    let procs: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("processor counts"))
        .collect();
    let procs = if procs.is_empty() {
        fig11::default_procs()
    } else {
        procs
    };
    emit(&fig11::run(&procs), "fig11_leaf_visits");
}
