//! Design-choice ablations: hash-tree leaf capacity, ring-pipeline page
//! size, and interconnect topology.
use armine_bench::experiments::{ablation, emit};
fn main() {
    emit(&ablation::run_tree_shape(), "ablation_tree_shape");
    emit(&ablation::run_page_size(), "ablation_page_size");
    emit(&ablation::run_topology(), "ablation_topology");
}
