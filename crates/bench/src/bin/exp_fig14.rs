//! Regenerates Figure 14: response time vs transaction count.
use armine_bench::experiments::{emit, fig14};
fn main() {
    emit(
        &fig14::run(&fig14::default_transactions()),
        "fig14_transactions",
    );
}
