//! Regenerates Figure 12: SP2 response time vs candidate count.
use armine_bench::experiments::{emit, fig12};
fn main() {
    emit(
        &fig12::run(&fig12::default_supports()),
        "fig12_sp2_candidates",
    );
}
