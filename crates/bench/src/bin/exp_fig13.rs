//! Regenerates Figure 13: speedup of pass 3 for CD/IDD/HD.
use armine_bench::experiments::{emit, fig13};
fn main() {
    let procs: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("processor counts"))
        .collect();
    let procs = if procs.is_empty() {
        fig13::default_procs()
    } else {
        procs
    };
    emit(&fig13::run(&procs), "fig13_speedup");
}
