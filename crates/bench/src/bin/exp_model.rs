//! Validates Equation 1's V(i,j) model: closed form vs Monte-Carlo vs a
//! real hash tree's measured counters.
use armine_bench::experiments::{emit, model};
fn main() {
    emit(&model::run(), "model_vij");
    let (measured, predicted) = model::measured_vs_predicted(7);
    println!(
        "\nReal hash tree: measured {measured:.2} distinct leaves/transaction, model predicts {predicted:.2} ({:+.1}%)",
        (measured / predicted - 1.0) * 100.0
    );
}
