//! Regenerates Figure 15: response time vs candidate count on the T3E.
use armine_bench::experiments::{emit, fig15};
fn main() {
    emit(&fig15::run(&fig15::default_supports()), "fig15_candidates");
}
