//! Reproduces the Section III-C load-balance quote: candidate imbalance vs
//! computation-time imbalance in IDD.
use armine_bench::experiments::{emit, imbalance};
fn main() {
    emit(&imbalance::run(&imbalance::default_procs()), "imbalance");
}
