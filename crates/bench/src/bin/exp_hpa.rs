//! Measures Section III-E's communication-volume claim: IDD vs HPA
//! (and HPA-ELD) as the pass horizon k grows.
use armine_bench::experiments::{emit, hpa_comm};
fn main() {
    emit(&hpa_comm::run(), "hpa_comm");
}
