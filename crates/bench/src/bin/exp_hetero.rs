//! Heterogeneous-cluster placement: what fast/slow rank mixes cost the
//! static even split and how much the adaptive placement seam recovers,
//! at P=16 on the simulated T3E plus a native wall-clock validation
//! (snapshotted to experiments/BENCH_hetero.json).
use armine_bench::experiments::{emit, hetero};
fn main() {
    emit(&hetero::run(), "hetero_placement");
}
