//! Native-vs-virtual speedup validation: mines a large Quest dataset on
//! both execution backends and snapshots `experiments/BENCH_native.json`.
use armine_bench::experiments::{emit, native};
fn main() {
    let procs: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("processor counts"))
        .collect();
    let procs = if procs.is_empty() {
        native::default_procs()
    } else {
        procs
    };
    emit(&native::run(&procs), "native_speedup");
}
