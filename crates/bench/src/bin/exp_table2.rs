//! Regenerates Table II: HD's per-pass grid configuration.
fn main() {
    armine_bench::experiments::emit(&armine_bench::experiments::table2::run(), "table2");
}
