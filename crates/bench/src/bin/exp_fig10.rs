//! Regenerates Figure 10: scaleup of CD/IDD/HD/DD/DD+comm.
use armine_bench::experiments::{emit, fig10};
fn main() {
    let procs: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("processor counts"))
        .collect();
    let procs = if procs.is_empty() {
        fig10::default_procs()
    } else {
        procs
    };
    emit(&fig10::run(&procs), "fig10_scaleup");
}
