//! Candidate-structure comparison: hash tree vs candidate trie vs the
//! vertical (tidlist) counter across the CandidateCounter seam, on
//! replicated (CD) and partitioned (IDD) passes, plus a native-backend
//! wall-clock measurement of each structure's counting phase. Writes
//! `experiments/BENCH_structures.json`.
use armine_bench::experiments::{emit, structures};
fn main() {
    let (sim, native) = structures::run_full();
    emit(&sim, "structures");
    emit(&native, "structures_native");
}
