//! Candidate-structure comparison: hash tree vs candidate trie across the
//! CandidateCounter seam, on replicated (CD) and partitioned (IDD) passes.
use armine_bench::experiments::{emit, structures};
fn main() {
    emit(&structures::run(), "structures");
}
