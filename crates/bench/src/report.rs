//! Result tables: pretty terminal output + CSV files for plotting.

use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;

/// A simple result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// The rendered data rows (one `Vec<String>` per [`Table::row`] call).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes CSV into `experiments/<name>.csv` (relative to the workspace
    /// root when run via cargo, else the current directory). Returns the
    /// path written.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = experiments_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Where experiment CSVs land.
pub fn experiments_dir() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../../experiments"))
        .unwrap_or_else(|| PathBuf::from("experiments"))
}

/// Formats seconds as engineering-friendly milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["P", "time"]);
        t.row(&[&4, &"1.25"]);
        t.row(&[&128, &"0.5"]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("128"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("csv", &["a", "b"]);
        t.row(&[&1, &2]);
        let path = t.write_csv("_test_csv").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.001), "1.000");
        assert_eq!(pct(0.054), "5.4%");
    }
}
