//! Result tables: pretty terminal output + CSV files for plotting, plus
//! the one shared set of numeric formatters every experiment's
//! table/CSV rendering uses, and the registry-snapshot JSON writer the
//! `BENCH_*.json` perf-trajectory files go through.

use armine_metrics::json::BenchDocument;
use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;

/// A simple result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// The rendered data rows (one `Vec<String>` per [`Table::row`] call).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes CSV into `experiments/<name>.csv` (relative to the workspace
    /// root when run via cargo, else the current directory). Returns the
    /// path written.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = experiments_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Where experiment CSVs and `BENCH_*.json` snapshots land: the
/// workspace `experiments/` directory, unless `ARMINE_EXPERIMENTS_DIR`
/// redirects it (smoke tests use this so they never overwrite the
/// committed full-size artifacts).
pub fn experiments_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("ARMINE_EXPERIMENTS_DIR") {
        return PathBuf::from(dir);
    }
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../../experiments"))
        .unwrap_or_else(|| PathBuf::from("experiments"))
}

/// Redirects [`experiments_dir`] to a scratch directory for the rest of
/// the test process. Smoke-sized sweep tests call this before running so
/// the committed `experiments/` artifacts stay untouched; the scratch
/// directory is shared (file names already differ per experiment).
#[cfg(test)]
pub(crate) fn use_scratch_experiments_dir() {
    let dir = std::env::temp_dir().join("armine_bench_test_experiments");
    std::env::set_var("ARMINE_EXPERIMENTS_DIR", &dir);
}

/// Formats seconds as engineering-friendly milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Formats seconds as plain seconds with four decimals (wall-clock
/// measurements where milliseconds would overflow the column).
pub fn secs(seconds: f64) -> String {
    format!("{seconds:.4}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats an already-in-percent overhead with an explicit sign
/// (`+3.2%` / `-0.4%`), the convention of the fault-overhead tables.
pub fn signed_pct(percent: f64) -> String {
    format!("{percent:+.1}%")
}

/// Formats a dimensionless ratio (speedup, blow-up factor) with two
/// decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Writes a registry [`BenchDocument`] into `experiments/<name>.json` —
/// the uniform exporter behind every `BENCH_*.json` perf-trajectory
/// snapshot. Returns the path written.
pub fn write_bench_json(name: &str, doc: &BenchDocument) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    doc.write_to(&path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["P", "time"]);
        t.row(&[&4, &"1.25"]);
        t.row(&[&128, &"0.5"]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("128"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn csv_roundtrip() {
        use_scratch_experiments_dir();
        let mut t = Table::new("csv", &["a", "b"]);
        t.row(&[&1, &2]);
        let path = t.write_csv("_test_csv").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.001), "1.000");
        assert_eq!(pct(0.054), "5.4%");
        assert_eq!(secs(1.25), "1.2500");
        assert_eq!(signed_pct(3.21), "+3.2%");
        assert_eq!(signed_pct(-0.44), "-0.4%");
        assert_eq!(ratio(2.0 / 3.0), "0.67");
    }

    #[test]
    fn bench_json_writer_round_trips() {
        use_scratch_experiments_dir();
        use armine_metrics::{Labels, MetricShard};
        let mut shard = MetricShard::new();
        shard.set_gauge(
            "armine.run.response_seconds",
            Labels::new().with("procs", 4),
            0.125,
        );
        let doc = BenchDocument::new("writer_test", shard.snapshot(&Labels::new()));
        let path = write_bench_json("_test_bench_writer", &doc).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(BenchDocument::parse(&text).unwrap(), doc);
        std::fs::remove_file(path).ok();
    }
}
