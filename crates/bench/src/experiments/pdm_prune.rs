//! PDM vs CD (related work, §III-E): how much of CD's pass-2 work does
//! DHP-style hash filtering remove, and what does the bucket reduction
//! cost?
//!
//! The paper calls PDM "similar in nature to the CD algorithm" — same
//! replicated trees and count reduction — so the interesting quantities
//! are the candidate-pruning ratio (bucket table quality vs size) and the
//! net response-time effect.

use crate::report::{ms, Table};
use crate::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Processors.
pub const PROCS: usize = 8;
/// Transactions.
pub const NUM_TRANSACTIONS: usize = 2000;
/// Minimum support fraction.
pub const MIN_SUPPORT: f64 = 0.01;

/// Sweeps the bucket-table size.
pub fn run() -> Table {
    let dataset = workloads::t15_i6(NUM_TRANSACTIONS, 5050);
    let params = ParallelParams::with_min_support(MIN_SUPPORT)
        .page_size(100)
        .max_k(3);
    let miner = ParallelMiner::new(PROCS);
    let cd = miner.mine(Algorithm::Cd, &dataset, &params);
    let c2 = cd.passes[1].counted_candidates;
    let mut table = Table::new(
        "PDM vs CD — pass-2 candidate pruning vs bucket-table size (P=8)",
        &["buckets", "|C2| counted", "pruned", "time ms", "CD time ms"],
    );
    for buckets in [256usize, 1 << 12, 1 << 16, 1 << 20] {
        let pdm = miner.mine(
            Algorithm::Pdm {
                buckets,
                filter_passes: 1,
            },
            &dataset,
            &params,
        );
        let counted = pdm.passes[1].counted_candidates;
        table.row(&[
            &buckets,
            &counted,
            &format!("{:.1}%", 100.0 * (c2 - counted) as f64 / c2 as f64),
            &ms(pdm.response_time),
            &ms(cd.response_time),
        ]);
    }
    table
}
