//! Figure 14 — transaction scaling: runtime vs N with M and P fixed
//! (paper: N = 1.3M → 26.1M, M = 0.7M, P = 64, HD grid 8×8).
//!
//! Expected shape: CD and HD grow linearly in N (perfectly scalable in
//! transactions); IDD grows faster — its O(N) ring data movement and load
//! imbalance compound (the paper attributes most of the gap to
//! imbalance).

use crate::report::{ms, pct, Table};
use crate::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Processors (paper: 64).
pub const PROCS: usize = 64;
/// Minimum support fraction: held constant so that M stays roughly fixed
/// while N grows (the paper pins M = 0.7M).
pub const MIN_SUPPORT: f64 = 0.015;
/// Only pass 3 is timed, as in Figure 13 (a fixed-M comparison needs a
/// fixed pass).
pub const PASS: usize = 3;
/// HD group threshold.
pub const HD_THRESHOLD: usize = 1100;

/// Runs the N sweep.
pub fn run(transaction_counts: &[usize]) -> Table {
    let mut table = Table::new(
        "Figure 14 — response time (ms) vs N (P=64, M fixed via constant support)",
        &["N", "CD", "IDD", "HD", "|C3|", "IDD imbalance"],
    );
    for &n in transaction_counts {
        let dataset = workloads::t15_i6(n, 1414);
        let params = ParallelParams::with_min_support(MIN_SUPPORT)
            .page_size(100)
            .max_k(PASS);
        let miner = ParallelMiner::new(PROCS);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        let hd = miner.mine(
            Algorithm::Hd {
                group_threshold: HD_THRESHOLD,
            },
            &dataset,
            &params,
        );
        table.row(&[
            &n,
            &ms(cd.response_time),
            &ms(idd.response_time),
            &ms(hd.response_time),
            &cd.passes.get(PASS - 1).map_or(0, |p| p.candidates),
            &pct(idd.compute_imbalance()),
        ]);
    }
    table
}

/// Default sweep (paper: 1.3M → 26.1M, 1:1000 here to keep the largest
/// DD-free run quick).
pub fn default_transactions() -> Vec<usize> {
    vec![1300, 2600, 5200, 13_000, 26_000]
}
