//! Ablations of the design knobs the paper (and our DESIGN.md) call out:
//!
//! 1. **Hash-tree shape** — Section IV notes "the desired value of `S`
//!    can be obtained by adjusting the branching factor": wider fan-out
//!    (and smaller leaves) means more, emptier leaves — more traversal,
//!    fewer per-leaf comparisons; narrow fan-out saturates at depth `k`
//!    and the leaves balloon.
//! 2. **Page size** — the ring pipeline's granularity: pages too small pay
//!    per-message startup, pages too large lose compute/communication
//!    overlap (and the paper's finite-buffer idling appears).
//! 3. **Interconnect** — DD's naive all-to-all vs the topology it runs on;
//!    IDD's ring is neighbour-only and barely notices.

use crate::report::{ms, ratio, Table};
use crate::workloads;
use armine_core::apriori::{Apriori, AprioriParams};
use armine_core::hashtree::HashTreeParams;
use armine_mpsim::{MachineProfile, Topology};
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Ablation 1: hash-tree shape on the serial miner.
pub fn run_tree_shape() -> Table {
    let dataset = workloads::t15_i6(2000, 4040);
    let mut table = Table::new(
        "Ablation — hash-tree shape: branching and leaf capacity (serial, pass ≤ 3)",
        &[
            "tree shape",
            "avg S",
            "leaf visits/tx",
            "traversals/tx",
            "cand checks/tx",
        ],
    );
    for (branching, max_leaf) in [(4usize, 16usize), (8, 16), (16, 16), (64, 16), (64, 4)] {
        let params = AprioriParams::with_min_support(0.01)
            .tree(HashTreeParams {
                branching,
                max_leaf,
            })
            .max_k(3);
        let run = Apriori::new(params).mine(dataset.transactions());
        let stats = run.passes.last().map(|p| p.tree_stats).unwrap_or_default();
        let tx = stats.transactions.max(1) as f64;
        table.row(&[
            &format!("b={branching} leaf={max_leaf}"),
            &format!(
                "{:.1}",
                stats.candidate_checks as f64 / stats.distinct_leaf_visits.max(1) as f64
            ),
            &format!("{:.1}", stats.distinct_leaf_visits as f64 / tx),
            &format!("{:.1}", stats.traversal_steps as f64 / tx),
            &format!("{:.1}", stats.candidate_checks as f64 / tx),
        ]);
    }
    table
}

/// Ablation 2: ring-pipeline page size for IDD.
pub fn run_page_size() -> Table {
    let dataset = workloads::scaleup(8, 400, 4141);
    let miner = ParallelMiner::new(8);
    let mut table = Table::new(
        "Ablation — IDD ring-pipeline page size (P=8)",
        &["page size", "response ms", "messages", "MB moved"],
    );
    for page in [10usize, 50, 200, 1000, 4000] {
        let params = ParallelParams::with_min_support(0.01)
            .page_size(page)
            .max_k(3);
        let run = miner.mine(Algorithm::Idd, &dataset, &params);
        table.row(&[
            &page,
            &ms(run.response_time),
            &run.ranks.iter().map(|r| r.messages_sent).sum::<u64>(),
            &format!("{:.1}", run.total_bytes() as f64 / 1e6),
        ]);
    }
    table
}

/// Ablation 3: interconnect topology under DD vs IDD.
pub fn run_topology() -> Table {
    let dataset = workloads::scaleup(16, 250, 4242);
    let params = ParallelParams::with_min_support(0.012)
        .page_size(100)
        .max_k(3);
    // On the real T3E, computation dominates and topology is second-order
    // (cut-through routing; see store_forward = 0.05). This ablation asks
    // the counterfactual the paper's Section III-B argues from — a slow,
    // store-and-forward network — where DD's distance-spanning all-to-all
    // pays per hop and IDD's neighbour-only ring does not.
    let t3e = MachineProfile::cray_t3e();
    let machine = MachineProfile {
        store_forward: 1.0,
        t_w: t3e.t_w * 40.0, // ~7.5 MB/s links
        t_s: t3e.t_s * 4.0,
        ..t3e
    };
    let mut table = Table::new(
        "Ablation — topology on a slow store-and-forward network (P=16)",
        &["topology", "DD ms", "IDD ms", "DD/IDD"],
    );
    for (name, topo) in [
        ("fully-connected", Topology::FullyConnected),
        ("3-D torus", Topology::torus_for(16)),
        ("2-D mesh 4x4", Topology::Mesh2D { rows: 4, cols: 4 }),
        ("ring", Topology::Ring),
        ("hypercube", Topology::Hypercube),
    ] {
        let miner = ParallelMiner::new(16)
            .topology(topo)
            .machine(machine.clone());
        let dd = miner.mine(Algorithm::Dd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        table.row(&[
            &name,
            &ms(dd.response_time),
            &ms(idd.response_time),
            &ratio(dd.response_time / idd.response_time),
        ]);
    }
    table
}
