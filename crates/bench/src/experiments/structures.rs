//! Candidate-structure comparison: hash tree vs candidate trie vs the
//! vertical (tidlist) counter behind the
//! [`CandidateCounter`](armine_core::counter::CandidateCounter) seam.
//!
//! The paper counts candidates with Agrawal's hash tree; a prefix trie
//! with a merge-intersect walk is the main alternative in the literature
//! (Borgelt's Apriori, FP-growth's predecessors), and Eclat-style vertical
//! counting — per-item TID bitmaps intersected with AND/popcount — is the
//! other classic layout (Zaki et al.). All three backends produce
//! identical counts — this experiment asks what each *pays*: virtual
//! response time under the T3E cost model plus the raw op-count ledgers
//! (traversal steps, leaf/node visits, candidate membership checks,
//! intersection words) that drive it. Run on a replicated-candidates
//! formulation (CD) and a partitioned one (IDD, where the trie prunes
//! whole subtrees through the ownership bitmap) at P ∈ {1, 16, 64}.
//!
//! A second, native-backend measurement times each backend's counting
//! phase for real: CD at P=1 hands the counter the whole database as one
//! batch — the vertical layout's winning regime, since it pays one
//! pivot per batch and then one AND+popcount per candidate. Both slices
//! land in `experiments/BENCH_structures.json`.
//!
//! Knob (environment): `ARMINE_STRUCTURES_N` overrides the native
//! measurement's transaction count (default 20 000).

use crate::report::{ms, secs, write_bench_json, Table};
use crate::workloads;
use armine_core::counter::{CounterBackend, CounterStats};
use armine_metrics::json::{BenchDocument, JsonValue};
use armine_metrics::{names, Labels, MetricShard};
use armine_mpsim::ExecBackend;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Minimum support fraction for both slices.
pub const MIN_SUPPORT: f64 = 0.01;
/// Deepest pass.
pub const MAX_K: usize = 4;
/// Default native-measurement transactions (override with
/// `ARMINE_STRUCTURES_N`).
pub const NATIVE_TRANSACTIONS: usize = 20_000;
/// Sim-slice transactions (small: the virtual clock does the scaling).
pub const SIM_TRANSACTIONS: usize = 3200;

/// One (algorithm, counter backend, P) sim-backend data point.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// `Algorithm::name()`.
    pub algorithm: &'static str,
    /// Counting-backend name.
    pub counter: &'static str,
    /// Processor count.
    pub procs: usize,
    /// Virtual response time (seconds).
    pub response_s: f64,
    /// Work ledger summed over all passes and ranks.
    pub stats: CounterStats,
    /// Frequent itemsets mined (backend-invariant).
    pub frequent: usize,
}

/// One counter backend's native (wall-clock) measurement: CD at P=1, the
/// whole database as a single counting batch.
#[derive(Debug, Clone)]
pub struct NativePoint {
    /// Counting-backend name.
    pub counter: &'static str,
    /// Measured wall seconds attributed to candidate counting.
    pub counting_s: f64,
    /// Measured wall seconds for the whole run.
    pub total_s: f64,
    /// Frequent itemsets mined (backend-invariant).
    pub frequent: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs the sim-backend sweep: both algorithms, all three counting
/// backends, P ∈ {1, 16, 64}.
pub fn measure_sim() -> Vec<SimPoint> {
    let dataset = workloads::t10_i4(SIM_TRANSACTIONS, 33);
    let mut points = Vec::new();
    for algorithm in [Algorithm::Cd, Algorithm::Idd] {
        for backend in CounterBackend::ALL {
            for procs in [1usize, 16, 64] {
                let params = ParallelParams::with_min_support(MIN_SUPPORT)
                    .page_size(100)
                    .max_k(MAX_K)
                    .counter(backend);
                let run = ParallelMiner::new(procs).mine(algorithm, &dataset, &params);
                let stats = run
                    .passes
                    .iter()
                    .fold(CounterStats::default(), |acc, p| acc.merged(&p.tree_stats));
                points.push(SimPoint {
                    algorithm: run.algorithm,
                    counter: backend.name(),
                    procs,
                    response_s: run.response_time,
                    stats,
                    frequent: run.frequent.len(),
                });
            }
        }
    }
    points
}

/// Times each backend's counting phase for real: CD at P=1 on the native
/// execution backend counts the entire database as one batch, so the
/// measured [`WallTimings::counting`](armine_mpsim::WallTimings) isolates
/// the structure's own cost.
pub fn measure_native(n: usize) -> Vec<NativePoint> {
    let dataset = workloads::t10_i4(n, 33);
    CounterBackend::ALL
        .into_iter()
        .map(|backend| {
            let params = ParallelParams::with_min_support(MIN_SUPPORT)
                .page_size(1000)
                .max_k(MAX_K)
                .counter(backend);
            let run = ParallelMiner::new(1).backend(ExecBackend::Native).mine(
                Algorithm::Cd,
                &dataset,
                &params,
            );
            NativePoint {
                counter: backend.name(),
                counting_s: run.wall[0].counting,
                total_s: run.wall[0].total,
                frequent: run.frequent.len(),
            }
        })
        .collect()
}

/// Renders the sim sweep as the comparison table.
pub fn sim_table(points: &[SimPoint]) -> Table {
    let mut table = Table::new(
        "Counting structures — hash tree vs trie vs vertical (T10.I4, N=3200)",
        &[
            "algorithm",
            "backend",
            "procs",
            "response ms",
            "traversal steps",
            "node visits",
            "cand checks",
            "isect words",
            "frequent",
        ],
    );
    for p in points {
        table.row(&[
            &p.algorithm,
            &p.counter,
            &p.procs,
            &ms(p.response_s),
            &p.stats.traversal_steps,
            &p.stats.distinct_leaf_visits,
            &p.stats.candidate_checks,
            &p.stats.intersection_words,
            &p.frequent,
        ]);
    }
    table
}

/// Renders the native measurement as a table.
pub fn native_table(n: usize, points: &[NativePoint]) -> Table {
    let mut table = Table::new(
        &format!("Native counting time — CD, P=1, one batch (T10.I4, N={n})"),
        &["backend", "counting s", "total s", "frequent"],
    );
    for p in points {
        table.row(&[
            &p.counter,
            &secs(p.counting_s),
            &secs(p.total_s),
            &p.frequent,
        ]);
    }
    table
}

/// Runs the sim structure comparison and returns the table (the
/// historical entry point; `exp_structures` also runs the native slice
/// and writes the JSON via [`run_full`]).
pub fn run() -> Table {
    sim_table(&measure_sim())
}

/// Runs both slices, writes `experiments/BENCH_structures.json`, and
/// returns the two tables (sim sweep, native counting times).
pub fn run_full() -> (Table, Table) {
    let n = env_usize("ARMINE_STRUCTURES_N", NATIVE_TRANSACTIONS);
    let sim = measure_sim();
    let native = measure_native(n);
    match write_json(n, &sim, &native) {
        Ok(path) => println!("(json: {})", path.display()),
        Err(e) => eprintln!("(json write failed: {e})"),
    }
    (sim_table(&sim), native_table(n, &native))
}

/// Registry-snapshot JSON: sim points land as the seven counting-ledger
/// counters plus a response gauge and a frequent-itemsets counter under
/// `{algorithm, counter, procs, backend="sim"}`; native points as
/// wall-clock counting/total gauges under
/// `{algorithm="CD", counter, procs="1", backend="native"}`.
fn write_json(
    n: usize,
    sim: &[SimPoint],
    native: &[NativePoint],
) -> std::io::Result<std::path::PathBuf> {
    let mut shard = MetricShard::new();
    for p in sim {
        let labels = Labels::new()
            .with("algorithm", p.algorithm)
            .with("counter", p.counter)
            .with("procs", p.procs)
            .with("backend", "sim");
        shard.set_gauge(names::RUN_RESPONSE_SECONDS, labels.clone(), p.response_s);
        shard.incr(names::RUN_FREQUENT, labels.clone(), p.frequent as u64);
        for (field, value) in p.stats.named_fields() {
            shard.incr(&names::counting(field), labels.clone(), value);
        }
    }
    for p in native {
        let labels = Labels::new()
            .with("algorithm", "CD")
            .with("counter", p.counter)
            .with("procs", 1)
            .with("backend", "native");
        shard.set_gauge(&names::wall_time("counting"), labels.clone(), p.counting_s);
        shard.set_gauge(&names::wall_time("total"), labels.clone(), p.total_s);
        shard.incr(names::RUN_FREQUENT, labels, p.frequent as u64);
    }
    let doc = BenchDocument::new("counting_structures", shard.snapshot(&Labels::new()))
        .with_context("workload", JsonValue::Str("T10.I4".into()))
        .with_context("min_support", JsonValue::Float(MIN_SUPPORT))
        .with_context("max_k", JsonValue::UInt(MAX_K as u64))
        .with_context("sim_transactions", JsonValue::UInt(SIM_TRANSACTIONS as u64))
        .with_context("native_transactions", JsonValue::UInt(n as u64));
    write_bench_json("BENCH_structures", &doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_frequent_counts() {
        let points = measure_sim();
        let table = sim_table(&points);
        assert_eq!(table.len(), 18, "2 algorithms x 3 backends x 3 P values");
        // The "frequent" column must not depend on backend, P, or algorithm.
        let frequent: Vec<&str> = table.rows().iter().map(|r| r[8].as_str()).collect();
        assert!(
            frequent.iter().all(|f| *f == frequent[0]),
            "frequent counts diverged: {frequent:?}"
        );
        // Only the vertical backend accrues intersection words; the
        // horizontal backends must report zero so the default-backend
        // virtual-time fingerprints stay untouched.
        for p in &points {
            if p.counter == "vertical" {
                assert!(p.stats.intersection_words > 0, "{p:?}");
            } else {
                assert_eq!(p.stats.intersection_words, 0, "{p:?}");
            }
        }
    }

    #[test]
    fn native_slice_measures_all_backends_and_writes_json() {
        crate::report::use_scratch_experiments_dir();
        let points = measure_native(400);
        assert_eq!(points.len(), CounterBackend::ALL.len());
        let frequent: Vec<usize> = points.iter().map(|p| p.frequent).collect();
        assert!(frequent.iter().all(|f| *f == frequent[0]), "{frequent:?}");
        for p in &points {
            assert!(p.counting_s >= 0.0 && p.total_s > 0.0, "{p:?}");
        }
        let sim = measure_sim();
        let path = write_json(400, &sim, &points).unwrap();
        let json = std::fs::read_to_string(path).unwrap();
        let doc = BenchDocument::parse(&json).unwrap();
        assert_eq!(doc.benchmark, "counting_structures");
        // Native slice: one wall-clock counting gauge per counter backend.
        let native_series = doc
            .snapshot
            .select(&names::wall_time("counting"), &[("backend", "native")])
            .count();
        assert_eq!(native_series, CounterBackend::ALL.len());
        // Sim slice: the vertical backend's intersection-word ledger made
        // it into the snapshot with exact values.
        let vertical_words = doc.snapshot.counter_sum(
            &names::counting("intersection_words"),
            &[("counter", "vertical"), ("backend", "sim")],
        );
        let expected: u64 = sim
            .iter()
            .filter(|p| p.counter == "vertical")
            .map(|p| p.stats.intersection_words)
            .sum();
        assert_eq!(vertical_words, expected);
        assert!(vertical_words > 0);
    }
}
