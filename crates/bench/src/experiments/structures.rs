//! Candidate-structure comparison: hash tree vs candidate trie behind the
//! [`CandidateCounter`](armine_core::counter::CandidateCounter) seam.
//!
//! The paper counts candidates with Agrawal's hash tree; a prefix trie
//! with a merge-intersect walk is the main alternative in the literature
//! (Borgelt's Apriori, FP-growth's predecessors). Both backends produce
//! identical counts — this experiment asks what each *pays*: virtual
//! response time under the T3E cost model plus the raw op-count ledgers
//! (traversal steps, leaf/node visits, candidate membership checks) that
//! drive it. Run on a replicated-candidates formulation (CD) and a
//! partitioned one (IDD, where the trie prunes whole subtrees through the
//! ownership bitmap) at P ∈ {1, 16, 64}.

use crate::report::Table;
use crate::workloads;
use armine_core::counter::CounterBackend;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Runs the structure comparison and returns the table.
pub fn run() -> Table {
    let dataset = workloads::t10_i4(3200, 33);
    let mut table = Table::new(
        "Counting structures — hash tree vs candidate trie (T10.I4, N=3200)",
        &[
            "algorithm",
            "backend",
            "procs",
            "response ms",
            "traversal steps",
            "node visits",
            "cand checks",
            "frequent",
        ],
    );
    for algorithm in [Algorithm::Cd, Algorithm::Idd] {
        for backend in CounterBackend::ALL {
            for procs in [1usize, 16, 64] {
                let params = ParallelParams::with_min_support(0.01)
                    .page_size(100)
                    .max_k(4)
                    .counter(backend);
                let run = ParallelMiner::new(procs).mine(algorithm, &dataset, &params);
                let stats = run
                    .passes
                    .iter()
                    .fold(armine_core::counter::CounterStats::default(), |acc, p| {
                        acc.merged(&p.tree_stats)
                    });
                table.row(&[
                    &run.algorithm,
                    &backend.name(),
                    &procs,
                    &format!("{:.3}", run.response_time * 1e3),
                    &stats.traversal_steps,
                    &stats.distinct_leaf_visits,
                    &stats.candidate_checks,
                    &run.frequent.len(),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_frequent_counts() {
        let table = run();
        assert_eq!(table.len(), 12, "2 algorithms x 2 backends x 3 P values");
        // The "frequent" column must not depend on backend, P, or algorithm.
        let frequent: Vec<&str> = table.rows().iter().map(|r| r[7].as_str()).collect();
        assert!(
            frequent.iter().all(|f| *f == frequent[0]),
            "frequent counts diverged: {frequent:?}"
        );
    }
}
