//! Section III-C's load-balance measurement: how candidate-count
//! imbalance from the bin-packing partitioner translates into
//! computation-time imbalance in IDD (paper quotes: 1.3% candidates →
//! 5.4% time at P=4; 2.3% → 9.4% at P=8 — the work imbalance is larger
//! because the packing balances candidate *counts*, not the
//! transaction-dependent traversal work).

use crate::report::{pct, Table};
use crate::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Transactions per processor.
pub const PER_PROC: usize = 400;
/// Minimum support fraction.
pub const MIN_SUPPORT: f64 = 0.01;

/// Runs IDD at each processor count and reports both imbalance metrics,
/// with and without the two-level split refinement.
pub fn run(procs_list: &[usize]) -> Table {
    let mut table = Table::new(
        "Section III-C — IDD imbalance: candidates vs computation time",
        &[
            "P",
            "cand imbalance",
            "time imbalance",
            "cand (2-level)",
            "time (2-level)",
        ],
    );
    for &procs in procs_list {
        let dataset = workloads::scaleup(procs, PER_PROC, 33);
        let base = ParallelParams::with_min_support(MIN_SUPPORT).page_size(100);
        let miner = ParallelMiner::new(procs);

        let single = miner.mine(Algorithm::Idd, &dataset, &base);
        let cand_single = worst_candidate_imbalance(&single);
        let split = miner.mine(
            Algorithm::Idd,
            &dataset,
            &base.split_threshold(splitting(procs)),
        );
        let cand_split = worst_candidate_imbalance(&split);

        table.row(&[
            &procs,
            &pct(cand_single),
            &pct(single.compute_imbalance()),
            &pct(cand_split),
            &pct(split.compute_imbalance()),
        ]);
    }
    table
}

/// Split threshold for the two-level refinement: a first item holding more
/// than ~2× a fair share of an average pass gets split by second item.
fn splitting(procs: usize) -> u64 {
    (400 / procs.max(1)).max(4) as u64
}

/// Candidate imbalance of the *dominant* pass (largest `|C_k|`) — tail
/// passes with a handful of candidates are trivially imbalanced and
/// irrelevant to runtime.
fn worst_candidate_imbalance(run: &armine_parallel::ParallelRun) -> f64 {
    run.passes
        .iter()
        .max_by_key(|p| p.candidates)
        .map_or(0.0, |p| p.candidate_imbalance)
}

/// Default sweep (paper quotes P = 4 and 8).
pub fn default_procs() -> Vec<usize> {
    vec![4, 8, 16]
}
