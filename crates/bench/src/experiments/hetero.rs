//! Heterogeneous-cluster experiment: what a mix of fast and slow
//! processors costs each placement policy.
//!
//! The paper's machines are homogeneous, so its formulations split work
//! evenly. On a cluster where some ranks run at a fraction of the others'
//! speed, an even split makes every pass wait for the slowest rank. This
//! sweep measures that penalty and how much of it the adaptive placement
//! seam claws back:
//!
//! 1. **Cluster mixes** — 25% and 50% of the ranks slowed 2–8×, at P=16
//!    on the simulated Cray T3E. Each mix runs CD (replicated candidates,
//!    page re-balancing moves transactions toward fast ranks) and IDD
//!    (partitioned candidates, capacity-weighted bin packing shrinks the
//!    slow ranks' candidate shares) under both placement policies.
//! 2. **Native validation** — one skewed mix at a host-sized P on the
//!    native backend, where slow ranks really sleep out their handicap
//!    and the adaptive gain is measured on the wall clock.
//!
//! Every cell mines the identical frequent lattice (asserted): placement
//! moves work, never answers. The sweep is snapshotted to
//! `experiments/BENCH_hetero.json`; the cluster mix and placement policy
//! are encoded in the `scenario` label (`"50% slow x4 / adaptive"`).

use crate::report::{ms, signed_pct, write_bench_json, Table};
use crate::workloads;
use armine_metrics::json::{BenchDocument, JsonValue};
use armine_metrics::{names, Labels, MetricShard};
use armine_mpsim::{ClusterProfile, ExecBackend, MachineProfile};
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams, ParallelRun, PlacementPolicy};

/// Processor count for the simulated sweep.
pub const PROCS: usize = 16;
/// Processor count for the native validation — small enough that ranks
/// map one-per-core on commodity hosts.
const NATIVE_PROCS: usize = 4;
/// Default transactions (override with `ARMINE_HETERO_N`).
pub const DEFAULT_TRANSACTIONS: usize = 8_000;

fn params() -> ParallelParams {
    ParallelParams::with_min_support(0.01)
        .page_size(100)
        .max_k(3)
}

/// The cluster mixes the sweep climbs: `slow` of [`PROCS`] ranks running
/// at `1/factor` speed. The slowed ranks are the highest-numbered ones —
/// which ranks are slow is irrelevant to both policies, only how many
/// and by how much.
fn mixes() -> Vec<(String, ClusterProfile)> {
    let base = MachineProfile::cray_t3e();
    let mut out = vec![("uniform".to_owned(), ClusterProfile::uniform(base.clone()))];
    for &(slow, factor) in &[(4usize, 2.0f64), (4, 4.0), (8, 2.0), (8, 8.0)] {
        let mut cluster = ClusterProfile::uniform(base.clone());
        for i in 0..slow {
            cluster = cluster.speed(PROCS - 1 - i, 1.0 / factor);
        }
        out.push((format!("{}% slow x{factor}", slow * 100 / PROCS), cluster));
    }
    out
}

/// One (mix, algorithm, placement) cell of the sweep.
#[derive(Debug, Clone)]
pub struct HeteroPoint {
    /// Mix + placement, e.g. `"50% slow x4 / adaptive"` — the `scenario`
    /// label in the JSON.
    pub scenario: String,
    /// Algorithm display name (`"CD"`, `"IDD"`).
    pub algorithm: String,
    /// `ExecBackend::name()` the cell ran on.
    pub backend: &'static str,
    /// Rank count of the cell.
    pub procs: usize,
    /// Response time in seconds (virtual on sim, wall-clock on native).
    pub response_s: f64,
    /// Response time vs the same mix's **static** run, percent — negative
    /// on adaptive rows is the re-balancing gain; 0 on static rows.
    pub vs_static_pct: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn lattice_len(run: &ParallelRun) -> usize {
    run.frequent.iter().count()
}

/// The simulated sweep at P=16: every mix × {CD, IDD} × both placements.
/// Asserts lattice equality across all cells and that adaptive placement
/// beats static on the most skewed mix for each algorithm.
pub fn measure(n: usize) -> Vec<HeteroPoint> {
    let dataset = workloads::t15_i6(n, 7272);
    let mixes = mixes();
    let mut points = Vec::new();
    let mut reference: Option<usize> = None;
    for algorithm in [Algorithm::Cd, Algorithm::Idd] {
        let name = algorithm.name();
        let mut best_gain = f64::INFINITY;
        for (mix, cluster) in &mixes {
            let miner = ParallelMiner::new(PROCS).cluster(cluster.clone());
            let mut static_s = 0.0;
            for placement in PlacementPolicy::ALL {
                let run = miner.mine(algorithm, &dataset, &params().placement(placement));
                let want = *reference.get_or_insert_with(|| lattice_len(&run));
                assert_eq!(
                    lattice_len(&run),
                    want,
                    "{name} on {mix} under {placement} diverged"
                );
                if placement == PlacementPolicy::Static {
                    static_s = run.response_time;
                }
                let vs_static_pct = (run.response_time / static_s - 1.0) * 100.0;
                if placement == PlacementPolicy::Adaptive && *mix != "uniform" {
                    best_gain = best_gain.min(vs_static_pct);
                }
                points.push(HeteroPoint {
                    scenario: format!("{mix} / {placement}"),
                    algorithm: name.to_owned(),
                    backend: ExecBackend::Sim.name(),
                    procs: PROCS,
                    response_s: run.response_time,
                    vs_static_pct,
                });
            }
        }
        assert!(
            best_gain < 0.0,
            "adaptive placement should beat static on at least one skewed mix \
             for {name} at P={PROCS}, best was {best_gain:+.1}%"
        );
    }
    points
}

/// The native validation: one skewed mix at P=4, both placements, CD.
/// Slow ranks sleep out their handicap for real, so the response times
/// are measured wall clock — reported, not asserted (host noise).
pub fn measure_native(n: usize) -> Vec<HeteroPoint> {
    let dataset = workloads::t15_i6(n, 7272);
    let mix = "25% slow x4";
    let cluster = ClusterProfile::uniform(MachineProfile::cray_t3e()).speed(NATIVE_PROCS - 1, 0.25);
    let miner = ParallelMiner::new(NATIVE_PROCS)
        .cluster(cluster)
        .backend(ExecBackend::Native);
    let mut points = Vec::new();
    let mut static_s = 0.0;
    let mut reference: Option<usize> = None;
    for placement in PlacementPolicy::ALL {
        let run = miner.mine(Algorithm::Cd, &dataset, &params().placement(placement));
        let want = *reference.get_or_insert_with(|| lattice_len(&run));
        assert_eq!(lattice_len(&run), want, "native {placement} diverged");
        if placement == PlacementPolicy::Static {
            static_s = run.response_time;
        }
        points.push(HeteroPoint {
            scenario: format!("{mix} / {placement}"),
            algorithm: Algorithm::Cd.name().to_owned(),
            backend: ExecBackend::Native.name(),
            procs: NATIVE_PROCS,
            response_s: run.response_time,
            vs_static_pct: (run.response_time / static_s - 1.0) * 100.0,
        });
    }
    points
}

/// Runs both sweeps, writes `experiments/BENCH_hetero.json`, and returns
/// the table.
pub fn run() -> Table {
    let n = env_usize("ARMINE_HETERO_N", DEFAULT_TRANSACTIONS);
    let mut points = measure(n);
    points.extend(measure_native(n));
    match write_json(n, &points) {
        Ok(path) => println!("(json: {})", path.display()),
        Err(e) => eprintln!("(json write failed: {e})"),
    }
    let mut table = Table::new(
        "Heterogeneous clusters — static vs adaptive placement (sim P=16, native P=4)",
        &[
            "cluster / placement",
            "algorithm",
            "backend",
            "procs",
            "response ms",
            "vs static",
        ],
    );
    for p in &points {
        table.row(&[
            &p.scenario,
            &p.algorithm,
            &p.backend,
            &p.procs,
            &ms(p.response_s),
            &signed_pct(p.vs_static_pct),
        ]);
    }
    table
}

/// Registry-snapshot JSON: each cell lands as a response gauge and its
/// gain-vs-static gauge under `{scenario, algorithm, backend, procs}` —
/// the placement policy rides the `scenario` label, so static vs adaptive
/// is a label join on the mix prefix.
fn write_json(n: usize, points: &[HeteroPoint]) -> std::io::Result<std::path::PathBuf> {
    let mut shard = MetricShard::new();
    for p in points {
        let labels = Labels::new()
            .with("scenario", p.scenario.clone())
            .with("algorithm", p.algorithm.clone())
            .with("backend", p.backend)
            .with("procs", p.procs);
        shard.set_gauge(names::RUN_RESPONSE_SECONDS, labels.clone(), p.response_s);
        shard.set_gauge(names::RUN_OVERHEAD_PCT, labels, p.vs_static_pct);
    }
    let doc = BenchDocument::new("hetero_placement", shard.snapshot(&Labels::new()))
        .with_context("workload", JsonValue::Str("T15.I6".into()))
        .with_context("transactions", JsonValue::UInt(n as u64));
    write_bench_json("BENCH_hetero", &doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_sweep_emits_all_cells_and_the_json() {
        crate::report::use_scratch_experiments_dir();
        std::env::set_var("ARMINE_HETERO_N", "600");
        let table = run();
        std::env::remove_var("ARMINE_HETERO_N");
        // Five mixes x two algorithms x two placements, plus the native
        // pair.
        assert_eq!(table.len(), 22);
        let json =
            std::fs::read_to_string(crate::report::experiments_dir().join("BENCH_hetero.json"))
                .unwrap();
        let doc = BenchDocument::parse(&json).unwrap();
        assert_eq!(doc.benchmark, "hetero_placement");
        // Both placements of the most skewed mix made it into the
        // snapshot, and adaptive beat static there (the gauge is the
        // adaptive row's signed gain).
        let scenarios = doc.snapshot.label_values("scenario");
        assert!(
            scenarios.iter().any(|s| s == "50% slow x8 / adaptive"),
            "{scenarios:?}"
        );
        assert!(
            scenarios.iter().any(|s| s == "50% slow x8 / static"),
            "{scenarios:?}"
        );
    }
}
