//! Equations 1–2 — the expected-distinct-leaves model `V(i, j)`, checked
//! three ways: the closed form, a Monte-Carlo balls-into-bins estimate,
//! and the *measured* distinct-leaf counters of a real hash tree
//! processing real transactions.

use crate::report::Table;
use armine_core::hashtree::{HashTree, HashTreeParams, OwnershipFilter};
use armine_core::model::expected_distinct_leaves;
use armine_core::{Item, ItemSet, Transaction};
use rand::prelude::*;

/// Runs the three-way comparison over a grid of (i, j).
pub fn run() -> Table {
    let mut table = Table::new(
        "Equation 1 — V(i,j): expected distinct leaves visited",
        &[
            "i (potential cands)",
            "j (leaves)",
            "closed form",
            "Monte-Carlo",
            "limit i",
        ],
    );
    let mut rng = StdRng::seed_from_u64(2020);
    for &(i, j) in &[
        (5usize, 100usize),
        (20, 100),
        (100, 100),
        (50, 10),
        (200, 1000),
        (455, 43750),
    ] {
        let closed = expected_distinct_leaves(i as f64, j as f64);
        let mc = monte_carlo(i, j, 3000, &mut rng);
        table.row(&[&i, &j, &format!("{closed:.2}"), &format!("{mc:.2}"), &i]);
    }
    table
}

/// Measured validation: build a tree over random candidates, push random
/// transactions through it, and compare the measured average distinct-leaf
/// visits against `V(C, L)` computed from the *actual* tree shape.
/// Returns `(measured, predicted)`.
///
/// The parameters matter: Equation 1 models the `C` potential candidates
/// of a transaction as **independent uniform probes** into the `L` leaves,
/// which a real hash tree only approximates when
///
/// 1. the tree is split all the way to depth `k` (otherwise probes that
///    share a path prefix collapse into one shallow leaf),
/// 2. nearly every depth-`k` cell is occupied (a probe whose cell holds no
///    candidates visits nothing, which the model does not account for —
///    so candidates must be dense: well above `branching^k`), and
/// 3. within-transaction hash collisions are rare (two subsets differing
///    in one item collide with probability `1/branching`, not `1/L`, so
///    `branching` must be large relative to `|t|`).
///
/// An earlier revision used 60 items with branching 8, where condition 3
/// fails badly: the 220 3-subsets of a 12-item transaction reach only
/// ~110 distinct root-to-leaf paths (exactly the number of distinct hash
/// signatures — verified against an independent signature count), a 38%
/// structural bias that no amount of sampling averages away.
pub fn measured_vs_predicted(seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = 3;
    let num_items = 600u32;
    // Dense random candidate set: ~450k distinct 3-sets over 48^3 = 110592
    // cells (occupancy λ ≈ 4 → ~98% of cells hold a candidate), with
    // max_leaf low enough that every interior level splits to depth k.
    let mut ids: Vec<u32> = (0..num_items).collect();
    let mut cands: Vec<ItemSet> = (0..450_000)
        .map(|_| {
            ids.partial_shuffle(&mut rng, k);
            ItemSet::new(ids[..k].iter().map(|&i| Item(i)).collect())
        })
        .collect();
    cands.sort();
    cands.dedup();
    let mut tree = HashTree::build(
        k,
        HashTreeParams {
            branching: 48,
            max_leaf: 4,
        },
        cands,
    );
    tree.reset_stats();
    let leaves = tree.num_leaves() as f64;
    // Fixed-length random transactions so C is exact.
    let t_len = 12usize;
    let transactions: Vec<Transaction> = (0..400)
        .map(|tid| {
            ids.partial_shuffle(&mut rng, t_len);
            Transaction::new(tid, ids[..t_len].iter().map(|&i| Item(i)).collect())
        })
        .collect();
    tree.count_all(&transactions, &OwnershipFilter::all());
    let measured = tree.stats().avg_leaf_visits_per_transaction();
    let c = armine_core::transaction::binomial(t_len as u64, k as u64) as f64;
    let predicted = expected_distinct_leaves(c, leaves);
    (measured, predicted)
}

fn monte_carlo(i: usize, j: usize, trials: usize, rng: &mut StdRng) -> f64 {
    let mut seen = vec![0u32; j];
    let mut total = 0usize;
    for t in 1..=trials as u32 {
        for _ in 0..i {
            seen[rng.gen_range(0..j)] = t;
        }
        total += seen.iter().filter(|&&s| s == t).count();
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_tree_visits_track_the_model() {
        // In the regime where Equation 1's independence assumptions hold
        // (see `measured_vs_predicted`), a real tree over uniform random
        // candidates/transactions lands within ~13% across seeds; assert
        // 20% to leave room for realization noise without accepting the
        // ~38% bias of a collision-dominated configuration.
        let (measured, predicted) = measured_vs_predicted(7);
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel < 0.20,
            "measured {measured:.2} vs predicted {predicted:.2} ({:.0}% off)",
            rel * 100.0
        );
    }
}
