//! Table II — HD's dynamic processor-grid configuration per pass
//! (paper: 64 processors, m = 50K; configurations 8×8, 64×1, 4×16, 2×32,
//! 2×32, 1×64 as the candidate count rises then falls across passes).

use crate::report::Table;
use crate::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Processors (paper: 64).
pub const PROCS: usize = 64;
/// Group threshold `m` (paper: 50K, scaled 1:100).
pub const GROUP_THRESHOLD: usize = 500;
/// Transactions.
pub const NUM_TRANSACTIONS: usize = 6400;
/// Minimum support fraction — low enough to produce the rising-then-
/// falling candidate profile of a long run.
pub const MIN_SUPPORT: f64 = 0.008;

/// Runs HD once and reports the chosen grid per pass.
pub fn run() -> Table {
    let dataset = workloads::t15_i6(NUM_TRANSACTIONS, 22);
    let params = ParallelParams::with_min_support(MIN_SUPPORT).page_size(100);
    let run = ParallelMiner::new(PROCS).mine(
        Algorithm::Hd {
            group_threshold: GROUP_THRESHOLD,
        },
        &dataset,
        &params,
    );
    let mut table = Table::new(
        &format!(
            "Table II — HD grid per pass (P={PROCS}, m={GROUP_THRESHOLD}); G×(P/G): G=P is IDD, G=1 is CD"
        ),
        &["pass", "candidates", "configuration", "frequent"],
    );
    for pass in &run.passes {
        table.row(&[
            &pass.k,
            &pass.candidates,
            &format!("{}x{}", pass.grid.0, pass.grid.1),
            &pass.frequent,
        ]);
    }
    table
}
