//! Figure 15 — candidate scaling: runtime vs M with N and P fixed
//! (paper: M = 0.7M → 8M via lower support, N = 1.3M, P = 64; T3E memory
//! held 0.7M candidates, so CD partitions beyond that).
//!
//! Expected shape: CD grows ~O(M) (replicated tree build + partitioned
//! multi-scan); IDD starts worse (imbalance at small M/P) but grows only
//! ~O(M/P) and crosses below CD; HD tracks the minimum and becomes
//! exactly IDD once `G = P` (paper: M ≥ 3.3M → 64×1).

use crate::report::{ms, Table};
use crate::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Processors (paper: 64).
pub const PROCS: usize = 64;
/// Transactions (paper: 1.3M).
pub const NUM_TRANSACTIONS: usize = 2600;
/// Per-processor capacity: CD partitions its tree beyond this (paper:
/// 0.7M).
pub const MEMORY_CAPACITY: usize = 25_000;
/// HD group threshold (scaled from the paper's regime).
pub const HD_THRESHOLD: usize = 1200;

/// Runs the support sweep; lower support grows M.
pub fn run(supports: &[f64]) -> Table {
    let mut table = Table::new(
        "Figure 15 — response time (ms) vs M (P=64, N fixed)",
        &[
            "minsup",
            "M(total)",
            "CD",
            "IDD",
            "HD",
            "HD grid(k=3)",
            "CD scans",
        ],
    );
    let dataset = workloads::t15_i6_items(NUM_TRANSACTIONS, 500, 1515);
    for &support in supports {
        let params = ParallelParams::with_min_support(support)
            .page_size(100)
            .memory_capacity(MEMORY_CAPACITY)
            .max_k(4);
        let miner = ParallelMiner::new(PROCS);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        let hd = miner.mine(
            Algorithm::Hd {
                group_threshold: HD_THRESHOLD,
            },
            &dataset,
            &params,
        );
        let m: usize = cd.passes.iter().map(|p| p.candidates).sum();
        let grid = hd.passes.get(2).map_or((0, 0), |p| p.grid);
        table.row(&[
            &format!("{:.2}%", support * 100.0),
            &m,
            &ms(cd.response_time),
            &ms(idd.response_time),
            &ms(hd.response_time),
            &format!("{}x{}", grid.0, grid.1),
            &cd.total_db_scans(),
        ]);
    }
    table
}

/// Default sweep, highest support (smallest M) first.
pub fn default_supports() -> Vec<f64> {
    vec![0.02, 0.015, 0.01, 0.0075, 0.005, 0.004]
}
