//! Native-vs-virtual speedup validation — the paper's Figure 13 exercise
//! run against our own hardware.
//!
//! Mines one large Quest dataset at several processor counts on both
//! execution backends: the sim backend predicts speedup on its virtual
//! clock (Cray T3E profile), the native backend measures real wall-clock
//! speedup on host threads. The two curves land side by side, and the raw
//! numbers are snapshotted to `experiments/BENCH_native.json` — the first
//! entry of the perf trajectory.
//!
//! Knobs (environment): `ARMINE_NATIVE_N` overrides the transaction count
//! (default 100 000), `ARMINE_NATIVE_MAXP` caps the processor sweep
//! (default `min(host cores, 8)`).

use crate::report::{experiments_dir, Table};
use crate::workloads;
use armine_mpsim::ExecBackend;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};
use std::io::Write;

/// Default transactions (override with `ARMINE_NATIVE_N`).
pub const NUM_TRANSACTIONS: usize = 100_000;
/// Minimum support fraction.
pub const MIN_SUPPORT: f64 = 0.01;
/// Deepest pass.
pub const MAX_K: usize = 4;

/// One (algorithm, P) measurement on both backends.
#[derive(Debug, Clone)]
pub struct NativePoint {
    /// `Algorithm::name()`.
    pub algorithm: &'static str,
    /// Processor count.
    pub procs: usize,
    /// Sim-backend virtual response time (seconds).
    pub virtual_s: f64,
    /// Native-backend measured response time (seconds).
    pub measured_s: f64,
    /// Virtual speedup vs the smallest P.
    pub virtual_speedup: f64,
    /// Measured speedup vs the smallest P.
    pub measured_speedup: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Processor counts to sweep: powers of two up to `min(host cores, 8)`
/// (capped so the native ranks stay one-per-core and the measured curve
/// is a real speedup, not oversubscription noise).
pub fn default_procs() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let cap = env_usize("ARMINE_NATIVE_MAXP", cores.min(8));
    let mut procs = vec![1];
    while procs.last().unwrap() * 2 <= cap {
        procs.push(procs.last().unwrap() * 2);
    }
    procs
}

/// Runs the sweep and returns the raw points (CD and IDD at each P).
pub fn measure(procs_list: &[usize]) -> Vec<NativePoint> {
    assert!(!procs_list.is_empty());
    let n = env_usize("ARMINE_NATIVE_N", NUM_TRANSACTIONS);
    let dataset = workloads::t15_i6(n, 4242);
    let params = ParallelParams::with_min_support(MIN_SUPPORT)
        .page_size(1000)
        .max_k(MAX_K);
    let mut points = Vec::new();
    for algorithm in [Algorithm::Cd, Algorithm::Idd] {
        let mut base: Option<(f64, f64, f64)> = None; // (P, virtual, measured)
        for &procs in procs_list {
            let run_on = |backend| {
                ParallelMiner::new(procs)
                    .backend(backend)
                    .mine(algorithm, &dataset, &params)
            };
            let virtual_s = run_on(ExecBackend::Sim).response_time;
            let measured_s = run_on(ExecBackend::Native).response_time;
            let (p0, v0, m0) = *base.get_or_insert((procs as f64, virtual_s, measured_s));
            points.push(NativePoint {
                algorithm: algorithm.name(),
                procs,
                virtual_s,
                measured_s,
                virtual_speedup: p0 * v0 / virtual_s,
                measured_speedup: p0 * m0 / measured_s,
            });
        }
    }
    points
}

/// Runs the sweep, writes `experiments/BENCH_native.json`, and returns
/// the comparison table.
pub fn run(procs_list: &[usize]) -> Table {
    let n = env_usize("ARMINE_NATIVE_N", NUM_TRANSACTIONS);
    let points = measure(procs_list);
    match write_json(n, &points) {
        Ok(path) => println!("(json: {})", path.display()),
        Err(e) => eprintln!("(json write failed: {e})"),
    }
    let mut table = Table::new(
        "Native vs virtual speedup (T15.I6, normalized to the smallest P)",
        &[
            "algo",
            "P",
            "virtual s",
            "measured s",
            "virtual speedup",
            "measured speedup",
        ],
    );
    for p in &points {
        table.row(&[
            &p.algorithm,
            &p.procs,
            &format!("{:.4}", p.virtual_s),
            &format!("{:.4}", p.measured_s),
            &format!("{:.2}", p.virtual_speedup),
            &format!("{:.2}", p.measured_speedup),
        ]);
    }
    table
}

/// Hand-written JSON snapshot (no serde in the tree): the machine-readable
/// perf-trajectory entry.
fn write_json(n: usize, points: &[NativePoint]) -> std::io::Result<std::path::PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_native.json");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"benchmark\": \"native_vs_virtual_speedup\",")?;
    writeln!(f, "  \"workload\": \"T15.I6\",")?;
    writeln!(f, "  \"transactions\": {n},")?;
    writeln!(f, "  \"min_support\": {MIN_SUPPORT},")?;
    writeln!(f, "  \"max_k\": {MAX_K},")?;
    writeln!(f, "  \"host_cores\": {cores},")?;
    writeln!(f, "  \"points\": [")?;
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"algorithm\": \"{}\", \"procs\": {}, \"virtual_s\": {:.6}, \
             \"measured_s\": {:.6}, \"virtual_speedup\": {:.3}, \"measured_speedup\": {:.3}}}{comma}",
            p.algorithm, p.procs, p.virtual_s, p.measured_s, p.virtual_speedup, p.measured_speedup
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_both_curves_and_the_json() {
        std::env::set_var("ARMINE_NATIVE_N", "400");
        let table = run(&[1, 2]);
        std::env::remove_var("ARMINE_NATIVE_N");
        // Two algorithms x two processor counts.
        assert_eq!(table.len(), 4);
        for row in table.rows() {
            let virtual_s: f64 = row[2].parse().unwrap();
            let measured_s: f64 = row[3].parse().unwrap();
            assert!(virtual_s > 0.0 && measured_s > 0.0, "{row:?}");
        }
        let json = std::fs::read_to_string(experiments_dir().join("BENCH_native.json")).unwrap();
        assert!(json.contains("\"benchmark\": \"native_vs_virtual_speedup\""));
        assert!(json.contains("\"measured_speedup\""));
    }

    #[test]
    fn default_procs_are_powers_of_two_from_one() {
        let procs = default_procs();
        assert_eq!(procs[0], 1);
        assert!(procs.windows(2).all(|w| w[1] == 2 * w[0]));
        assert!(*procs.last().unwrap() <= 8);
    }
}
