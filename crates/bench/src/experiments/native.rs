//! Native-vs-virtual speedup validation — the paper's Figure 13 exercise
//! run against our own hardware.
//!
//! Mines one large Quest dataset at several processor counts on both
//! execution backends: the sim backend predicts speedup on its virtual
//! clock (Cray T3E profile), the native backend measures real wall-clock
//! speedup on host threads. The two curves land side by side, and the raw
//! numbers are snapshotted to `experiments/BENCH_native.json` — the first
//! entry of the perf trajectory.
//!
//! Knobs (environment): `ARMINE_NATIVE_N` overrides the transaction count
//! (default 100 000), `ARMINE_NATIVE_MAXP` caps the processor sweep
//! (default `min(host cores, 8)`).

use crate::report::{ratio, secs, write_bench_json, Table};
use crate::workloads;
use armine_metrics::json::{BenchDocument, JsonValue};
use armine_metrics::{names, Labels, MetricShard};
use armine_mpsim::ExecBackend;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Default transactions (override with `ARMINE_NATIVE_N`).
pub const NUM_TRANSACTIONS: usize = 100_000;
/// Minimum support fraction.
pub const MIN_SUPPORT: f64 = 0.01;
/// Deepest pass.
pub const MAX_K: usize = 4;

/// One (algorithm, P) measurement on both backends.
#[derive(Debug, Clone)]
pub struct NativePoint {
    /// `Algorithm::name()`.
    pub algorithm: &'static str,
    /// Processor count.
    pub procs: usize,
    /// Sim-backend virtual response time (seconds).
    pub virtual_s: f64,
    /// Native-backend measured response time (seconds).
    pub measured_s: f64,
    /// Virtual speedup vs the smallest P.
    pub virtual_speedup: f64,
    /// Measured speedup vs the smallest P.
    pub measured_speedup: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Processor counts to sweep: powers of two up to `min(host cores, 8)`
/// (capped so the native ranks stay one-per-core and the measured curve
/// is a real speedup, not oversubscription noise).
pub fn default_procs() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let cap = env_usize("ARMINE_NATIVE_MAXP", cores.min(8));
    let mut procs = vec![1];
    while procs.last().unwrap() * 2 <= cap {
        procs.push(procs.last().unwrap() * 2);
    }
    procs
}

/// Runs the sweep and returns the raw points (CD and IDD at each P).
pub fn measure(procs_list: &[usize]) -> Vec<NativePoint> {
    assert!(!procs_list.is_empty());
    let n = env_usize("ARMINE_NATIVE_N", NUM_TRANSACTIONS);
    let dataset = workloads::t15_i6(n, 4242);
    let params = ParallelParams::with_min_support(MIN_SUPPORT)
        .page_size(1000)
        .max_k(MAX_K);
    let mut points = Vec::new();
    for algorithm in [Algorithm::Cd, Algorithm::Idd] {
        let mut base: Option<(f64, f64, f64)> = None; // (P, virtual, measured)
        for &procs in procs_list {
            let run_on = |backend| {
                ParallelMiner::new(procs)
                    .backend(backend)
                    .mine(algorithm, &dataset, &params)
            };
            let virtual_s = run_on(ExecBackend::Sim).response_time;
            let measured_s = run_on(ExecBackend::Native).response_time;
            let (p0, v0, m0) = *base.get_or_insert((procs as f64, virtual_s, measured_s));
            points.push(NativePoint {
                algorithm: algorithm.name(),
                procs,
                virtual_s,
                measured_s,
                virtual_speedup: p0 * v0 / virtual_s,
                measured_speedup: p0 * m0 / measured_s,
            });
        }
    }
    points
}

/// Runs the sweep, writes `experiments/BENCH_native.json`, and returns
/// the comparison table.
pub fn run(procs_list: &[usize]) -> Table {
    let n = env_usize("ARMINE_NATIVE_N", NUM_TRANSACTIONS);
    let points = measure(procs_list);
    match write_json(n, &points) {
        Ok(path) => println!("(json: {})", path.display()),
        Err(e) => eprintln!("(json write failed: {e})"),
    }
    let mut table = Table::new(
        "Native vs virtual speedup (T15.I6, normalized to the smallest P)",
        &[
            "algo",
            "P",
            "virtual s",
            "measured s",
            "virtual speedup",
            "measured speedup",
        ],
    );
    for p in &points {
        table.row(&[
            &p.algorithm,
            &p.procs,
            &secs(p.virtual_s),
            &secs(p.measured_s),
            &ratio(p.virtual_speedup),
            &ratio(p.measured_speedup),
        ]);
    }
    table
}

/// Registry-snapshot JSON: each point lands as a response-time gauge and
/// a speedup gauge labeled `{algorithm, procs, backend}`, so the
/// predicted-vs-measured comparison is a label join on `backend`.
fn write_json(n: usize, points: &[NativePoint]) -> std::io::Result<std::path::PathBuf> {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut shard = MetricShard::new();
    for p in points {
        let at = |backend: &str| {
            Labels::new()
                .with("algorithm", p.algorithm)
                .with("procs", p.procs)
                .with("backend", backend)
        };
        shard.set_gauge(names::RUN_RESPONSE_SECONDS, at("sim"), p.virtual_s);
        shard.set_gauge(names::RUN_RESPONSE_SECONDS, at("native"), p.measured_s);
        shard.set_gauge(names::RUN_SPEEDUP, at("sim"), p.virtual_speedup);
        shard.set_gauge(names::RUN_SPEEDUP, at("native"), p.measured_speedup);
    }
    let doc = BenchDocument::new("native_vs_virtual_speedup", shard.snapshot(&Labels::new()))
        .with_context("workload", JsonValue::Str("T15.I6".into()))
        .with_context("transactions", JsonValue::UInt(n as u64))
        .with_context("min_support", JsonValue::Float(MIN_SUPPORT))
        .with_context("max_k", JsonValue::UInt(MAX_K as u64))
        .with_context("host_cores", JsonValue::UInt(cores as u64));
    write_bench_json("BENCH_native", &doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_both_curves_and_the_json() {
        crate::report::use_scratch_experiments_dir();
        std::env::set_var("ARMINE_NATIVE_N", "400");
        let table = run(&[1, 2]);
        std::env::remove_var("ARMINE_NATIVE_N");
        // Two algorithms x two processor counts.
        assert_eq!(table.len(), 4);
        for row in table.rows() {
            let virtual_s: f64 = row[2].parse().unwrap();
            let measured_s: f64 = row[3].parse().unwrap();
            assert!(virtual_s > 0.0 && measured_s > 0.0, "{row:?}");
        }
        let json =
            std::fs::read_to_string(crate::report::experiments_dir().join("BENCH_native.json"))
                .unwrap();
        let doc = BenchDocument::parse(&json).unwrap();
        assert_eq!(doc.benchmark, "native_vs_virtual_speedup");
        // 2 algos x 2 P x 2 backends, one response gauge + one speedup gauge each.
        assert_eq!(doc.snapshot.len(), 16);
        let natives = doc
            .snapshot
            .select(names::RUN_SPEEDUP, &[("backend", "native")])
            .count();
        assert_eq!(natives, 4);
    }

    #[test]
    fn default_procs_are_powers_of_two_from_one() {
        let procs = default_procs();
        assert_eq!(procs[0], 1);
        assert!(procs.windows(2).all(|w| w[1] == 2 * w[0]));
        assert!(*procs.last().unwrap() <= 8);
    }
}
