//! Figure 10 — scaleup on the Cray T3E: response time vs processor count
//! with the per-processor workload held constant (paper: 50K
//! transactions/processor, 0.1% minimum support, curves CD, IDD, HD, DD,
//! DD+comm).
//!
//! Expected shape: DD grows rapidly with P and is worst throughout;
//! DD+comm sits below DD (better communication, same redundant work); IDD
//! is far below both but drifts upward with P (load imbalance, shrinking
//! per-processor trees); CD and HD stay nearly flat, with HD edging out CD
//! at large P (no replicated tree build, reduction over M/G counts only).

use crate::report::Table;
use crate::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Transactions per processor (paper: 50_000).
pub const PER_PROC: usize = 400;
/// Minimum support fraction (paper: 0.1%; ours is higher because the
/// scaled database is 100× smaller — this keeps per-pass candidate counts
/// in the same proportion to N).
pub const MIN_SUPPORT: f64 = 0.01;
/// HD group threshold, scaled from the paper's 5K (Figure 10 run).
pub const HD_THRESHOLD: usize = 2000;

/// Runs the scaleup sweep over `procs_list`.
pub fn run(procs_list: &[usize]) -> Table {
    let mut table = Table::new(
        "Figure 10 — scaleup: response time (ms) vs P (constant work per processor)",
        &["P", "CD", "IDD", "HD", "DD", "DD+comm"],
    );
    for &procs in procs_list {
        let dataset = workloads::scaleup(procs, PER_PROC, 1010);
        let params = ParallelParams::with_min_support(MIN_SUPPORT).page_size(100);
        let miner = ParallelMiner::new(procs);
        let t = |algo: Algorithm| miner.mine(algo, &dataset, &params).response_time * 1e3;
        let (cd, idd, hd, dd, ddc) = (
            t(Algorithm::Cd),
            t(Algorithm::Idd),
            t(Algorithm::Hd {
                group_threshold: HD_THRESHOLD,
            }),
            t(Algorithm::Dd),
            t(Algorithm::DdComm),
        );
        table.row(&[
            &procs,
            &format!("{cd:.2}"),
            &format!("{idd:.2}"),
            &format!("{hd:.2}"),
            &format!("{dd:.2}"),
            &format!("{ddc:.2}"),
        ]);
    }
    table
}

/// The default processor sweep (paper: 4…128; DD's quadratic page traffic
/// makes 128 slow to *simulate*, so the default stops at 64 — pass more to
/// [`run`] if you have the time).
pub fn default_procs() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64]
}
