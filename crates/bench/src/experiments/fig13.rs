//! Figure 13 — speedup: fixed problem, growing machine (paper: N = 1.3M,
//! M = 0.7M, P = 4…64, measuring the pass that computes size-3 frequent
//! itemsets — over 55% of total runtime).
//!
//! Expected shape: HD speeds up best; CD flattens (the serial tree build
//! and O(M) reduction grow from ~5% of the runtime at P=4 to over half at
//! P=64); IDD flattens harder (load imbalance and O(N) data movement).

use crate::report::Table;
use crate::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Transactions (paper: 1.3M).
pub const NUM_TRANSACTIONS: usize = 13_000;
/// Minimum support fraction, chosen so pass 3 carries a large candidate
/// set (the paper pinned M = 0.7M; the achieved M is printed).
pub const MIN_SUPPORT: f64 = 0.015;
/// The measured pass.
pub const PASS: usize = 3;
/// HD group threshold.
pub const HD_THRESHOLD: usize = 1100;

/// Runs the speedup sweep; speedups are normalized to the smallest P in
/// the list (the paper plots vs P=4).
pub fn run(procs_list: &[usize]) -> Table {
    assert!(!procs_list.is_empty());
    let dataset = workloads::t15_i6(NUM_TRANSACTIONS, 1313);
    let params = ParallelParams::with_min_support(MIN_SUPPORT)
        .page_size(100)
        .max_k(PASS);
    /// One measured row: (P, cd, idd, hd, |C3|, HD grid).
    type Row = (usize, f64, f64, f64, usize, (usize, usize));
    let mut rows: Vec<Row> = Vec::new();
    for &procs in procs_list {
        let miner = ParallelMiner::new(procs);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        let hd = miner.mine(
            Algorithm::Hd {
                group_threshold: HD_THRESHOLD,
            },
            &dataset,
            &params,
        );
        let m = cd.passes[PASS - 1].candidates;
        rows.push((
            procs,
            cd.pass_time(PASS),
            idd.pass_time(PASS),
            hd.pass_time(PASS),
            m,
            hd.passes[PASS - 1].grid,
        ));
    }
    let base_p = rows[0].0 as f64;
    let (b_cd, b_idd, b_hd) = (rows[0].1, rows[0].2, rows[0].3);
    let mut table = Table::new(
        "Figure 13 — speedup of pass 3 vs P (normalized to the smallest P)",
        &["P", "CD", "IDD", "HD", "|C3|", "HD grid"],
    );
    for (procs, cd, idd, hd, m, grid) in rows {
        table.row(&[
            &procs,
            &format!("{:.1}", base_p * b_cd / cd),
            &format!("{:.1}", base_p * b_idd / idd),
            &format!("{:.1}", base_p * b_hd / hd),
            &m,
            &format!("{}x{}", grid.0, grid.1),
        ]);
    }
    table
}

/// Default sweep (paper: 4…64).
pub fn default_procs() -> Vec<usize> {
    vec![4, 8, 16, 32, 64]
}
