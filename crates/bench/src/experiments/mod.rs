//! One module per table/figure of the paper. Each `run_*` function
//! executes the scaled experiment, prints the paper-shaped table, writes a
//! CSV under `experiments/`, and returns the table for programmatic
//! checks.
//!
//! | Function | Reproduces | Paper setup | Ours (1:100 unless noted) |
//! |---|---|---|---|
//! | [`table2::run`] | Table II | P=64, m=50K, per-pass HD grids | P=64, m scaled |
//! | [`fig10::run`] | Figure 10 | scaleup, 50K tx/proc, 0.1% minsup, P≤128 | 400 tx/proc, 1% minsup, P≤64 |
//! | [`fig11::run`] | Figure 11 | leaf visits/tx, DD vs IDD, P≤32 | same, scaled N |
//! | [`fig12::run`] | Figure 12 | SP2 P=16, N=100K, minsup 0.1→0.025% | SP2 profile, N=2K, support sweep |
//! | [`fig13::run`] | Figure 13 | speedup P=4..64, N=1.3M, M=0.7M, pass 3 | N=13K, pass 3 |
//! | [`fig14::run`] | Figure 14 | runtime vs N=1.3M..26.1M, P=64 | N=1.3K..26K |
//! | [`fig15::run`] | Figure 15 | runtime vs M=0.7M..8M, P=64 | support sweep grows M |
//! | [`model::run`] | Eq 1–2 | — (analysis) | closed form vs MC vs measured |
//! | [`imbalance::run`] | §III-C quote | 4p: 1.3%→5.4%; 8p: 2.3%→9.4% | same metrics |
//! | [`hpa_comm::run`] | §III-E claim | HPA comm volume vs IDD, by k | extension: HPA implemented |
//! | [`structures::run`] | — (extension) | hash tree vs trie behind the counter seam | CD+IDD, P ∈ {1,16,64} |
//! | [`hetero::run`] | — (extension) | static vs adaptive placement on skewed clusters | CD+IDD, P=16 sim + P=4 native |
//! | [`native::run`] | Fig 13 validation (extension) | speedup on real hardware | CD+IDD, sim vs native backend |

pub mod ablation;
pub mod breakdown;
pub mod faults;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod hetero;
pub mod hpa_comm;
pub mod imbalance;
pub mod model;
pub mod native;
pub mod pdm_prune;
pub mod structures;
pub mod table2;

use crate::report::Table;

/// Prints a finished table and writes its CSV, reporting the path.
pub fn emit(table: &Table, csv_name: &str) {
    table.print();
    match table.write_csv(csv_name) {
        Ok(path) => println!("(csv: {})", path.display()),
        Err(e) => eprintln!("(csv write failed: {e})"),
    }
}
