//! Figure 11 — the redundant-work mechanism, observed directly: average
//! number of **distinct leaf nodes visited per transaction** for DD vs
//! IDD as P grows (paper: 50K transactions/processor, 0.2% minimum
//! support).
//!
//! DD's per-transaction visits fall slowly with P (the analysis's
//! `V(C, L/P)`); IDD's fall like `1/P` (`V(C/P, L/P)`). The table also
//! prints the closed-form predictions of Equation 1 next to the measured
//! counters.

use crate::report::Table;
use crate::workloads;
use armine_core::model::expected_distinct_leaves;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Transactions per processor.
pub const PER_PROC: usize = 400;
/// Minimum support fraction (paper: 0.2%).
pub const MIN_SUPPORT: f64 = 0.015;
/// The pass whose counters are reported (pass 3 dominates runtime in the
/// paper's runs).
pub const PASS: usize = 3;

/// Runs the sweep over `procs_list`.
pub fn run(procs_list: &[usize]) -> Table {
    let mut table = Table::new(
        "Figure 11 — avg distinct leaf nodes visited per transaction (pass 3)",
        &["P", "DD", "IDD", "DD_model", "IDD_model", "ratio DD/IDD"],
    );
    for &procs in procs_list {
        let dataset = workloads::scaleup(procs, PER_PROC, 1111);
        let params = ParallelParams::with_min_support(MIN_SUPPORT)
            .page_size(100)
            .max_k(PASS);
        let miner = ParallelMiner::new(procs);
        let dd = miner.mine(Algorithm::Dd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        let dd_pass = &dd.passes[PASS - 1];
        let idd_pass = &idd.passes[PASS - 1];
        let dd_v = dd_pass.avg_leaf_visits_per_transaction();
        let idd_v = idd_pass.avg_leaf_visits_per_transaction();

        // Closed-form prediction: C = avg potential candidates per
        // transaction, L = leaves of the full tree (M/S with the serial
        // tree's occupancy; approximate S from the measured occupancy).
        let avg_len = dataset.avg_transaction_len();
        let c = armine_core::transaction::binomial(avg_len.round() as u64, PASS as u64) as f64;
        let m = dd_pass.candidates as f64;
        let s = 8.0; // typical occupancy at the default tree shape
        let l = m / s;
        let p = procs as f64;
        let dd_pred = expected_distinct_leaves(c, l / p);
        let idd_pred = expected_distinct_leaves(c / p, l / p);

        table.row(&[
            &procs,
            &format!("{dd_v:.2}"),
            &format!("{idd_v:.2}"),
            &format!("{dd_pred:.2}"),
            &format!("{idd_pred:.2}"),
            &format!("{:.2}", dd_v / idd_v.max(1e-9)),
        ]);
    }
    table
}

/// Default sweep (paper: up to 32).
pub fn default_procs() -> Vec<usize> {
    vec![2, 4, 8, 16, 32]
}
