//! Figure 12 — the memory wall on the IBM SP2: response time as the
//! candidate count grows (paper: 16 processors, 100K transactions,
//! minimum support 0.1% → 0.025%, disk-resident database).
//!
//! CD must partition its replicated hash tree once `|C_k|` exceeds one
//! node's memory and rescan the database per partition — extra tree
//! builds, extra I/O, extra reductions. IDD and HD spread the candidates
//! over the aggregate memory and keep a single scan per pass, so the gap
//! widens with M (paper: CD penalty ≈8% at 1M candidates, 25% at 11M).

use crate::report::{ms, ratio, Table};
use crate::workloads;
use armine_mpsim::MachineProfile;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Processors (paper: 16).
pub const PROCS: usize = 16;
/// Transactions (paper: 100K, 1:50 here).
pub const NUM_TRANSACTIONS: usize = 2000;
/// Per-processor candidate capacity before CD partitions its tree.
pub const MEMORY_CAPACITY: usize = 10_000;
/// HD group threshold.
pub const HD_THRESHOLD: usize = MEMORY_CAPACITY;

/// Runs the support sweep (lower support ⇒ more candidates).
pub fn run(supports: &[f64]) -> Table {
    let mut table = Table::new(
        "Figure 12 — IBM SP2, P=16: response time (ms) vs total candidates",
        &[
            "minsup",
            "candidates",
            "CD",
            "IDD",
            "HD",
            "CD scans",
            "CD/HD",
        ],
    );
    let dataset = workloads::t15_i6_items(NUM_TRANSACTIONS, 400, 1212);
    for &support in supports {
        let params = ParallelParams::with_min_support(support)
            .page_size(100)
            .memory_capacity(MEMORY_CAPACITY);
        let miner = ParallelMiner::new(PROCS).machine(MachineProfile::ibm_sp2());
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        let hd = miner.mine(
            Algorithm::Hd {
                group_threshold: HD_THRESHOLD,
            },
            &dataset,
            &params,
        );
        let candidates: usize = cd.passes.iter().map(|p| p.candidates).sum();
        table.row(&[
            &format!("{:.3}%", support * 100.0),
            &candidates,
            &ms(cd.response_time),
            &ms(idd.response_time),
            &ms(hd.response_time),
            &cd.total_db_scans(),
            &ratio(cd.response_time / hd.response_time),
        ]);
    }
    table
}

/// Default support sweep, highest first (paper: 0.1% → 0.025%).
pub fn default_supports() -> Vec<f64> {
    vec![0.02, 0.015, 0.01, 0.0075, 0.005]
}
