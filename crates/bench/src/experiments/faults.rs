//! Fault-overhead experiment: how much virtual response time the
//! ack/retransmit machinery and the pass-boundary recovery protocol cost
//! at P=64, as the injected fault rate grows.
//!
//! Two sweeps:
//!
//! 1. **Transient faults** — message drop rate 0 → 20% (each drop pays an
//!    exponential-backoff retransmission timeout at the sender). Reported
//!    as absolute response time and overhead relative to the fault-free
//!    run, for CD (reduction-dominated traffic) and HD (ring pipelines
//!    within grid columns).
//! 2. **Crash recovery** — one rank dies at a pass boundary, on top of a
//!    fixed 2% drop rate. The survivors adopt its transaction partitions
//!    and re-execute the interrupted pass; the overhead column isolates
//!    what that re-execution plus the shifted load balance costs.
//!
//! A third sweep runs the **same plans on both execution backends** at a
//! host-sized P: the sim backend predicts the fault overhead on its
//! virtual clock, the native backend pays it for real (thread deaths,
//! sleeps, wall-clock RTO timers). The side-by-side points are
//! snapshotted to `experiments/BENCH_faults.json` — sim-predicted vs
//! measured recovery cost.
//!
//! Every run mines the identical frequent lattice (asserted here): the
//! fault layer may cost time, never answers.

use crate::report::{ms, signed_pct, write_bench_json, Table};
use crate::workloads;
use armine_metrics::json::{BenchDocument, JsonValue};
use armine_metrics::{names, Labels, MetricShard};
use armine_mpsim::{CrashPoint, ExecBackend, FaultPlan};
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams, ParallelRun};

const PROCS: usize = 64;

fn params() -> ParallelParams {
    ParallelParams::with_min_support(0.01)
        .page_size(100)
        .max_k(3)
}

fn mine(miner: &ParallelMiner, algorithm: Algorithm, plan: Option<&FaultPlan>) -> ParallelRun {
    let dataset = workloads::scaleup(PROCS, 100, 5252);
    miner
        .mine_with_faults(algorithm, &dataset, &params(), plan)
        .expect("every plan in this sweep is recoverable")
}

fn lattice_len(run: &ParallelRun) -> usize {
    run.frequent.iter().count()
}

/// Sweep 1: response time vs message drop rate (no crashes).
pub fn run_drop_rate() -> Table {
    let miner = ParallelMiner::new(PROCS);
    let hd = Algorithm::Hd {
        group_threshold: 500,
    };
    let cd_base = mine(&miner, Algorithm::Cd, None);
    let hd_base = mine(&miner, hd, None);
    let mut table = Table::new(
        "Fault overhead — response time vs message drop rate (P=64)",
        &[
            "drop rate",
            "CD ms",
            "CD overhead",
            "CD retransmits",
            "HD ms",
            "HD overhead",
            "HD retransmits",
        ],
    );
    for permille in [0u32, 10, 50, 100, 200] {
        let plan = FaultPlan::new()
            .seed(u64::from(permille) + 1)
            .drop_rate(f64::from(permille) / 1000.0);
        let cd = mine(&miner, Algorithm::Cd, Some(&plan));
        let hd_run = mine(&miner, hd, Some(&plan));
        assert_eq!(lattice_len(&cd), lattice_len(&cd_base));
        assert_eq!(lattice_len(&hd_run), lattice_len(&hd_base));
        table.row(&[
            &format!("{:.1}%", f64::from(permille) / 10.0),
            &ms(cd.response_time),
            &signed_pct((cd.response_time / cd_base.response_time - 1.0) * 100.0),
            &cd.total_retransmits(),
            &ms(hd_run.response_time),
            &signed_pct((hd_run.response_time / hd_base.response_time - 1.0) * 100.0),
            &hd_run.total_retransmits(),
        ]);
    }
    table
}

/// Sweep 2: cost of losing one rank at each pass boundary (2% drops).
pub fn run_crash_recovery() -> Table {
    let miner = ParallelMiner::new(PROCS);
    let baseline = mine(&miner, Algorithm::Cd, None);
    let mut table = Table::new(
        "Fault overhead — one rank crash at a pass boundary, CD, 2% drops (P=64)",
        &["crash", "response ms", "overhead", "recoveries", "timeouts"],
    );
    let transient = FaultPlan::new().seed(77).drop_rate(0.02);
    let mut scenarios = vec![("none".to_owned(), transient.clone())];
    for pass in [2usize, 3] {
        scenarios.push((
            format!("rank 17 @ pass {pass}"),
            transient.clone().crash(17, CrashPoint::AtPass(pass)),
        ));
    }
    for (label, plan) in scenarios {
        let run = mine(&miner, Algorithm::Cd, Some(&plan));
        assert_eq!(lattice_len(&run), lattice_len(&baseline));
        table.row(&[
            &label,
            &ms(run.response_time),
            &signed_pct((run.response_time / baseline.response_time - 1.0) * 100.0),
            &run.total_recoveries(),
            &run.total_timeouts(),
        ]);
    }
    table
}

/// Processor count for the backend comparison — small enough that native
/// ranks map one-per-core on commodity hosts.
const BOTH_PROCS: usize = 4;
/// Default transactions for the backend comparison (override with
/// `ARMINE_FAULTS_N`).
pub const BOTH_TRANSACTIONS: usize = 20_000;

/// One fault scenario measured on one backend.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Scenario label ("fault-free", "drops 5%", …).
    pub scenario: &'static str,
    /// `ExecBackend::name()` the point ran on.
    pub backend: &'static str,
    /// Response time in seconds (virtual on sim, wall-clock on native).
    pub response_s: f64,
    /// Overhead vs the same backend's fault-free baseline, percent.
    pub overhead_pct: f64,
    /// Fault counters of the run.
    pub retransmits: u64,
    /// Failure-detector timeouts.
    pub timeouts: u64,
    /// Committed recoveries.
    pub recoveries: u64,
    /// Canonical [`FaultPlan::label`] of the injected plan (`"none"` for
    /// the fault-free baseline) — the `fault_plan` label in the JSON.
    pub fault_plan: String,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The fixed scenario ladder the backend comparison climbs: transient
/// drops, a straggler, and a mid-run crash — identical plans on both
/// backends.
fn both_scenarios() -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("fault-free", None),
        ("drops 5%", Some(FaultPlan::new().seed(11).drop_rate(0.05))),
        (
            "straggler 2x",
            Some(FaultPlan::new().seed(12).slowdown(1, 2.0)),
        ),
        (
            "crash @ pass 2",
            Some(
                FaultPlan::new()
                    .seed(13)
                    .drop_rate(0.02)
                    .crash(2, CrashPoint::AtPass(2)),
            ),
        ),
    ]
}

/// Sweep 3: the same plans on both backends (CD, P=4). Lattice equality
/// across every cell is asserted — faults and backends cost time, never
/// answers.
pub fn measure_both(n: usize) -> Vec<FaultPoint> {
    let dataset = workloads::t15_i6(n, 6161);
    let params = ParallelParams::with_min_support(0.01)
        .page_size(500)
        .max_k(3);
    let scenarios = both_scenarios();
    let mut points = Vec::new();
    let mut reference: Option<usize> = None;
    for backend in ExecBackend::ALL {
        let miner = ParallelMiner::new(BOTH_PROCS).backend(backend);
        let mut base: Option<f64> = None;
        for (scenario, plan) in &scenarios {
            let run = miner
                .mine_with_faults(Algorithm::Cd, &dataset, &params, plan.as_ref())
                .expect("every scenario in this sweep is recoverable");
            let want = *reference.get_or_insert_with(|| lattice_len(&run));
            assert_eq!(lattice_len(&run), want, "{scenario} on {backend} diverged");
            let b = *base.get_or_insert(run.response_time);
            points.push(FaultPoint {
                scenario,
                backend: backend.name(),
                response_s: run.response_time,
                overhead_pct: (run.response_time / b - 1.0) * 100.0,
                retransmits: run.total_retransmits(),
                timeouts: run.total_timeouts(),
                recoveries: run.total_recoveries(),
                fault_plan: plan
                    .as_ref()
                    .map_or_else(|| "none".to_owned(), FaultPlan::label),
            });
        }
    }
    points
}

/// Runs sweep 3, writes `experiments/BENCH_faults.json`, and returns the
/// comparison table.
pub fn run_both_backends() -> Table {
    let n = env_usize("ARMINE_FAULTS_N", BOTH_TRANSACTIONS);
    let points = measure_both(n);
    match write_json(n, &points) {
        Ok(path) => println!("(json: {})", path.display()),
        Err(e) => eprintln!("(json write failed: {e})"),
    }
    let mut table = Table::new(
        "Fault overhead — sim-predicted vs native-measured (CD, P=4)",
        &[
            "scenario",
            "backend",
            "response ms",
            "overhead",
            "retransmits",
            "timeouts",
            "recoveries",
        ],
    );
    for p in &points {
        table.row(&[
            &p.scenario,
            &p.backend,
            &ms(p.response_s),
            &signed_pct(p.overhead_pct),
            &p.retransmits,
            &p.timeouts,
            &p.recoveries,
        ]);
    }
    table
}

/// Registry-snapshot JSON: each point lands as response/overhead gauges
/// and the three fault counters under
/// `{scenario, backend, fault_plan, algorithm="CD", procs}` — sim-predicted
/// vs measured recovery cost as a label join on `backend`.
fn write_json(n: usize, points: &[FaultPoint]) -> std::io::Result<std::path::PathBuf> {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut shard = MetricShard::new();
    for p in points {
        let labels = Labels::new()
            .with("scenario", p.scenario)
            .with("backend", p.backend)
            .with("fault_plan", p.fault_plan.clone())
            .with("algorithm", "CD")
            .with("procs", BOTH_PROCS);
        shard.set_gauge(names::RUN_RESPONSE_SECONDS, labels.clone(), p.response_s);
        shard.set_gauge(names::RUN_OVERHEAD_PCT, labels.clone(), p.overhead_pct);
        shard.incr(names::RUN_RETRANSMITS, labels.clone(), p.retransmits);
        shard.incr(names::RUN_TIMEOUTS, labels.clone(), p.timeouts);
        shard.incr(names::RUN_RECOVERIES, labels, p.recoveries);
    }
    let doc = BenchDocument::new(
        "fault_overhead_sim_vs_native",
        shard.snapshot(&Labels::new()),
    )
    .with_context("workload", JsonValue::Str("T15.I6".into()))
    .with_context("transactions", JsonValue::UInt(n as u64))
    .with_context("host_cores", JsonValue::UInt(cores as u64));
    write_bench_json("BENCH_faults", &doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_sweep_emits_all_cells_and_the_json() {
        crate::report::use_scratch_experiments_dir();
        std::env::set_var("ARMINE_FAULTS_N", "400");
        let table = run_both_backends();
        std::env::remove_var("ARMINE_FAULTS_N");
        // Four scenarios x two backends.
        assert_eq!(table.len(), 8);
        let crash_rows: Vec<_> = table
            .rows()
            .iter()
            .filter(|r| r[0].contains("crash"))
            .cloned()
            .collect();
        assert_eq!(crash_rows.len(), 2);
        for row in &crash_rows {
            let recoveries: u64 = row[6].parse().unwrap();
            assert!(recoveries > 0, "crash scenario must recover: {row:?}");
        }
        let json =
            std::fs::read_to_string(crate::report::experiments_dir().join("BENCH_faults.json"))
                .unwrap();
        let doc = BenchDocument::parse(&json).unwrap();
        assert_eq!(doc.benchmark, "fault_overhead_sim_vs_native");
        // Both backends are present, and the crash scenario's committed
        // recoveries survived the export on each.
        for backend in ["sim", "native"] {
            let recoveries = doc.snapshot.counter_sum(
                names::RUN_RECOVERIES,
                &[("backend", backend), ("scenario", "crash @ pass 2")],
            );
            assert!(recoveries > 0, "{backend} crash row lost its recoveries");
        }
        // The crash plan's canonical label reached the fault_plan axis.
        assert!(
            doc.snapshot
                .label_values("fault_plan")
                .iter()
                .any(|v| v.contains("crash2@pass2")),
            "{:?}",
            doc.snapshot.label_values("fault_plan")
        );
    }
}
