//! Fault-overhead experiment: how much virtual response time the
//! ack/retransmit machinery and the pass-boundary recovery protocol cost
//! at P=64, as the injected fault rate grows.
//!
//! Two sweeps:
//!
//! 1. **Transient faults** — message drop rate 0 → 20% (each drop pays an
//!    exponential-backoff retransmission timeout at the sender). Reported
//!    as absolute response time and overhead relative to the fault-free
//!    run, for CD (reduction-dominated traffic) and HD (ring pipelines
//!    within grid columns).
//! 2. **Crash recovery** — one rank dies at a pass boundary, on top of a
//!    fixed 2% drop rate. The survivors adopt its transaction partitions
//!    and re-execute the interrupted pass; the overhead column isolates
//!    what that re-execution plus the shifted load balance costs.
//!
//! Every run mines the identical frequent lattice (asserted here): the
//! fault layer may cost time, never answers.

use crate::report::Table;
use crate::workloads;
use armine_mpsim::{CrashPoint, FaultPlan};
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams, ParallelRun};

const PROCS: usize = 64;

fn params() -> ParallelParams {
    ParallelParams::with_min_support(0.01)
        .page_size(100)
        .max_k(3)
}

fn mine(miner: &ParallelMiner, algorithm: Algorithm, plan: Option<&FaultPlan>) -> ParallelRun {
    let dataset = workloads::scaleup(PROCS, 100, 5252);
    miner
        .mine_with_faults(algorithm, &dataset, &params(), plan)
        .expect("every plan in this sweep is recoverable")
}

fn lattice_len(run: &ParallelRun) -> usize {
    run.frequent.iter().count()
}

/// Sweep 1: response time vs message drop rate (no crashes).
pub fn run_drop_rate() -> Table {
    let miner = ParallelMiner::new(PROCS);
    let hd = Algorithm::Hd {
        group_threshold: 500,
    };
    let cd_base = mine(&miner, Algorithm::Cd, None);
    let hd_base = mine(&miner, hd, None);
    let mut table = Table::new(
        "Fault overhead — response time vs message drop rate (P=64)",
        &[
            "drop rate",
            "CD ms",
            "CD overhead",
            "CD retransmits",
            "HD ms",
            "HD overhead",
            "HD retransmits",
        ],
    );
    for permille in [0u32, 10, 50, 100, 200] {
        let plan = FaultPlan::new()
            .seed(u64::from(permille) + 1)
            .drop_rate(f64::from(permille) / 1000.0);
        let cd = mine(&miner, Algorithm::Cd, Some(&plan));
        let hd_run = mine(&miner, hd, Some(&plan));
        assert_eq!(lattice_len(&cd), lattice_len(&cd_base));
        assert_eq!(lattice_len(&hd_run), lattice_len(&hd_base));
        table.row(&[
            &format!("{:.1}%", f64::from(permille) / 10.0),
            &format!("{:.2}", cd.response_time * 1e3),
            &format!(
                "{:+.1}%",
                (cd.response_time / cd_base.response_time - 1.0) * 100.0
            ),
            &cd.total_retransmits(),
            &format!("{:.2}", hd_run.response_time * 1e3),
            &format!(
                "{:+.1}%",
                (hd_run.response_time / hd_base.response_time - 1.0) * 100.0
            ),
            &hd_run.total_retransmits(),
        ]);
    }
    table
}

/// Sweep 2: cost of losing one rank at each pass boundary (2% drops).
pub fn run_crash_recovery() -> Table {
    let miner = ParallelMiner::new(PROCS);
    let baseline = mine(&miner, Algorithm::Cd, None);
    let mut table = Table::new(
        "Fault overhead — one rank crash at a pass boundary, CD, 2% drops (P=64)",
        &["crash", "response ms", "overhead", "recoveries", "timeouts"],
    );
    let transient = FaultPlan::new().seed(77).drop_rate(0.02);
    let mut scenarios = vec![("none".to_owned(), transient.clone())];
    for pass in [2usize, 3] {
        scenarios.push((
            format!("rank 17 @ pass {pass}"),
            transient.clone().crash(17, CrashPoint::AtPass(pass)),
        ));
    }
    for (label, plan) in scenarios {
        let run = mine(&miner, Algorithm::Cd, Some(&plan));
        assert_eq!(lattice_len(&run), lattice_len(&baseline));
        table.row(&[
            &label,
            &format!("{:.2}", run.response_time * 1e3),
            &format!(
                "{:+.1}%",
                (run.response_time / baseline.response_time - 1.0) * 100.0
            ),
            &run.total_recoveries(),
            &run.total_timeouts(),
        ]);
    }
    table
}
