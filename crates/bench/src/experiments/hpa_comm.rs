//! Section III-E — IDD vs HPA: communication volume per pass.
//!
//! HPA ships, for each transaction, its `(|t| choose k)` potential
//! candidates to their hash owners; DD/IDD ship the transaction itself
//! (once around the ring). The paper's claim: "for values of `k` greater
//! than 2, HPA can have much larger communication volume than that for
//! DD and IDD. For small values of `k` (e.g., `k = 2`), it is possible
//! for HPA to incur smaller communication overhead than IDD." This
//! experiment measures exactly that, pass by pass, plus the effect of
//! ELD duplication.

use crate::report::{ms, ratio, Table};
use crate::workloads;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};

/// Processors.
pub const PROCS: usize = 8;
/// Transactions.
pub const NUM_TRANSACTIONS: usize = 2000;
/// Minimum support fraction.
pub const MIN_SUPPORT: f64 = 0.015;

/// Runs IDD, HPA, and HPA-ELD up to pass `max_k` and reports per-run
/// bytes and times. (Per-pass byte split is approximated by rerunning
/// with increasing `max_k`, since traffic counters are cumulative.)
pub fn run() -> Table {
    let dataset = workloads::t15_i6(NUM_TRANSACTIONS, 3030);
    let miner = ParallelMiner::new(PROCS);
    let mut table = Table::new(
        "Section III-E — communication bytes by pass horizon: IDD vs HPA",
        &[
            "max k",
            "IDD bytes",
            "HPA bytes",
            "HPA-ELD bytes",
            "HPA/IDD",
            "IDD ms",
            "HPA ms",
        ],
    );
    for max_k in [2usize, 3, 4] {
        let params = ParallelParams::with_min_support(MIN_SUPPORT)
            .page_size(100)
            .max_k(max_k);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        let hpa = miner.mine(Algorithm::Hpa { eld_permille: 0 }, &dataset, &params);
        let eld = miner.mine(Algorithm::Hpa { eld_permille: 300 }, &dataset, &params);
        table.row(&[
            &max_k,
            &idd.total_bytes(),
            &hpa.total_bytes(),
            &eld.total_bytes(),
            &ratio(hpa.total_bytes() as f64 / idd.total_bytes() as f64),
            &ms(idd.response_time),
            &ms(hpa.response_time),
        ]);
    }
    table
}
