//! The Section V overhead decomposition behind Figure 13's discussion:
//!
//! * CD — "For 4 processors, the time taken for hash tree construction is
//!   only 3.1% of the total runtime and the time for global reduction is
//!   only 1.6% …. However, for 64 processors, these overheads are 24.8%
//!   and 31.0%, respectively."
//! * IDD — "for 4 processors the load imbalance overhead is only 6.3%,
//!   whereas for 64 processors this overhead is 49.6%. The cost of data
//!   movement is 1.0% for 4 processors and 6.4% for 64 processors."
//!
//! We recompute the same fractions from the simulator's accounting: tree
//! construction from the candidate counts × machine constants, reduction
//! and data movement from the residual communication time, and load
//! imbalance as the fraction of the makespan the average rank spends
//! beyond the mean busy time (`(max − avg busy) / response`).

use crate::report::{pct, Table};
use crate::workloads;
use armine_mpsim::MachineProfile;
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams, ParallelRun};

/// Transactions (Figure 13's fixed problem, scaled).
pub const NUM_TRANSACTIONS: usize = 13_000;
/// Minimum support (matches `exp_fig13`).
pub const MIN_SUPPORT: f64 = 0.015;
/// Passes measured.
pub const MAX_K: usize = 3;

fn tree_build_seconds(run: &ParallelRun, machine: &MachineProfile) -> f64 {
    // Every processor regenerates all candidates and (for CD) inserts all
    // of them: per pass |C_k| · (t_gen + t_insert).
    run.passes
        .iter()
        .filter(|p| p.k >= 2)
        .map(|p| p.candidates as f64 * (machine.t_gen + machine.t_insert))
        .sum()
}

/// Runs the decomposition at each processor count.
pub fn run(procs_list: &[usize]) -> Table {
    let dataset = workloads::t15_i6(NUM_TRANSACTIONS, 1313);
    let params = ParallelParams::with_min_support(MIN_SUPPORT)
        .page_size(100)
        .max_k(MAX_K);
    let machine = MachineProfile::cray_t3e();
    let mut table = Table::new(
        "Section V — overhead fractions of the total response time",
        &[
            "P",
            "CD: tree build",
            "CD: reduction",
            "IDD: imbalance",
            "IDD: data movement",
        ],
    );
    for &procs in procs_list {
        let miner = ParallelMiner::new(procs);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);

        let cd_build = tree_build_seconds(&cd, &machine) / cd.response_time;
        // CD's only communication is the count reduction (plus the tiny
        // pass-1 exchange): average residual comm time over ranks.
        let cd_comm: f64 = cd.ranks.iter().map(|r| r.comm_time()).sum::<f64>()
            / cd.ranks.len() as f64
            / cd.response_time;
        // IDD imbalance: how much of the makespan the average rank is NOT
        // doing useful work because the slowest rank holds everyone up.
        let avg_busy: f64 = idd.ranks.iter().map(|r| r.busy).sum::<f64>() / idd.ranks.len() as f64;
        let max_busy = idd.ranks.iter().map(|r| r.busy).fold(0.0f64, f64::max);
        let idd_imbalance = (max_busy - avg_busy) / idd.response_time;
        let idd_move: f64 = idd.ranks.iter().map(|r| r.comm_time()).sum::<f64>()
            / idd.ranks.len() as f64
            / idd.response_time;

        table.row(&[
            &procs,
            &pct(cd_build),
            &pct(cd_comm),
            &pct(idd_imbalance),
            &pct(idd_move),
        ]);
    }
    table
}

/// Default sweep (the paper quotes P = 4 and 64).
pub fn default_procs() -> Vec<usize> {
    vec![4, 16, 64]
}
