//! Self-contained samplers for the three distributions the Quest generator
//! needs. Implemented directly on `rand::Rng` (rather than pulling in
//! `rand_distr`) so the generator's statistical behaviour is fully pinned
//! by this crate.

use rand::Rng;

/// Poisson sampler (Knuth's product-of-uniforms for small means, which is
/// all the generator uses: `|T| ≈ 15`, `|I| ≈ 6`).
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// A Poisson distribution with the given mean.
    ///
    /// # Panics
    /// If `mean` is not finite and positive, or large enough to make
    /// Knuth's method degenerate (> 700).
    pub fn new(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0 && mean <= 700.0,
            "Poisson mean out of supported range: {mean}"
        );
        Poisson { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let threshold = (-self.mean).exp();
        let mut k = 0u64;
        let mut product: f64 = 1.0;
        loop {
            product *= rng.gen::<f64>();
            if product <= threshold {
                return k;
            }
            k += 1;
        }
    }
}

/// Exponential sampler by inversion: `-mean · ln(1 - u)`.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// An exponential distribution with the given mean.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "Exponential mean must be positive"
        );
        Exponential { mean }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - u ∈ (0, 1]: ln never sees 0.
        -self.mean * (1.0 - rng.gen::<f64>()).ln()
    }
}

/// Normal sampler via Box–Muller (one value per call; the spare is
/// discarded to keep the sampler stateless and `Copy`).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd.is_finite() && sd >= 0.0,
            "standard deviation must be non-negative"
        );
        Normal { mean, sd }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.sd * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    const TRIALS: usize = 20_000;

    fn mean_and_var(samples: impl Iterator<Item = f64>) -> (f64, f64, usize) {
        let v: Vec<f64> = samples.collect();
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var, n)
    }

    #[test]
    fn poisson_mean_and_variance_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Poisson::new(15.0);
        let (mean, var, _) = mean_and_var((0..TRIALS).map(|_| d.sample(&mut rng) as f64));
        assert!((mean - 15.0).abs() < 0.3, "mean {mean}");
        assert!((var - 15.0).abs() < 1.0, "variance {var}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Poisson::new(0.5);
        let (mean, _, _) = mean_and_var((0..TRIALS).map(|_| d.sample(&mut rng) as f64));
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "out of supported range")]
    fn poisson_rejects_bad_mean() {
        Poisson::new(0.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Exponential::new(4.0);
        let (mean, var, _) = mean_and_var((0..TRIALS).map(|_| d.sample(&mut rng)));
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
        // Var = mean² for exponential.
        assert!((var - 16.0).abs() < 2.0, "variance {var}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Exponential::new(0.25);
        assert!((0..1000).all(|_| d.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn normal_mean_and_sd_match() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Normal::new(0.5, 0.3);
        let (mean, var, _) = mean_and_var((0..TRIALS).map(|_| d.sample(&mut rng)));
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.3).abs() < 0.02, "sd {}", var.sqrt());
    }

    #[test]
    fn normal_zero_sd_is_constant() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = Normal::new(2.0, 0.0);
        assert!((0..100).all(|_| d.sample(&mut rng) == 2.0));
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let sample_all = |seed: u64| -> (u64, f64, f64) {
            let mut rng = StdRng::seed_from_u64(seed);
            (
                Poisson::new(6.0).sample(&mut rng),
                Exponential::new(1.0).sample(&mut rng),
                Normal::new(0.0, 1.0).sample(&mut rng),
            )
        };
        assert_eq!(sample_all(7), sample_all(7));
        assert_ne!(sample_all(7), sample_all(8));
    }
}
