//! The pool of maximal potentially large itemsets ("patterns").
//!
//! Patterns model the latent purchase behaviours the transactions are
//! assembled from. Their three statistical properties (VLDB '94 §4):
//! correlated composition (each pattern reuses a fraction of its
//! predecessor's items), skewed popularity (exponential weights, normalized
//! to a probability distribution), and per-pattern corruption levels (so a
//! pattern usually contributes only part of itself to a transaction).

use crate::dist::{Exponential, Normal, Poisson};
use armine_core::Item;
use rand::seq::SliceRandom;
use rand::Rng;

/// One maximal potentially large itemset.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// The items, sorted ascending.
    pub items: Vec<Item>,
    /// Selection probability (all weights sum to 1 across the pool).
    pub weight: f64,
    /// Corruption level: while `uniform(0,1) < corruption`, an item is
    /// dropped from the pattern instance added to a transaction.
    pub corruption: f64,
}

/// The pattern pool plus its cumulative-weight index for roulette
/// selection.
#[derive(Debug, Clone)]
pub struct PatternPool {
    patterns: Vec<Pattern>,
    cumulative: Vec<f64>,
}

impl PatternPool {
    /// Builds a pool of `num_patterns` patterns over `num_items` items.
    ///
    /// * `avg_len` — mean pattern size (`|I|`, Poisson, clamped to ≥ 1 and
    ///   ≤ `num_items`).
    /// * `correlation` — mean fraction of items reused from the previous
    ///   pattern (exponentially distributed per pattern).
    /// * `corruption_mean`/`corruption_sd` — the clamped-normal corruption
    ///   level distribution (the original tool uses mean 0.5, variance 0.1).
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        num_patterns: usize,
        num_items: u32,
        avg_len: f64,
        correlation: f64,
        corruption_mean: f64,
        corruption_sd: f64,
    ) -> Self {
        assert!(num_patterns > 0, "need at least one pattern");
        assert!(num_items > 0, "need at least one item");
        let len_dist = Poisson::new(avg_len.max(f64::MIN_POSITIVE));
        let weight_dist = Exponential::new(1.0);
        let corruption_dist = Normal::new(corruption_mean, corruption_sd);
        let reuse_dist = Exponential::new(correlation.max(1e-9));

        let mut patterns: Vec<Pattern> = Vec::with_capacity(num_patterns);
        let mut prev_items: Vec<Item> = Vec::new();
        for _ in 0..num_patterns {
            let len = (len_dist.sample(rng).max(1) as usize).min(num_items as usize);
            let mut items: Vec<Item> = Vec::with_capacity(len);
            // Reuse a fraction of the previous pattern (correlation).
            if !prev_items.is_empty() {
                let frac = reuse_dist.sample(rng).min(1.0);
                let reuse = ((frac * len as f64).round() as usize).min(prev_items.len());
                let mut pool = prev_items.clone();
                pool.shuffle(rng);
                items.extend(pool.into_iter().take(reuse));
            }
            // Fill the rest with fresh random items.
            while items.len() < len {
                let candidate = Item(rng.gen_range(0..num_items));
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            items.sort_unstable();
            items.dedup();
            prev_items = items.clone();
            patterns.push(Pattern {
                items,
                weight: weight_dist.sample(rng),
                corruption: corruption_dist.sample(rng).clamp(0.0, 1.0),
            });
        }
        // Normalize weights to a probability distribution.
        let total: f64 = patterns.iter().map(|p| p.weight).sum();
        let mut cumulative = Vec::with_capacity(patterns.len());
        let mut acc = 0.0;
        for p in &mut patterns {
            p.weight /= total;
            acc += p.weight;
            cumulative.push(acc);
        }
        // Guard against floating-point drift in the final bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        PatternPool {
            patterns,
            cumulative,
        }
    }

    /// The patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of patterns (`|L|`).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the pool is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Roulette-selects a pattern index by weight.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).unwrap())
        {
            Ok(i) | Err(i) => i.min(self.patterns.len() - 1),
        }
    }

    /// Produces a corrupted instance of pattern `idx`: items are removed
    /// while `uniform(0,1) < corruption` (so a corruption level of 0 keeps
    /// the whole pattern; higher levels keep less). At least one item is
    /// always kept.
    pub fn corrupted_instance<R: Rng + ?Sized>(&self, idx: usize, rng: &mut R) -> Vec<Item> {
        let p = &self.patterns[idx];
        let mut items = p.items.clone();
        while items.len() > 1 && rng.gen::<f64>() < p.corruption {
            let victim = rng.gen_range(0..items.len());
            items.swap_remove(victim);
        }
        items.sort_unstable();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn pool(seed: u64) -> PatternPool {
        let mut rng = StdRng::seed_from_u64(seed);
        PatternPool::build(&mut rng, 100, 500, 6.0, 0.5, 0.5, 0.1f64.sqrt())
    }

    #[test]
    fn pool_has_requested_size_and_valid_items() {
        let p = pool(1);
        assert_eq!(p.len(), 100);
        for pat in p.patterns() {
            assert!(!pat.items.is_empty());
            assert!(
                pat.items.windows(2).all(|w| w[0] < w[1]),
                "sorted, distinct"
            );
            assert!(pat.items.iter().all(|i| i.id() < 500));
            assert!((0.0..=1.0).contains(&pat.corruption));
        }
    }

    #[test]
    fn weights_are_normalized() {
        let p = pool(2);
        let total: f64 = p.patterns().iter().map(|pat| pat.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn average_pattern_length_near_target() {
        let p = pool(3);
        let avg: f64 = p
            .patterns()
            .iter()
            .map(|pat| pat.items.len() as f64)
            .sum::<f64>()
            / p.len() as f64;
        assert!(avg > 4.0 && avg < 8.0, "avg pattern length {avg}, target 6");
    }

    #[test]
    fn pick_respects_weights() {
        let p = pool(4);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = vec![0u32; p.len()];
        for _ in 0..50_000 {
            counts[p.pick(&mut rng)] += 1;
        }
        // The empirical frequency of the heaviest pattern should be close
        // to its weight.
        let (hi, _) = p
            .patterns()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.weight.partial_cmp(&b.1.weight).unwrap())
            .unwrap();
        let freq = counts[hi] as f64 / 50_000.0;
        let weight = p.patterns()[hi].weight;
        assert!(
            (freq - weight).abs() < 0.02,
            "heaviest pattern: freq {freq} vs weight {weight}"
        );
    }

    #[test]
    fn corrupted_instance_is_subset_and_nonempty() {
        let p = pool(5);
        let mut rng = StdRng::seed_from_u64(7);
        for idx in 0..p.len() {
            let inst = p.corrupted_instance(idx, &mut rng);
            assert!(!inst.is_empty());
            let full = &p.patterns()[idx].items;
            assert!(inst.iter().all(|i| full.contains(i)), "instance ⊆ pattern");
            assert!(inst.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn zero_corruption_keeps_everything() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = PatternPool::build(&mut rng, 10, 100, 5.0, 0.5, 0.0, 0.0);
        for pat in &mut p.patterns {
            pat.corruption = 0.0;
        }
        for idx in 0..p.len() {
            assert_eq!(p.corrupted_instance(idx, &mut rng), p.patterns()[idx].items);
        }
    }

    #[test]
    fn correlation_reuses_items() {
        // With high correlation, consecutive patterns overlap noticeably
        // more than with none.
        let overlap = |correlation: f64, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = PatternPool::build(&mut rng, 200, 10_000, 8.0, correlation, 0.5, 0.1);
            let mut total = 0.0;
            for w in p.patterns().windows(2) {
                let shared = w[1].items.iter().filter(|i| w[0].items.contains(i)).count();
                total += shared as f64 / w[1].items.len() as f64;
            }
            total / (p.len() - 1) as f64
        };
        // A huge universe makes accidental overlap negligible.
        assert!(overlap(0.9, 10) > overlap(1e-9, 10) + 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_pool_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        PatternPool::build(&mut rng, 0, 10, 5.0, 0.5, 0.5, 0.1);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = pool(42);
        let b = pool(42);
        for (x, y) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(x.items, y.items);
            assert_eq!(x.weight, y.weight);
        }
    }
}
