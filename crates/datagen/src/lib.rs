#![warn(missing_docs)]

//! # armine-datagen
//!
//! A from-scratch implementation of the IBM Quest synthetic transaction
//! generator (Agrawal & Srikant, *Fast Algorithms for Mining Association
//! Rules*, VLDB '94, Section 4) — the tool the paper's experiments use
//! (reference \[17\]) with average transaction length `|T| = 15` and average
//! maximal-pattern length `|I| = 6`.
//!
//! The generator models retail-like co-occurrence:
//!
//! 1. A pool of `|L|` *maximal potentially large itemsets* ("patterns") is
//!    built. Pattern sizes are Poisson with mean `|I|`; successive patterns
//!    share an exponentially-distributed fraction of items with their
//!    predecessor (correlated patterns); each pattern gets an
//!    exponentially-distributed weight (normalized to sum 1) and a
//!    *corruption level* drawn from a clamped normal.
//! 2. Each transaction draws its length from a Poisson with mean `|T|`,
//!    then packs weighted, corrupted patterns until full; an oversized last
//!    pattern is added anyway half the time and deferred to the next
//!    transaction otherwise.
//!
//! ```
//! use armine_datagen::QuestParams;
//!
//! let dataset = QuestParams::paper_t15_i6()
//!     .num_transactions(1000)
//!     .num_items(200)
//!     .seed(42)
//!     .generate();
//! assert_eq!(dataset.len(), 1000);
//! let avg = dataset.avg_transaction_len();
//! assert!(avg > 10.0 && avg < 20.0, "|T| should hover near 15, got {avg}");
//! ```

mod dist;
mod generator;
mod patterns;

pub use dist::{Exponential, Normal, Poisson};
pub use generator::QuestParams;
pub use patterns::{Pattern, PatternPool};
