//! The transaction generator: parameters and assembly loop.

use crate::dist::Poisson;
use crate::patterns::PatternPool;
use armine_core::{Dataset, Item, Transaction};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Parameters of the Quest generator, in the naming of the original tool:
/// a dataset `T15.I6.D100K` means `|T| = 15`, `|I| = 6`, `|D| = 100_000`.
///
/// Build with one of the presets ([`QuestParams::paper_t15_i6`],
/// [`QuestParams::default`]) and override fields with the builder methods,
/// then call [`QuestParams::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuestParams {
    /// `|D|` — number of transactions to generate.
    pub num_transactions: usize,
    /// `|T|` — average transaction length (Poisson mean).
    pub avg_transaction_len: f64,
    /// `|I|` — average maximal-pattern length (Poisson mean).
    pub avg_pattern_len: f64,
    /// `|L|` — number of maximal potentially large patterns.
    pub num_patterns: usize,
    /// `N` — number of distinct items.
    pub num_items: u32,
    /// Mean fraction of items a pattern reuses from its predecessor.
    pub correlation: f64,
    /// Mean of the per-pattern corruption level.
    pub corruption_mean: f64,
    /// Standard deviation of the per-pattern corruption level.
    pub corruption_sd: f64,
    /// RNG seed: same params + same seed ⇒ identical dataset.
    pub seed: u64,
}

impl Default for QuestParams {
    /// The original tool's defaults: T10.I4, 1000 items, 2000 patterns.
    fn default() -> Self {
        QuestParams {
            num_transactions: 10_000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 2000,
            num_items: 1000,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1f64.sqrt(),
            seed: 0,
        }
    }
}

impl QuestParams {
    /// The paper's workload shape: `|T| = 15`, `|I| = 6` (Section V).
    pub fn paper_t15_i6() -> Self {
        QuestParams {
            avg_transaction_len: 15.0,
            avg_pattern_len: 6.0,
            ..Default::default()
        }
    }

    /// Sets `|D|`, the number of transactions.
    pub fn num_transactions(mut self, n: usize) -> Self {
        self.num_transactions = n;
        self
    }

    /// Sets `N`, the item-universe size.
    pub fn num_items(mut self, n: u32) -> Self {
        self.num_items = n;
        self
    }

    /// Sets `|L|`, the pattern-pool size.
    pub fn num_patterns(mut self, n: usize) -> Self {
        self.num_patterns = n;
        self
    }

    /// Sets `|T|`, the average transaction length.
    pub fn avg_transaction_len(mut self, t: f64) -> Self {
        self.avg_transaction_len = t;
        self
    }

    /// Sets `|I|`, the average pattern length.
    pub fn avg_pattern_len(mut self, i: f64) -> Self {
        self.avg_pattern_len = i;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The conventional dataset name, e.g. `T15.I6.D100K`.
    pub fn name(&self) -> String {
        let d = self.num_transactions;
        let d_str = if d.is_multiple_of(1_000_000) && d > 0 {
            format!("{}M", d / 1_000_000)
        } else if d.is_multiple_of(1000) && d > 0 {
            format!("{}K", d / 1000)
        } else {
            format!("{d}")
        };
        format!(
            "T{}.I{}.D{}",
            self.avg_transaction_len.round() as u64,
            self.avg_pattern_len.round() as u64,
            d_str
        )
    }

    /// Parses a conventional dataset name like `"T15.I6.D100K"` into
    /// parameters (other fields default). Suffixes `K` and `M` scale the
    /// transaction count by 10³ and 10⁶.
    ///
    /// ```
    /// use armine_datagen::QuestParams;
    /// let p = QuestParams::from_name("T15.I6.D100K").unwrap();
    /// assert_eq!(p.num_transactions, 100_000);
    /// assert_eq!(p.avg_transaction_len, 15.0);
    /// ```
    ///
    /// # Errors
    /// Returns a message describing the malformed component.
    pub fn from_name(name: &str) -> Result<Self, String> {
        let mut out = QuestParams::default();
        for part in name.split('.') {
            if part.len() < 2 || !part.is_char_boundary(1) {
                return Err(format!("malformed component {part:?} in {name:?}"));
            }
            let (key, value) = part.split_at(1);
            match key {
                "T" => {
                    out.avg_transaction_len = value
                        .parse()
                        .map_err(|_| format!("bad T component in {name:?}"))?
                }
                "I" => {
                    out.avg_pattern_len = value
                        .parse()
                        .map_err(|_| format!("bad I component in {name:?}"))?
                }
                "D" => {
                    let (digits, mult) = match value.as_bytes().last() {
                        Some(b'K') => (&value[..value.len() - 1], 1000usize),
                        Some(b'M') => (&value[..value.len() - 1], 1_000_000),
                        _ => (value, 1),
                    };
                    let n: usize = digits
                        .parse()
                        .map_err(|_| format!("bad D component in {name:?}"))?;
                    out.num_transactions = n * mult;
                }
                other => return Err(format!("unknown component {other:?} in {name:?}")),
            }
        }
        Ok(out)
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// If the parameters are degenerate (zero items or patterns with
    /// transactions requested).
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        if self.num_transactions == 0 {
            return Dataset::with_num_items(Vec::new(), self.num_items);
        }
        let pool = PatternPool::build(
            &mut rng,
            self.num_patterns,
            self.num_items,
            self.avg_pattern_len,
            self.correlation,
            self.corruption_mean,
            self.corruption_sd,
        );
        let len_dist = Poisson::new(self.avg_transaction_len);
        let mut transactions = Vec::with_capacity(self.num_transactions);
        // A pattern instance that overflowed the previous transaction and
        // was deferred ("saved for the next transaction").
        let mut carried: Option<Vec<Item>> = None;
        for tid in 0..self.num_transactions {
            let target = (len_dist.sample(&mut rng).max(1) as usize).min(self.num_items as usize);
            let mut items: Vec<Item> = Vec::with_capacity(target + 4);
            if let Some(c) = carried.take() {
                items.extend(c);
            }
            // Pack corrupted pattern instances until the target length is
            // reached. If an instance would overflow, add it anyway half
            // the time; otherwise defer it to the next transaction.
            let mut guard = 0;
            while items.len() < target {
                let instance = pool.corrupted_instance(pool.pick(&mut rng), &mut rng);
                if items.len() + instance.len() > target {
                    if rng.gen::<bool>() {
                        items.extend(instance);
                    } else {
                        carried = Some(instance);
                    }
                    break;
                }
                items.extend(instance);
                // Heavily corrupted pools can stall; bail out after enough
                // attempts rather than loop forever.
                guard += 1;
                if guard > 64 {
                    break;
                }
            }
            if items.is_empty() {
                // Extremely unlikely (deferred-only path); keep the
                // transaction well-formed with one random item.
                items.push(Item(rng.gen_range(0..self.num_items)));
            }
            transactions.push(Transaction::new(tid as u64 + 1, items));
        }
        Dataset::with_num_items(transactions, self.num_items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_valid_items() {
        let d = QuestParams::paper_t15_i6()
            .num_transactions(500)
            .num_items(300)
            .seed(1)
            .generate();
        assert_eq!(d.len(), 500);
        assert_eq!(d.num_items(), 300);
        for t in d.transactions() {
            assert!(!t.is_empty());
            assert!(t.items().iter().all(|i| i.id() < 300));
        }
        // Sequential 1-based tids.
        assert_eq!(d.transactions()[0].tid(), 1);
        assert_eq!(d.transactions()[499].tid(), 500);
    }

    #[test]
    fn avg_length_tracks_t_parameter() {
        for (t_target, lo, hi) in [(5.0, 3.0, 7.5), (15.0, 11.0, 19.0)] {
            let d = QuestParams::default()
                .avg_transaction_len(t_target)
                .num_transactions(2000)
                .num_items(1000)
                .seed(2)
                .generate();
            let avg = d.avg_transaction_len();
            assert!(avg > lo && avg < hi, "target |T|={t_target}, got {avg}");
        }
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a = QuestParams::default()
            .num_transactions(200)
            .seed(9)
            .generate();
        let b = QuestParams::default()
            .num_transactions(200)
            .seed(9)
            .generate();
        let c = QuestParams::default()
            .num_transactions(200)
            .seed(10)
            .generate();
        assert_eq!(a.transactions(), b.transactions());
        assert_ne!(a.transactions(), c.transactions());
    }

    #[test]
    fn produces_frequent_patterns() {
        // The whole point of the generator: planted patterns make some
        // 2-itemsets far more frequent than random co-occurrence would.
        let d = QuestParams::paper_t15_i6()
            .num_transactions(2000)
            .num_items(500)
            .num_patterns(50)
            .seed(3)
            .generate();
        use armine_core::apriori::{Apriori, AprioriParams, MinSupport};
        let run = Apriori::new(
            AprioriParams {
                min_support: MinSupport::Fraction(0.02),
                ..AprioriParams::with_min_support_count(0)
            }
            .max_k(2),
        )
        .mine(d.transactions());
        assert!(
            !run.frequent.level(2).is_empty(),
            "planted patterns must produce frequent 2-itemsets at 2% support"
        );
    }

    #[test]
    fn zero_transactions() {
        let d = QuestParams::default().num_transactions(0).generate();
        assert!(d.is_empty());
        assert_eq!(d.num_items(), 1000);
    }

    #[test]
    fn name_formats_conventionally() {
        assert_eq!(
            QuestParams::paper_t15_i6().num_transactions(100_000).name(),
            "T15.I6.D100K"
        );
        assert_eq!(
            QuestParams::paper_t15_i6()
                .num_transactions(2_000_000)
                .name(),
            "T15.I6.D2M"
        );
        assert_eq!(
            QuestParams::paper_t15_i6().num_transactions(123).name(),
            "T15.I6.D123"
        );
    }

    #[test]
    fn from_name_parses_conventional_names() {
        let p = QuestParams::from_name("T15.I6.D100K").unwrap();
        assert_eq!(p.avg_transaction_len, 15.0);
        assert_eq!(p.avg_pattern_len, 6.0);
        assert_eq!(p.num_transactions, 100_000);
        assert_eq!(
            QuestParams::from_name("T10.I4.D2M")
                .unwrap()
                .num_transactions,
            2_000_000
        );
        assert_eq!(
            QuestParams::from_name("D123").unwrap().num_transactions,
            123
        );
        // Round-trips with name() for canonical forms.
        let q = QuestParams::from_name("T15.I6.D100K").unwrap();
        assert_eq!(q.name(), "T15.I6.D100K");
    }

    #[test]
    fn from_name_rejects_garbage() {
        assert!(QuestParams::from_name("T15.X9").is_err());
        assert!(QuestParams::from_name("Tfifteen").is_err());
        assert!(QuestParams::from_name("DxxK").is_err());
        assert!(
            QuestParams::from_name("T15..D1").is_err(),
            "empty component"
        );
        assert!(QuestParams::from_name("T").is_err(), "too short");
    }

    #[test]
    fn small_universe_does_not_hang() {
        let d = QuestParams::default()
            .num_items(5)
            .avg_transaction_len(10.0)
            .num_transactions(50)
            .num_patterns(3)
            .seed(4)
            .generate();
        assert_eq!(d.len(), 50);
        for t in d.transactions() {
            assert!(t.len() <= 5);
        }
    }
}
