//! Exporter golden fixture: the JSON layout of a `BenchDocument` is a
//! wire format consumers (CI validators, plotting scripts) parse — it
//! must stay byte-for-byte stable. A deterministic document built here
//! is compared against the committed fixture, and the fixture parses
//! back to the identical document (exact floats, exact counters).

use armine_metrics::json::{BenchDocument, JsonValue};
use armine_metrics::{Labels, MetricShard};

const FIXTURE: &str = include_str!("fixtures/bench_golden.json");

/// The fixture's document: one of everything — a counter beyond 2^53
/// (exactness past f64), a gauge with a non-terminating binary fraction,
/// a histogram, multi-label series, and context fields.
fn golden_document() -> BenchDocument {
    let mut shard = MetricShard::new();
    shard.incr(
        "armine.run.frequent_itemsets",
        Labels::new().with("algorithm", "CD").with("procs", 4),
        25507,
    );
    shard.incr(
        "armine.rank.bytes_sent",
        Labels::new().with("rank", 0),
        9_007_199_254_740_993, // 2^53 + 1: exact as a u64, not as an f64
    );
    shard.set_gauge(
        "armine.run.response_seconds",
        Labels::new().with("algorithm", "CD").with("procs", 4),
        0.1, // non-terminating in binary: round-trip must be exact
    );
    shard.observe("armine.run.rank_clock_seconds", Labels::new(), 0.25);
    shard.observe("armine.run.rank_clock_seconds", Labels::new(), 0.125);
    let snapshot = shard.snapshot(&Labels::new().with("backend", "sim"));
    BenchDocument::new("golden_fixture", snapshot)
        .with_context("workload", JsonValue::Str("T15.I6".into()))
        .with_context("transactions", JsonValue::UInt(480))
}

#[test]
fn exporter_output_matches_the_committed_fixture_byte_for_byte() {
    let rendered = golden_document().to_json();
    assert_eq!(
        rendered, FIXTURE,
        "BenchDocument JSON layout drifted from tests/fixtures/bench_golden.json — \
         if the schema change is intentional, bump SCHEMA_VERSION and recapture"
    );
}

#[test]
fn committed_fixture_parses_back_to_the_identical_document() {
    let parsed = BenchDocument::parse(FIXTURE).expect("fixture must parse");
    assert_eq!(parsed, golden_document());
}

/// Recaptures the fixture after an *intentional* schema change:
/// `cargo test -p armine-metrics --test golden_export -- --ignored`
#[test]
#[ignore = "rewrites the committed fixture; run manually after intentional schema changes"]
fn recapture_fixture() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/bench_golden.json"
    );
    std::fs::write(path, golden_document().to_json()).unwrap();
    println!("rewrote {path}");
}
