#![warn(missing_docs)]

//! # armine-metrics
//!
//! One labeled metrics registry for every run the workspace produces —
//! sim virtual-time charges, native wall measurements, and fault
//! counters all land in the same named series instead of three disjoint
//! ad-hoc ledgers.
//!
//! The model (after MCSim's metrics design): a metric is a **name**
//! (`armine.<layer>.<noun>[_<unit>]`, see [`names`]) plus a set of
//! **hierarchical labels** drawn from the fixed taxonomy [`LABEL_KEYS`]
//! (`algorithm`, `backend`, `counter`, `fault_plan`, `procs`,
//! `scenario`, `rank`, `pass`). A series is one `(name, labels)` pair
//! carrying a [`MetricValue`]: a monotone `u64` [counter], an `f64`
//! [gauge], or a summary [histogram].
//!
//! Recording is **lock-free by ownership**: each worker thread writes
//! its own [`MetricShard`] (no atomics, no mutexes — the shard is owned
//! by exactly one thread, like the per-rank `CounterStats` ledgers it
//! generalizes), and shards are [merged](MetricShard::merge) at pass/run
//! boundaries. A finished shard freezes into a [`MetricsSnapshot`]:
//! sorted, queryable, and exportable as a schema-versioned JSON
//! [`json::BenchDocument`].
//!
//! The registry **observes** existing arithmetic, it never participates
//! in it: recording a value is a host-side map insert, so a simulator's
//! virtual clocks are bit-identical with or without recording (pinned by
//! the golden-fingerprint suite in the workspace root).
//!
//! [counter]: MetricValue::Counter
//! [gauge]: MetricValue::Gauge
//! [histogram]: MetricValue::Histogram

pub mod json;
pub mod names;

use std::cmp::Ordering;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// The label taxonomy, in canonical serialization order: run-scoped keys
/// first (`algorithm`, `backend`, `counter`, `fault_plan`, `procs`,
/// `scenario`), then the per-rank and per-pass axes. Every label a
/// series carries must use one of these keys — [`Labels::with`] panics
/// on anything else, and [`json::BenchDocument::parse`] rejects unknown
/// keys, so the schema cannot drift silently.
pub const LABEL_KEYS: [&str; 8] = [
    "algorithm",
    "backend",
    "counter",
    "fault_plan",
    "procs",
    "scenario",
    "rank",
    "pass",
];

fn key_index(key: &str) -> Option<usize> {
    LABEL_KEYS.iter().position(|k| *k == key)
}

/// Compares label values numerically when both parse as integers (so
/// `rank=2` sorts before `rank=10`), lexicographically otherwise.
/// Numeric ties break lexicographically (`"01"` vs `"1"`), so distinct
/// strings never compare `Equal` and the ordering stays consistent with
/// string equality.
fn value_cmp(a: &str, b: &str) -> Ordering {
    match (a.parse::<u64>(), b.parse::<u64>()) {
        (Ok(x), Ok(y)) => x.cmp(&y).then_with(|| a.cmp(b)),
        _ => a.cmp(b),
    }
}

/// A canonically ordered set of labels: at most one value per
/// [`LABEL_KEYS`] key, iterated and serialized in taxonomy order
/// regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Labels {
    /// `(index into LABEL_KEYS, value)`, sorted by index, keys unique.
    entries: Vec<(usize, String)>,
}

impl Labels {
    /// The empty label set.
    pub fn new() -> Self {
        Labels::default()
    }

    /// Adds a label (builder style). Panics on a key outside
    /// [`LABEL_KEYS`] or a key already present — both are recording bugs,
    /// not runtime conditions.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl ToString) -> Self {
        let idx = key_index(key)
            .unwrap_or_else(|| panic!("unknown label key {key:?} (taxonomy: {LABEL_KEYS:?})"));
        assert!(
            !self.entries.iter().any(|(i, _)| *i == idx),
            "label key {key:?} set twice"
        );
        let pos = self.entries.partition_point(|(i, _)| *i < idx);
        self.entries.insert(pos, (idx, value.to_string()));
        self
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        let idx = key_index(key)?;
        self.entries
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, v)| v.as_str())
    }

    /// `(key, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &str)> + '_ {
        self.entries
            .iter()
            .map(|(i, v)| (LABEL_KEYS[*i], v.as_str()))
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every `(key, value)` pair of `filter` is present here.
    pub fn matches(&self, filter: &[(&str, &str)]) -> bool {
        filter.iter().all(|(k, v)| self.get(k) == Some(*v))
    }

    /// The union of `self` and `base`. Panics when a key appears in both
    /// — a base-label collision means the recorder mislabeled a series.
    #[must_use]
    pub fn union(&self, base: &Labels) -> Labels {
        let mut out = self.clone();
        for (key, value) in base.iter() {
            out = out.with(key, value);
        }
        out
    }
}

impl PartialOrd for Labels {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Labels {
    fn cmp(&self, other: &Self) -> Ordering {
        let mut a = self.entries.iter();
        let mut b = other.entries.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some((ia, va)), Some((ib, vb))) => {
                    let ord = ia.cmp(ib).then_with(|| value_cmp(va, vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
            }
        }
    }
}

/// Summary of an observed distribution: count, sum, and range. Enough
/// for mean/min/max joins without retaining every observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (accumulated in recording order).
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramSummary {
    fn observe(value: f64) -> Self {
        HistogramSummary {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    fn absorb(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn merge(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The value one series carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotone count of events or work units (`u64`, exact).
    Counter(u64),
    /// A point-in-time measurement (last write wins).
    Gauge(f64),
    /// A summary over observations.
    Histogram(HistogramSummary),
}

impl MetricValue {
    /// The kind name as serialized ("counter" / "gauge" / "histogram").
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One thread's private slice of the registry.
///
/// A shard is owned by exactly one recording thread (a rank's worker, or
/// the assembly code after the join) — that ownership is the lock-free
/// contract. Recording is a `BTreeMap` upsert; nothing is shared until
/// the shard is moved out and [merged](MetricShard::merge).
#[derive(Debug, Clone, Default)]
pub struct MetricShard {
    series: BTreeMap<(String, Labels), MetricValue>,
}

impl MetricShard {
    /// An empty shard.
    pub fn new() -> Self {
        MetricShard::default()
    }

    /// Adds `delta` to the counter `(name, labels)`, creating it at zero.
    /// Panics if the series exists with a different kind.
    pub fn incr(&mut self, name: &str, labels: Labels, delta: u64) {
        match self
            .series
            .entry((name.to_owned(), labels))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("{name} already recorded as a {}", other.kind()),
        }
    }

    /// Sets the gauge `(name, labels)` (last write wins). Panics if the
    /// series exists with a different kind, or on a non-finite value —
    /// the JSON schema has no NaN/Inf, so rejecting at recording time
    /// keeps every snapshot serializable.
    pub fn set_gauge(&mut self, name: &str, labels: Labels, value: f64) {
        assert!(
            value.is_finite(),
            "gauge {name} set to non-finite value {value} — JSON has no NaN/Inf"
        );
        match self
            .series
            .entry((name.to_owned(), labels))
            .or_insert(MetricValue::Gauge(value))
        {
            MetricValue::Gauge(v) => *v = value,
            other => panic!("{name} already recorded as a {}", other.kind()),
        }
    }

    /// Adds one observation to the histogram `(name, labels)`. Panics if
    /// the series exists with a different kind, or on a non-finite value
    /// — the JSON schema has no NaN/Inf, so rejecting at recording time
    /// keeps every snapshot serializable.
    pub fn observe(&mut self, name: &str, labels: Labels, value: f64) {
        assert!(
            value.is_finite(),
            "histogram {name} observed non-finite value {value} — JSON has no NaN/Inf"
        );
        match self.series.entry((name.to_owned(), labels)) {
            Entry::Vacant(slot) => {
                slot.insert(MetricValue::Histogram(HistogramSummary::observe(value)));
            }
            Entry::Occupied(mut slot) => match slot.get_mut() {
                MetricValue::Histogram(h) => h.absorb(value),
                other => panic!("{name} already recorded as a {}", other.kind()),
            },
        }
    }

    /// Folds `other` into `self` without dropping anything: counters add,
    /// histograms merge, and a gauge may only arrive from one shard —
    /// two shards setting the same gauge series is a labeling bug (the
    /// rank/pass axis is missing) and panics rather than silently
    /// overwriting.
    pub fn merge(&mut self, other: MetricShard) {
        for ((name, labels), value) in other.series {
            match (self.series.get_mut(&(name.clone(), labels.clone())), value) {
                (None, v) => {
                    self.series.insert((name, labels), v);
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(&b),
                (Some(MetricValue::Gauge(_)), MetricValue::Gauge(_)) => {
                    panic!("gauge {name} recorded by two shards — a label axis is missing")
                }
                (Some(existing), incoming) => panic!(
                    "{name} recorded as {} by one shard and {} by another",
                    existing.kind(),
                    incoming.kind()
                ),
            }
        }
    }

    /// Number of series recorded.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Freezes the shard into a sorted snapshot, stamping `base` labels
    /// onto every series (panics if a series already carries one of the
    /// base keys).
    pub fn snapshot(&self, base: &Labels) -> MetricsSnapshot {
        let series = self
            .series
            .iter()
            .map(|((name, labels), value)| MetricSeries {
                name: name.clone(),
                labels: labels.union(base),
                value: *value,
            })
            .collect();
        MetricsSnapshot::from_series(series)
    }
}

/// One `(name, labels) → value` entry of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Metric name (`armine.<layer>.<noun>[_<unit>]`).
    pub name: String,
    /// The series' full label set.
    pub labels: Labels,
    /// The recorded value.
    pub value: MetricValue,
}

/// An immutable, sorted view of a finished registry: what exporters
/// serialize and views query. Ordering is total and deterministic —
/// by name, then by labels in canonical key order with numeric-aware
/// value comparison — so serializing the same run twice yields the same
/// bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    series: Vec<MetricSeries>,
}

impl MetricsSnapshot {
    /// A snapshot over the given series (sorted here; duplicates panic).
    pub fn from_series(mut series: Vec<MetricSeries>) -> Self {
        series.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        for w in series.windows(2) {
            assert!(
                !(w[0].name == w[1].name && w[0].labels == w[1].labels),
                "duplicate series {} {:?}",
                w[0].name,
                w[0].labels
            );
        }
        MetricsSnapshot { series }
    }

    /// All series, sorted.
    pub fn series(&self) -> &[MetricSeries] {
        &self.series
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the snapshot holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Sum of all counter series named `name` whose labels match
    /// `filter`. Non-counter series of that name panic (kind confusion).
    pub fn counter_sum(&self, name: &str, filter: &[(&str, &str)]) -> u64 {
        self.select(name, filter)
            .map(|s| match s.value {
                MetricValue::Counter(v) => v,
                other => panic!("{name} is a {}, not a counter", other.kind()),
            })
            .sum()
    }

    /// The value of the single gauge named `name` matching `filter`;
    /// `None` when no series matches, panics when several do (the filter
    /// under-constrains) or the series is not a gauge.
    pub fn gauge(&self, name: &str, filter: &[(&str, &str)]) -> Option<f64> {
        let mut matches = self.select(name, filter);
        let first = matches.next()?;
        assert!(
            matches.next().is_none(),
            "gauge {name} matched more than one series for {filter:?}"
        );
        match first.value {
            MetricValue::Gauge(v) => Some(v),
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Every gauge named `name`, keyed by the numeric value of label
    /// `key`, in ascending key order — e.g. per-rank busy times in rank
    /// order, ready for an imbalance fold.
    pub fn gauges_by(&self, name: &str, key: &str) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .select(name, &[])
            .filter_map(|s| {
                let k = s.labels.get(key)?.parse::<u64>().ok()?;
                match s.value {
                    MetricValue::Gauge(v) => Some((k, v)),
                    other => panic!("{name} is a {}, not a gauge", other.kind()),
                }
            })
            .collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// The single histogram named `name` matching `filter`.
    pub fn histogram(&self, name: &str, filter: &[(&str, &str)]) -> Option<&HistogramSummary> {
        let mut matches = self.select(name, filter);
        let first = matches.next()?;
        assert!(
            matches.next().is_none(),
            "histogram {name} matched more than one series for {filter:?}"
        );
        match &first.value {
            MetricValue::Histogram(h) => Some(h),
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Distinct values of label `key` across all series, sorted
    /// numeric-aware.
    pub fn label_values(&self, key: &str) -> Vec<String> {
        let mut values: Vec<String> = self
            .series
            .iter()
            .filter_map(|s| s.labels.get(key).map(str::to_owned))
            .collect();
        values.sort_by(|a, b| value_cmp(a, b));
        values.dedup();
        values
    }

    /// All series named `name` whose labels match every `(key, value)`
    /// pair in `filter` (an empty filter matches every series of that
    /// name). Snapshot order, i.e. sorted by labels.
    pub fn select<'s>(
        &'s self,
        name: &str,
        filter: &[(&str, &str)],
    ) -> impl Iterator<Item = &'s MetricSeries> + 's {
        // Own the query so the iterator borrows only the snapshot.
        let name = name.to_owned();
        let filter: Vec<(String, String)> = filter
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        self.series.iter().filter(move |s| {
            s.name == name
                && filter
                    .iter()
                    .all(|(k, v)| s.labels.get(k) == Some(v.as_str()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_canonical_order_is_insertion_independent() {
        let a = Labels::new().with("rank", 3).with("algorithm", "CD");
        let b = Labels::new().with("algorithm", "CD").with("rank", 3);
        assert_eq!(a, b);
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["algorithm", "rank"]);
    }

    #[test]
    #[should_panic(expected = "unknown label key")]
    fn unknown_label_key_panics() {
        let _ = Labels::new().with("hostname", "x");
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn duplicate_label_key_panics() {
        let _ = Labels::new().with("rank", 1).with("rank", 2);
    }

    #[test]
    fn label_ordering_is_numeric_for_integer_values() {
        let r2 = Labels::new().with("rank", 2);
        let r10 = Labels::new().with("rank", 10);
        assert!(r2 < r10, "rank=2 must sort before rank=10");
    }

    #[test]
    fn shard_counters_accumulate_and_merge() {
        let mut a = MetricShard::new();
        let mut b = MetricShard::new();
        let l = |r: usize| Labels::new().with("rank", r);
        a.incr("armine.counting.inserts", l(0), 5);
        a.incr("armine.counting.inserts", l(0), 2);
        b.incr("armine.counting.inserts", l(0), 10);
        b.incr("armine.counting.inserts", l(1), 1);
        a.merge(b);
        let snap = a.snapshot(&Labels::new());
        assert_eq!(snap.counter_sum("armine.counting.inserts", &[]), 18);
        assert_eq!(
            snap.counter_sum("armine.counting.inserts", &[("rank", "0")]),
            17
        );
        assert_eq!(snap.len(), 2, "merge must keep every labeled series");
    }

    #[test]
    #[should_panic(expected = "two shards")]
    fn merging_colliding_gauges_panics() {
        let mut a = MetricShard::new();
        let mut b = MetricShard::new();
        a.set_gauge("armine.run.response_seconds", Labels::new(), 1.0);
        b.set_gauge("armine.run.response_seconds", Labels::new(), 2.0);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "already recorded as a")]
    fn kind_confusion_panics() {
        let mut s = MetricShard::new();
        s.incr("x", Labels::new(), 1);
        s.set_gauge("x", Labels::new(), 1.0);
    }

    #[test]
    fn repeated_equal_observations_all_count() {
        // Regression: the old "freshly inserted" guard in observe matched
        // a pre-existing single-entry histogram with an equal value and
        // silently dropped the second observation.
        let mut s = MetricShard::new();
        s.observe("h", Labels::new(), 3.5);
        s.observe("h", Labels::new(), 3.5);
        s.observe("h", Labels::new(), 3.5);
        let snap = s.snapshot(&Labels::new());
        let h = snap.histogram("h", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 10.5);
        assert_eq!((h.min, h.max), (3.5, 3.5));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_gauge_panics() {
        let mut s = MetricShard::new();
        s.set_gauge("g", Labels::new(), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_observation_panics() {
        let mut s = MetricShard::new();
        s.observe("h", Labels::new(), f64::INFINITY);
    }

    #[test]
    fn label_ordering_is_consistent_with_equality() {
        // "01" and "1" are numerically equal but distinct strings: Ord
        // must not return Equal (it breaks ties lexicographically), or
        // the shard's BTreeMap would conflate the two series.
        let a = Labels::new().with("rank", "01");
        let b = Labels::new().with("rank", "1");
        assert_ne!(a, b);
        assert_ne!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        let mut s = MetricShard::new();
        s.incr("c", a, 1);
        s.incr("c", b, 1);
        assert_eq!(s.len(), 2, "distinct label strings must stay distinct");
    }

    #[test]
    fn histogram_observe_and_merge() {
        let mut a = MetricShard::new();
        a.observe("h", Labels::new(), 2.0);
        a.observe("h", Labels::new(), 4.0);
        let mut b = MetricShard::new();
        b.observe("h", Labels::new(), 9.0);
        a.merge(b);
        let snap = a.snapshot(&Labels::new());
        let h = snap.histogram("h", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15.0);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 9.0);
        assert_eq!(h.mean(), 5.0);
    }

    #[test]
    fn snapshot_stamps_base_labels_on_every_series() {
        let mut s = MetricShard::new();
        s.incr("c", Labels::new().with("rank", 0), 1);
        s.set_gauge("g", Labels::new(), 0.5);
        let base = Labels::new().with("algorithm", "CD").with("procs", 8);
        let snap = s.snapshot(&base);
        for series in snap.series() {
            assert_eq!(series.labels.get("algorithm"), Some("CD"));
            assert_eq!(series.labels.get("procs"), Some("8"));
        }
    }

    #[test]
    fn snapshot_series_are_sorted_and_queryable() {
        let mut s = MetricShard::new();
        for rank in [10usize, 2, 0] {
            s.set_gauge("g", Labels::new().with("rank", rank), rank as f64);
        }
        let snap = s.snapshot(&Labels::new());
        let by_rank = snap.gauges_by("g", "rank");
        assert_eq!(by_rank, vec![(0, 0.0), (2, 2.0), (10, 10.0)]);
        assert_eq!(snap.label_values("rank"), vec!["0", "2", "10"]);
        assert_eq!(snap.gauge("g", &[("rank", "2")]), Some(2.0));
        assert_eq!(snap.gauge("g", &[("rank", "7")]), None);
    }

    #[test]
    #[should_panic(expected = "more than one")]
    fn underconstrained_gauge_query_panics() {
        let mut s = MetricShard::new();
        s.set_gauge("g", Labels::new().with("rank", 0), 1.0);
        s.set_gauge("g", Labels::new().with("rank", 1), 2.0);
        s.snapshot(&Labels::new()).gauge("g", &[]);
    }
}
