//! Schema-versioned JSON export and import for metrics snapshots.
//!
//! The document layout (schema version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "benchmark": "parallel_mine",
//!   "context": {"transactions": 480, "host_cores": 1},
//!   "metrics": [
//!     {"name": "armine.counting.inserts", "kind": "counter",
//!      "labels": {"algorithm": "CD", "rank": "0", "pass": "2"},
//!      "value": 1234},
//!     {"name": "armine.run.response_seconds", "kind": "gauge",
//!      "labels": {"algorithm": "CD"}, "value": 0.0375},
//!     {"name": "armine.run.rank_clock_seconds", "kind": "histogram",
//!      "labels": {}, "count": 8, "sum": 0.29, "min": 0.031, "max": 0.04}
//!   ]
//! }
//! ```
//!
//! Numbers round-trip exactly: counters serialize as `u64` decimals and
//! parse back into [`JsonValue::UInt`]; floats use Rust's `Display`,
//! which prints the shortest decimal that re-parses to the same bits.
//! Labels always serialize as strings and appear in canonical
//! [`LABEL_KEYS`](crate::LABEL_KEYS) order; series appear in snapshot
//! order — the same run serializes to the same bytes.

use crate::{HistogramSummary, Labels, MetricSeries, MetricValue, MetricsSnapshot, LABEL_KEYS};
use std::fmt::Write as _;
use std::path::Path;

/// The schema version this crate writes, and the only one it accepts.
pub const SCHEMA_VERSION: u64 = 1;

/// A dynamically typed JSON value.
///
/// Integers keep their exact representation: a non-negative literal
/// parses as [`UInt`](JsonValue::UInt) (so `u64` counters survive the
/// round trip beyond 2^53), a negative one as [`Int`](JsonValue::Int),
/// and anything with a fraction or exponent as
/// [`Float`](JsonValue::Float).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A fractional or exponent-bearing number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered fields.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The numeric value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, for non-negative integer variants.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The named field of an object.
    pub fn field(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements.
    pub fn elements(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => out.push_str(&fmt_f64(*v)),
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Pretty-prints the value (2-space indent, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` with Rust's shortest-round-trip `Display` — parsing
/// the result back yields a bit-identical `f64`. Panics on NaN/Inf:
/// JSON has no non-finite literals, and any placeholder would produce a
/// document [`BenchDocument::parse`] rejects. The recording guards in
/// [`MetricShard`](crate::MetricShard) keep such values out of
/// snapshots in the first place.
pub fn fmt_f64(v: f64) -> String {
    assert!(v.is_finite(), "cannot serialize non-finite f64 {v} as JSON");
    format!("{v}")
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {word}"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let simple = match self.peek() {
                        Some(b'"') => Some('"'),
                        Some(b'\\') => Some('\\'),
                        Some(b'/') => Some('/'),
                        Some(b'n') => Some('\n'),
                        Some(b't') => Some('\t'),
                        Some(b'r') => Some('\r'),
                        Some(b'b') => Some('\u{8}'),
                        Some(b'f') => Some('\u{c}'),
                        Some(b'u') => None,
                        _ => return self.err("bad escape"),
                    };
                    match simple {
                        Some(c) => {
                            out.push(c);
                            self.pos += 1;
                        }
                        None => out.push(self.unicode_escape()?),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| ParseError {
                        message: "invalid utf-8".into(),
                        offset: self.pos,
                    })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Decodes a `\uXXXX` escape with `pos` on the `u`, combining a
    /// surrogate pair (`\uD83D\uDE00` → 😀) into its single code point,
    /// as RFC 8259 §7 requires. Leaves `pos` one past the last hex digit.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let unit = self.hex4()?;
        let code = if (0xD800..=0xDBFF).contains(&unit) {
            if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                return self.err("high surrogate not followed by a \\u escape");
            }
            self.pos += 1;
            let low = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return self.err("high surrogate not followed by a low surrogate");
            }
            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
        } else {
            unit
        };
        // from_u32 fails only on a lone low surrogate here.
        char::from_u32(code).map_or_else(|| self.err("bad \\u escape"), Ok)
    }

    /// Consumes `u` plus exactly four hex digits (`pos` on the `u`),
    /// returning the UTF-16 code unit.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let unit = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok());
        match unit {
            Some(v) => {
                self.pos += 5;
                Ok(v)
            }
            None => self.err("bad \\u escape"),
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(JsonValue::Float(v)),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }
}

/// Parses a JSON document into a [`JsonValue`] tree.
pub fn parse_json(input: &str) -> Result<JsonValue, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing data after document");
    }
    Ok(value)
}

/// A schema-versioned benchmark document: a named snapshot plus free-form
/// context fields (dataset size, host cores, …). This is the one format
/// every `exp_*` bench and the CLI `--metrics-json` flag emit.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDocument {
    /// Benchmark/run identifier (e.g. `"parallel_mine"`).
    pub benchmark: String,
    /// Free-form context fields, serialized in insertion order.
    pub context: Vec<(String, JsonValue)>,
    /// The metrics payload.
    pub snapshot: MetricsSnapshot,
}

impl BenchDocument {
    /// A document with no context fields.
    pub fn new(benchmark: &str, snapshot: MetricsSnapshot) -> Self {
        BenchDocument {
            benchmark: benchmark.to_owned(),
            context: Vec::new(),
            snapshot,
        }
    }

    /// Appends a context field (builder style).
    #[must_use]
    pub fn with_context(mut self, key: &str, value: JsonValue) -> Self {
        self.context.push((key.to_owned(), value));
        self
    }

    /// Serializes to the schema-version-1 layout.
    pub fn to_json(&self) -> String {
        let metrics = self
            .snapshot
            .series()
            .iter()
            .map(|series| {
                let labels = JsonValue::Object(
                    series
                        .labels
                        .iter()
                        .map(|(k, v)| (k.to_owned(), JsonValue::Str(v.to_owned())))
                        .collect(),
                );
                let mut fields = vec![
                    ("name".to_owned(), JsonValue::Str(series.name.clone())),
                    (
                        "kind".to_owned(),
                        JsonValue::Str(series.value.kind().to_owned()),
                    ),
                    ("labels".to_owned(), labels),
                ];
                match series.value {
                    MetricValue::Counter(v) => {
                        fields.push(("value".to_owned(), JsonValue::UInt(v)));
                    }
                    MetricValue::Gauge(v) => {
                        fields.push(("value".to_owned(), JsonValue::Float(v)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("count".to_owned(), JsonValue::UInt(h.count)));
                        fields.push(("sum".to_owned(), JsonValue::Float(h.sum)));
                        fields.push(("min".to_owned(), JsonValue::Float(h.min)));
                        fields.push(("max".to_owned(), JsonValue::Float(h.max)));
                    }
                }
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![
            ("schema_version".to_owned(), JsonValue::UInt(SCHEMA_VERSION)),
            (
                "benchmark".to_owned(),
                JsonValue::Str(self.benchmark.clone()),
            ),
            (
                "context".to_owned(),
                JsonValue::Object(self.context.clone()),
            ),
            ("metrics".to_owned(), JsonValue::Array(metrics)),
        ])
        .to_json()
    }

    /// Parses and validates a schema-version-1 document: the version must
    /// match, every label key must be in the taxonomy, and each metric's
    /// fields must be consistent with its declared kind.
    pub fn parse(input: &str) -> Result<BenchDocument, String> {
        let doc = parse_json(input).map_err(|e| e.to_string())?;
        let version = doc
            .field("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this reader handles {SCHEMA_VERSION})"
            ));
        }
        let benchmark = doc
            .field("benchmark")
            .and_then(JsonValue::as_str)
            .ok_or("missing benchmark")?
            .to_owned();
        let context = match doc.field("context") {
            None => Vec::new(),
            Some(JsonValue::Object(fields)) => fields.clone(),
            Some(_) => return Err("context must be an object".into()),
        };
        let metrics = doc
            .field("metrics")
            .and_then(JsonValue::elements)
            .ok_or("missing metrics array")?;
        let mut series = Vec::with_capacity(metrics.len());
        for entry in metrics {
            series.push(parse_series(entry)?);
        }
        Ok(BenchDocument {
            benchmark,
            context,
            snapshot: MetricsSnapshot::from_series(series),
        })
    }

    /// Writes `to_json()` to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn parse_series(entry: &JsonValue) -> Result<MetricSeries, String> {
    let name = entry
        .field("name")
        .and_then(JsonValue::as_str)
        .ok_or("metric missing name")?
        .to_owned();
    let kind = entry
        .field("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("metric {name} missing kind"))?;
    let mut labels = Labels::new();
    match entry.field("labels") {
        Some(JsonValue::Object(fields)) => {
            for (key, value) in fields {
                if !LABEL_KEYS.contains(&key.as_str()) {
                    return Err(format!(
                        "metric {name} has unknown label key {key:?} (taxonomy: {LABEL_KEYS:?})"
                    ));
                }
                let value = value
                    .as_str()
                    .ok_or_else(|| format!("metric {name} label {key} must be a string"))?;
                labels = labels.with(key, value);
            }
        }
        Some(_) => return Err(format!("metric {name} labels must be an object")),
        None => return Err(format!("metric {name} missing labels")),
    }
    let value = match kind {
        "counter" => MetricValue::Counter(
            entry
                .field("value")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("counter {name} needs an unsigned integer value"))?,
        ),
        "gauge" => MetricValue::Gauge(
            entry
                .field("value")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("gauge {name} needs a numeric value"))?,
        ),
        "histogram" => {
            let num = |field: &str| {
                entry
                    .field(field)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("histogram {name} needs numeric {field}"))
            };
            MetricValue::Histogram(HistogramSummary {
                count: entry
                    .field("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("histogram {name} needs unsigned count"))?,
                sum: num("sum")?,
                min: num("min")?,
                max: num("max")?,
            })
        }
        other => return Err(format!("metric {name} has unknown kind {other:?}")),
    };
    Ok(MetricSeries {
        name,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricShard;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut shard = MetricShard::new();
        for rank in 0..3u64 {
            shard.incr(
                "armine.counting.inserts",
                Labels::new().with("rank", rank),
                100 + rank,
            );
            shard.set_gauge(
                "armine.rank.busy_seconds",
                Labels::new().with("rank", rank),
                0.1 * (rank as f64) + 0.037,
            );
        }
        shard.set_gauge(
            "armine.run.response_seconds",
            Labels::new(),
            0.375_000_000_1,
        );
        for v in [0.03, 0.041, 0.0375] {
            shard.observe("armine.run.rank_clock_seconds", Labels::new(), v);
        }
        // A counter beyond 2^53 must survive the round trip exactly.
        shard.incr(
            "armine.counting.traversal_steps",
            Labels::new(),
            (1 << 60) + 7,
        );
        shard.snapshot(&Labels::new().with("algorithm", "CD").with("procs", 8))
    }

    #[test]
    fn document_round_trips_exactly() {
        let doc = BenchDocument::new("unit", sample_snapshot())
            .with_context("transactions", JsonValue::UInt(480))
            .with_context("min_support", JsonValue::Float(0.01));
        let text = doc.to_json();
        let parsed = BenchDocument::parse(&text).expect("round-trip parse");
        assert_eq!(parsed, doc);
        // Serialization is a fixed point: same bytes on the second trip.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for v in [0.1, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX, 0.0375] {
            let text = fmt_f64(v);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn unknown_label_key_is_rejected() {
        let text = r#"{"schema_version": 1, "benchmark": "x", "context": {},
            "metrics": [{"name": "n", "kind": "counter",
                         "labels": {"hostname": "a"}, "value": 1}]}"#;
        let err = BenchDocument::parse(text).unwrap_err();
        assert!(err.contains("unknown label key"), "{err}");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = r#"{"schema_version": 2, "benchmark": "x", "context": {}, "metrics": []}"#;
        let err = BenchDocument::parse(text).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
    }

    #[test]
    fn kind_value_mismatch_is_rejected() {
        let text = r#"{"schema_version": 1, "benchmark": "x", "context": {},
            "metrics": [{"name": "n", "kind": "counter",
                         "labels": {}, "value": 1.5}]}"#;
        let err = BenchDocument::parse(text).unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
    }

    #[test]
    fn labels_serialize_in_canonical_order() {
        let mut shard = MetricShard::new();
        shard.incr("c", Labels::new().with("pass", 2).with("rank", 1), 1);
        let snap = shard.snapshot(&Labels::new().with("algorithm", "CD"));
        let doc = BenchDocument::new("order", snap).to_json();
        let algorithm = doc.find("\"algorithm\"").unwrap();
        let rank = doc.find("\"rank\"").unwrap();
        let pass = doc.find("\"pass\"").unwrap();
        assert!(
            algorithm < rank && rank < pass,
            "labels out of canonical order:\n{doc}"
        );
    }

    #[test]
    fn parser_handles_escapes_nesting_and_numbers() {
        let text = r#"{"a": [1, -2, 3.5, 1e3, true, false, null],
                       "s": "line\nbreak \"quoted\" é"}"#;
        let v = parse_json(text).unwrap();
        assert_eq!(
            v.field("a").unwrap().elements().unwrap(),
            &[
                JsonValue::UInt(1),
                JsonValue::Int(-2),
                JsonValue::Float(3.5),
                JsonValue::Float(1e3),
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null,
            ]
        );
        assert_eq!(
            v.field("s").unwrap().as_str().unwrap(),
            "line\nbreak \"quoted\" é"
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_float_cannot_serialize() {
        let _ = fmt_f64(f64::NAN);
    }

    #[test]
    fn surrogate_pairs_decode_to_one_char() {
        // Python's json.dumps("😀") emits exactly this pair.
        let v = parse_json("\"\\ud83d\\ude00 ok\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "😀 ok");
    }

    #[test]
    fn malformed_surrogates_are_rejected() {
        for text in [
            r#""\ud83d""#,       // high surrogate at end of string
            r#""\ud83dx""#,      // high surrogate followed by a plain char
            r#""\ud83d\n""#,     // high surrogate followed by another escape
            r#""\ud83d\ud83d""#, // high surrogate followed by another high
            r#""\ude00""#,       // lone low surrogate
            r#""\u12g4""#,       // non-hex digit
            r#""\u+123""#,       // sign accepted by from_str_radix, not JSON
        ] {
            assert!(parse_json(text).is_err(), "{text} should be rejected");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("").is_err());
    }
}
