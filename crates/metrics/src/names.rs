//! Canonical metric names.
//!
//! Naming convention: `armine.<layer>.<noun>[_<unit>]` where `<layer>`
//! is the ledger a series generalizes — `counting` (the
//! `CounterStats` op ledger), `rank` (the simulator's `RankStats`),
//! `wall` (native `WallTimings`), `pass` (per-pass aggregates), `run`
//! (whole-run scalars). Units are spelled in the name (`_seconds`,
//! `_bytes`) so a reader never guesses; unitless counts carry none.

/// Prefix for `CounterStats` fields: `armine.counting.<field>`.
pub const COUNTING_PREFIX: &str = "armine.counting.";
/// Prefix for `RankStats` series: `armine.rank.<field>[_seconds]`.
pub const RANK_PREFIX: &str = "armine.rank.";
/// Prefix for native `WallTimings` series: `armine.wall.<field>_seconds`.
pub const WALL_PREFIX: &str = "armine.wall.";

/// Per-(rank, pass) native wall time of one pass (gauge, seconds).
pub const WALL_PASS_SECONDS: &str = "armine.wall.pass_seconds";

/// Candidates generated in a pass (counter, labeled `pass`).
pub const PASS_CANDIDATES: &str = "armine.pass.candidates";
/// Candidates this rank actually counted in a pass (counter).
pub const PASS_COUNTED_CANDIDATES: &str = "armine.pass.counted_candidates";
/// Frequent itemsets found in a pass (counter, labeled `pass`).
pub const PASS_FREQUENT: &str = "armine.pass.frequent_itemsets";
/// Database scans performed in a pass (counter, labeled `pass`).
pub const PASS_DB_SCANS: &str = "armine.pass.db_scans";
/// Virtual/wall end-to-end time of a pass (gauge, seconds, labeled `pass`).
pub const PASS_TIME_SECONDS: &str = "armine.pass.time_seconds";
/// Candidate-count imbalance across ranks in a pass (gauge, labeled `pass`).
pub const PASS_CANDIDATE_IMBALANCE: &str = "armine.pass.candidate_imbalance";

/// Whole-run response time: the slowest rank's clock (gauge, seconds).
pub const RUN_RESPONSE_SECONDS: &str = "armine.run.response_seconds";
/// Distribution of final per-rank clocks (histogram, seconds).
pub const RUN_RANK_CLOCK_SECONDS: &str = "armine.run.rank_clock_seconds";
/// Total frequent itemsets in the mined lattice (counter).
pub const RUN_FREQUENT: &str = "armine.run.frequent_itemsets";
/// Run-total retransmitted messages under a fault plan (counter).
pub const RUN_RETRANSMITS: &str = "armine.run.retransmits";
/// Run-total ack timeouts under a fault plan (counter).
pub const RUN_TIMEOUTS: &str = "armine.run.timeouts";
/// Run-total pass recoveries after crashes (counter).
pub const RUN_RECOVERIES: &str = "armine.run.recoveries";
/// Speedup relative to the P=1 baseline of the same backend (gauge).
pub const RUN_SPEEDUP: &str = "armine.run.speedup";
/// Response-time overhead vs the fault-free baseline, percent (gauge).
pub const RUN_OVERHEAD_PCT: &str = "armine.run.overhead_pct";

/// `armine.counting.<field>` for a `CounterStats` field name.
pub fn counting(field: &str) -> String {
    format!("{COUNTING_PREFIX}{field}")
}

/// `armine.rank.<field>_seconds` for a `RankStats` time field.
pub fn rank_time(field: &str) -> String {
    format!("{RANK_PREFIX}{field}_seconds")
}

/// `armine.rank.<field>` for a `RankStats` counter field.
pub fn rank_counter(field: &str) -> String {
    format!("{RANK_PREFIX}{field}")
}

/// `armine.wall.<field>_seconds` for a `WallTimings` category.
pub fn wall_time(field: &str) -> String {
    format!("{WALL_PREFIX}{field}_seconds")
}
