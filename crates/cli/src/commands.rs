//! The `gen`, `mine`, `parallel`, and `model` subcommands.

use crate::args::{ArgError, Args};
use armine_core::apriori::{Apriori, AprioriParams, MinSupport};
use armine_core::counter::CounterBackend;
use armine_core::io::{read_transactions_auto, write_transactions_binary, write_transactions_file};
use armine_core::model::{
    cd_time, dd_time, hd_beats_cd_window, hd_time, idd_time, serial_time, CostParams, Workload,
};
use armine_core::rules::generate_rules;
use armine_core::stats::dataset_stats;
use armine_core::summaries::{closed_itemsets, maximal_itemsets};
use armine_datagen::QuestParams;
use armine_mpsim::{ClusterProfile, ExecBackend, FaultPlan, MachineProfile};
use armine_parallel::{Algorithm, ParallelMiner, ParallelParams, PlacementPolicy};
use std::io::Write;

type Out<'a> = &'a mut dyn Write;

/// Usage text printed by `armine help`.
pub const USAGE: &str = "\
armine — scalable parallel association-rule mining (Han/Karypis/Kumar, SIGMOD'97)

USAGE:
  armine gen      --out FILE --transactions N [--items N] [--patterns N]
                  [--avg-len T] [--pattern-len I] [--seed S] [--format text|binary]
  armine mine     --input FILE --min-support FRAC [--min-count N]
                  [--max-k K] [--rules MIN_CONF] [--top N]
                  [--counter hashtree|trie|vertical]
  armine parallel --input FILE --algorithm ALGO --procs P --min-support FRAC
                  [--machine t3e|sp2|ideal] [--group-threshold M]
                  [--page-size N] [--memory-capacity N] [--max-k K]
                  [--eld-permille N] [--buckets B] [--filter-passes N]
                  [--counter hashtree|trie|vertical] [--backend sim|native]
                  [--cluster FILE]      (heterogeneous cluster profile: a
                                         base machine plus per-rank speed
                                         factors; see experiments/clusters)
                  [--placement static|adaptive]
                                        (adaptive re-scores per-rank work
                                         shares at every pass boundary)
                  [--fault-plan FILE]   (see experiments/faults/*.plan)
                  [--metrics-json FILE] (write the run's labeled metrics
                                         snapshot as schema-versioned JSON)
  armine model    --n N --m M --c C --s S --procs P [--g G] [--machine t3e|sp2]
  armine stats    --input FILE [--top N]
  armine summary  --input FILE --min-support FRAC [--max-k K] [--kind maximal|closed]
  armine help

ALGO: cd | npa | dd | dd-comm | idd | idd-1src | hd | hpa | pdm

BACKEND: sim (default) prices the run on a virtual clock; native runs the
same formulation at full speed on host threads and reports measured
wall-clock times. Fault plans run on either backend: sim injects faults
on the virtual clock, native injects them for real (thread deaths,
sleeps, retransmit timers) and recovers identically.
";

/// Parses the subcommand and runs it.
pub fn dispatch(argv: &[String], out: Out) -> Result<(), Box<dyn std::error::Error>> {
    let (cmd, rest) = argv
        .split_first()
        .ok_or_else(|| ArgError("no subcommand given".into()))?;
    match cmd.as_str() {
        "gen" => cmd_gen(&Args::parse(rest)?, out),
        "mine" => cmd_mine(&Args::parse(rest)?, out),
        "parallel" => cmd_parallel(&Args::parse(rest)?, out),
        "model" => cmd_model(&Args::parse(rest)?, out),
        "stats" => cmd_stats(&Args::parse(rest)?, out),
        "summary" => cmd_summary(&Args::parse(rest)?, out),
        "help" | "--help" | "-h" => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(ArgError(format!("unknown subcommand {other:?}")).into()),
    }
}

fn cmd_gen(args: &Args, out: Out) -> Result<(), Box<dyn std::error::Error>> {
    let path: String = args.required("out")?;
    let params = QuestParams::paper_t15_i6()
        .num_transactions(args.required("transactions")?)
        .num_items(args.or_default("items", 1000)?)
        .num_patterns(args.or_default("patterns", 2000)?)
        .avg_transaction_len(args.or_default("avg-len", 15.0)?)
        .avg_pattern_len(args.or_default("pattern-len", 6.0)?)
        .seed(args.or_default("seed", 0)?);
    let format: String = args.or_default("format", "text".into())?;
    args.finish()?;
    let dataset = params.generate();
    match format.as_str() {
        "text" => write_transactions_file(&path, &dataset)?,
        "binary" => write_transactions_binary(std::fs::File::create(&path)?, &dataset)?,
        other => return Err(ArgError(format!("unknown format {other:?}")).into()),
    }
    writeln!(
        out,
        "wrote {} ({} transactions, {} items, avg length {:.1}) to {path}",
        params.name(),
        dataset.len(),
        dataset.num_items(),
        dataset.avg_transaction_len()
    )?;
    Ok(())
}

fn min_support(args: &Args) -> Result<MinSupport, ArgError> {
    match (
        args.optional::<f64>("min-support")?,
        args.optional::<u64>("min-count")?,
    ) {
        (Some(_), Some(_)) => Err(ArgError(
            "give either --min-support or --min-count, not both".into(),
        )),
        (Some(f), None) => Ok(MinSupport::Fraction(f)),
        (None, Some(c)) => Ok(MinSupport::Count(c)),
        (None, None) => Err(ArgError("need --min-support FRAC or --min-count N".into())),
    }
}

fn cmd_mine(args: &Args, out: Out) -> Result<(), Box<dyn std::error::Error>> {
    let input: String = args.required("input")?;
    let support = min_support(args)?;
    let max_k: Option<usize> = args.optional("max-k")?;
    let rules_conf: Option<f64> = args.optional("rules")?;
    let top: usize = args.or_default("top", 20)?;
    let counter = parse_counter(args)?;
    args.finish()?;

    let dataset = read_transactions_auto(&input)?;
    let mut params = AprioriParams::with_min_support_count(0);
    params.min_support = support;
    params.max_k = max_k;
    params.counter = counter;
    let started = std::time::Instant::now();
    let run = Apriori::new(params).mine(dataset.transactions());
    writeln!(
        out,
        "{} transactions, min count {}: {} frequent itemsets in {} passes ({:.2}s)",
        dataset.len(),
        run.min_count,
        run.frequent.len(),
        run.passes.len(),
        started.elapsed().as_secs_f64()
    )?;
    for pass in &run.passes {
        writeln!(
            out,
            "  pass {:>2}: {:>8} candidates -> {:>8} frequent ({} scan{})",
            pass.k,
            pass.candidates,
            pass.frequent,
            pass.db_scans,
            if pass.db_scans == 1 { "" } else { "s" }
        )?;
    }
    if let Some(conf) = rules_conf {
        let mut rules = generate_rules(&run.frequent, conf);
        rules.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap()
                .then(b.support_count.cmp(&a.support_count))
        });
        writeln!(
            out,
            "{} rules at confidence >= {:.0}%:",
            rules.len(),
            conf * 100.0
        )?;
        for rule in rules.iter().take(top) {
            writeln!(out, "  {rule}")?;
        }
    }
    Ok(())
}

fn parse_algorithm(args: &Args) -> Result<Algorithm, ArgError> {
    let name: String = args.required("algorithm")?;
    Ok(match name.as_str() {
        "cd" => Algorithm::Cd,
        "npa" => Algorithm::Npa,
        "dd" => Algorithm::Dd,
        "dd-comm" => Algorithm::DdComm,
        "idd" => Algorithm::Idd,
        "idd-1src" => Algorithm::IddSingleSource,
        "hd" => Algorithm::Hd {
            group_threshold: args.or_default("group-threshold", 1000)?,
        },
        "hpa" => Algorithm::Hpa {
            eld_permille: args.or_default("eld-permille", 0)?,
        },
        "pdm" => Algorithm::Pdm {
            buckets: args.or_default("buckets", 1 << 15)?,
            filter_passes: args.or_default("filter-passes", 1)?,
        },
        other => return Err(ArgError(format!("unknown algorithm {other:?}"))),
    })
}

fn parse_counter(args: &Args) -> Result<CounterBackend, ArgError> {
    let name: String = args.or_default("counter", "hashtree".into())?;
    CounterBackend::parse(&name).ok_or_else(|| {
        let valid: Vec<&str> = CounterBackend::ALL.iter().map(|b| b.name()).collect();
        ArgError(format!(
            "unknown counter backend {name:?} (valid: {})",
            valid.join(", ")
        ))
    })
}

fn lookup_machine(name: &str) -> Result<MachineProfile, ArgError> {
    MachineProfile::by_key(name)
        .ok_or_else(|| ArgError(format!("unknown machine {name:?} (valid: t3e, sp2, ideal)")))
}

fn parse_placement(args: &Args) -> Result<PlacementPolicy, ArgError> {
    let name: String = args.or_default("placement", "static".into())?;
    PlacementPolicy::parse(&name).ok_or_else(|| {
        let valid: Vec<&str> = PlacementPolicy::ALL.iter().map(|p| p.name()).collect();
        ArgError(format!(
            "unknown placement {name:?} (valid: {})",
            valid.join(", ")
        ))
    })
}

fn cmd_parallel(args: &Args, out: Out) -> Result<(), Box<dyn std::error::Error>> {
    let input: String = args.required("input")?;
    let procs: usize = args.required("procs")?;
    let algorithm = parse_algorithm(args)?;
    let machine_arg: Option<String> = args.optional("machine")?;
    let cluster_path: Option<String> = args.optional("cluster")?;
    let support = min_support(args)?;
    let mut params = ParallelParams::with_min_support_count(0);
    params.min_support = support;
    params.page_size = args.or_default("page-size", 1000)?;
    params.max_k = args.optional("max-k")?;
    params.memory_capacity = args.optional("memory-capacity")?;
    params.counter = parse_counter(args)?;
    params.placement = parse_placement(args)?;
    let backend_name: String = args.or_default("backend", "sim".into())?;
    let backend = ExecBackend::parse(&backend_name).ok_or_else(|| {
        let valid: Vec<&str> = ExecBackend::ALL.iter().map(|b| b.name()).collect();
        ArgError(format!(
            "unknown backend {backend_name:?} (valid: {})",
            valid.join(", ")
        ))
    })?;
    let plan_path: Option<String> = args.optional("fault-plan")?;
    let metrics_path: Option<String> = args.optional("metrics-json")?;
    args.finish()?;
    let plan = match &plan_path {
        Some(path) => Some(FaultPlan::load(path).map_err(ArgError)?),
        None => None,
    };
    let cluster = match (&cluster_path, &machine_arg) {
        (Some(_), Some(_)) => {
            return Err(ArgError("give either --machine or --cluster, not both".into()).into())
        }
        (Some(path), None) => {
            let cluster = ClusterProfile::load(path).map_err(ArgError)?;
            cluster.validate_for_procs(procs).map_err(ArgError)?;
            cluster
        }
        (None, name) => ClusterProfile::uniform(lookup_machine(name.as_deref().unwrap_or("t3e"))?),
    };

    let dataset = read_transactions_auto(&input)?;
    let machine_name = if cluster.is_uniform() {
        cluster.base().name.clone()
    } else {
        format!("{} [{}]", cluster.base().name, cluster.label())
    };
    let miner = ParallelMiner::new(procs).cluster(cluster).backend(backend);
    let started = std::time::Instant::now();
    let run = match &plan {
        Some(plan) => miner.mine_with_faults(algorithm, &dataset, &params, Some(plan))?,
        None => miner.mine(algorithm, &dataset, &params),
    };
    match backend {
        ExecBackend::Sim => {
            writeln!(
                out,
                "{} on {} simulated {} processors ({} transactions, min count {}):",
                run.algorithm,
                procs,
                machine_name,
                dataset.len(),
                run.min_count
            )?;
            writeln!(
                out,
                "  virtual response time {:.3} ms   (wall {:.2}s, {} frequent itemsets)",
                run.response_time * 1e3,
                started.elapsed().as_secs_f64(),
                run.frequent.len()
            )?;
        }
        ExecBackend::Native => {
            writeln!(
                out,
                "{} on {} native worker threads ({} transactions, min count {}):",
                run.algorithm,
                procs,
                dataset.len(),
                run.min_count
            )?;
            writeln!(
                out,
                "  measured response time {:.3} ms   (wall {:.2}s, {} frequent itemsets)",
                run.response_time * 1e3,
                started.elapsed().as_secs_f64(),
                run.frequent.len()
            )?;
            let counting: f64 = run.wall.iter().map(|w| w.counting).sum();
            let exchange: f64 = run.wall.iter().map(|w| w.exchange).sum();
            let io: f64 = run.wall.iter().map(|w| w.io).sum();
            writeln!(
                out,
                "  per-rank wall time: {:.3} ms counting, {:.3} ms exchange, {:.3} ms io (summed)",
                counting * 1e3,
                exchange * 1e3,
                io * 1e3
            )?;
        }
    }
    writeln!(
        out,
        "  {} MB moved, compute imbalance {:.1}%",
        run.total_bytes() / 1_000_000,
        run.compute_imbalance() * 100.0
    )?;
    if let Some(plan) = &plan {
        let crashed = plan.crashed_ranks();
        writeln!(
            out,
            "  faults: {} retransmits, {} detector timeouts, {} recoveries ({} crashed of {} ranks)",
            run.total_retransmits(),
            run.total_timeouts(),
            run.total_recoveries(),
            crashed.len(),
            procs
        )?;
    }
    for pass in &run.passes {
        writeln!(
            out,
            "  pass {:>2}: {:>8} candidates, grid {}x{}, {:>9.3} ms",
            pass.k,
            pass.candidates,
            pass.grid.0,
            pass.grid.1,
            pass.time * 1e3
        )?;
    }
    if let Some(path) = &metrics_path {
        let doc = armine_metrics::json::BenchDocument::new("parallel_mine", run.metrics.clone())
            .with_context("input", armine_metrics::json::JsonValue::Str(input.clone()))
            .with_context(
                "transactions",
                armine_metrics::json::JsonValue::UInt(dataset.len() as u64),
            );
        doc.write_to(std::path::Path::new(path))?;
        writeln!(out, "  metrics snapshot written to {path}")?;
    }
    Ok(())
}

fn cmd_model(args: &Args, out: Out) -> Result<(), Box<dyn std::error::Error>> {
    let w = Workload {
        n: args.required("n")?,
        m: args.required("m")?,
        c: args.required("c")?,
        s: args.required("s")?,
    };
    let procs: f64 = args.required("procs")?;
    let g: f64 = args.or_default("g", (procs).sqrt().round())?;
    let machine: String = args.or_default("machine", "t3e".into())?;
    args.finish()?;
    let p = match machine.as_str() {
        "t3e" => CostParams::cray_t3e(),
        "sp2" => CostParams::ibm_sp2(),
        other => return Err(ArgError(format!("unknown machine {other:?}")).into()),
    };
    writeln!(
        out,
        "Section IV closed forms (N={}, M={}, C={}, S={}, P={}, G={}):",
        w.n, w.m, w.c, w.s, procs, g
    )?;
    writeln!(out, "  serial  (Eq 3): {:>12.3} s", serial_time(&w, &p))?;
    writeln!(out, "  CD      (Eq 4): {:>12.3} s", cd_time(&w, procs, &p))?;
    writeln!(out, "  DD      (Eq 5): {:>12.3} s", dd_time(&w, procs, &p))?;
    writeln!(out, "  IDD     (Eq 6): {:>12.3} s", idd_time(&w, procs, &p))?;
    writeln!(
        out,
        "  HD      (Eq 7): {:>12.3} s",
        hd_time(&w, procs, g, &p)
    )?;
    match hd_beats_cd_window(w.m, w.n, procs) {
        Some((lo, hi)) => writeln!(out, "  HD beats CD for G in ({lo:.1}, {hi:.1}) (Eq 8)")?,
        None => writeln!(out, "  Eq 8 window empty: HD should pick G=1 (= CD)")?,
    }
    Ok(())
}

fn cmd_stats(args: &Args, out: Out) -> Result<(), Box<dyn std::error::Error>> {
    let input: String = args.required("input")?;
    let top: usize = args.or_default("top", 10)?;
    args.finish()?;
    let dataset = read_transactions_auto(&input)?;
    writeln!(out, "{}", dataset_stats(&dataset, top))?;
    Ok(())
}

fn cmd_summary(args: &Args, out: Out) -> Result<(), Box<dyn std::error::Error>> {
    let input: String = args.required("input")?;
    let support = min_support(args)?;
    let max_k: Option<usize> = args.optional("max-k")?;
    let kind: String = args.or_default("kind", "maximal".into())?;
    args.finish()?;
    let dataset = read_transactions_auto(&input)?;
    let mut params = AprioriParams::with_min_support_count(0);
    params.min_support = support;
    params.max_k = max_k;
    let run = Apriori::new(params).mine(dataset.transactions());
    let summary = match kind.as_str() {
        "maximal" => maximal_itemsets(&run.frequent),
        "closed" => closed_itemsets(&run.frequent),
        other => return Err(ArgError(format!("unknown summary kind {other:?}")).into()),
    };
    writeln!(
        out,
        "{} frequent itemsets -> {} {kind} itemsets",
        run.frequent.len(),
        summary.len()
    )?;
    for (set, count) in &summary {
        writeln!(out, "  {set}  σ = {count}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::argv;

    fn run_ok(parts: &[&str]) -> String {
        let mut out = Vec::new();
        dispatch(&argv(parts), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn run_err(parts: &[&str]) -> String {
        let mut out = Vec::new();
        dispatch(&argv(parts), &mut out).unwrap_err().to_string()
    }

    fn temp(name: &str) -> String {
        let dir = std::env::temp_dir().join("armine_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("USAGE"));
    }

    #[test]
    fn unknown_subcommand() {
        assert!(run_err(&["frobnicate"]).contains("frobnicate"));
    }

    #[test]
    fn gen_then_mine_then_parallel() {
        let db = temp("pipeline.txt");
        let o = run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "300",
            "--items",
            "60",
            "--patterns",
            "20",
            "--seed",
            "3",
        ]);
        assert!(o.contains("300 transactions"));

        let o = run_ok(&[
            "mine",
            "--input",
            &db,
            "--min-support",
            "0.03",
            "--max-k",
            "3",
            "--rules",
            "0.7",
        ]);
        assert!(o.contains("frequent itemsets"));
        assert!(o.contains("pass  2"));

        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "hd",
            "--procs",
            "4",
            "--min-support",
            "0.03",
            "--max-k",
            "3",
        ]);
        assert!(o.contains("HD on 4 simulated"));
        assert!(o.contains("virtual response time"));
    }

    #[test]
    fn mine_requires_exactly_one_support_flavour() {
        let db = temp("sup.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "50",
            "--items",
            "20",
            "--patterns",
            "5",
        ]);
        assert!(run_err(&["mine", "--input", &db]).contains("min-support"));
        assert!(run_err(&[
            "mine",
            "--input",
            &db,
            "--min-support",
            "0.1",
            "--min-count",
            "3",
        ])
        .contains("not both"));
        // min-count alone works.
        let o = run_ok(&["mine", "--input", &db, "--min-count", "5", "--max-k", "2"]);
        assert!(o.contains("min count 5"));
    }

    #[test]
    fn parallel_rejects_unknown_algorithm_and_machine() {
        let db = temp("alg.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "50",
            "--items",
            "20",
            "--patterns",
            "5",
        ]);
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "quantum",
            "--procs",
            "2",
            "--min-count",
            "2",
        ])
        .contains("quantum"));
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "2",
            "--machine",
            "cray-3",
        ])
        .contains("cray-3"));
    }

    #[test]
    fn counter_backend_selects_and_rejects() {
        let db = temp("counter.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "120",
            "--items",
            "40",
            "--patterns",
            "10",
            "--seed",
            "11",
        ]);
        // Both subcommands accept the trie backend end-to-end.
        let o = run_ok(&[
            "mine",
            "--input",
            &db,
            "--min-count",
            "4",
            "--max-k",
            "3",
            "--counter",
            "trie",
        ]);
        assert!(o.contains("frequent itemsets"));
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "idd",
            "--procs",
            "3",
            "--min-count",
            "4",
            "--max-k",
            "3",
            "--counter",
            "trie",
        ]);
        assert!(o.contains("IDD on 3 simulated"));
        // The vertical backend works end-to-end, and backend names are
        // accepted case-insensitively.
        let o = run_ok(&[
            "mine",
            "--input",
            &db,
            "--min-count",
            "4",
            "--max-k",
            "3",
            "--counter",
            "Vertical",
        ]);
        assert!(o.contains("frequent itemsets"));
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "3",
            "--min-count",
            "4",
            "--max-k",
            "3",
            "--counter",
            "vertical",
        ]);
        assert!(o.contains("CD on 3 simulated"));
        // Unknown backends are rejected by both subcommands, and the error
        // lists every valid backend name.
        let err = run_err(&[
            "mine",
            "--input",
            &db,
            "--min-count",
            "4",
            "--counter",
            "btree",
        ]);
        assert!(err.contains("btree"));
        assert!(
            err.contains("hashtree") && err.contains("trie") && err.contains("vertical"),
            "error should list valid backends: {err}"
        );
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "4",
            "--counter",
            "btree",
        ])
        .contains("btree"));
    }

    #[test]
    fn model_prints_all_equations() {
        let o = run_ok(&[
            "model", "--n", "1300000", "--m", "700000", "--c", "455", "--s", "16", "--procs", "64",
        ]);
        assert!(o.contains("Eq 3"));
        assert!(o.contains("Eq 7"));
        assert!(o.contains("Eq 8"));
    }

    #[test]
    fn stats_and_summary_subcommands() {
        let db = temp("stats.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "200",
            "--items",
            "40",
            "--patterns",
            "10",
            "--seed",
            "4",
        ]);
        let o = run_ok(&["stats", "--input", &db, "--top", "3"]);
        assert!(o.contains("200 transactions"));
        assert!(o.contains("Gini"));

        let o = run_ok(&[
            "summary",
            "--input",
            &db,
            "--min-support",
            "0.05",
            "--max-k",
            "3",
        ]);
        assert!(o.contains("maximal itemsets"));
        let o = run_ok(&[
            "summary",
            "--input",
            &db,
            "--min-support",
            "0.05",
            "--max-k",
            "3",
            "--kind",
            "closed",
        ]);
        assert!(o.contains("closed itemsets"));
        assert!(run_err(&[
            "summary",
            "--input",
            &db,
            "--min-support",
            "0.05",
            "--kind",
            "fancy",
        ])
        .contains("fancy"));
    }

    #[test]
    fn binary_format_pipeline() {
        let db = temp("pipeline.bin");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "100",
            "--items",
            "30",
            "--patterns",
            "8",
            "--format",
            "binary",
        ]);
        // Auto-detection lets every consumer read it.
        let o = run_ok(&["mine", "--input", &db, "--min-count", "4", "--max-k", "2"]);
        assert!(o.contains("100 transactions"));
        let o = run_ok(&["stats", "--input", &db]);
        assert!(o.contains("100 transactions"));
        assert!(run_err(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "5",
            "--format",
            "xml",
        ])
        .contains("xml"));
    }

    #[test]
    fn parallel_with_example_fault_plans() {
        let db = temp("faulted.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "200",
            "--items",
            "50",
            "--patterns",
            "15",
            "--seed",
            "9",
        ]);
        let faults_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../experiments/faults");
        // A crash-free straggler grid works for every algorithm.
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "hd",
            "--procs",
            "8",
            "--min-support",
            "0.04",
            "--max-k",
            "3",
            "--fault-plan",
            &format!("{faults_dir}/straggler-grid.plan"),
        ]);
        assert!(o.contains("faults:"), "missing fault summary:\n{o}");
        assert!(o.contains("retransmits"));
        assert!(o.contains("0 crashed of 8 ranks"));
        // One crash per pass: the run recovers and reports the crashes.
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "8",
            "--min-support",
            "0.04",
            "--max-k",
            "3",
            "--fault-plan",
            &format!("{faults_dir}/single-crash-per-pass.plan"),
        ]);
        assert!(o.contains("2 crashed of 8 ranks"), "{o}");
        assert!(!o.contains(" 0 recoveries"), "expected recoveries:\n{o}");
    }

    #[test]
    fn parallel_fault_plan_errors_are_clean() {
        let db = temp("faulterr.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "60",
            "--items",
            "20",
            "--patterns",
            "5",
        ]);
        // Missing file.
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--fault-plan",
            "/nonexistent/plan",
        ])
        .contains("cannot read fault plan"));
        // Malformed plan file.
        let bad = temp("bad.plan");
        std::fs::write(&bad, "drop_rate = lots\n").unwrap();
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--fault-plan",
            &bad,
        ])
        .contains("invalid rate"));
        // A plan crashing a rank the run doesn't have is rejected.
        let oob = temp("oob.plan");
        std::fs::write(&oob, "crash 5 = pass:2\n").unwrap();
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--fault-plan",
            &oob,
        ])
        .contains("out of range"));
        // Every algorithm recovers from in-range crashes — NPA included.
        let crash = temp("npa.plan");
        std::fs::write(&crash, "crash 1 = pass:2\n").unwrap();
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "npa",
            "--procs",
            "4",
            "--min-count",
            "3",
            "--fault-plan",
            &crash,
        ]);
        assert!(o.contains("recoveries (1 crashed of 4 ranks)"), "{o}");
    }

    #[test]
    fn parallel_native_backend_runs_and_reports_wall_times() {
        let db = temp("native.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "300",
            "--items",
            "60",
            "--patterns",
            "20",
            "--seed",
            "7",
        ]);
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "4",
            "--min-support",
            "0.03",
            "--max-k",
            "3",
            "--backend",
            "native",
        ]);
        assert!(o.contains("CD on 4 native worker threads"), "{o}");
        assert!(o.contains("measured response time"), "{o}");
        assert!(o.contains("per-rank wall time"), "{o}");
        // Unknown backends are rejected with the valid set listed;
        // casing is forgiven like --counter.
        let err = run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--backend",
            "turbo",
        ]);
        assert!(err.contains("turbo"), "{err}");
        assert!(err.contains("valid: sim, native"), "{err}");
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--max-k",
            "3",
            "--backend",
            "NATIVE",
        ]);
        assert!(o.contains("native worker threads"), "{o}");
        // Fault plans run for real on the native backend.
        let plan = temp("native.plan");
        std::fs::write(&plan, "drop_rate = 0.1\nrto = 0.0002\ncrash 1 = pass:2\n").unwrap();
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "3",
            "--min-count",
            "3",
            "--max-k",
            "3",
            "--backend",
            "native",
            "--fault-plan",
            &plan,
        ]);
        assert!(o.contains("measured response time"), "{o}");
        assert!(o.contains("recoveries (1 crashed of 3 ranks)"), "{o}");
    }

    #[test]
    fn parallel_cluster_and_placement_flags() {
        let db = temp("hetero.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "300",
            "--items",
            "60",
            "--patterns",
            "20",
            "--seed",
            "13",
        ]);
        // A two-speed cluster file mines end-to-end under adaptive
        // placement; the sim output carries the cluster label.
        let cl = temp("two-speed.cluster");
        std::fs::write(&cl, "machine = t3e\nspeed 1 = 0.5\n").unwrap();
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "4",
            "--min-support",
            "0.03",
            "--max-k",
            "3",
            "--cluster",
            &cl,
            "--placement",
            "adaptive",
        ]);
        assert!(o.contains("t3e,speed1x0.5"), "{o}");
        assert!(o.contains("virtual response time"), "{o}");
        // The native backend takes the same flags; placement names are
        // accepted case-insensitively like --counter and --backend.
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "idd",
            "--procs",
            "4",
            "--min-support",
            "0.03",
            "--max-k",
            "3",
            "--backend",
            "native",
            "--cluster",
            &cl,
            "--placement",
            "ADAPTIVE",
        ]);
        assert!(o.contains("native worker threads"), "{o}");
        // Unknown placements are rejected with the valid set listed.
        let err = run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--placement",
            "magnetic",
        ]);
        assert!(err.contains("magnetic"), "{err}");
        assert!(err.contains("valid: static, adaptive"), "{err}");
        // --machine and --cluster are mutually exclusive.
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--machine",
            "t3e",
            "--cluster",
            &cl,
        ])
        .contains("not both"));
        // Missing and out-of-range cluster files fail cleanly.
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--cluster",
            "/nonexistent.cluster",
        ])
        .contains("cannot read cluster profile"));
        let oob = temp("oob.cluster");
        std::fs::write(&oob, "speed 9 = 0.5\n").unwrap();
        assert!(run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "3",
            "--cluster",
            &oob,
        ])
        .contains("out of range"));
    }

    #[test]
    fn parallel_machine_errors_list_the_valid_set() {
        let db = temp("machines.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "50",
            "--items",
            "20",
            "--patterns",
            "5",
        ]);
        let err = run_err(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "2",
            "--machine",
            "cray-3",
        ]);
        assert!(err.contains("valid: t3e, sp2, ideal"), "{err}");
        // Machine keys are case-insensitive via MachineProfile::by_key.
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "2",
            "--min-count",
            "2",
            "--max-k",
            "2",
            "--machine",
            "SP2",
        ]);
        assert!(o.contains("IBM SP2"), "{o}");
    }

    #[test]
    fn parallel_metrics_json_writes_a_parseable_snapshot() {
        let db = temp("metrics.txt");
        run_ok(&[
            "gen",
            "--out",
            &db,
            "--transactions",
            "200",
            "--items",
            "40",
            "--patterns",
            "10",
            "--seed",
            "21",
        ]);
        let json_path = temp("metrics.json");
        let o = run_ok(&[
            "parallel",
            "--input",
            &db,
            "--algorithm",
            "cd",
            "--procs",
            "4",
            "--min-support",
            "0.03",
            "--max-k",
            "3",
            "--metrics-json",
            &json_path,
        ]);
        assert!(o.contains("metrics snapshot written"), "{o}");
        let text = std::fs::read_to_string(&json_path).unwrap();
        let doc = armine_metrics::json::BenchDocument::parse(&text).unwrap();
        assert_eq!(doc.benchmark, "parallel_mine");
        assert!(!doc.snapshot.is_empty());
        // The run's base labels made it into every series.
        for series in doc.snapshot.series() {
            assert_eq!(series.labels.get("algorithm"), Some("CD"), "{series:?}");
            assert_eq!(series.labels.get("procs"), Some("4"), "{series:?}");
            assert_eq!(series.labels.get("backend"), Some("sim"), "{series:?}");
        }
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn unknown_option_is_an_error() {
        assert!(
            run_err(&["gen", "--out", "x", "--transactions", "5", "--bogus", "1"])
                .contains("--bogus")
        );
    }
}
