//! The `armine` binary. See [`armine_cli::commands::USAGE`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    std::process::exit(armine_cli::run(&argv, &mut stdout));
}
