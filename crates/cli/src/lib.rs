#![warn(missing_docs)]

//! # armine-cli
//!
//! The `armine` command-line tool:
//!
//! ```text
//! armine gen      --out db.txt --transactions 10000 [--items 500] [--seed 1] ...
//! armine mine     --input db.txt --min-support 0.01 [--rules 0.8] [--max-k 4] ...
//! armine parallel --input db.txt --algorithm hd --procs 64 --min-support 0.01 ...
//! armine model    --n 1300000 --m 700000 --c 455 --s 16 --procs 64
//! ```
//!
//! The argument parser is hand-rolled (and unit-tested) to keep the
//! dependency set identical to the library's.

pub mod args;
pub mod commands;

/// Entry point shared by the binary and the tests: parses `argv` (without
/// the program name) and runs. Returns the process exit code.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match commands::dispatch(argv, out) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `armine help` for usage");
            2
        }
    }
}
