//! A small, strict `--key value` argument parser.
//!
//! Rules: every option is `--name value`; unknown options are errors;
//! required options must be present; every consumed option is tracked so
//! leftovers are reported.

use std::collections::HashMap;
use std::fmt;

/// A parse or validation failure, with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--key value` options.
#[derive(Debug)]
pub struct Args {
    values: HashMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses `argv` (after the subcommand) into key/value options.
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut values = HashMap::new();
        let mut it = argv.iter();
        while let Some(token) = it.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected an option, got {token:?}")))?;
            if key.is_empty() {
                return Err(ArgError("empty option name".into()));
            }
            let value = it
                .next()
                .ok_or_else(|| ArgError(format!("option --{key} needs a value")))?;
            if values.insert(key.to_owned(), value.clone()).is_some() {
                return Err(ArgError(format!("option --{key} given twice")));
            }
        }
        Ok(Args {
            values,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn take(&self, key: &str) -> Option<&String> {
        self.consumed.borrow_mut().push(key.to_owned());
        self.values.get(key)
    }

    /// A required option parsed as `T`.
    pub fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self
            .take(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))?;
        raw.parse()
            .map_err(|_| ArgError(format!("--{key}: invalid value {raw:?}")))
    }

    /// An optional option parsed as `T`.
    pub fn optional<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgError> {
        match self.take(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("--{key}: invalid value {raw:?}"))),
        }
    }

    /// An optional option with a default.
    pub fn or_default<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        Ok(self.optional(key)?.unwrap_or(default))
    }

    /// Errors if any provided option was never consumed (i.e. unknown).
    pub fn finish(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for key in self.values.keys() {
            if !consumed.iter().any(|c| c == key) {
                return Err(ArgError(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

/// Convenience for building argv slices in tests.
pub fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&argv(&["--n", "100", "--seed", "7"])).unwrap();
        assert_eq!(a.required::<usize>("n").unwrap(), 100);
        assert_eq!(a.or_default::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.or_default::<u64>("missing", 42).unwrap(), 42);
        a.finish().unwrap();
    }

    #[test]
    fn missing_required() {
        let a = Args::parse(&argv(&[])).unwrap();
        let err = a.required::<usize>("n").unwrap_err();
        assert!(err.0.contains("--n"));
    }

    #[test]
    fn invalid_value() {
        let a = Args::parse(&argv(&["--n", "xyz"])).unwrap();
        assert!(a.required::<usize>("n").is_err());
    }

    #[test]
    fn missing_value() {
        assert!(Args::parse(&argv(&["--n"])).is_err());
    }

    #[test]
    fn duplicate_option() {
        assert!(Args::parse(&argv(&["--n", "1", "--n", "2"])).is_err());
    }

    #[test]
    fn non_option_token() {
        assert!(Args::parse(&argv(&["n", "1"])).is_err());
    }

    #[test]
    fn unknown_option_reported_by_finish() {
        let a = Args::parse(&argv(&["--n", "1", "--bogus", "2"])).unwrap();
        let _ = a.required::<usize>("n");
        let err = a.finish().unwrap_err();
        assert!(err.0.contains("--bogus"));
    }

    #[test]
    fn optional_distinguishes_absent_from_invalid() {
        let a = Args::parse(&argv(&["--k", "3"])).unwrap();
        assert_eq!(a.optional::<usize>("k").unwrap(), Some(3));
        assert_eq!(a.optional::<usize>("absent").unwrap(), None);
    }
}
