//! Data Distribution (Section III-B, Figure 5) and the DD+comm ablation.
//!
//! DD partitions the candidates **round-robin**: each processor builds a
//! hash tree over M/P candidates but must then see *every* transaction in
//! the database. The original algorithm moves data with a naive page
//! all-to-all — each processor sends every local page to all P−1 others —
//! which serializes on the single-ported senders and receivers and is the
//! first of DD's three problems. The second (processor idling) follows
//! from the same pattern; the third (redundant computation) is inherent in
//! the partitioning: with no ownership structure, every transaction
//! traverses every processor's tree from every starting item, visiting
//! `V(C, L/P) > V(C, L)/P` distinct leaves.
//!
//! [`CommScheme::RingPipeline`] swaps only the data movement for IDD's
//! ring (the "DD+comm" curve of Figure 10), isolating how much of IDD's
//! win is communication and how much is the intelligent partitioning.

use crate::common::{
    build_counter_charged, count_batch_charged, level_wire_size, merge_levels, page_bytes,
    paginate, ring_shift_count, PassResult, RankCtx, TransactionPage, TAG_DATA,
};
use crate::config::ParallelParams;
use armine_core::binpack::partition_round_robin;
use armine_core::counter::CounterStats;
use armine_core::hashtree::OwnershipFilter;
use armine_core::ItemSet;
use armine_mpsim::{Comm, RecvFault};

/// How DD moves transaction pages between processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CommScheme {
    /// The original DD all-to-all: P−1 point-to-point sends per page.
    NaiveAllToAll,
    /// IDD's ring pipeline (the DD+comm ablation).
    RingPipeline,
}

/// One DD counting pass.
#[allow(clippy::needless_range_loop)] // loop variables are peer ranks
pub(crate) fn count_pass(
    comm: &mut Comm,
    ctx: &RankCtx,
    k: usize,
    candidates: Vec<ItemSet>,
    params: &ParallelParams,
    scheme: CommScheme,
) -> Result<PassResult, RecvFault> {
    let p = ctx.size();
    let me = ctx.my_index;
    let total = candidates.len();
    let part = partition_round_robin(&candidates, p);
    let mine = part.parts[me].clone();
    let mut counter = build_counter_charged(comm, k, params.counter, params.tree, mine, total);
    comm.charge_io(ctx.local_bytes());

    let my_pages = paginate(&ctx.local, ctx.page_size);
    // Everyone must loop over the globally largest page count so the
    // exchange pattern stays aligned.
    let page_counts: Vec<u64> = ctx.world(comm).try_allgather(my_pages.len() as u64, 8)?;
    let max_pages = page_counts.iter().copied().max().unwrap_or(0) as usize;

    let stats = match scheme {
        CommScheme::NaiveAllToAll => {
            let mut stats = CounterStats::default();
            let filter = OwnershipFilter::all();
            for round in 0..max_pages {
                let mut world = ctx.world(comm);
                // Send my page of this round to every other processor
                // (asynchronous in the paper, but the single-ported sender
                // still serializes the P−1 link occupancies). Each send is
                // an `Arc` clone of the same shared page; only the charged
                // wire bytes scale with P.
                if round < my_pages.len() {
                    let page = &my_pages[round];
                    let bytes = page_bytes(page);
                    for other in 0..p {
                        if other != me {
                            world.send(other, TAG_DATA | (round as u64) << 8, page.clone(), bytes);
                        }
                    }
                }
                // Drain the P−1 incoming pages of this round. The paper
                // polls whichever buffer has data; a fixed order moves the
                // same bytes through the same single port, so totals agree.
                let mut batch: Vec<TransactionPage> = Vec::new();
                if round < my_pages.len() {
                    batch.push(my_pages[round].clone());
                }
                for other in 0..p {
                    if other != me && round < page_counts[other] as usize {
                        batch.push(world.try_recv(other, TAG_DATA | (round as u64) << 8)?);
                    }
                }
                drop(world);
                for page in &batch {
                    stats = stats.merged(&count_batch_charged(comm, &mut *counter, page, &filter));
                }
            }
            stats
        }
        CommScheme::RingPipeline => {
            let mut world = ctx.world(comm);
            ring_shift_count(
                &mut world,
                &my_pages,
                max_pages,
                &mut *counter,
                &OwnershipFilter::all(),
            )?
        }
    };

    // Each processor now has complete global counts for its own candidate
    // partition: extract the frequent ones and exchange them with an
    // all-to-all broadcast so every rank assembles the full F_k.
    let mine_frequent = counter.frequent(ctx.min_count);
    let bytes = level_wire_size(&mine_frequent);
    let all = ctx.world(comm).try_allgather(mine_frequent, bytes)?;
    Ok(PassResult {
        level: merge_levels(all),
        stats,
        db_scans: 1,
        grid: (p, 1),
        candidate_imbalance: part.imbalance,
        counted_candidates: None,
    })
}
