//! Intelligent Data Distribution (Section III-C, Figure 7).
//!
//! IDD fixes all three DD problems:
//!
//! 1. **Communication** — the naive all-to-all becomes a ring pipeline
//!    (Figure 6): one asynchronous send + receive per step, overlapped
//!    with processing of the in-hand buffer.
//! 2. **Idling** — with point-to-point neighbour traffic and balanced
//!    buffers, no processor waits on a congested peer.
//! 3. **Redundant work** — candidates are partitioned by **first item**
//!    (bin-packed for balance, optionally split by second item for hot
//!    first items), and every processor filters transaction starting
//!    items against its ownership bitmap at the hash-tree root, so each
//!    transaction's work is *divided* among processors rather than
//!    repeated: `V(C/P, L/P) ≈ V(C, L)/P`.

use crate::common::{
    build_counter_charged, level_wire_size, merge_levels, paginate, ring_shift_count, PassResult,
    RankCtx,
};
use crate::config::ParallelParams;
use armine_core::binpack::{partition_by_first_item, partition_two_level, CandidatePartition};
use armine_core::counter::CounterStats;
use armine_core::ItemSet;
use armine_mpsim::{Comm, RecvFault};

/// Builds IDD's candidate partition: bin-packed single-level by default,
/// two-level when a split threshold is configured. `capacities` are the
/// placement seam's relative bin speeds (one per processor) — uniform
/// under static placement, re-scored per pass under adaptive.
pub(crate) fn make_partition(
    candidates: &[ItemSet],
    num_items: u32,
    capacities: &[f64],
    params: &ParallelParams,
) -> CandidatePartition {
    match params.split_threshold {
        Some(t) => partition_two_level(candidates, num_items, capacities, t),
        None => partition_by_first_item(candidates, num_items, capacities),
    }
}

/// One IDD counting pass in **single-source** mode — the deployment the
/// paper's conclusion highlights: "when all the data is coming from a
/// database server or a single file system, one processor can read data
/// from the single source and pass the data along the communication
/// pipeline defined in the algorithm." Global rank 0 holds the whole
/// database and streams pages down the member chain; every rank counts
/// each page against its candidate partition as it flows past.
///
/// Under crash recovery the source itself can die: its database is then
/// redistributed across the survivors by adoption, the chain has no head
/// to stream from, and the pass falls back to the ring pipeline of the
/// partitioned formulation — same candidate partition, same filters,
/// same `F_k`.
pub(crate) fn count_pass_single_source(
    comm: &mut Comm,
    ctx: &RankCtx,
    k: usize,
    candidates: Vec<ItemSet>,
    params: &ParallelParams,
) -> Result<PassResult, RecvFault> {
    use crate::common::{count_batch_charged, page_bytes, TransactionPage, TAG_DATA};
    let p = ctx.size();
    let me = ctx.my_index;
    let total = candidates.len();
    let part = make_partition(&candidates, ctx.num_items, &ctx.capacities, params);
    let mine = part.parts[me].clone();
    let filter = part.filters[me].clone();
    let mut counter = build_counter_charged(comm, k, params.counter, params.tree, mine, total);

    let stats = if ctx.members[0] != 0 {
        // The source is dead and its pages now live on several survivors:
        // circulate them with the ring instead of the broken chain.
        comm.charge_io(ctx.local_bytes());
        let my_pages = paginate(&ctx.local, ctx.page_size);
        let page_counts: Vec<u64> = ctx.world(comm).try_allgather(my_pages.len() as u64, 8)?;
        let max_pages = page_counts.iter().copied().max().unwrap_or(0) as usize;
        let mut world = ctx.world(comm);
        ring_shift_count(&mut world, &my_pages, max_pages, &mut *counter, &filter)?
    } else {
        if me == 0 {
            comm.charge_io(ctx.local_bytes());
        }
        // Page count is known only at the source; broadcast it down the
        // chain first (the source owns all transactions in this mode).
        let my_pages = paginate(&ctx.local, ctx.page_size);
        let num_pages = {
            let mut world = ctx.world(comm);
            let value = (me == 0).then_some(my_pages.len() as u64);
            world.try_broadcast(0, value, 8)? as usize
        };
        let mut stats = CounterStats::default();
        #[allow(clippy::needless_range_loop)] // only the source indexes its pages
        for page_idx in 0..num_pages {
            let tag = TAG_DATA | (page_idx as u64) << 8;
            let mut world = ctx.world(comm);
            let page: TransactionPage = if me == 0 {
                my_pages[page_idx].clone()
            } else {
                world.try_recv(me - 1, tag)?
            };
            // Forward down the chain (a shared-page refcount bump) before
            // counting, so downstream ranks overlap with our subset work.
            if me + 1 < p {
                let bytes = page_bytes(&page);
                let sh = world.isend(me + 1, tag, page.clone(), bytes);
                drop(world);
                stats = stats.merged(&count_batch_charged(comm, &mut *counter, &page, &filter));
                ctx.world(comm).wait_send(sh);
            } else {
                drop(world);
                stats = stats.merged(&count_batch_charged(comm, &mut *counter, &page, &filter));
            }
        }
        stats
    };

    let mine_frequent = counter.frequent(ctx.min_count);
    let bytes = level_wire_size(&mine_frequent);
    let all = ctx.world(comm).try_allgather(mine_frequent, bytes)?;
    Ok(PassResult {
        level: merge_levels(all),
        stats,
        db_scans: 1,
        grid: (p, 1),
        candidate_imbalance: part.imbalance,
        counted_candidates: None,
    })
}

/// One IDD counting pass.
pub(crate) fn count_pass(
    comm: &mut Comm,
    ctx: &RankCtx,
    k: usize,
    candidates: Vec<ItemSet>,
    params: &ParallelParams,
) -> Result<PassResult, RecvFault> {
    let p = ctx.size();
    let me = ctx.my_index;
    let total = candidates.len();
    // Deterministic on every rank: same candidates + same capacities →
    // same packing.
    let part = make_partition(&candidates, ctx.num_items, &ctx.capacities, params);
    let mine = part.parts[me].clone();
    let filter = part.filters[me].clone();
    let mut counter = build_counter_charged(comm, k, params.counter, params.tree, mine, total);
    comm.charge_io(ctx.local_bytes());

    let my_pages = paginate(&ctx.local, ctx.page_size);
    let page_counts: Vec<u64> = ctx.world(comm).try_allgather(my_pages.len() as u64, 8)?;
    let max_pages = page_counts.iter().copied().max().unwrap_or(0) as usize;

    let stats = {
        let mut world = ctx.world(comm);
        ring_shift_count(&mut world, &my_pages, max_pages, &mut *counter, &filter)?
    };

    let mine_frequent = counter.frequent(ctx.min_count);
    let bytes = level_wire_size(&mine_frequent);
    let all = ctx.world(comm).try_allgather(mine_frequent, bytes)?;
    Ok(PassResult {
        level: merge_levels(all),
        stats,
        db_scans: 1,
        grid: (p, 1),
        candidate_imbalance: part.imbalance,
        counted_candidates: None,
    })
}

#[cfg(test)]
mod tests {
    use crate::{Algorithm, ParallelMiner, ParallelParams};
    use armine_core::apriori::{Apriori, AprioriParams};
    use armine_core::ItemSet;
    use armine_datagen::QuestParams;

    #[test]
    fn single_source_matches_serial_and_partitioned_idd() {
        let dataset = QuestParams::paper_t15_i6()
            .num_transactions(300)
            .num_items(80)
            .num_patterns(30)
            .seed(301)
            .generate();
        let min_count = 9;
        let serial = Apriori::new(AprioriParams::with_min_support_count(min_count).max_k(4))
            .mine(dataset.transactions());
        let want: Vec<(ItemSet, u64)> = serial
            .frequent
            .iter()
            .map(|(s, c)| (s.clone(), c))
            .collect();
        let params = ParallelParams::with_min_support_count(min_count)
            .page_size(40)
            .max_k(4);
        for procs in [1, 3, 6] {
            let run = ParallelMiner::new(procs).mine(Algorithm::IddSingleSource, &dataset, &params);
            let got: Vec<(ItemSet, u64)> =
                run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
            assert_eq!(got, want, "procs={procs}");
        }
    }

    #[test]
    fn single_source_moves_data_down_the_whole_chain() {
        let dataset = QuestParams::paper_t15_i6()
            .num_transactions(400)
            .num_items(80)
            .num_patterns(30)
            .seed(303)
            .generate();
        let params = ParallelParams::with_min_support_count(10)
            .page_size(50)
            .max_k(3);
        let p = 6;
        let run = ParallelMiner::new(p).mine(Algorithm::IddSingleSource, &dataset, &params);
        // Interior ranks forward every page down the chain; the tail
        // forwards none (its sends are only the frequent-set exchange, which
        // all ranks share). So the tail must send markedly less than any
        // interior rank.
        let sent: Vec<u64> = run.ranks.iter().map(|r| r.bytes_sent).collect();
        for interior in 0..p - 1 {
            assert!(
                (sent[p - 1] as f64) < 0.8 * sent[interior] as f64,
                "tail must forward no pipeline data: {sent:?}"
            );
        }
    }
}
