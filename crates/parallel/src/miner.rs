//! The user-facing entry point: pick an algorithm, a machine, a processor
//! count, and mine.

use crate::common::{run_rank, RankCtx, RankOutput};
use crate::config::ParallelParams;
use crate::dd::CommScheme;
use crate::metrics::{ParallelPassMetrics, ParallelRun};
use crate::{cd, dd, hd, hpa, idd, npa, pdm};
use armine_core::apriori::FrequentItemsets;
use armine_core::counter::CounterStats;
use armine_core::Dataset;
use armine_mpsim::{
    ClusterProfile, ExecBackend, FaultPlan, MachineProfile, SimResult, Simulator, Topology,
};

/// Which parallel formulation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Count Distribution: replicated candidates, reduced counts.
    Cd,
    /// Data Distribution: round-robin candidates, naive page all-to-all.
    Dd,
    /// DD with IDD's ring communication (the Figure 10 ablation).
    DdComm,
    /// Intelligent Data Distribution: bin-packed candidates, bitmap
    /// filtering, ring pipeline.
    Idd,
    /// Hybrid Distribution with the given per-group candidate threshold
    /// `m` (the paper used m = 50K on 64 processors).
    Hd {
        /// Maximum candidates per processor group before G grows.
        group_threshold: usize,
    },
    /// Hash Partitioned Apriori (Shintani & Kitsuregawa, discussed in
    /// Section III-E): candidates are hash-partitioned; each transaction's
    /// potential k-subsets are hashed and shipped to the owning processor.
    /// `eld_permille > 0` enables the ELD refinement: that fraction of the
    /// hottest candidates (by anti-monotone support bound) is duplicated
    /// on every processor and counted locally, CD-style.
    Hpa {
        /// Per-mille of candidates to duplicate everywhere (0 = plain HPA).
        eld_permille: u32,
    },
    /// IDD in single-source mode (the paper's conclusion): rank 0 holds
    /// the entire database (a database server / single file system) and
    /// streams pages down the processor chain; every rank counts its
    /// candidate partition as the data flows past.
    IddSingleSource,
    /// NPA (Shintani & Kitsuregawa, "very similar to CD"): replicated
    /// candidates, but counts funnel to a coordinator that derives F_k
    /// and broadcasts it — an O(P·M) bottleneck where CD's all-reduce is
    /// O(M).
    Npa,
    /// PDM (Park, Chen & Yu): CD plus DHP's hash-filter candidate pruning
    /// — local bucket tables summed by a global reduction, pass-2 (and
    /// optionally later) candidates pruned identically everywhere before
    /// the replicated tree is built.
    Pdm {
        /// Buckets in each pass's hash filter.
        buckets: usize,
        /// Passes `2..=1+filter_passes` build and apply a filter.
        filter_passes: usize,
    },
}

impl Algorithm {
    /// Short name for reports ("CD", "DD", "DD+comm", "IDD", "HD").
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Cd => "CD",
            Algorithm::Dd => "DD",
            Algorithm::DdComm => "DD+comm",
            Algorithm::Idd => "IDD",
            Algorithm::Hd { .. } => "HD",
            Algorithm::Hpa { eld_permille: 0 } => "HPA",
            Algorithm::Hpa { .. } => "HPA-ELD",
            Algorithm::IddSingleSource => "IDD-1src",
            Algorithm::Npa => "NPA",
            Algorithm::Pdm { .. } => "PDM",
        }
    }
}

/// Why a fault-injected mining run could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultRunError {
    /// The plan crashed every rank: no survivor holds the lattice.
    AllRanksCrashed,
    /// The plan failed validation (out-of-range rates, bad crash ranks…).
    InvalidPlan(String),
}

impl std::fmt::Display for FaultRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultRunError::AllRanksCrashed => {
                write!(f, "every rank crashed before the mining completed")
            }
            FaultRunError::InvalidPlan(why) => write!(f, "invalid fault plan: {why}"),
        }
    }
}

impl std::error::Error for FaultRunError {}

/// A configured parallel mining engine: processor count + cluster profile
/// + interconnect.
#[derive(Debug, Clone)]
pub struct ParallelMiner {
    procs: usize,
    cluster: ClusterProfile,
    topology: Topology,
    backend: ExecBackend,
}

impl ParallelMiner {
    /// A miner simulating `procs` processors of a Cray T3E (the paper's
    /// main testbed).
    pub fn new(procs: usize) -> Self {
        ParallelMiner {
            procs,
            cluster: ClusterProfile::uniform(MachineProfile::cray_t3e()),
            topology: Topology::torus_for(procs),
            backend: ExecBackend::Sim,
        }
    }

    /// Selects the execution backend: virtual-time simulation (the
    /// default) or native wall-clock execution, where the same pass
    /// drivers run at full hardware speed and [`ParallelRun::wall`]
    /// carries per-rank measured timings. Fault plans run on both
    /// backends: injected on the virtual clock under sim, for real
    /// (thread deaths, sleeps, retransmit timers) under native.
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the machine profile (e.g. [`MachineProfile::ibm_sp2`] for
    /// the Figure 12 experiment); every rank runs it at the same speed.
    pub fn machine(mut self, machine: MachineProfile) -> Self {
        self.cluster = ClusterProfile::uniform(machine);
        self
    }

    /// Runs on a heterogeneous cluster: a base machine plus per-rank
    /// relative speed factors (see [`ClusterProfile`]). The mined
    /// itemsets never depend on the cluster — only the virtual (or, on
    /// the native backend, real) time does.
    pub fn cluster(mut self, cluster: ClusterProfile) -> Self {
        self.cluster = cluster;
        self
    }

    /// Overrides the interconnect topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Number of simulated processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Mines `dataset` with `algorithm`. Transactions are distributed
    /// evenly across processors (the standing assumption of Section III);
    /// the returned run carries the frequent itemsets (exact — identical
    /// to serial Apriori) and the virtual-time measurements.
    pub fn mine(
        &self,
        algorithm: Algorithm,
        dataset: &Dataset,
        params: &ParallelParams,
    ) -> ParallelRun {
        self.mine_with_faults(algorithm, dataset, params, None)
            .expect("fault-free mining cannot fail")
    }

    /// Mines `dataset` with `algorithm` on an unreliable machine: `plan`
    /// injects deterministic message loss, stragglers, and rank crashes
    /// (see [`FaultPlan`]). Transient faults cost virtual time but never
    /// correctness; crashes trigger pass-boundary recovery — survivors
    /// agree on the shrunken membership, adopt the dead rank's share of
    /// the database, and re-execute only the interrupted pass, so the
    /// mined itemsets are bit-identical to a fault-free run. All nine
    /// formulations recover (structurally special roles — NPA's
    /// coordinator, HPA's hash owners, IDD-1src's data source — are
    /// re-assigned or worked around after adoption). Fails when the plan
    /// is invalid or kills every rank.
    pub fn mine_with_faults(
        &self,
        algorithm: Algorithm,
        dataset: &Dataset,
        params: &ParallelParams,
        plan: Option<&FaultPlan>,
    ) -> Result<ParallelRun, FaultRunError> {
        if let Some(plan) = plan {
            plan.validate_for_procs(self.procs)
                .map_err(FaultRunError::InvalidPlan)?;
        }
        // Single-source mode: the whole database sits on rank 0.
        let parts = if algorithm == Algorithm::IddSingleSource {
            let mut parts = vec![Vec::new(); self.procs];
            parts[0] = dataset.transactions().to_vec();
            parts
        } else {
            dataset.partition(self.procs)
        };
        let num_items = dataset.num_items();
        let min_count = params.min_support.resolve(dataset.len());
        let mut sim = Simulator::new(self.procs)
            .cluster(self.cluster.clone())
            .topology(self.topology)
            .backend(self.backend);
        if let Some(plan) = plan {
            sim = sim.fault_plan(plan.clone());
        }
        let parts = &parts;
        let params_copy = *params;
        // Replicated-candidate formulations count their local slice
        // against the full candidate set, so their counting load rides
        // the data placement — adaptive placement may move transactions
        // between their ranks at pass boundaries. The partitioned
        // formulations circulate every page past every rank (their load
        // rides the candidate partition instead), and single-source IDD
        // pins the database to rank 0 by definition.
        let mobile_pages = matches!(
            algorithm,
            Algorithm::Cd | Algorithm::Npa | Algorithm::Pdm { .. }
        );
        let result: SimResult<Option<RankOutput>> = sim.run_with_faults(move |comm| {
            let ctx = RankCtx::new(
                parts[comm.rank()].clone(),
                num_items,
                min_count,
                params_copy.page_size,
                comm.rank(),
                comm.size(),
            );
            run_rank(
                comm,
                ctx,
                parts,
                params_copy.max_k,
                params_copy.placement,
                mobile_pages,
                |comm, ctx, k, candidates, prev| match algorithm {
                    Algorithm::Cd => cd::count_pass(comm, ctx, k, candidates, &params_copy),
                    Algorithm::Dd => dd::count_pass(
                        comm,
                        ctx,
                        k,
                        candidates,
                        &params_copy,
                        CommScheme::NaiveAllToAll,
                    ),
                    Algorithm::DdComm => dd::count_pass(
                        comm,
                        ctx,
                        k,
                        candidates,
                        &params_copy,
                        CommScheme::RingPipeline,
                    ),
                    Algorithm::Idd => idd::count_pass(comm, ctx, k, candidates, &params_copy),
                    Algorithm::Hd { group_threshold } => {
                        hd::count_pass(comm, ctx, k, candidates, &params_copy, group_threshold)
                    }
                    Algorithm::Hpa { eld_permille } => {
                        hpa::count_pass(comm, ctx, k, candidates, prev, &params_copy, eld_permille)
                    }
                    Algorithm::IddSingleSource => {
                        idd::count_pass_single_source(comm, ctx, k, candidates, &params_copy)
                    }
                    Algorithm::Npa => npa::count_pass(comm, ctx, k, candidates, &params_copy),
                    Algorithm::Pdm {
                        buckets,
                        filter_passes,
                    } => pdm::count_pass(
                        comm,
                        ctx,
                        k,
                        candidates,
                        &params_copy,
                        buckets,
                        filter_passes,
                    ),
                },
            )
        });
        let meta = crate::registry::RunMeta {
            algorithm: algorithm.name(),
            procs: self.procs,
            backend: self.backend,
            counter: params.counter,
            fault_plan: plan.map_or_else(|| "none".to_owned(), FaultPlan::label),
        };
        assemble(meta, dataset.len(), min_count, result).ok_or(FaultRunError::AllRanksCrashed)
    }

    /// Generates association rules from a mined (replicated) frequent
    /// lattice in parallel — the discovery pipeline's second step, which
    /// the paper notes "is straightforward": the itemsets are partitioned
    /// round-robin and each processor grows consequents for its share.
    /// The output is byte-identical to
    /// [`armine_core::rules::generate_rules`].
    pub fn generate_rules(
        &self,
        frequent: &armine_core::apriori::FrequentItemsets,
        min_confidence: f64,
    ) -> crate::rules::ParallelRulesRun {
        let sim = Simulator::new(self.procs)
            .cluster(self.cluster.clone())
            .topology(self.topology)
            .backend(self.backend);
        crate::rules::generate_rules_parallel(&sim, frequent, min_confidence)
    }
}

/// Folds the per-rank outputs into one [`ParallelRun`]. Crashed ranks
/// contribute `None` (their [`armine_mpsim::RankStats`] still count);
/// returns `None` only when nobody survived.
fn assemble(
    meta: crate::registry::RunMeta,
    total_n: usize,
    min_count: u64,
    result: SimResult<Option<RankOutput>>,
) -> Option<ParallelRun> {
    let response_time = result.response_time();
    let SimResult {
        results,
        ranks,
        wall,
        ..
    } = result;
    let survivors: Vec<RankOutput> = results.into_iter().flatten().collect();
    // Every surviving rank must have discovered the identical lattice.
    debug_assert!(
        survivors.windows(2).all(|w| w[0].levels == w[1].levels),
        "ranks disagree on the frequent itemsets"
    );
    let first = survivors.first()?;
    let num_passes = first.passes.len();
    let mut passes = Vec::with_capacity(num_passes);
    let mut prev_end = 0.0f64;
    for i in 0..num_passes {
        let mut stats = CounterStats::default();
        let mut end = 0.0f64;
        for r in &survivors {
            stats = stats.merged(&r.passes[i].stats);
            end = end.max(r.passes[i].clock_end);
        }
        let proto = &first.passes[i];
        passes.push(ParallelPassMetrics {
            k: proto.k,
            candidates: proto.candidates_total,
            counted_candidates: proto.counted_candidates,
            frequent: first.levels[i].len(),
            grid: proto.grid,
            tree_stats: stats,
            db_scans: proto.db_scans,
            candidate_imbalance: proto.candidate_imbalance,
            time: (end - prev_end).max(0.0),
        });
        prev_end = end;
    }
    let procs = meta.procs;
    let algorithm = meta.algorithm;
    let mut shards = Vec::with_capacity(survivors.len());
    let mut levels = None;
    for r in survivors {
        shards.push(r.shard);
        levels.get_or_insert(r.levels);
    }
    let frequent = FrequentItemsets::from_levels(levels.unwrap(), total_n as u64);
    let metrics = crate::registry::finish_snapshot(
        &meta,
        shards,
        &ranks,
        &wall,
        &passes,
        response_time,
        frequent.len(),
    );
    Some(ParallelRun {
        algorithm,
        procs,
        frequent,
        passes,
        response_time,
        ranks,
        min_count,
        wall,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use armine_core::apriori::{Apriori, AprioriParams, MinSupport};
    use armine_core::{Item, ItemSet, Transaction};
    use armine_datagen::QuestParams;

    const ALGOS: [Algorithm; 5] = [
        Algorithm::Cd,
        Algorithm::Dd,
        Algorithm::DdComm,
        Algorithm::Idd,
        Algorithm::Hd {
            group_threshold: 40,
        },
    ];

    fn quest(n: usize, items: u32, seed: u64) -> Dataset {
        QuestParams::paper_t15_i6()
            .num_transactions(n)
            .num_items(items)
            .num_patterns(30)
            .seed(seed)
            .generate()
    }

    fn serial_reference(dataset: &Dataset, min_count: u64) -> Vec<(ItemSet, u64)> {
        let run = Apriori::new(AprioriParams::with_min_support_count(min_count).max_k(5))
            .mine(dataset.transactions());
        run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect()
    }

    /// The headline correctness property: every algorithm, at several
    /// processor counts, finds exactly the serial Apriori lattice.
    #[test]
    fn all_algorithms_match_serial_apriori() {
        let dataset = quest(300, 80, 11);
        let min_count = 9;
        let want = serial_reference(&dataset, min_count);
        assert!(!want.is_empty(), "test data must have frequent itemsets");
        let params = ParallelParams::with_min_support_count(min_count)
            .page_size(50)
            .max_k(5);
        for procs in [1, 2, 4, 7] {
            for algo in ALGOS {
                let run = ParallelMiner::new(procs).mine(algo, &dataset, &params);
                let got: Vec<(ItemSet, u64)> =
                    run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
                assert_eq!(
                    got,
                    want,
                    "{} with {procs} procs diverged from serial",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn two_level_idd_matches_serial() {
        let dataset = quest(250, 60, 5);
        let min_count = 8;
        let want = serial_reference(&dataset, min_count);
        let params = ParallelParams::with_min_support_count(min_count)
            .page_size(40)
            .max_k(5)
            .split_threshold(3); // aggressive splitting
        for algo in [
            Algorithm::Idd,
            Algorithm::Hd {
                group_threshold: 30,
            },
        ] {
            let run = ParallelMiner::new(4).mine(algo, &dataset, &params);
            let got: Vec<(ItemSet, u64)> =
                run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
            assert_eq!(got, want, "{}", algo.name());
        }
    }

    #[test]
    fn cd_memory_cap_matches_serial_with_extra_scans() {
        let dataset = quest(300, 80, 13);
        let min_count = 8;
        let want = serial_reference(&dataset, min_count);
        let capped = ParallelParams::with_min_support_count(min_count)
            .memory_capacity(10)
            .max_k(5);
        let run = ParallelMiner::new(4).mine(Algorithm::Cd, &dataset, &capped);
        let got: Vec<(ItemSet, u64)> = run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
        assert_eq!(got, want);
        assert!(
            run.total_db_scans() > run.passes.len(),
            "capping must force multiple scans in some pass"
        );
    }

    #[test]
    fn fractional_support_resolves_against_whole_database() {
        let dataset = quest(200, 60, 3);
        let params = ParallelParams {
            min_support: MinSupport::Fraction(0.05),
            ..ParallelParams::with_min_support_count(0)
        };
        let run = ParallelMiner::new(4).mine(Algorithm::Cd, &dataset, &params);
        assert_eq!(run.min_count, 10, "5% of 200");
    }

    #[test]
    fn response_times_ordering_dd_worst() {
        // The paper's headline mechanisms, in a candidate-heavy regime
        // (many items, moderate support) where DD's redundant traversal
        // dominates: DD ≥ DD+comm (the ring never loses to the naive
        // all-to-all) and both stay far above IDD (intelligent
        // partitioning removes the redundant work); HD tracks the best.
        let dataset = quest(1200, 200, 17);
        let params = ParallelParams::with_min_support_count(10)
            .page_size(50)
            .max_k(5);
        let miner = ParallelMiner::new(8);
        let time = |a| miner.mine(a, &dataset, &params).response_time;
        let (dd, ddc, idd, cd, hd) = (
            time(Algorithm::Dd),
            time(Algorithm::DdComm),
            time(Algorithm::Idd),
            time(Algorithm::Cd),
            time(Algorithm::Hd {
                group_threshold: 500,
            }),
        );
        assert!(
            dd >= ddc,
            "ring never loses to naive all-to-all: DD {dd} vs DD+comm {ddc}"
        );
        assert!(
            ddc > 1.4 * idd,
            "redundant work dominates: DD+comm {ddc} vs IDD {idd}"
        );
        assert!(
            dd > 1.4 * idd,
            "DD pays for redundant work: {dd} vs IDD {idd}"
        );
        assert!(
            hd < cd,
            "with M large vs N, HD must beat CD: HD {hd} vs CD {cd}"
        );
    }

    #[test]
    fn idd_reduces_leaf_visits_versus_dd() {
        // Figure 11's mechanism, observed in the real counters.
        let dataset = quest(600, 100, 23);
        let params = ParallelParams::with_min_support_count(10)
            .page_size(50)
            .max_k(3);
        let miner = ParallelMiner::new(8);
        let dd = miner.mine(Algorithm::Dd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        let dd_visits = dd.passes[2].avg_leaf_visits_per_transaction();
        let idd_visits = idd.passes[2].avg_leaf_visits_per_transaction();
        assert!(
            idd_visits < dd_visits / 2.0,
            "IDD per-transaction leaf visits {idd_visits} should be well below DD's {dd_visits}"
        );
    }

    #[test]
    fn hd_grid_changes_with_candidate_count() {
        let dataset = quest(400, 100, 29);
        // Tiny threshold → many groups in candidate-heavy passes.
        let params = ParallelParams::with_min_support_count(8).page_size(50);
        let run = ParallelMiner::new(8).mine(
            Algorithm::Hd {
                group_threshold: 10,
            },
            &dataset,
            &params,
        );
        let grids: Vec<(usize, usize)> = run.passes.iter().map(|p| p.grid).collect();
        assert!(
            grids.iter().any(|&(g, _)| g > 1),
            "some pass should use G > 1: {grids:?}"
        );
        for (g, cols) in grids {
            assert_eq!(g * cols, 8);
        }
    }

    #[test]
    fn pass_metrics_are_consistent() {
        let dataset = quest(300, 80, 31);
        let params = ParallelParams::with_min_support_count(9);
        let run = ParallelMiner::new(4).mine(Algorithm::Idd, &dataset, &params);
        assert!(!run.passes.is_empty());
        let mut total_time = 0.0;
        for (i, p) in run.passes.iter().enumerate() {
            assert_eq!(p.k, i + 1);
            assert!(p.frequent <= p.candidates.max(p.frequent));
            assert!(p.time >= 0.0);
            total_time += p.time;
        }
        assert!(
            (total_time - run.response_time).abs() < 1e-6 * run.response_time.max(1e-12),
            "pass times must sum to the response time"
        );
        assert_eq!(run.ranks.len(), 4);
        assert!(run.total_bytes() > 0);
    }

    #[test]
    fn deterministic_runs() {
        let dataset = quest(200, 60, 37);
        let params = ParallelParams::with_min_support_count(8);
        let m = ParallelMiner::new(4);
        let a = m.mine(
            Algorithm::Hd {
                group_threshold: 20,
            },
            &dataset,
            &params,
        );
        let b = m.mine(
            Algorithm::Hd {
                group_threshold: 20,
            },
            &dataset,
            &params,
        );
        assert_eq!(a.response_time, b.response_time);
        assert_eq!(a.total_bytes(), b.total_bytes());
    }

    #[test]
    fn single_processor_degenerates_to_serial_costs() {
        let dataset = quest(150, 50, 41);
        let params = ParallelParams::with_min_support_count(6);
        for algo in ALGOS {
            let run = ParallelMiner::new(1).mine(algo, &dataset, &params);
            assert!(!run.frequent.is_empty(), "{}", algo.name());
            assert_eq!(run.procs, 1);
        }
    }

    #[test]
    fn empty_and_tiny_datasets() {
        let empty = Dataset::with_num_items(vec![], 10);
        let params = ParallelParams::with_min_support_count(1);
        let run = ParallelMiner::new(4).mine(Algorithm::Cd, &empty, &params);
        assert!(run.frequent.is_empty());

        let tiny = Dataset::new(vec![Transaction::new(1, vec![Item(0), Item(1), Item(2)])]);
        for algo in ALGOS {
            let run = ParallelMiner::new(4).mine(algo, &tiny, &params);
            assert_eq!(run.frequent.len(), 7, "{}", algo.name());
        }
    }

    #[test]
    fn crash_recovery_reproduces_fault_free_itemsets() {
        use armine_mpsim::{CrashPoint, FaultPlan};
        let dataset = quest(240, 70, 59);
        let params = ParallelParams::with_min_support_count(8)
            .page_size(40)
            .max_k(4);
        let miner = ParallelMiner::new(4);
        let plan = FaultPlan::new()
            .seed(7)
            .drop_rate(0.02)
            .slowdown(1, 2.0)
            .crash(2, CrashPoint::AtPass(3));
        for algo in ALGOS {
            let clean = miner.mine(algo, &dataset, &params);
            let faulted = miner
                .mine_with_faults(algo, &dataset, &params, Some(&plan))
                .unwrap_or_else(|e| panic!("{} under faults: {e}", algo.name()));
            let clean_sets: Vec<(ItemSet, u64)> =
                clean.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
            let faulted_sets: Vec<(ItemSet, u64)> = faulted
                .frequent
                .iter()
                .map(|(s, c)| (s.clone(), c))
                .collect();
            assert_eq!(faulted_sets, clean_sets, "{} diverged", algo.name());
            assert!(
                faulted.total_recoveries() > 0,
                "{} must commit a recovery",
                algo.name()
            );
            assert!(faulted.total_timeouts() > 0, "{}", algo.name());
        }
    }

    /// The formulations with structurally special ranks — NPA's
    /// coordinator, HPA's hash owners, IDD-1src's data source — recover
    /// too, including from the death of the special rank itself.
    #[test]
    fn special_role_algorithms_recover_from_crashes() {
        use armine_mpsim::{CrashPoint, FaultPlan};
        let dataset = quest(240, 70, 59);
        let params = ParallelParams::with_min_support_count(8)
            .page_size(40)
            .max_k(4);
        let miner = ParallelMiner::new(4);
        for algo in [
            Algorithm::Npa,
            Algorithm::Hpa { eld_permille: 200 },
            Algorithm::IddSingleSource,
        ] {
            let clean = miner.mine(algo, &dataset, &params);
            let want: Vec<(ItemSet, u64)> =
                clean.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
            // Rank 0 is the coordinator (NPA), the hot-set contributor
            // (HPA-ELD), and the data source (IDD-1src) — kill it, and a
            // bystander too.
            for victim in [0usize, 2] {
                let plan = FaultPlan::new()
                    .seed(7)
                    .crash(victim, CrashPoint::AtPass(3));
                let faulted = miner
                    .mine_with_faults(algo, &dataset, &params, Some(&plan))
                    .unwrap_or_else(|e| panic!("{} crash({victim}): {e}", algo.name()));
                let got: Vec<(ItemSet, u64)> = faulted
                    .frequent
                    .iter()
                    .map(|(s, c)| (s.clone(), c))
                    .collect();
                assert_eq!(got, want, "{} crash({victim}) diverged", algo.name());
                assert!(
                    faulted.total_recoveries() > 0,
                    "{} crash({victim}) must commit a recovery",
                    algo.name()
                );
            }
        }
        // Transient faults remain transparent.
        let transient = FaultPlan::new().seed(3).drop_rate(0.05);
        for algo in [Algorithm::Npa, Algorithm::Hpa { eld_permille: 0 }] {
            let run = miner
                .mine_with_faults(algo, &dataset, &params, Some(&transient))
                .expect("transient faults are recoverable everywhere");
            assert!(run.total_retransmits() > 0);
        }
    }

    #[test]
    fn all_ranks_crashing_errors_cleanly() {
        use armine_mpsim::{CrashPoint, FaultPlan};
        let dataset = quest(120, 40, 61);
        let params = ParallelParams::with_min_support_count(6).max_k(3);
        let mut plan = FaultPlan::new();
        for rank in 0..3 {
            plan = plan.crash(rank, CrashPoint::AtPass(2));
        }
        assert_eq!(
            ParallelMiner::new(3)
                .mine_with_faults(Algorithm::Cd, &dataset, &params, Some(&plan))
                .unwrap_err(),
            FaultRunError::AllRanksCrashed
        );
    }

    #[test]
    fn out_of_range_crash_rank_is_an_invalid_plan() {
        use armine_mpsim::{CrashPoint, FaultPlan};
        let dataset = quest(120, 40, 61);
        let params = ParallelParams::with_min_support_count(6).max_k(3);
        let plan = FaultPlan::new().crash(9, CrashPoint::AtTime(0.001));
        assert!(matches!(
            ParallelMiner::new(4).mine_with_faults(Algorithm::Cd, &dataset, &params, Some(&plan)),
            Err(FaultRunError::InvalidPlan(_))
        ));
    }

    #[test]
    fn heterogeneous_cluster_preserves_itemsets_for_every_formulation() {
        use crate::config::PlacementPolicy;
        let dataset = quest(240, 70, 67);
        let params = ParallelParams::with_min_support_count(8)
            .page_size(40)
            .max_k(4);
        let cluster = ClusterProfile::uniform(MachineProfile::cray_t3e())
            .speed(0, 2.0)
            .speed(2, 0.25);
        let all_algos = [
            Algorithm::Cd,
            Algorithm::Dd,
            Algorithm::DdComm,
            Algorithm::Idd,
            Algorithm::Hd {
                group_threshold: 40,
            },
            Algorithm::Hpa { eld_permille: 200 },
            Algorithm::IddSingleSource,
            Algorithm::Npa,
            Algorithm::Pdm {
                buckets: 1 << 10,
                filter_passes: 1,
            },
        ];
        for algo in all_algos {
            let want: Vec<(ItemSet, u64)> = ParallelMiner::new(4)
                .mine(algo, &dataset, &params)
                .frequent
                .iter()
                .map(|(s, c)| (s.clone(), c))
                .collect();
            for placement in PlacementPolicy::ALL {
                let run = ParallelMiner::new(4).cluster(cluster.clone()).mine(
                    algo,
                    &dataset,
                    &params.placement(placement),
                );
                let got: Vec<(ItemSet, u64)> =
                    run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
                assert_eq!(got, want, "{} under {placement} diverged", algo.name());
            }
        }
    }

    #[test]
    fn adaptive_placement_beats_static_on_a_skewed_cluster() {
        use crate::config::PlacementPolicy;
        // One rank at quarter speed. Static placement leaves it holding a
        // full 1/P share of the counting work, gating every pass; the
        // adaptive policy re-scores shares from measured pass times and
        // shifts work to the fast ranks.
        let dataset = quest(800, 120, 73);
        let params = ParallelParams::with_min_support_count(10)
            .page_size(50)
            .max_k(4);
        let cluster = ClusterProfile::uniform(MachineProfile::cray_t3e()).speed(1, 0.25);
        for algo in [Algorithm::Cd, Algorithm::Idd] {
            let miner = ParallelMiner::new(4).cluster(cluster.clone());
            let stat = miner.mine(algo, &dataset, &params).response_time;
            let adap = miner
                .mine(algo, &dataset, &params.placement(PlacementPolicy::Adaptive))
                .response_time;
            assert!(
                adap < stat,
                "{}: adaptive {adap} must beat static {stat} with a 4x straggler",
                algo.name()
            );
        }
    }

    #[test]
    fn adaptive_placement_is_a_noop_guarded_fallback_under_crash_plans() {
        use crate::config::PlacementPolicy;
        use armine_mpsim::{CrashPoint, FaultPlan};
        // A crashing plan must force static behavior: identical response
        // time with either policy, and identical itemsets.
        let dataset = quest(240, 70, 59);
        let params = ParallelParams::with_min_support_count(8)
            .page_size(40)
            .max_k(4);
        let plan = FaultPlan::new().seed(7).crash(2, CrashPoint::AtPass(3));
        let miner = ParallelMiner::new(4);
        let stat = miner
            .mine_with_faults(Algorithm::Cd, &dataset, &params, Some(&plan))
            .unwrap();
        let adap = miner
            .mine_with_faults(
                Algorithm::Cd,
                &dataset,
                &params.placement(PlacementPolicy::Adaptive),
                Some(&plan),
            )
            .unwrap();
        assert_eq!(stat.response_time, adap.response_time);
        let a: Vec<(ItemSet, u64)> = stat.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
        let b: Vec<(ItemSet, u64)> = adap.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::Cd.name(), "CD");
        assert_eq!(Algorithm::Dd.name(), "DD");
        assert_eq!(Algorithm::DdComm.name(), "DD+comm");
        assert_eq!(Algorithm::Idd.name(), "IDD");
        assert_eq!(Algorithm::Hd { group_threshold: 1 }.name(), "HD");
        assert_eq!(Algorithm::Hpa { eld_permille: 0 }.name(), "HPA");
        assert_eq!(Algorithm::Hpa { eld_permille: 100 }.name(), "HPA-ELD");
    }

    #[test]
    fn hpa_and_eld_match_serial() {
        let dataset = quest(300, 80, 43);
        let min_count = 9;
        let want = serial_reference(&dataset, min_count);
        assert!(!want.is_empty());
        let params = ParallelParams::with_min_support_count(min_count)
            .page_size(50)
            .max_k(5);
        for eld_permille in [0u32, 100, 500, 1000] {
            for procs in [1, 4] {
                let run = ParallelMiner::new(procs).mine(
                    Algorithm::Hpa { eld_permille },
                    &dataset,
                    &params,
                );
                let got: Vec<(ItemSet, u64)> =
                    run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
                assert_eq!(got, want, "HPA eld={eld_permille} procs={procs}");
            }
        }
    }

    #[test]
    fn hpa_ships_more_than_idd_beyond_pass_two() {
        // Section III-E: "for values of k greater than 2, HPA can have
        // much larger communication volume than that for DD and IDD"
        // because it moves (I choose k) potential candidates per
        // transaction instead of the transaction itself.
        let dataset = quest(400, 120, 47);
        let miner = ParallelMiner::new(8);
        let p2 = ParallelParams::with_min_support_count(8)
            .page_size(50)
            .max_k(4);
        let hpa = miner.mine(Algorithm::Hpa { eld_permille: 0 }, &dataset, &p2);
        let idd = miner.mine(Algorithm::Idd, &dataset, &p2);
        assert!(
            hpa.total_bytes() > 2 * idd.total_bytes(),
            "HPA bytes {} should far exceed IDD bytes {} with passes up to k=4",
            hpa.total_bytes(),
            idd.total_bytes()
        );
    }

    #[test]
    fn eld_reduces_hpa_communication() {
        // Duplicating the hottest candidates keeps their (numerous)
        // potential-candidate instances local.
        let dataset = quest(400, 120, 53);
        let miner = ParallelMiner::new(8);
        let params = ParallelParams::with_min_support_count(8)
            .page_size(50)
            .max_k(3);
        let plain = miner.mine(Algorithm::Hpa { eld_permille: 0 }, &dataset, &params);
        let eld = miner.mine(Algorithm::Hpa { eld_permille: 300 }, &dataset, &params);
        assert!(
            eld.total_bytes() < plain.total_bytes(),
            "ELD {} should ship fewer bytes than plain HPA {}",
            eld.total_bytes(),
            plain.total_bytes()
        );
    }
}
