//! Parallel rule generation — the discovery pipeline's second step.
//!
//! The paper: "The parallel implementation of the second step is
//! straightforward and is discussed in [6]." Agrawal & Shafer's scheme,
//! implemented here: every processor already holds the complete frequent
//! lattice (all our counting algorithms end each pass by reassembling the
//! global `F_k` everywhere), so the itemsets of size ≥ 2 are simply
//! partitioned round-robin; each processor runs the serial `ap-genrules`
//! consequent growth on its share and an all-to-all broadcast merges the
//! rule sets. No support look-ups ever cross processors — the lattice is
//! replicated — so the step parallelizes embarrassingly.

use armine_core::apriori::FrequentItemsets;
use armine_core::rules::{rules_for_itemset_counted, Rule};
use armine_mpsim::{RankStats, Simulator};

/// The result of a parallel rule-generation run.
#[derive(Debug, Clone)]
pub struct ParallelRulesRun {
    /// All rules meeting the confidence bar, ordered as the serial
    /// generator would emit them (by itemset, then consequent level).
    pub rules: Vec<Rule>,
    /// Virtual response time of the step (seconds).
    pub response_time: f64,
    /// Per-rank accounting.
    pub ranks: Vec<RankStats>,
}

/// Per-rule-candidate work constant: one confidence evaluation is a pair
/// of hash probes plus an arithmetic check.
const T_RULE: f64 = 300e-9;

/// Generates rules from a (replicated) frequent lattice on `sim`'s
/// simulated machine.
pub(crate) fn generate_rules_parallel(
    sim: &Simulator,
    frequent: &FrequentItemsets,
    min_confidence: f64,
) -> ParallelRulesRun {
    // The work list: every frequent itemset of size >= 2, in the serial
    // generator's order, with a stable index for round-robin ownership.
    let work: Vec<&armine_core::ItemSet> = (2..=frequent.max_len())
        .flat_map(|size| frequent.level(size).iter().map(|(s, _)| s))
        .collect();
    let work = &work;
    let result = sim.run(move |comm| {
        let p = comm.size();
        let me = comm.rank();
        let mut mine: Vec<(usize, Vec<Rule>)> = Vec::new();
        let mut evaluated = 0u64;
        for (idx, itemset) in work.iter().enumerate() {
            if idx % p != me {
                continue;
            }
            // Work model: one confidence check per consequent the
            // level-wise growth actually evaluated — pruning means this is
            // usually far below the 2^|s| bipartition bound.
            let (rules, evaluated_here) =
                rules_for_itemset_counted(frequent, itemset, min_confidence);
            evaluated += evaluated_here;
            mine.push((idx, rules));
        }
        comm.advance(evaluated as f64 * T_RULE);
        // All-to-all broadcast of the per-processor rule batches.
        let bytes = 16
            + mine
                .iter()
                .map(|(_, rules)| rules.len() * 48)
                .sum::<usize>();
        let all: Vec<Vec<(usize, Vec<Rule>)>> = comm.world().allgather(mine, bytes);
        // Reassemble in serial order by work index.
        let mut indexed: Vec<(usize, Vec<Rule>)> = all.into_iter().flatten().collect();
        indexed.sort_by_key(|(idx, _)| *idx);
        indexed
            .into_iter()
            .flat_map(|(_, r)| r)
            .collect::<Vec<Rule>>()
    });
    let response_time = result.response_time();
    let mut results = result.results;
    let rules = results.swap_remove(0);
    debug_assert!(
        results.iter().all(|r| r.len() == rules.len()),
        "ranks disagree on the rule set"
    );
    ParallelRulesRun {
        rules,
        response_time,
        ranks: result.ranks,
    }
}

#[cfg(test)]
mod tests {

    use crate::{Algorithm, ParallelMiner, ParallelParams};
    use armine_core::rules::generate_rules;
    use armine_datagen::QuestParams;

    #[test]
    fn parallel_rules_match_serial_rules() {
        let dataset = QuestParams::paper_t15_i6()
            .num_transactions(400)
            .num_items(100)
            .num_patterns(40)
            .seed(91)
            .generate();
        let miner = ParallelMiner::new(4);
        let run = miner.mine(
            Algorithm::Cd,
            &dataset,
            &ParallelParams::with_min_support(0.02).max_k(4),
        );
        let serial = generate_rules(&run.frequent, 0.7);
        assert!(!serial.is_empty());
        let parallel = miner.generate_rules(&run.frequent, 0.7);
        assert_eq!(serial.len(), parallel.rules.len());
        for (a, b) in serial.iter().zip(&parallel.rules) {
            assert_eq!(
                a, b,
                "rule order and content must match the serial generator"
            );
        }
        assert!(parallel.response_time > 0.0);
        assert_eq!(parallel.ranks.len(), 4);
    }

    #[test]
    fn more_processors_less_rule_time() {
        let dataset = QuestParams::paper_t15_i6()
            .num_transactions(600)
            .num_items(120)
            .num_patterns(60)
            .seed(93)
            .generate();
        let base = ParallelMiner::new(2);
        let run = base.mine(
            Algorithm::Cd,
            &dataset,
            &ParallelParams::with_min_support(0.015).max_k(4),
        );
        let t2 = base.generate_rules(&run.frequent, 0.5).response_time;
        let t8 = ParallelMiner::new(8)
            .generate_rules(&run.frequent, 0.5)
            .response_time;
        assert!(
            t8 < t2,
            "rule generation is embarrassingly parallel: {t8} !< {t2}"
        );
    }

    #[test]
    fn rule_time_charges_actual_evaluations_not_the_exponential_bound() {
        use armine_core::rules::rules_for_itemset_counted;
        let dataset = QuestParams::paper_t15_i6()
            .num_transactions(400)
            .num_items(100)
            .num_patterns(40)
            .seed(97)
            .generate();
        let miner = ParallelMiner::new(1);
        let run = miner.mine(
            Algorithm::Cd,
            &dataset,
            &ParallelParams::with_min_support(0.02).max_k(5),
        );
        let evaluated: u64 = (2..=run.frequent.max_len())
            .flat_map(|size| run.frequent.level(size).iter())
            .map(|(s, _)| rules_for_itemset_counted(&run.frequent, s, 0.7).1)
            .sum();
        assert!(evaluated > 0);
        let out = miner.generate_rules(&run.frequent, 0.7);
        let busy = out.ranks[0].busy;
        let want = evaluated as f64 * super::T_RULE;
        assert!(
            (busy - want).abs() < 1e-12 * want.max(1.0),
            "charged {busy}s, evaluated consequents price {want}s"
        );
    }

    #[test]
    fn empty_lattice_yields_no_rules() {
        let frequent = armine_core::apriori::FrequentItemsets::default();
        let out = ParallelMiner::new(3).generate_rules(&frequent, 0.5);
        assert!(out.rules.is_empty());
    }
}
