#![warn(missing_docs)]

//! # armine-parallel
//!
//! The four parallel formulations of Apriori the paper studies, plus the
//! intermediate ablation it uses to decompose IDD's gains:
//!
//! | Algorithm | Candidate placement | Data movement | Section |
//! |-----------|--------------------|---------------|---------|
//! | [`Algorithm::Cd`] (Count Distribution) | full replica on every processor | none (counts reduced) | III-A |
//! | [`Algorithm::Dd`] (Data Distribution)  | round-robin partition | naive page all-to-all | III-B |
//! | [`Algorithm::DdComm`] (DD + comm)      | round-robin partition | IDD's ring pipeline | V, Fig 10 |
//! | [`Algorithm::Idd`] (Intelligent DD)    | bin-packed by first item + bitmap filter | ring pipeline | III-C |
//! | [`Algorithm::Hd`] (Hybrid)             | bin-packed within G-row grid columns | ring within columns, reduce along rows | III-D |
//! | [`Algorithm::IddSingleSource`]         | as IDD | source-to-chain pipeline from rank 0 | VI (conclusion) |
//! | [`Algorithm::Npa`]                     | full replica | counts funnelled to a coordinator | III-E (related) |
//! | [`Algorithm::Hpa`] (hash partitioned)  | stable-hash partition | per-transaction k-subsets to owners | III-E (related) |
//! | [`Algorithm::Pdm`] (parallel DHP)      | full replica, bucket-pruned | counts + bucket tables reduced | III-E (related) |
//!
//! All five run on [`armine_mpsim`]'s virtual-time runtime: results are
//! exact (tested identical to serial Apriori), response times come from the
//! calibrated cost model.
//!
//! Runs can also be subjected to deterministic fault injection
//! ([`armine_mpsim::FaultPlan`]): [`ParallelMiner::mine_with_faults`]
//! tolerates message loss, stragglers, and rank crashes for CD, DD,
//! DD+comm, IDD, HD, and PDM. The replicated frequent-itemset lattice
//! acts as the pass-boundary checkpoint — survivors adopt a dead rank's
//! transaction partitions and candidate responsibility, re-execute only
//! the interrupted pass, and mine a lattice bit-identical to the
//! fault-free run ([`FaultRunError`] reports the unrecoverable cases).
//!
//! ```
//! use armine_datagen::QuestParams;
//! use armine_parallel::{Algorithm, ParallelMiner, ParallelParams};
//!
//! let data = QuestParams::paper_t15_i6()
//!     .num_transactions(400).num_items(100).seed(7).generate();
//! let miner = ParallelMiner::new(4);
//! let params = ParallelParams::with_min_support(0.02);
//! let run = miner.mine(Algorithm::Hd { group_threshold: 500 }, &data, &params);
//! assert!(!run.frequent.is_empty());
//! println!("HD response time: {:.3} ms", run.response_time * 1e3);
//! ```

mod cd;
mod common;
mod config;
mod dd;
mod hd;
mod hpa;
mod idd;
mod metrics;
mod miner;
mod npa;
mod pdm;
mod recovery;
mod registry;
mod rules;

pub use config::{ParallelParams, PlacementPolicy};
pub use hd::choose_grid;
pub use metrics::{ParallelPassMetrics, ParallelRun};
pub use miner::{Algorithm, FaultRunError, ParallelMiner};
pub use rules::ParallelRulesRun;
