//! Per-pass and per-run measurements of a parallel mining run.

use armine_core::apriori::FrequentItemsets;
use armine_core::counter::CounterStats;
use armine_metrics::{names, MetricsSnapshot};
use armine_mpsim::{imbalance, RankStats, WallTimings};

/// What one pass of a parallel run looked like.
#[derive(Debug, Clone, Default)]
pub struct ParallelPassMetrics {
    /// Pass number `k`.
    pub k: usize,
    /// `|C_k|` — total candidates this pass (as `apriori_gen` produced).
    pub candidates: usize,
    /// Candidates actually counted; below `candidates` when a hash filter
    /// pruned some (PDM).
    pub counted_candidates: usize,
    /// `|F_k|` — survivors.
    pub frequent: usize,
    /// Processor-grid configuration `(G, P/G)`: `(1, P)` means CD-like,
    /// `(P, 1)` means IDD-like (the notation of Table II).
    pub grid: (usize, usize),
    /// Hash-tree work counters summed over all ranks.
    pub tree_stats: CounterStats,
    /// Database scans this pass (CD exceeds 1 when memory-capped).
    pub db_scans: usize,
    /// Candidate-count imbalance of the partition (`max/avg − 1`);
    /// 0 for replicated-candidate algorithms.
    pub candidate_imbalance: f64,
    /// Virtual response time of this pass alone (seconds).
    pub time: f64,
}

impl ParallelPassMetrics {
    /// Average distinct leaf nodes visited per (processor, transaction)
    /// pairing — the y-axis of Figure 11.
    pub fn avg_leaf_visits_per_transaction(&self) -> f64 {
        self.tree_stats.avg_leaf_visits_per_transaction()
    }
}

/// The complete result of a parallel mining run.
#[derive(Debug, Clone, Default)]
pub struct ParallelRun {
    /// Which algorithm produced this run.
    pub algorithm: &'static str,
    /// Processor count.
    pub procs: usize,
    /// The discovered frequent itemsets (identical on every rank; verified
    /// in debug builds).
    pub frequent: FrequentItemsets,
    /// Per-pass measurements, `k = 1` first.
    pub passes: Vec<ParallelPassMetrics>,
    /// Response time of the whole run: max final clock (seconds). Virtual
    /// time on the sim backend, measured wall time on the native backend.
    pub response_time: f64,
    /// Per-rank time/traffic accounting.
    pub ranks: Vec<RankStats>,
    /// The resolved absolute minimum support count.
    pub min_count: u64,
    /// Per-rank wall-clock timings, indexed by rank; empty unless the run
    /// used [`armine_mpsim::ExecBackend::Native`].
    pub wall: Vec<WallTimings>,
    /// The run's labeled metrics snapshot: every ledger above, re-plumbed
    /// as named series (see `armine_metrics::names`) under the run's base
    /// labels. The accessors below are views over this snapshot.
    pub metrics: MetricsSnapshot,
}

impl ParallelRun {
    /// Total bytes moved during the run — the registry's
    /// `armine.rank.bytes_sent` summed over ranks.
    pub fn total_bytes(&self) -> u64 {
        self.metrics
            .counter_sum(&names::rank_counter("bytes_sent"), &[])
    }

    /// Compute-time load imbalance across ranks (`max/avg − 1`), folded
    /// over the registry's per-rank busy-time gauges in ascending rank
    /// order — the same order (and therefore the same f64 sum) as the
    /// legacy fold over `ranks`.
    pub fn compute_imbalance(&self) -> f64 {
        imbalance(
            self.metrics
                .gauges_by(&names::rank_time("busy"), "rank")
                .into_iter()
                .map(|(_, busy)| busy),
        )
    }

    /// Response time of pass `k` (0.0 if the pass never ran).
    pub fn pass_time(&self, k: usize) -> f64 {
        self.passes
            .iter()
            .find(|p| p.k == k)
            .map_or(0.0, |p| p.time)
    }

    /// Sum of db scans over all passes.
    pub fn total_db_scans(&self) -> usize {
        self.passes.iter().map(|p| p.db_scans).sum()
    }

    /// Transmission attempts lost to injected faults and re-sent after an
    /// ack-timeout backoff, summed over ranks (0 in fault-free runs) —
    /// the registry's `armine.rank.retransmits`.
    pub fn total_retransmits(&self) -> u64 {
        self.metrics
            .counter_sum(&names::rank_counter("retransmits"), &[])
    }

    /// Failure-detector timeouts (receives that concluded the awaited
    /// peer was dead), summed over ranks — `armine.rank.timeouts`.
    pub fn total_timeouts(&self) -> u64 {
        self.metrics
            .counter_sum(&names::rank_counter("timeouts"), &[])
    }

    /// Committed recovery events (membership shrinks with work
    /// redistribution), summed over ranks — `armine.rank.recoveries`.
    pub fn total_recoveries(&self) -> u64 {
        self.metrics
            .counter_sum(&names::rank_counter("recoveries"), &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_time_lookup() {
        let run = ParallelRun {
            passes: vec![
                ParallelPassMetrics {
                    k: 1,
                    time: 0.5,
                    ..Default::default()
                },
                ParallelPassMetrics {
                    k: 2,
                    time: 1.5,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(run.pass_time(2), 1.5);
        assert_eq!(run.pass_time(9), 0.0);
    }

    #[test]
    fn leaf_visit_average_delegates_to_tree_stats() {
        let m = ParallelPassMetrics {
            tree_stats: CounterStats {
                transactions: 10,
                distinct_leaf_visits: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((m.avg_leaf_visits_per_transaction() - 3.0).abs() < 1e-12);
    }
}
