//! Count Distribution (Section III-A, Figure 4).
//!
//! Every processor holds the **entire** candidate hash tree, counts its
//! local N/P transactions against it, then a global reduction sums the
//! count vectors (candidate order is identical everywhere because
//! `apriori_gen` is deterministic). CD communicates only `O(M)` counts per
//! pass — hence its excellent transaction scaling — but builds the full
//! tree serially on every processor and, when `|C_k|` exceeds the
//! per-processor memory capacity, partitions the tree and rescans the
//! database once per partition (the Figure 12 penalty).

use crate::common::{build_counter_charged, count_batch_charged, PassResult, RankCtx};
use crate::config::ParallelParams;
use armine_core::counter::CounterStats;
use armine_core::hashtree::OwnershipFilter;
use armine_core::ItemSet;
use armine_mpsim::{Comm, RecvFault};

/// One CD counting pass.
pub(crate) fn count_pass(
    comm: &mut Comm,
    ctx: &RankCtx,
    k: usize,
    candidates: Vec<ItemSet>,
    params: &ParallelParams,
) -> Result<PassResult, RecvFault> {
    let p = ctx.size();
    let total = candidates.len();
    let cap = params.memory_capacity.unwrap_or(usize::MAX).max(1);
    let mut level = Vec::new();
    let mut stats = CounterStats::default();
    let mut scans = 0usize;
    let mut idx = 0usize;
    let mut first_chunk = true;
    while idx < total {
        let end = (idx + cap).min(total);
        // Replicated counter over this chunk. apriori_gen is charged once.
        let gen_charge = if first_chunk { total } else { 0 };
        let mut counter = build_counter_charged(
            comm,
            k,
            params.counter,
            params.tree,
            candidates[idx..end].to_vec(),
            gen_charge,
        );
        first_chunk = false;
        // Each scan (re-)reads the local slice of the database.
        comm.charge_io(ctx.local_bytes());
        stats = stats.merged(&count_batch_charged(
            comm,
            &mut *counter,
            &ctx.local,
            &OwnershipFilter::all(),
        ));
        // Global reduction: sum the chunk's count vector across all ranks.
        let mut counts = counter.count_vector();
        ctx.world(comm).try_allreduce_sum_u64(&mut counts)?;
        counter.set_count_vector(&counts);
        level.extend(counter.frequent(ctx.min_count));
        scans += 1;
        idx = end;
    }
    // Chunks are contiguous slices of the sorted candidate list, so the
    // concatenated level is already lexicographically sorted.
    Ok(PassResult {
        level,
        stats,
        db_scans: scans.max(1),
        grid: (1, p),
        candidate_imbalance: 0.0,
        counted_candidates: None,
    })
}
