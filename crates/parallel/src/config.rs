//! Shared knobs of the parallel formulations.

use armine_core::apriori::MinSupport;
use armine_core::counter::CounterBackend;
use armine_core::hashtree::HashTreeParams;

/// How the placement seam assigns work to ranks: candidate bins for the
/// partitioned formulations, transaction-page shares for the replicated
/// ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Fixed equal shares, decided once — the paper's standing assumption
    /// of identical processors (the default; reproduces the golden
    /// virtual-time fingerprints bit for bit).
    #[default]
    Static,
    /// Re-score the assignment at every pass boundary from the previous
    /// pass's per-rank measured (native) or simulated counting times,
    /// greedily steering the heaviest units to the effectively fastest
    /// ranks. The mined itemsets are identical either way; only the
    /// response time changes. Ignored (falls back to static) when the
    /// fault plan can crash ranks — recovery owns data placement then.
    Adaptive,
}

impl PlacementPolicy {
    /// Every policy, in CLI listing order.
    pub const ALL: [PlacementPolicy; 2] = [PlacementPolicy::Static, PlacementPolicy::Adaptive];

    /// Short name ("static" / "adaptive").
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::Static => "static",
            PlacementPolicy::Adaptive => "adaptive",
        }
    }

    /// Parses a policy name as the CLI spells it (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters common to every parallel formulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelParams {
    /// Minimum support threshold (fraction is relative to the whole
    /// database, not a processor's slice).
    pub min_support: MinSupport,
    /// Hash-tree shape on every processor. Ignored by the trie backend.
    pub tree: HashTreeParams,
    /// Which counting structure every processor builds over its candidate
    /// share. The hash-tree default reproduces the paper's instrumented
    /// runs (and the golden fingerprints) exactly.
    pub counter: CounterBackend,
    /// Transactions per communication buffer ("one page" in the paper;
    /// their pages held ≈1000 transactions at 63 KB per 1000).
    pub page_size: usize,
    /// Per-processor hash-tree capacity in candidates. Only CD partitions
    /// its (replicated) tree and rescans when `|C_k|` exceeds this — the
    /// multi-scan penalty of Figures 12 and 15. DD/IDD/HD exploit
    /// aggregate memory instead.
    pub memory_capacity: Option<usize>,
    /// Stop after this pass (Figure 13 measures pass 3 alone).
    pub max_k: Option<usize>,
    /// For IDD's two-level refinement: split a first item across
    /// processors when it starts more than this many candidates. `None`
    /// uses plain single-level partitioning (the paper's default).
    pub split_threshold: Option<u64>,
    /// How work units are placed on ranks — static equal shares (the
    /// default) or adaptive pass-boundary re-balancing for heterogeneous
    /// clusters.
    pub placement: PlacementPolicy,
}

impl ParallelParams {
    /// Params with a fractional minimum support, defaults elsewhere.
    pub fn with_min_support(fraction: f64) -> Self {
        ParallelParams {
            min_support: MinSupport::Fraction(fraction),
            ..Self::default_counts(0)
        }
    }

    /// Params with an absolute minimum support count, defaults elsewhere.
    pub fn with_min_support_count(count: u64) -> Self {
        Self::default_counts(count)
    }

    fn default_counts(count: u64) -> Self {
        ParallelParams {
            min_support: MinSupport::Count(count),
            tree: HashTreeParams::default(),
            counter: CounterBackend::default(),
            page_size: 1000,
            memory_capacity: None,
            max_k: None,
            split_threshold: None,
            placement: PlacementPolicy::default(),
        }
    }

    /// Sets the hash-tree shape.
    pub fn tree(mut self, tree: HashTreeParams) -> Self {
        self.tree = tree;
        self
    }

    /// Selects the candidate-counting backend.
    pub fn counter(mut self, counter: CounterBackend) -> Self {
        self.counter = counter;
        self
    }

    /// Sets the communication buffer size in transactions.
    pub fn page_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "page size must be positive");
        self.page_size = n;
        self
    }

    /// Caps the per-processor candidate capacity (CD multi-scan mode).
    pub fn memory_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "memory capacity must be positive");
        self.memory_capacity = Some(cap);
        self
    }

    /// Stops mining after pass `k`.
    pub fn max_k(mut self, k: usize) -> Self {
        self.max_k = Some(k);
        self
    }

    /// Enables IDD's two-level candidate split for hot first items.
    pub fn split_threshold(mut self, t: u64) -> Self {
        self.split_threshold = Some(t);
        self
    }

    /// Selects the placement policy.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = ParallelParams::with_min_support(0.01)
            .page_size(64)
            .memory_capacity(1000)
            .max_k(3)
            .split_threshold(50)
            .counter(CounterBackend::Trie)
            .placement(PlacementPolicy::Adaptive);
        assert_eq!(p.page_size, 64);
        assert_eq!(p.memory_capacity, Some(1000));
        assert_eq!(p.max_k, Some(3));
        assert_eq!(p.split_threshold, Some(50));
        assert_eq!(p.min_support, MinSupport::Fraction(0.01));
        assert_eq!(p.counter, CounterBackend::Trie);
        assert_eq!(p.placement, PlacementPolicy::Adaptive);
        // The default backend is the paper's hash tree.
        assert_eq!(
            ParallelParams::with_min_support_count(1).counter,
            CounterBackend::HashTree
        );
        // The default placement is the paper's static equal shares.
        assert_eq!(
            ParallelParams::with_min_support_count(1).placement,
            PlacementPolicy::Static
        );
    }

    #[test]
    fn placement_names_round_trip() {
        for p in PlacementPolicy::ALL {
            assert_eq!(PlacementPolicy::parse(p.name()), Some(p));
            assert_eq!(PlacementPolicy::parse(&p.name().to_uppercase()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(
            PlacementPolicy::parse("Adaptive"),
            Some(PlacementPolicy::Adaptive)
        );
        assert_eq!(PlacementPolicy::parse("greedy"), None);
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::Static);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_rejected() {
        ParallelParams::with_min_support_count(1).page_size(0);
    }
}
