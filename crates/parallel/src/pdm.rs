//! PDM — Parallel Data Mining (Park, Chen & Yu, CIKM '95): the parallel
//! formulation of DHP that Section III-E describes as "similar in nature
//! to the CD algorithm".
//!
//! Structure of a pass:
//!
//! * Before counting pass 2 (and optionally later passes), every processor
//!   hashes the k-subsets of its **local** transactions into a bucket
//!   table; one global reduction sums the tables, and every processor
//!   prunes the freshly generated `C_k` by the global bucket counts —
//!   identical pruning everywhere, so candidate order stays aligned.
//! * Counting then proceeds exactly as CD: replicated hash tree over the
//!   (pruned) candidates, local counts, global count reduction.
//!
//! Compared to CD, PDM pays an extra `O(B)` reduction (B = bucket count)
//! and the subset-hashing compute, and saves the tree build + counting
//! for every pruned candidate. The `exp_pdm` experiment measures the
//! trade.

use crate::cd;
use crate::common::{PassResult, RankCtx};
use crate::config::ParallelParams;
use armine_core::dhp::HashFilter;
use armine_core::ItemSet;
use armine_mpsim::{Comm, RecvFault};

/// One PDM counting pass. `filter_passes` bounds which passes build and
/// apply a hash filter (the original uses it for pass 2, where `|C_2|`
/// dominates).
pub(crate) fn count_pass(
    comm: &mut Comm,
    ctx: &RankCtx,
    k: usize,
    candidates: Vec<ItemSet>,
    params: &ParallelParams,
    buckets: usize,
    filter_passes: usize,
) -> Result<PassResult, RecvFault> {
    let total = candidates.len();
    let candidates = if k >= 2 && k <= 1 + filter_passes {
        // Build the local bucket table for this pass's subset size over
        // the local slice.
        let machine = comm.machine().clone();
        let mut filter = HashFilter::new(buckets);
        let mut hashed = 0u64;
        for t in &ctx.local {
            for subset in t.k_subsets(k) {
                filter.add(&subset);
                hashed += 1;
            }
        }
        comm.advance(hashed as f64 * machine.t_travers);
        // Global reduction of the bucket table (the PDM-specific traffic).
        let mut counts = filter.counts().to_vec();
        ctx.world(comm).try_allreduce_sum_u64(&mut counts)?;
        filter.set_counts(&counts);
        // Prune: identical on every rank (global counts, same candidates).
        candidates
            .into_iter()
            .filter(|c| filter.admits(c, ctx.min_count))
            .collect()
    } else {
        candidates
    };
    let counted = candidates.len();
    let mut result = cd::count_pass(comm, ctx, k, candidates, params)?;
    result.counted_candidates = Some(counted);
    let _ = total;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use crate::{Algorithm, ParallelMiner, ParallelParams};
    use armine_core::apriori::{Apriori, AprioriParams};
    use armine_core::ItemSet;
    use armine_datagen::QuestParams;

    fn quest(n: usize, items: u32, seed: u64) -> armine_core::Dataset {
        QuestParams::paper_t15_i6()
            .num_transactions(n)
            .num_items(items)
            .num_patterns(30)
            .seed(seed)
            .generate()
    }

    #[test]
    fn pdm_matches_serial_apriori() {
        let dataset = quest(300, 80, 61);
        let min_count = 9;
        let serial = Apriori::new(AprioriParams::with_min_support_count(min_count).max_k(4))
            .mine(dataset.transactions());
        let want: Vec<(ItemSet, u64)> = serial
            .frequent
            .iter()
            .map(|(s, c)| (s.clone(), c))
            .collect();
        let params = ParallelParams::with_min_support_count(min_count).max_k(4);
        for procs in [1, 4, 7] {
            for buckets in [16usize, 4096] {
                let run = ParallelMiner::new(procs).mine(
                    Algorithm::Pdm {
                        buckets,
                        filter_passes: 2,
                    },
                    &dataset,
                    &params,
                );
                let got: Vec<(ItemSet, u64)> =
                    run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
                assert_eq!(got, want, "procs={procs} buckets={buckets}");
            }
        }
    }

    #[test]
    fn pdm_prunes_pass2_candidates() {
        let dataset = quest(500, 150, 67);
        let min_count = 12;
        let params = ParallelParams::with_min_support_count(min_count).max_k(3);
        let miner = ParallelMiner::new(4);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let pdm = miner.mine(
            Algorithm::Pdm {
                buckets: 1 << 15,
                filter_passes: 1,
            },
            &dataset,
            &params,
        );
        let cd2 = &cd.passes[1];
        let pdm2 = &pdm.passes[1];
        assert_eq!(cd2.candidates, pdm2.candidates, "same apriori_gen output");
        assert!(
            pdm2.counted_candidates < cd2.counted_candidates,
            "PDM must count fewer pass-2 candidates: {} vs {}",
            pdm2.counted_candidates,
            cd2.counted_candidates
        );
        // Same final answer.
        assert_eq!(cd.frequent.len(), pdm.frequent.len());
    }

    #[test]
    fn pdm_with_no_filter_passes_is_cd() {
        let dataset = quest(200, 60, 71);
        let params = ParallelParams::with_min_support_count(8).max_k(3);
        let miner = ParallelMiner::new(4);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let pdm = miner.mine(
            Algorithm::Pdm {
                buckets: 64,
                filter_passes: 0,
            },
            &dataset,
            &params,
        );
        for (a, b) in cd.passes.iter().zip(&pdm.passes) {
            assert_eq!(a.counted_candidates, b.counted_candidates);
        }
        assert_eq!(cd.frequent.len(), pdm.frequent.len());
    }
}
