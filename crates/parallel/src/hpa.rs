//! Hash Partitioned Apriori (Shintani & Kitsuregawa, PDIS '96) — the
//! alternative candidate-partitioning scheme Section III-E compares IDD
//! against, plus its ELD (Extremely Large itemset Duplication) skew
//! refinement.
//!
//! Where IDD partitions candidates by *first item* and moves
//! **transactions**, HPA partitions them by *hashing the whole itemset*
//! and moves **potential candidates**: during pass `k` every processor
//! enumerates, for each local transaction, all `(|t| choose k)` size-`k`
//! subsets, hashes each to find its owner, and ships it there; owners
//! probe the received subsets against their local candidate table.
//!
//! The paper's two critiques, both observable here:
//!
//! 1. *Balance* — "the distribution of the candidate itemsets over
//!    processors is determined by the hash function", so no bin-packing
//!    can correct it (good spread in expectation, no guarantee).
//! 2. *Volume* — `(I choose k)` subsets per transaction: for `k > 2` HPA
//!    ships far more bytes than DD/IDD ship transactions; for `k = 2` it
//!    can ship less. The `exp_hpa` experiment measures this crossover.
//!
//! ELD duplicates the hottest candidates (here: by their anti-monotone
//! support bound, the minimum count of their `(k−1)`-subsets) on every
//! processor; those are counted locally and summed with one small
//! all-reduce, so their (numerous) potential-candidate instances are
//! never shipped.

use crate::common::{level_wire_size, merge_levels, paginate, PassResult, RankCtx, TAG_DATA};
use crate::config::ParallelParams;
use armine_core::counter::CounterStats;
use armine_core::stable_hash::owner_of;
use armine_core::ItemSet;
use armine_mpsim::{Comm, RecvFault};
use std::collections::{HashMap, HashSet};

/// One HPA counting pass. All addressing is by member index within the
/// current attempt's scope, so the pass re-runs cleanly under a shrunken
/// membership (candidate ownership simply re-hashes over the survivors).
#[allow(clippy::needless_range_loop)] // loop variables are peer ranks
pub(crate) fn count_pass(
    comm: &mut Comm,
    ctx: &RankCtx,
    k: usize,
    candidates: Vec<ItemSet>,
    prev_level: &[(ItemSet, u64)],
    _params: &ParallelParams,
    eld_permille: u32,
) -> Result<PassResult, RecvFault> {
    let p = ctx.size();
    let me = ctx.my_index;
    let total = candidates.len();
    let machine = comm.machine().clone();

    // Every processor regenerates the full candidate set (as in IDD).
    comm.advance(total as f64 * machine.t_gen);

    // --- ELD selection: duplicate the hottest candidates everywhere. ----
    // Hotness = upper bound on support = min over (k-1)-subset counts
    // (anti-monotonicity). Deterministic on every rank.
    let eld_count = (total * eld_permille as usize) / 1000;
    let hot: HashSet<ItemSet> = if eld_count > 0 {
        let prev_counts: HashMap<&ItemSet, u64> = prev_level.iter().map(|(s, c)| (s, *c)).collect();
        let mut bounded: Vec<(u64, &ItemSet)> = candidates
            .iter()
            .map(|c| {
                let bound = c
                    .subsets_dropping_one()
                    .map(|s| prev_counts.get(&s).copied().unwrap_or(0))
                    .min()
                    .unwrap_or(0);
                (bound, c)
            })
            .collect();
        bounded.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
        bounded
            .into_iter()
            .take(eld_count)
            .map(|(_, c)| c.clone())
            .collect()
    } else {
        HashSet::new()
    };

    // --- Local candidate tables. ----------------------------------------
    // Owned: hash-partitioned candidates this processor counts for the
    // whole database. Hot: the ELD duplicates, counted CD-style.
    let mut owned: HashMap<ItemSet, u64> = HashMap::new();
    let mut loads = vec![0u64; p];
    for c in &candidates {
        if hot.contains(c) {
            continue;
        }
        let owner = owner_of(c, p);
        loads[owner] += 1;
        if owner == me {
            owned.insert(c.clone(), 0);
        }
    }
    let mut hot_counts: HashMap<ItemSet, u64> = hot.iter().map(|c| (c.clone(), 0)).collect();
    // Building the local tables is the (hash-table) analogue of tree
    // construction: owned plus the duplicated hot set.
    comm.advance((owned.len() + hot_counts.len()) as f64 * machine.t_insert);
    comm.charge_io(ctx.local_bytes());

    let candidate_imbalance = imbalance_of(&loads);

    // --- Counting rounds. -------------------------------------------------
    // Page-synchronized all-to-all of potential candidates: everyone
    // enumerates subsets of one local page, ships them to their owners,
    // then drains and probes the subsets it received.
    let my_pages = paginate(&ctx.local, ctx.page_size);
    let page_counts: Vec<u64> = ctx.world(comm).try_allgather(my_pages.len() as u64, 8)?;
    let max_pages = page_counts.iter().copied().max().unwrap_or(0) as usize;

    let mut stats = CounterStats::default();
    let subset_bytes = 4 * k;
    for round in 0..max_pages {
        // Enumerate and route this page's potential candidates.
        let mut outbound: Vec<Vec<ItemSet>> = vec![Vec::new(); p];
        let mut generated = 0u64;
        let mut local_probes = 0u64;
        if let Some(page) = my_pages.get(round) {
            for t in page.iter() {
                stats.transactions += 1;
                for subset in t.k_subsets(k) {
                    generated += 1;
                    if let Some(c) = hot_counts.get_mut(&subset) {
                        *c += 1;
                        local_probes += 1;
                        continue;
                    }
                    let owner = owner_of(&subset, p);
                    if owner == me {
                        local_probes += 1;
                        if let Some(c) = owned.get_mut(&subset) {
                            *c += 1;
                        }
                    } else {
                        outbound[owner].push(subset);
                    }
                }
            }
        }
        // Enumeration + local probing cost.
        comm.advance(generated as f64 * machine.t_travers + local_probes as f64 * machine.t_check);
        stats.traversal_steps += generated;
        stats.candidate_checks += local_probes;

        // Ship each processor its batch (one message per destination per
        // round, like the original's bucket sends).
        {
            let mut world = ctx.world(comm);
            for other in 0..p {
                if other == me {
                    continue;
                }
                let batch = std::mem::take(&mut outbound[other]);
                let bytes = 8 + subset_bytes * batch.len();
                world.send(other, TAG_DATA | (round as u64) << 8, batch, bytes);
            }
            // Drain and probe everyone's batch for this round.
            let mut inbound = 0u64;
            for other in 0..p {
                if other == me || round >= page_counts[other] as usize {
                    continue;
                }
                let batch: Vec<ItemSet> = world.try_recv(other, TAG_DATA | (round as u64) << 8)?;
                inbound += batch.len() as u64;
                for subset in batch {
                    if let Some(c) = owned.get_mut(&subset) {
                        *c += 1;
                    }
                }
            }
            drop(world);
            comm.advance(inbound as f64 * machine.t_check);
            stats.candidate_checks += inbound;
        }
    }

    // --- Frequent extraction. ---------------------------------------------
    // Hot candidates: counted on every processor against its local slice;
    // one small all-reduce completes them (identical order everywhere).
    let mut hot_sorted: Vec<ItemSet> = hot_counts.keys().cloned().collect();
    hot_sorted.sort();
    let mut hot_vec: Vec<u64> = hot_sorted.iter().map(|c| hot_counts[c]).collect();
    if !hot_vec.is_empty() {
        ctx.world(comm).try_allreduce_sum_u64(&mut hot_vec)?;
    }
    // Owned candidates already have complete counts. The first member
    // contributes the hot survivors so the merged level stays a disjoint
    // union.
    let mut mine_frequent: Vec<(ItemSet, u64)> = owned
        .into_iter()
        .filter(|&(_, c)| c >= ctx.min_count)
        .collect();
    if me == 0 {
        mine_frequent.extend(
            hot_sorted
                .into_iter()
                .zip(hot_vec)
                .filter(|&(_, c)| c >= ctx.min_count),
        );
    }
    mine_frequent.sort_by(|a, b| a.0.cmp(&b.0));
    let bytes = level_wire_size(&mine_frequent);
    let all = ctx.world(comm).try_allgather(mine_frequent, bytes)?;
    Ok(PassResult {
        level: merge_levels(all),
        stats,
        db_scans: 1,
        grid: (p, 1),
        candidate_imbalance,
        counted_candidates: None,
    })
}

fn imbalance_of(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 0.0;
    }
    let avg = total as f64 / loads.len() as f64;
    *loads.iter().max().unwrap() as f64 / avg - 1.0
}

#[cfg(test)]
mod tests {
    use super::imbalance_of;

    #[test]
    fn imbalance_of_uniform_is_zero() {
        assert!(imbalance_of(&[5, 5, 5]).abs() < 1e-12);
        assert_eq!(imbalance_of(&[]), 0.0);
        assert_eq!(imbalance_of(&[0, 0]), 0.0);
    }

    #[test]
    fn imbalance_of_skew() {
        // avg 10, max 20 → 100%.
        assert!((imbalance_of(&[20, 10, 0]) - 1.0).abs() < 1e-12);
    }
}
