//! NPA — Non-Partitioned Apriori (Shintani & Kitsuregawa, PDIS '96),
//! which Section III-E notes "is very similar to CD": the candidates are
//! replicated and only counts move. The one structural difference is the
//! count exchange: where CD uses a symmetric all-reduce, NPA funnels
//! every processor's count vector to a **coordinator**, which sums them,
//! derives `F_k`, and broadcasts it back.
//!
//! That coordinator is the lesson: the root receives `(P−1)·M` counts
//! through one port, so NPA's reduction step scales as `O(P·M)` against
//! CD's `O(M)` — measurably worse at scale (tested below), which is
//! precisely why CD's authors used a proper reduction.

use crate::common::{build_counter_charged, count_batch_charged, PassResult, RankCtx};
use crate::config::ParallelParams;
use armine_core::hashtree::OwnershipFilter;
use armine_core::ItemSet;
use armine_mpsim::{Comm, RecvFault};

/// One NPA counting pass.
pub(crate) fn count_pass(
    comm: &mut Comm,
    ctx: &RankCtx,
    k: usize,
    candidates: Vec<ItemSet>,
    params: &ParallelParams,
) -> Result<PassResult, RecvFault> {
    let p = ctx.size();
    let total = candidates.len();
    let mut counter =
        build_counter_charged(comm, k, params.counter, params.tree, candidates, total);
    comm.charge_io(ctx.local_bytes());
    let stats = count_batch_charged(comm, &mut *counter, &ctx.local, &OwnershipFilter::all());

    // Funnel the counts to the coordinator — member index 0, so the role
    // survives the death (and adoption) of any global rank.
    let counts = counter.count_vector();
    let bytes = counts.len() * 8;
    let mut world = ctx.world(comm);
    let gathered = world.try_gather(0, counts, bytes)?;
    let level: Vec<(ItemSet, u64)> = if let Some(all) = gathered {
        // Coordinator: sum and filter.
        let mut sum = vec![0u64; total];
        for v in &all {
            for (dst, src) in sum.iter_mut().zip(v) {
                *dst += src;
            }
        }
        // Coordinator-side summation: (P−1)·M integer adds.
        let m = world.comm().machine().clone();
        let t_add = m.t_travers / 8.0; // one add is far cheaper than a tree descent
        world
            .comm()
            .advance(total as f64 * (p as f64 - 1.0) * t_add);
        counter.set_count_vector(&sum);
        let level = counter.frequent(ctx.min_count);
        let level_bytes = crate::common::level_wire_size(&level);
        world.try_broadcast(0, Some(level.clone()), level_bytes)?;
        level
    } else {
        world.try_broadcast::<Vec<(ItemSet, u64)>>(0, None, 0)?
    };
    Ok(PassResult {
        level,
        stats,
        db_scans: 1,
        grid: (1, p),
        candidate_imbalance: 0.0,
        counted_candidates: None,
    })
}

#[cfg(test)]
mod tests {
    use crate::{Algorithm, ParallelMiner, ParallelParams};
    use armine_core::apriori::{Apriori, AprioriParams};
    use armine_core::ItemSet;
    use armine_datagen::QuestParams;

    fn quest(n: usize, items: u32, seed: u64) -> armine_core::Dataset {
        QuestParams::paper_t15_i6()
            .num_transactions(n)
            .num_items(items)
            .num_patterns(30)
            .seed(seed)
            .generate()
    }

    #[test]
    fn npa_matches_serial() {
        let dataset = quest(300, 80, 97);
        let min_count = 9;
        let serial = Apriori::new(AprioriParams::with_min_support_count(min_count).max_k(4))
            .mine(dataset.transactions());
        let want: Vec<(ItemSet, u64)> = serial
            .frequent
            .iter()
            .map(|(s, c)| (s.clone(), c))
            .collect();
        let params = ParallelParams::with_min_support_count(min_count).max_k(4);
        for procs in [1, 4, 6] {
            let run = ParallelMiner::new(procs).mine(Algorithm::Npa, &dataset, &params);
            let got: Vec<(ItemSet, u64)> =
                run.frequent.iter().map(|(s, c)| (s.clone(), c)).collect();
            assert_eq!(got, want, "procs={procs}");
        }
    }

    #[test]
    fn coordinator_funnel_costs_more_than_allreduce_at_scale() {
        // Candidate-heavy pass, many processors: NPA's O(P·M) coordinator
        // receive must exceed CD's O(M) reduction.
        let dataset = quest(640, 200, 101);
        let params = ParallelParams::with_min_support_count(7).max_k(3);
        let miner = ParallelMiner::new(32);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let npa = miner.mine(Algorithm::Npa, &dataset, &params);
        assert!(
            npa.response_time > cd.response_time,
            "NPA {} should be slower than CD {}",
            npa.response_time,
            cd.response_time
        );
        assert_eq!(cd.frequent.len(), npa.frequent.len());
    }
}
