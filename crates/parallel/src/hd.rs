//! Hybrid Distribution (Section III-D, Figure 9).
//!
//! HD arranges the P processors as a `G × (P/G)` grid. The candidate set
//! is partitioned among the **G rows** (every column holds one full copy,
//! partitioned down its G members); the transactions are spread over all
//! P processors as usual. One pass is then:
//!
//! 1. **Columns run IDD**: each column of G processors ring-shifts its
//!    column's transactions and counts them against the column's candidate
//!    partition (bitmap-filtered).
//! 2. **Rows run CD's reduction**: processors along a row hold the *same*
//!    candidate subset, so an all-reduce along the row produces global
//!    counts for that subset.
//! 3. **Columns broadcast the survivors**: an all-to-all broadcast along
//!    each column reassembles the full `F_k` on every processor.
//!
//! `G` is chosen dynamically per pass: `G = 1` (pure CD) while the
//! candidate set is small, growing as `⌈M/m⌉` (rounded to a divisor of P)
//! when it is large — Table II's configurations.

use crate::common::{
    build_counter_charged, level_wire_size, merge_levels, paginate, ring_shift_count, PassResult,
    RankCtx,
};
use crate::config::ParallelParams;
use crate::idd::make_partition;
use armine_core::ItemSet;
use armine_mpsim::{Comm, RecvFault};

/// Scope-id namespaces for the grid's sub-communicators.
const SCOPE_COLUMN: u64 = 1_000;
const SCOPE_ROW: u64 = 2_000;
const SCOPE_COLUMN_BCAST: u64 = 3_000;

/// Chooses the processor-grid configuration `(G, P/G)` for a pass with
/// `m_total` candidates and per-group threshold `m` — the paper's dynamic
/// grouping. `G = 1` when `M < m` (run CD on all processors); otherwise
/// the smallest divisor of `P` that is at least `⌈M/m⌉` (capped at `P`,
/// which is pure IDD).
pub fn choose_grid(p: usize, m_total: usize, m: usize) -> (usize, usize) {
    assert!(p >= 1 && m >= 1);
    if m_total < m {
        return (1, p);
    }
    let want = m_total.div_ceil(m);
    let g = (1..=p)
        .filter(|d| p.is_multiple_of(*d))
        .find(|&d| d >= want)
        .unwrap_or(p);
    (g, p / g)
}

/// One HD counting pass.
pub(crate) fn count_pass(
    comm: &mut Comm,
    ctx: &RankCtx,
    k: usize,
    candidates: Vec<ItemSet>,
    params: &ParallelParams,
    group_threshold: usize,
) -> Result<PassResult, RecvFault> {
    let p = ctx.size();
    let me = ctx.my_index;
    let total = candidates.len();
    let (g, cols) = choose_grid(p, total, group_threshold);
    let (my_row, my_col) = (me / cols, me % cols);
    // Grid positions are member-list indices, mapped to global ranks so
    // the sub-scopes stay valid after a recovery shrinks the membership.
    let col_members: Vec<usize> = (0..g).map(|r| ctx.members[r * cols + my_col]).collect();
    let row_members: Vec<usize> = (0..cols).map(|c| ctx.members[my_row * cols + c]).collect();

    // Candidates partitioned among the G rows — identical in every column.
    // A row's effective capacity is its *slowest* member's: the row's
    // candidate subset is counted in parallel by one rank per column, so
    // the slowest column finishes last. Uniform capacities collapse to
    // all-1.0 rows and the historical equal packing.
    let row_caps: Vec<f64> = (0..g)
        .map(|r| {
            (0..cols)
                .map(|c| ctx.capacities[r * cols + c])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let part = make_partition(&candidates, ctx.num_items, &row_caps, params);
    let mine = part.parts[my_row].clone();
    let filter = part.filters[my_row].clone();
    let mut counter = build_counter_charged(comm, k, params.counter, params.tree, mine, total);
    comm.charge_io(ctx.local_bytes());

    // Step 1 — IDD within the column: shift the column's transactions
    // around the column ring, counting with the bitmap filter.
    let my_pages = paginate(&ctx.local, ctx.page_size);
    let (stats, counts) = {
        let mut col = comm.scope(
            ctx.scope_id(SCOPE_COLUMN + my_col as u64),
            col_members.clone(),
        );
        let page_counts: Vec<u64> = col.try_allgather(my_pages.len() as u64, 8)?;
        let max_pages = page_counts.iter().copied().max().unwrap_or(0) as usize;
        let stats = ring_shift_count(&mut col, &my_pages, max_pages, &mut *counter, &filter)?;
        (stats, counter.count_vector())
    };

    // Step 2 — reduction along the row: processors in a row hold the same
    // candidate subset; summing gives global counts.
    let mut counts = counts;
    comm.scope(ctx.scope_id(SCOPE_ROW + my_row as u64), row_members)
        .try_allreduce_sum_u64(&mut counts)?;
    counter.set_count_vector(&counts);
    let mine_frequent = counter.frequent(ctx.min_count);

    // Step 3 — all-to-all broadcast along the column: reassemble F_k.
    let bytes = level_wire_size(&mine_frequent);
    let col_levels = comm
        .scope(
            ctx.scope_id(SCOPE_COLUMN_BCAST + my_col as u64),
            col_members,
        )
        .try_allgather(mine_frequent, bytes)?;
    Ok(PassResult {
        level: merge_levels(col_levels),
        stats,
        db_scans: 1,
        grid: (g, cols),
        candidate_imbalance: part.imbalance,
        counted_candidates: None,
    })
}

#[cfg(test)]
mod tests {
    use super::choose_grid;

    #[test]
    fn small_candidate_sets_run_cd() {
        assert_eq!(choose_grid(64, 34_000, 50_000), (1, 64));
        assert_eq!(choose_grid(8, 0, 100), (1, 8));
    }

    #[test]
    fn table2_configurations_reproduced() {
        // Table II: P = 64, m = 50K.
        let m = 50_000;
        assert_eq!(choose_grid(64, 351_000, m), (8, 8), "pass 2");
        assert_eq!(choose_grid(64, 4_348_000, m), (64, 1), "pass 3 (pure IDD)");
        assert_eq!(choose_grid(64, 115_000, m), (4, 16), "pass 4");
        assert_eq!(choose_grid(64, 76_000, m), (2, 32), "pass 5");
        assert_eq!(choose_grid(64, 56_000, m), (2, 32), "pass 6");
        assert_eq!(choose_grid(64, 34_000, m), (1, 64), "pass 7 (pure CD)");
    }

    #[test]
    fn grid_always_divides_p() {
        for p in [1usize, 2, 6, 12, 64, 128] {
            for m_total in [0usize, 10, 1_000, 100_000, 10_000_000] {
                let (g, cols) = choose_grid(p, m_total, 1_000);
                assert_eq!(g * cols, p, "p={p} m={m_total}");
            }
        }
    }

    #[test]
    fn huge_m_caps_at_pure_idd() {
        assert_eq!(choose_grid(16, usize::MAX / 2, 1), (16, 1));
    }
}
