//! Machinery shared by all four parallel formulations: the per-rank pass
//! loop, cost charging, pass-1 counting, paging, and the ring-pipelined
//! data movement of Figure 6.

use crate::config::PlacementPolicy;
use armine_core::apriori::apriori_gen;
use armine_core::counter::{CandidateCounter, CounterBackend, CounterStats};
use armine_core::hashtree::{HashTreeParams, OwnershipFilter};
use armine_core::{Item, ItemSet, Transaction};
use armine_mpsim::{Comm, CountingWork, FaultPlan, RecvFault, Scope};
use std::sync::Arc;

/// An immutable, shared page of transactions — the unit of data movement.
///
/// Pages are produced once by [`paginate`] and then only ever *shared*:
/// sending one through the simulator clones the `Arc` (a refcount bump),
/// never the transactions. The virtual wire cost is unaffected — every
/// send still charges the page's full logical [`page_bytes`] — so this is
/// purely a host-time optimization (see DESIGN.md §5).
pub(crate) type TransactionPage = Arc<[Transaction]>;

/// Tag space for transaction pages (round/step encoded in high bits).
pub(crate) const TAG_DATA: u64 = 1 << 20;

/// Tag for pass-boundary re-balancing transfers (adaptive placement).
pub(crate) const TAG_REBAL: u64 = 1 << 22;

/// What every rank knows at the start of a pass attempt. Under crash
/// recovery the last three fields evolve: the member list shrinks as
/// deaths commit, the local slice grows as the rank adopts a dead peer's
/// data, and the epoch counts pass-boundary syncs so that message scopes
/// of abandoned attempts can never cross-deliver into a retry.
pub(crate) struct RankCtx {
    /// This rank's slice of the database (grows on recovery).
    pub local: Vec<Transaction>,
    /// Item-universe size.
    pub num_items: u32,
    /// Resolved absolute minimum support count.
    pub min_count: u64,
    /// Transactions per communication buffer.
    pub page_size: usize,
    /// Global ranks still participating, ascending. Initially `0..P`.
    pub members: Vec<usize>,
    /// This rank's index in `members`.
    pub my_index: usize,
    /// Recovery epoch: incremented after every membership sync.
    pub epoch: u64,
    /// Relative placement capacity of each member (indexed like
    /// `members`): how much work the placement seam steers to that rank.
    /// All 1.0 under static placement; re-scored at every pass boundary
    /// from measured counting times under adaptive placement. Identical
    /// on every rank — partitioning decisions derived from it must agree
    /// everywhere.
    pub capacities: Vec<f64>,
}

impl RankCtx {
    /// The context of a fresh run over `procs` ranks.
    pub fn new(
        local: Vec<Transaction>,
        num_items: u32,
        min_count: u64,
        page_size: usize,
        rank: usize,
        procs: usize,
    ) -> Self {
        RankCtx {
            local,
            num_items,
            min_count,
            page_size,
            members: (0..procs).collect(),
            my_index: rank,
            epoch: 0,
            capacities: vec![1.0; procs],
        }
    }

    /// Wire bytes of this rank's whole local slice.
    pub fn local_bytes(&self) -> usize {
        self.local.iter().map(Transaction::wire_size).sum()
    }

    /// Number of participating ranks.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Namespaces a scope id by the recovery epoch. Epoch 0 maps `base`
    /// to itself, so fault-free runs use exactly the historical ids.
    pub fn scope_id(&self, base: u64) -> u64 {
        debug_assert!(base < 1 << 40, "scope base collides with epoch bits");
        (self.epoch << 40) | base
    }

    /// The all-members scope of the current attempt — [`Comm::world`]
    /// while membership is full, a shrunken epoch-stamped sub-scope after
    /// a recovery.
    pub fn world<'a>(&self, comm: &'a mut Comm) -> Scope<'a> {
        comm.scope(self.scope_id(0), self.members.clone())
    }
}

/// What one pass produced on this rank. `level` is the **global** `F_k`,
/// identical on every rank (each algorithm ends its pass with an exchange
/// that establishes this).
pub(crate) struct PassResult {
    pub level: Vec<(ItemSet, u64)>,
    pub stats: CounterStats,
    pub db_scans: usize,
    pub grid: (usize, usize),
    pub candidate_imbalance: f64,
    /// Candidates actually counted; differs from `|C_k|` only for
    /// filter-pruning algorithms (PDM). `None` means "all of them".
    pub counted_candidates: Option<usize>,
}

/// Per-pass record a rank keeps for the metrics assembly.
pub(crate) struct RankPass {
    pub k: usize,
    pub candidates_total: usize,
    pub counted_candidates: usize,
    pub grid: (usize, usize),
    pub stats: CounterStats,
    pub db_scans: usize,
    pub candidate_imbalance: f64,
    pub clock_end: f64,
}

/// A rank's full output.
pub(crate) struct RankOutput {
    pub levels: Vec<Vec<(ItemSet, u64)>>,
    pub passes: Vec<RankPass>,
    /// This rank's metric shard: the counting ledger of every committed
    /// pass, recorded lock-free by thread ownership and merged at
    /// assembly.
    pub shard: armine_metrics::MetricShard,
}

/// Contiguous share boundaries of the placement seam: cut points
/// splitting `total` units among ranks in proportion to their
/// `capacities` — `bounds[i]..bounds[i+1]` is rank `i`'s share. Every
/// consumer of contiguous data shares (initial page placement, recovery
/// adoption, pass-boundary re-balancing) slices through this one
/// function so static and adaptive placement agree on the geometry.
///
/// **Uniform** capacities take an exact integer path (`i·total/n`),
/// reproducing the historical even split bit for bit; heterogeneous
/// capacities use proportional cut points.
pub(crate) fn share_bounds(total: usize, capacities: &[f64]) -> Vec<usize> {
    let n = capacities.len();
    assert!(n > 0, "need at least one rank");
    if capacities.windows(2).all(|w| w[0] == w[1]) {
        return (0..=n).map(|i| i * total / n).collect();
    }
    let sum: f64 = capacities.iter().sum();
    let mut bounds = Vec::with_capacity(n + 1);
    let mut prefix = 0.0f64;
    bounds.push(0);
    for (i, &c) in capacities.iter().enumerate() {
        prefix += c;
        let cut = if i + 1 == n {
            total
        } else {
            ((total as f64 * prefix / sum) as usize).min(total)
        };
        // Cut points are monotone even if float rounding wobbles.
        bounds.push(cut.max(*bounds.last().unwrap()));
    }
    bounds
}

/// Pass-boundary capacity re-scoring — the adaptive placement policy's
/// feedback loop. Every member reports the counting time it spent on the
/// pass just committed (virtual `busy` under sim, the measured counting
/// bracket under native); the allgathered vector is identical everywhere,
/// so every rank derives the same new capacities: a rank's effective
/// speed is the share it was just given (∝ old capacity) divided by the
/// time it took. Times are clamped to 1% of the slowest rank's so a rank
/// that happened to do no counting (e.g. an empty slice) cannot grab an
/// unbounded share.
///
/// When `mobile_pages` is set (replicated-candidate formulations, whose
/// counting load is proportional to the local slice), the members also
/// re-slice the global transaction sequence to the new capacities and
/// ship the moved segments — both sides compute the identical transfer
/// plan from the allgathered counts.
pub(crate) fn rebalance_placement(
    comm: &mut Comm,
    ctx: &mut RankCtx,
    mobile_pages: bool,
    busy_mark: &mut f64,
) {
    let busy = comm.stats().busy;
    let spent = (busy - *busy_mark).max(0.0);
    *busy_mark = busy;
    let reports: Vec<(f64, u64)> = ctx
        .world(comm)
        .allgather((spent, ctx.local.len() as u64), 16);
    let t_max = reports.iter().map(|r| r.0).fold(0.0f64, f64::max);
    if t_max > 0.0 {
        let floor = t_max * 1e-2;
        let raw: Vec<f64> = ctx
            .capacities
            .iter()
            .zip(&reports)
            .map(|(&cap, &(t, _))| cap / t.max(floor))
            .collect();
        let sum: f64 = raw.iter().sum();
        let n = raw.len() as f64;
        ctx.capacities = raw.iter().map(|&r| r * n / sum).collect();
    }
    if mobile_pages {
        let old_counts: Vec<usize> = reports.iter().map(|r| r.1 as usize).collect();
        rebalance_pages(comm, ctx, &old_counts);
    }
}

/// Moves transactions between members so local-slice sizes match the
/// current capacities. The global transaction sequence is member 0's
/// slice, then member 1's, …; old and new assignments are both contiguous
/// slices of it, so the transfer plan is a deterministic interval
/// intersection every member computes identically from the allgathered
/// `old_counts`. Deadlock-free: all sends are posted asynchronously
/// before any receive blocks.
fn rebalance_pages(comm: &mut Comm, ctx: &mut RankCtx, old_counts: &[usize]) {
    let n = old_counts.len();
    let total: usize = old_counts.iter().sum();
    let bounds = share_bounds(total, &ctx.capacities);
    let new_counts: Vec<usize> = (0..n).map(|i| bounds[i + 1] - bounds[i]).collect();
    if new_counts == old_counts || total == 0 {
        return;
    }
    let mut old_start = vec![0usize; n + 1];
    for i in 0..n {
        old_start[i + 1] = old_start[i] + old_counts[i];
    }
    let me = ctx.my_index;
    let (my_old_lo, my_old_hi) = (old_start[me], old_start[me + 1]);
    let (my_new_lo, my_new_hi) = (bounds[me], bounds[me + 1]);
    let mut world = ctx.world(comm);
    // Post every outgoing segment (old ∩ peer's new range) first.
    let mut sends = Vec::new();
    for j in 0..n {
        if j == me {
            continue;
        }
        let lo = my_old_lo.max(bounds[j]);
        let hi = my_old_hi.min(bounds[j + 1]);
        if lo < hi {
            let seg: Vec<Transaction> = ctx.local[lo - my_old_lo..hi - my_old_lo].to_vec();
            let bytes: usize = seg.iter().map(Transaction::wire_size).sum();
            sends.push(world.isend(j, TAG_REBAL, seg, bytes));
        }
    }
    // Collect my new slice: the kept overlap plus one segment per peer
    // whose old range intersects my new range, in global order.
    let mut pieces: Vec<(usize, Vec<Transaction>)> = Vec::new();
    let keep_lo = my_old_lo.max(my_new_lo);
    let keep_hi = my_old_hi.min(my_new_hi);
    if keep_lo < keep_hi {
        pieces.push((
            keep_lo,
            ctx.local[keep_lo - my_old_lo..keep_hi - my_old_lo].to_vec(),
        ));
    }
    for i in 0..n {
        if i == me {
            continue;
        }
        let lo = my_new_lo.max(old_start[i]);
        let hi = my_new_hi.min(old_start[i + 1]);
        if lo < hi {
            // Adaptive placement never coexists with crash plans, so the
            // receive cannot fail.
            let seg: Vec<Transaction> = world.recv(i, TAG_REBAL);
            debug_assert_eq!(seg.len(), hi - lo, "transfer plans diverged");
            pieces.push((lo, seg));
        }
    }
    for sh in sends {
        world.wait_send(sh);
    }
    drop(world);
    pieces.sort_by_key(|p| p.0);
    ctx.local = pieces.into_iter().flat_map(|(_, seg)| seg).collect();
    debug_assert_eq!(ctx.local.len(), new_counts[me]);
}

/// Maps a backend's stats delta onto the simulator's structure-agnostic
/// counting ledger. Field for field: the hash tree's distinct leaf visits
/// and the trie's depth-`k` node arrivals both price as `node_visits`;
/// the vertical backend's bitmap words pass through as
/// `intersection_words` (zero for the horizontal backends, which keeps
/// their charge expression — and the goldens — bit-identical).
fn as_counting_work(delta: &CounterStats) -> CountingWork {
    CountingWork {
        inserts: delta.inserts,
        transactions: delta.transactions,
        traversal_steps: delta.traversal_steps,
        node_visits: delta.distinct_leaf_visits,
        candidate_checks: delta.candidate_checks,
        intersection_words: delta.intersection_words,
    }
}

/// Charges the clock for counted work (everything except insertions,
/// which [`build_counter_charged`] prices at build time).
pub(crate) fn charge_counting_work(comm: &mut Comm, delta: &CounterStats) {
    comm.charge_counting(&as_counting_work(delta));
}

/// Builds the configured counting structure over `local_candidates`,
/// charging `apriori_gen` work for the **full** candidate set (every
/// processor regenerates all of `C_k` before keeping its share — Section
/// III-C) plus insertion work for the local share only. Returns the
/// counter with clean work counters.
pub(crate) fn build_counter_charged(
    comm: &mut Comm,
    k: usize,
    backend: CounterBackend,
    tree_params: HashTreeParams,
    local_candidates: Vec<ItemSet>,
    total_candidates: usize,
) -> Box<dyn CandidateCounter> {
    let (t_gen, t_insert) = {
        let m = comm.machine();
        (m.t_gen, m.t_insert)
    };
    comm.advance(total_candidates as f64 * t_gen);
    let mut counter = backend.build(k, tree_params, local_candidates);
    comm.advance(counter.stats().inserts as f64 * t_insert);
    counter.reset_stats();
    counter
}

/// Counts one batch of transactions through the counter, charges the
/// clock for the work actually performed, and returns the counters (for
/// pass metrics). The counter's work ledger is reset afterwards.
pub(crate) fn count_batch_charged(
    comm: &mut Comm,
    counter: &mut dyn CandidateCounter,
    batch: &[Transaction],
    filter: &OwnershipFilter,
) -> CounterStats {
    counter.count_all(batch, filter);
    let delta = counter.stats();
    counter.reset_stats();
    charge_counting_work(comm, &delta);
    delta
}

/// Pass 1: dense local item counting + global reduction. Identical in all
/// four algorithms (the candidate set `C_1` is the item universe; no tree
/// is needed).
pub(crate) fn parallel_pass1(
    comm: &mut Comm,
    ctx: &RankCtx,
) -> Result<Vec<(ItemSet, u64)>, RecvFault> {
    let mut counts = vec![0u64; ctx.num_items as usize];
    let mut touched = 0usize;
    for t in &ctx.local {
        for item in t.items() {
            counts[item.index()] += 1;
        }
        touched += t.len();
    }
    let (t_travers, t_trans) = {
        let m = comm.machine();
        (m.t_travers, m.t_trans)
    };
    comm.advance(touched as f64 * t_travers + ctx.local.len() as f64 * t_trans);
    comm.charge_io(ctx.local_bytes());
    ctx.world(comm).try_allreduce_sum_u64(&mut counts)?;
    Ok(counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= ctx.min_count)
        .map(|(id, &c)| (ItemSet::singleton(Item(id as u32)), c))
        .collect())
}

/// Splits a slice of transactions into shared pages of at most
/// `page_size`. This is the **only** place page payloads are copied; all
/// subsequent movement is by `Arc` clone.
pub(crate) fn paginate(transactions: &[Transaction], page_size: usize) -> Vec<TransactionPage> {
    transactions
        .chunks(page_size.max(1))
        .map(Arc::from)
        .collect()
}

/// Wire bytes of one page.
pub(crate) fn page_bytes(page: &[Transaction]) -> usize {
    page.iter().map(Transaction::wire_size).sum()
}

/// Wire bytes of a frequent-set level exchanged between processors.
pub(crate) fn level_wire_size(level: &[(ItemSet, u64)]) -> usize {
    8 + level.iter().map(|(s, _)| 4 * s.len() + 8).sum::<usize>()
}

/// Merges per-processor frequent levels (disjoint candidate partitions)
/// into the global, lexicographically sorted `F_k`.
pub(crate) fn merge_levels(parts: Vec<Vec<(ItemSet, u64)>>) -> Vec<(ItemSet, u64)> {
    let mut merged: Vec<(ItemSet, u64)> = parts.into_iter().flatten().collect();
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    debug_assert!(
        merged.windows(2).all(|w| w[0].0 < w[1].0),
        "candidate partitions must be disjoint"
    );
    merged
}

/// The ring-pipelined all-to-all data movement of Figure 6: every member's
/// pages visit every member exactly once; the in-hand buffer is processed
/// while the shift is in flight (asynchronous send/recv → compute and
/// communication overlap in virtual time). Accumulates and returns the
/// counting work performed; fails (for pass-boundary recovery) when the
/// left neighbour dies or abandons the attempt mid-ring.
pub(crate) fn ring_shift_count(
    scope: &mut Scope<'_>,
    my_pages: &[TransactionPage],
    max_pages: usize,
    counter: &mut dyn CandidateCounter,
    filter: &OwnershipFilter,
) -> Result<CounterStats, RecvFault> {
    let p = scope.size();
    let mut stats = CounterStats::default();
    // Members whose slice has fewer pages than the ring's longest member
    // circulate this placeholder instead: the (zero-byte) message must
    // still flow each step so the shift pattern stays aligned, but there
    // is nothing in it to count.
    let empty: TransactionPage = Arc::from(Vec::new());
    // Counts `sbuf` through the counter and charges the clock — skipped
    // for empty buffers, which is virtual-time neutral (an empty batch
    // yields an all-zero work delta) and saves the host-side bookkeeping.
    let mut count_buf =
        |scope: &mut Scope<'_>, sbuf: &TransactionPage, stats: &mut CounterStats| {
            if sbuf.is_empty() {
                return;
            }
            counter.count_all(sbuf, filter);
            let delta = counter.stats();
            counter.reset_stats();
            charge_counting_work(scope.comm(), &delta);
            *stats = stats.merged(&delta);
        };
    for page_idx in 0..max_pages {
        // FillBuffer: my own page for this round.
        let mut sbuf: TransactionPage = my_pages
            .get(page_idx)
            .cloned()
            .unwrap_or_else(|| empty.clone());
        for step in 0..p.saturating_sub(1) {
            let tag = TAG_DATA | ((page_idx as u64) << 24) | ((step as u64) << 8);
            let rh = scope.irecv(scope.left(), tag);
            let bytes = page_bytes(&sbuf);
            let sh = scope.isend(scope.right(), tag, sbuf.clone(), bytes);
            // Subset(HTree, SBuf) — overlapped with the in-flight shift.
            count_buf(scope, &sbuf, &mut stats);
            // MPI_Waitall.
            let incoming: TransactionPage = scope.try_wait_recv(rh)?;
            scope.wait_send(sh);
            sbuf = incoming;
        }
        // Process the final buffer (travelled the whole ring).
        count_buf(scope, &sbuf, &mut stats);
    }
    Ok(stats)
}

/// The shared multi-pass driver: pass 1 then repeated
/// `apriori_gen` → algorithm-specific counting, until a pass yields no
/// frequent itemsets.
///
/// Under a crash-injecting fault plan each pass becomes an
/// attempt/sync/retry loop: a failed attempt floods abort notifications,
/// every member joins a two-round membership sync
/// ([`crate::recovery::pass_sync`]), committed deaths shrink the member
/// list and redistribute the dead rank's data
/// ([`crate::recovery::adopt`]), and only the interrupted pass is
/// re-executed — the committed `levels` are the checkpoint. Without
/// crashes in the plan the loop degenerates to exactly one attempt per
/// pass with no sync and epoch pinned at 0, leaving the virtual clocks of
/// fault-free runs bit-identical to the pre-recovery code.
///
/// Under [`PlacementPolicy::Adaptive`] every committed pass ends with a
/// capacity re-scoring ([`rebalance_placement`]); `mobile_pages` enables
/// the transaction re-slicing arm for formulations whose counting load
/// rides the local slice. Adaptive placement is skipped when the plan
/// can crash ranks — crash recovery owns membership and data placement,
/// and mixing the two re-distribution mechanisms would fight.
pub(crate) fn run_rank(
    comm: &mut Comm,
    mut ctx: RankCtx,
    parts: &[Vec<Transaction>],
    max_k: Option<usize>,
    placement: PlacementPolicy,
    mobile_pages: bool,
    mut count_pass: impl FnMut(
        &mut Comm,
        &RankCtx,
        usize,
        Vec<ItemSet>,
        &[(ItemSet, u64)],
    ) -> Result<PassResult, RecvFault>,
) -> RankOutput {
    let recoverable = comm.fault_plan().is_some_and(FaultPlan::has_crashes);
    let adaptive = placement == PlacementPolicy::Adaptive && !recoverable && ctx.size() > 1;
    let mut busy_mark = 0.0f64;
    let mut holdings = crate::recovery::initial_holdings(parts);
    let mut levels: Vec<Vec<(ItemSet, u64)>> = Vec::new();
    let mut passes = Vec::new();
    let mut shard = armine_metrics::MetricShard::new();
    let mut prev: Vec<ItemSet> = Vec::new();
    let mut k = 1;
    loop {
        // C_k: the item universe for pass 1, apriori_gen thereafter.
        let candidates: Option<Vec<ItemSet>> = if k == 1 {
            None
        } else {
            if prev.is_empty() || max_k.is_some_and(|m| k > m) {
                break;
            }
            let c = apriori_gen(&prev);
            if c.is_empty() {
                break;
            }
            Some(c)
        };
        let total = candidates.as_ref().map_or(ctx.num_items as usize, Vec::len);
        let result = loop {
            comm.enter_pass(k);
            comm.set_epoch(ctx.epoch);
            let attempt = match &candidates {
                None => parallel_pass1(comm, &ctx).map(|level| PassResult {
                    level,
                    stats: CounterStats::default(),
                    db_scans: 1,
                    grid: (1, ctx.size()),
                    candidate_imbalance: 0.0,
                    counted_candidates: None,
                }),
                Some(c) => {
                    let prev_level: &[(ItemSet, u64)] = levels.last().map_or(&[], Vec::as_slice);
                    count_pass(comm, &ctx, k, c.clone(), prev_level)
                }
            };
            if !recoverable {
                // No crashes can be injected, so receives cannot fail:
                // single attempt, no sync, epoch stays 0.
                break attempt.unwrap_or_else(|fault| {
                    panic!("receive failed without a crashing fault plan: {fault}")
                });
            }
            let outcome = crate::recovery::pass_sync(comm, &ctx, &attempt);
            if !outcome.dead.is_empty() {
                crate::recovery::adopt(comm, &mut ctx, &mut holdings, parts, &outcome.dead);
            }
            ctx.epoch += 1;
            match attempt {
                Ok(result) if !outcome.any_abort => break result,
                // Someone aborted: every member discards the attempt and
                // re-runs pass k under the (possibly shrunken) membership.
                _ => debug_assert!(outcome.any_abort, "a failed attempt floods its abort"),
            }
        };
        prev = result.level.iter().map(|(s, _)| s.clone()).collect();
        // The attempt is committed: record its ledger. Recording here —
        // not inside counting — keeps abandoned crash-recovery attempts
        // out of the series, mirroring what `passes` keeps.
        crate::registry::record_pass_counters(&mut shard, comm.rank(), k, &result.stats);
        passes.push(RankPass {
            k,
            candidates_total: total,
            counted_candidates: result.counted_candidates.unwrap_or(total),
            grid: result.grid,
            stats: result.stats,
            db_scans: result.db_scans,
            candidate_imbalance: result.candidate_imbalance,
            clock_end: comm.clock(),
        });
        levels.push(result.level);
        if adaptive {
            rebalance_placement(comm, &mut ctx, mobile_pages, &mut busy_mark);
        }
        k += 1;
    }
    RankOutput {
        levels,
        passes,
        shard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(tid, ids.iter().map(|&i| Item(i)).collect())
    }

    #[test]
    fn paginate_splits_and_preserves_order() {
        let txs: Vec<Transaction> = (0..7).map(|i| tx(i, &[i as u32])).collect();
        let pages = paginate(&txs, 3);
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0].len(), 3);
        assert_eq!(pages[2].len(), 1);
        let flat: Vec<u64> = pages
            .iter()
            .flat_map(|p| p.iter())
            .map(Transaction::tid)
            .collect();
        assert_eq!(flat, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn paginate_empty() {
        assert!(paginate(&[], 10).is_empty());
    }

    #[test]
    fn page_bytes_sums_wire_sizes() {
        let page = vec![tx(1, &[1, 2]), tx(2, &[3])];
        assert_eq!(page_bytes(&page), (12 + 8) + (12 + 4));
    }

    #[test]
    fn level_wire_size_counts_items_and_counts() {
        let level = vec![(ItemSet::from([1, 2]), 5u64), (ItemSet::from([3]), 2u64)];
        // 8 header + (8 + 8) + (4 + 8).
        assert_eq!(level_wire_size(&level), 8 + 16 + 12);
    }

    /// Maximally skewed page counts: one ring member owns every page, the
    /// others own none and circulate empty placeholder buffers. The
    /// empty buffers must still be *sent* every step (ring causality —
    /// each member's receive in step `s` matches its left neighbour's
    /// send in step `s`) but never counted, and every rank must still see
    /// every transaction exactly once.
    #[test]
    fn ring_shift_counts_skewed_pages_once_per_rank() {
        use armine_mpsim::Simulator;
        let p = 4;
        let result = Simulator::new(p).run(|comm| {
            let local: Vec<Transaction> = if comm.rank() == 0 {
                (0..10).map(|i| tx(i, &[1, 2, 3])).collect()
            } else {
                Vec::new()
            };
            let my_pages = paginate(&local, 3); // rank 0: 4 pages; others: 0.
            let mut counter = CounterBackend::HashTree.build(
                2,
                HashTreeParams::default(),
                vec![ItemSet::from([1, 2]), ItemSet::from([1, 9])],
            );
            counter.reset_stats();
            let mut world = comm.world();
            let page_counts: Vec<u64> = world.allgather(my_pages.len() as u64, 8);
            let max_pages = page_counts.iter().copied().max().unwrap_or(0) as usize;
            let stats = ring_shift_count(
                &mut world,
                &my_pages,
                max_pages,
                &mut *counter,
                &OwnershipFilter::all(),
            )
            .expect("fault-free ring cannot fail");
            (counter.count_of(&ItemSet::from([1, 2])), stats.transactions)
        });
        for (rank, (count, seen)) in result.results.iter().enumerate() {
            assert_eq!(*count, Some(10), "rank {rank} miscounted");
            assert_eq!(*seen, 10, "rank {rank} processed a wrong batch total");
        }
        // Ring causality: every member sends one message per (page, step),
        // empty or not — 4 pages × 3 steps — plus its one allgather
        // contribution per peer round; no rank may short-circuit.
        let msgs: Vec<u64> = result.ranks.iter().map(|r| r.messages_sent).collect();
        assert!(
            msgs.iter().all(|&m| m == msgs[0]),
            "skewed ownership must not change the message pattern: {msgs:?}"
        );
        assert!(msgs[0] >= (4 * 3) as u64, "ring sends missing: {msgs:?}");
    }

    #[test]
    fn merge_levels_sorts_disjoint_parts() {
        let a = vec![(ItemSet::from([2, 3]), 4u64)];
        let b = vec![(ItemSet::from([1, 2]), 7u64), (ItemSet::from([5, 6]), 1u64)];
        let merged = merge_levels(vec![a, b]);
        let sets: Vec<&ItemSet> = merged.iter().map(|(s, _)| s).collect();
        assert_eq!(
            sets,
            vec![
                &ItemSet::from([1, 2]),
                &ItemSet::from([2, 3]),
                &ItemSet::from([5, 6])
            ]
        );
    }
}
