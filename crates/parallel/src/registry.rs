//! Recording a parallel run into the labeled metrics registry.
//!
//! Two recording sites exist. Inside the simulation, each rank's worker
//! thread owns a private [`MetricShard`] (lock-free by ownership) and
//! records its counting ledger at every **committed** pass — the commit
//! point in `run_rank` is the same place `RankPass` is pushed, so
//! aborted crash-recovery attempts never pollute the series. After the
//! join, [`finish_snapshot`] merges the survivors' shards and layers on
//! everything the host assembles anyway: per-rank `RankStats`, native
//! `WallTimings`, per-pass aggregates, and whole-run scalars. The
//! result is one [`MetricsSnapshot`] whose base labels identify the run
//! (`algorithm`, `backend`, `counter`, `fault_plan`, `procs`).
//!
//! Recording never touches the virtual clock — every call here is a
//! host-side map insert, so golden virtual-time fingerprints are
//! bit-identical with the registry enabled (pinned in
//! `tests/virtual_time_invariance.rs`).

use crate::metrics::ParallelPassMetrics;
use armine_core::counter::{CounterBackend, CounterStats};
use armine_metrics::{names, Labels, MetricShard, MetricsSnapshot};
use armine_mpsim::{ExecBackend, RankStats, WallTimings};

/// The run-identifying base labels stamped onto every series.
pub(crate) struct RunMeta {
    pub algorithm: &'static str,
    pub procs: usize,
    pub backend: ExecBackend,
    pub counter: CounterBackend,
    /// `FaultPlan::label()` of the injected plan, `"none"` without one.
    pub fault_plan: String,
}

/// Records one committed pass's counting ledger into the rank's shard.
/// All seven fields are recorded, zeros included, so the series set is
/// identical across backends and the conformance suite can reconcile
/// field-for-field.
pub(crate) fn record_pass_counters(
    shard: &mut MetricShard,
    rank: usize,
    k: usize,
    stats: &CounterStats,
) {
    for (field, value) in stats.named_fields() {
        shard.incr(
            &names::counting(field),
            Labels::new().with("rank", rank).with("pass", k),
            value,
        );
    }
}

/// Merges the survivors' shards and records the host-assembled views,
/// yielding the run's full snapshot.
///
/// Crashed ranks contribute no shard (matching the legacy survivor-only
/// `CounterStats` aggregation), but their [`RankStats`] — like every
/// rank's — are recorded here, so fault counters and traffic totals
/// cover the whole machine.
pub(crate) fn finish_snapshot(
    meta: &RunMeta,
    shards: Vec<MetricShard>,
    ranks: &[RankStats],
    wall: &[WallTimings],
    passes: &[ParallelPassMetrics],
    response_time: f64,
    total_frequent: usize,
) -> MetricsSnapshot {
    let mut merged = MetricShard::new();
    for shard in shards {
        merged.merge(shard);
    }
    for (rank, rs) in ranks.iter().enumerate() {
        let at = || Labels::new().with("rank", rank);
        for (field, seconds) in rs.named_times() {
            merged.set_gauge(&names::rank_time(field), at(), seconds);
        }
        for (field, count) in rs.named_counters() {
            merged.incr(&names::rank_counter(field), at(), count);
        }
        merged.observe(names::RUN_RANK_CLOCK_SECONDS, Labels::new(), rs.clock);
    }
    for (rank, wt) in wall.iter().enumerate() {
        for (field, seconds) in wt.named_times() {
            merged.set_gauge(
                &names::wall_time(field),
                Labels::new().with("rank", rank),
                seconds,
            );
        }
        // A crash-retried pass appears twice in pass_starts; the gauge
        // keeps the last (committed) attempt's duration.
        for (pass, seconds) in wt.pass_durations() {
            merged.set_gauge(
                names::WALL_PASS_SECONDS,
                Labels::new().with("rank", rank).with("pass", pass),
                seconds,
            );
        }
    }
    for p in passes {
        let at = || Labels::new().with("pass", p.k);
        merged.incr(names::PASS_CANDIDATES, at(), p.candidates as u64);
        merged.incr(
            names::PASS_COUNTED_CANDIDATES,
            at(),
            p.counted_candidates as u64,
        );
        merged.incr(names::PASS_FREQUENT, at(), p.frequent as u64);
        merged.incr(names::PASS_DB_SCANS, at(), p.db_scans as u64);
        merged.set_gauge(names::PASS_TIME_SECONDS, at(), p.time);
        merged.set_gauge(names::PASS_CANDIDATE_IMBALANCE, at(), p.candidate_imbalance);
    }
    merged.set_gauge(names::RUN_RESPONSE_SECONDS, Labels::new(), response_time);
    merged.incr(names::RUN_FREQUENT, Labels::new(), total_frequent as u64);
    merged.snapshot(
        &Labels::new()
            .with("algorithm", meta.algorithm)
            .with("backend", meta.backend.name())
            .with("counter", meta.counter.name())
            .with("fault_plan", &meta.fault_plan)
            .with("procs", meta.procs),
    )
}
