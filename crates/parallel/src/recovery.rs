//! Pass-boundary checkpointing and crash recovery shared by **all**
//! formulations (CD, DD, DD+comm, IDD, IDD-1src, HD, PDM, NPA, HPA).
//!
//! Every pass of every formulation ends with an exchange that leaves the
//! complete global `F_k` replicated on all ranks, so the frequent-itemset
//! lattice committed so far **is** the checkpoint — recovery never needs
//! to re-execute a finished pass. What recovery must reconstruct is:
//!
//! 1. **Agreement on membership** — which ranks are dead and whether the
//!    interrupted pass committed anywhere ([`pass_sync`], a two-round
//!    flooding protocol).
//! 2. **Data placement** — the dead rank's share of the database, which
//!    survivors re-read from stable storage ([`adopt`]; the original
//!    partitions are the simulator's stand-in for the paper's disk-
//!    resident database, so adoption charges I/O, not messages).
//!
//! The decision rule is deliberately conservative: if **any** member
//! aborted the pass, everyone discards the attempt and re-executes it
//! under the shrunken membership; only a unanimously completed pass
//! commits. Because a committed pass is always computed from the same
//! candidate set and the full database — regardless of how many members
//! share the counting — the final lattice is bit-identical to a
//! fault-free run.
//!
//! ## Why round-2 failures must not commit
//!
//! The two rounds are a FloodSet exchange tolerating one crash per pass
//! boundary. A rank that crashes mid-round delivers its message to some
//! peers and a tombstone to the rest, so naive "everything I saw" unions
//! diverge. Round-1 failure observations are safe to commit because round
//! 2 floods them to everyone. A failure first observed **in round 2** has
//! no later round to flood through — some peers received the crasher's
//! round-2 message instead and would disagree — so it is deliberately
//! left uncommitted; the next pass deterministically re-observes it (the
//! dead rank's tombstone is persistent) and commits it then.

use crate::common::{share_bounds, PassResult, RankCtx};
use armine_core::Transaction;
use armine_mpsim::{Comm, RecvFault};
use std::collections::BTreeSet;

/// Scope-id namespace for the membership-sync rounds (epoch-shifted by
/// [`RankCtx::scope_id`], so retries never cross-deliver).
const SCOPE_SYNC: u64 = 1 << 38;
/// Tags for the two flooding rounds.
const TAG_SYNC_R1: u64 = 1 << 21;
const TAG_SYNC_R2: u64 = (1 << 21) | 1;

/// What the membership sync agreed on at a pass boundary.
pub(crate) struct SyncOutcome {
    /// Ranks every survivor commits as dead (ascending).
    pub dead: BTreeSet<usize>,
    /// Whether any member aborted the attempt — if so, the pass is
    /// re-executed under the shrunken membership.
    pub any_abort: bool,
}

/// A contiguous slice `[start, end)` of one original database partition —
/// the unit of data placement tracked for recovery.
pub(crate) type Holding = (usize, usize, usize);

/// The initial placement: rank `r` holds all of partition `r`.
pub(crate) fn initial_holdings(parts: &[Vec<Transaction>]) -> Vec<Vec<Holding>> {
    parts
        .iter()
        .enumerate()
        .map(|(r, p)| vec![(r, 0, p.len())])
        .collect()
}

/// Two-round membership sync at a pass boundary. Every member floods
/// `(aborted?, dead-ranks-observed)` words; a failed attempt first sends
/// abort notifications so peers still blocked inside the pass fail their
/// receives and join the sync instead of waiting forever.
///
/// Deterministic and symmetric: all survivors return the same outcome.
pub(crate) fn pass_sync(
    comm: &mut Comm,
    ctx: &RankCtx,
    attempt: &Result<PassResult, RecvFault>,
) -> SyncOutcome {
    let mut dead: BTreeSet<usize> = BTreeSet::new();
    let mut any_abort = attempt.is_err();
    if let Err(RecvFault::Dead { rank, .. }) = attempt {
        dead.insert(*rank);
    }
    if attempt.is_err() {
        let me = comm.rank();
        let peers: Vec<usize> = ctx.members.iter().copied().filter(|&r| r != me).collect();
        comm.send_abort(&peers, ctx.epoch);
    }

    // Round 1: everyone reports its own attempt outcome. Receive failures
    // here are safe to commit — round 2 floods them to every survivor.
    let (union, abort, failures) = exchange_round(comm, ctx, TAG_SYNC_R1, any_abort, &dead);
    dead.extend(union);
    dead.extend(failures);
    any_abort |= abort;

    // Round 2: flood the round-1 union. Receive failures observed only
    // here are NOT committed (see module docs); the crash is re-observed
    // and committed at the next pass boundary.
    let (union, abort, _round2_failures) = exchange_round(comm, ctx, TAG_SYNC_R2, any_abort, &dead);
    dead.extend(union);
    any_abort |= abort;

    SyncOutcome { dead, any_abort }
}

/// One sync round: send `(abort, dead)` to every other member, then
/// receive each member's word. Returns the union of received dead sets,
/// the OR of received abort flags, and the set of members whose word
/// could not be received (they are dead).
fn exchange_round(
    comm: &mut Comm,
    ctx: &RankCtx,
    tag: u64,
    any_abort: bool,
    dead: &BTreeSet<usize>,
) -> (BTreeSet<usize>, bool, BTreeSet<usize>) {
    let mut scope = comm.scope(ctx.scope_id(SCOPE_SYNC), ctx.members.clone());
    let me = scope.rank();
    let word: Vec<u64> = std::iter::once(any_abort as u64)
        .chain(dead.iter().map(|&r| r as u64))
        .collect();
    let bytes = 8 + 8 * word.len();
    for peer in 0..scope.size() {
        if peer != me {
            scope.send(peer, tag, word.clone(), bytes);
        }
    }
    let mut union = BTreeSet::new();
    let mut abort = false;
    let mut failures = BTreeSet::new();
    for peer in 0..scope.size() {
        if peer == me {
            continue;
        }
        // Sync receives ignore abort notifications: an aborting member
        // still participates in the sync, only a dead one cannot.
        match scope.try_recv_sync::<Vec<u64>>(peer, tag) {
            Ok(w) => {
                abort |= w[0] != 0;
                union.extend(w[1..].iter().map(|&r| r as usize));
            }
            Err(fault) => {
                failures.insert(fault.rank());
            }
        }
    }
    (union, abort, failures)
}

/// Commits a shrunken membership: the dead ranks' holdings are split
/// contiguously among the survivors (identically computed everywhere,
/// through the placement seam's [`share_bounds`] — crash plans always
/// run with uniform capacities, which that seam maps to the exact even
/// split), each survivor re-reads its newly adopted transactions from
/// stable storage (an I/O charge — the database partitions outlive
/// their rank), and the rank context is rebuilt for the next attempt.
pub(crate) fn adopt(
    comm: &mut Comm,
    ctx: &mut RankCtx,
    holdings: &mut [Vec<Holding>],
    parts: &[Vec<Transaction>],
    dead: &BTreeSet<usize>,
) {
    let me = comm.rank();
    let survivors: Vec<usize> = ctx
        .members
        .iter()
        .copied()
        .filter(|r| !dead.contains(r))
        .collect();
    debug_assert!(survivors.contains(&me), "a dead rank cannot recover");
    let survivor_caps: Vec<f64> = ctx
        .members
        .iter()
        .zip(&ctx.capacities)
        .filter(|&(r, _)| !dead.contains(r))
        .map(|(_, &c)| c)
        .collect();
    let kept = holdings[me].len();
    for &d in dead {
        debug_assert!(ctx.members.contains(&d), "committed dead ranks are members");
        let freed = std::mem::take(&mut holdings[d]);
        let total: usize = freed.iter().map(|&(_, lo, hi)| hi - lo).sum();
        let bounds = share_bounds(total, &survivor_caps);
        for (i, &sv) in survivors.iter().enumerate() {
            let (a, b) = (bounds[i], bounds[i + 1]);
            if b > a {
                holdings[sv].extend(slice_ranges(&freed, a, b));
            }
        }
    }
    let adopted_bytes: usize = holdings[me][kept..]
        .iter()
        .map(|&(p, lo, hi)| {
            parts[p][lo..hi]
                .iter()
                .map(Transaction::wire_size)
                .sum::<usize>()
        })
        .sum();
    if adopted_bytes > 0 {
        comm.charge_io(adopted_bytes);
    }
    ctx.local = holdings[me]
        .iter()
        .flat_map(|&(p, lo, hi)| parts[p][lo..hi].iter().cloned())
        .collect();
    ctx.members = survivors;
    ctx.capacities = survivor_caps;
    ctx.my_index = ctx
        .members
        .iter()
        .position(|&r| r == me)
        .expect("survivor stays a member");
    comm.note_recovery();
}

/// The sub-ranges of `ranges` (a logical concatenation) covering the
/// half-open interval `[a, b)` of its combined length.
fn slice_ranges(ranges: &[Holding], a: usize, b: usize) -> Vec<Holding> {
    let mut out = Vec::new();
    let mut offset = 0;
    for &(p, lo, hi) in ranges {
        let len = hi - lo;
        let start = a.clamp(offset, offset + len);
        let end = b.clamp(offset, offset + len);
        if end > start {
            out.push((p, lo + (start - offset), lo + (end - offset)));
        }
        offset += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_ranges_spans_boundaries() {
        let ranges = vec![(0, 0, 4), (2, 10, 13)]; // lengths 4 + 3
        assert_eq!(slice_ranges(&ranges, 0, 7), ranges);
        assert_eq!(slice_ranges(&ranges, 0, 2), vec![(0, 0, 2)]);
        assert_eq!(slice_ranges(&ranges, 3, 5), vec![(0, 3, 4), (2, 10, 11)]);
        assert_eq!(slice_ranges(&ranges, 4, 7), vec![(2, 10, 13)]);
        assert!(slice_ranges(&ranges, 5, 5).is_empty());
    }

    #[test]
    fn initial_holdings_map_rank_to_partition() {
        let parts = vec![
            vec![Transaction::new(0, vec![])],
            vec![Transaction::new(1, vec![]), Transaction::new(2, vec![])],
        ];
        assert_eq!(
            initial_holdings(&parts),
            vec![vec![(0, 0, 1)], vec![(1, 0, 2)]]
        );
    }
}
